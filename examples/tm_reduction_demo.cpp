// The §5.3 lower-bound reduction, live: encode micro Turing machines as
// containment instances, decide them, and cross-check the verdict against
// direct simulation. Demonstrates Theorem 5.15's correspondence
//   Pi ⊆ Theta  iff  M does not accept.
//
//   $ ./build/examples/tm_reduction_demo
#include <iostream>

#include "src/containment/decider.h"
#include "src/tm/tm_encoding.h"

namespace {

void Demo(const std::string& name, const datalog::TuringMachine& tm) {
  using namespace datalog;
  const int n = 1;  // 1 address bit: configurations of 2 tape cells
  TmVerdict simulated = SimulateOnEmptyTape(tm, 1 << n);
  StatusOr<TmEncoding> encoding = EncodeLinearTmContainment(tm, n);
  if (!encoding.ok()) {
    std::cerr << encoding.status() << "\n";
    return;
  }
  std::cout << "--- " << name << " ---\n"
            << "simulator verdict: "
            << (simulated == TmVerdict::kAccepts ? "accepts"
                                                 : "does not accept")
            << "\nencoding: " << encoding->program.rules().size()
            << " rules, " << encoding->queries.size() << " error queries\n";
  ContainmentOptions options;
  options.limits.max_states = 2'000'000;
  StatusOr<ContainmentDecision> decision = DecideDatalogInUcq(
      encoding->program, encoding->goal, encoding->queries, options);
  if (!decision.ok()) {
    std::cerr << decision.status() << "\n";
    return;
  }
  bool reduction_says_accepts = !decision->contained;
  std::cout << "containment verdict: Pi "
            << (decision->contained ? "⊆" : "⊄") << " Theta  =>  machine "
            << (reduction_says_accepts ? "accepts" : "does not accept")
            << "\nagreement with simulator: "
            << ((simulated == datalog::TmVerdict::kAccepts) ==
                        reduction_says_accepts
                    ? "YES"
                    : "NO — BUG")
            << "\n";
  if (decision->counterexample.has_value()) {
    std::cout << "counterexample expansion has "
              << decision->counterexample->Size()
              << " nodes (an error-free accepting computation encoding)\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace datalog;
  Demo("immediately accepting machine", ImmediatelyAcceptingMachine());
  Demo("machine that loops in place", LoopsInPlaceMachine());
  Demo("machine that runs off the tape", RunsOffTheTapeMachine());
  std::cout << "(Each instance is doubly-exponentially hard in general — "
               "Theorem 5.15;\n these micro machines are the feasible tip "
               "of the construction.)\n";
  return 0;
}
