// Boundedness explorer: given a Datalog program (file or built-in
// example), search for an equivalent bounded-depth unfolding — the
// semi-decision procedure for the boundedness problem discussed in the
// paper's introduction (full boundedness is undecidable [GMSV93]).
//
//   $ ./build/examples/boundedness_explorer                # demo programs
//   $ ./build/examples/boundedness_explorer FILE GOAL [K]  # your program
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/ast/parser.h"
#include "src/containment/boundedness.h"
#include "src/generators/examples.h"
#include "src/trees/enumerate.h"

namespace {

void Explore(const datalog::Program& program, const std::string& goal,
             std::size_t max_depth) {
  using namespace datalog;
  std::cout << "program:\n" << program.ToString() << "\n";
  StatusOr<std::optional<std::size_t>> depth =
      FindBoundedDepth(program, goal, max_depth);
  if (!depth.ok()) {
    std::cerr << depth.status() << "\n";
    return;
  }
  if (depth->has_value()) {
    std::cout << "BOUNDED: equivalent to its depth-" << **depth
              << " unfolding:\n";
    EnumerateOptions options;
    options.max_depth = **depth;
    UnionOfCqs expansions = BoundedExpansions(program, goal, options);
    for (const ConjunctiveQuery& cq : expansions.disjuncts()) {
      std::cout << "  " << goal << cq.ToString() << "\n";
    }
  } else {
    std::cout << "not bounded at any depth <= " << max_depth
              << " (boundedness is undecidable in general, so this is all "
                 "the procedure can say)\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datalog;
  if (argc >= 3) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    StatusOr<Program> program = ParseProgram(text.str());
    if (!program.ok()) {
      std::cerr << program.status() << "\n";
      return 1;
    }
    std::size_t max_depth = argc > 3 ? std::atoi(argv[3]) : 4;
    Explore(*program, argv[2], max_depth);
    return 0;
  }

  std::cout << "=== Example 1.1 Pi_1 (bounded at depth 2) ===\n";
  Explore(Buys1Program(), "buys", 4);
  std::cout << "=== Example 1.1 Pi_2 (inherently recursive) ===\n";
  Explore(Buys2Program(), "buys", 4);
  std::cout << "=== Transitive closure (unbounded) ===\n";
  Explore(TransitiveClosureProgram(), "p", 4);
  return 0;
}
