// Quickstart: parse the paper's Example 1.1 programs, decide equivalence
// to their nonrecursive rewritings, and inspect the counterexample for
// the inherently recursive one.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "src/ast/parser.h"
#include "src/containment/equivalence.h"
#include "src/trees/connectivity.h"
#include "src/trees/expansion_tree.h"

int main() {
  using namespace datalog;

  // Π1 from Example 1.1: buys via likes, with a trendy shortcut.
  StatusOr<Program> buys1 = ParseProgram(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
  )");
  // The nonrecursive program the paper claims is equivalent.
  StatusOr<Program> buys1_nonrec = ParseProgram(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), likes(Z, Y).
  )");
  // Π2: buys via knows-chains — inherently recursive.
  StatusOr<Program> buys2 = ParseProgram(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- knows(X, Z), buys(Z, Y).
  )");
  StatusOr<Program> buys2_nonrec = ParseProgram(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- knows(X, Z), likes(Z, Y).
  )");
  if (!buys1.ok() || !buys1_nonrec.ok() || !buys2.ok() ||
      !buys2_nonrec.ok()) {
    std::cerr << "parse error\n";
    return 1;
  }

  std::cout << "=== Example 1.1, program Pi_1 ===\n"
            << buys1->ToString() << "\n\n";
  StatusOr<EquivalenceResult> r1 =
      DecideRecNonrecEquivalence(*buys1, "buys", *buys1_nonrec, "buys");
  if (!r1.ok()) {
    std::cerr << r1.status() << "\n";
    return 1;
  }
  std::cout << "equivalent to its nonrecursive rewriting? "
            << (r1->equivalent ? "YES" : "NO") << "\n"
            << "  (forward " << r1->forward_contained << ", backward "
            << r1->backward_contained << ", rewriting has "
            << r1->unfolded_disjuncts << " disjuncts)\n\n";

  std::cout << "=== Example 1.1, program Pi_2 ===\n"
            << buys2->ToString() << "\n\n";
  StatusOr<EquivalenceResult> r2 =
      DecideRecNonrecEquivalence(*buys2, "buys", *buys2_nonrec, "buys");
  if (!r2.ok()) {
    std::cerr << r2.status() << "\n";
    return 1;
  }
  std::cout << "equivalent to its nonrecursive rewriting? "
            << (r2->equivalent ? "YES" : "NO") << "\n";
  if (r2->forward_counterexample.has_value()) {
    std::cout << "\ncounterexample proof tree (paper §5.1):\n"
              << r2->forward_counterexample->ToString()
              << "\nits expansion, as a conjunctive query:\n  "
              << TreeToCq(*buys2, TreeConnectivity(
                                      *r2->forward_counterexample)
                                      .RenameByClass())
                     .ToString()
              << "\n\nThis expansion (a two-step knows-chain) is derivable "
                 "by the recursive\nprogram but covered by no disjunct of "
                 "the rewriting — Pi_2 is inherently\nrecursive, exactly "
                 "as the paper states.\n";
  }
  return 0;
}
