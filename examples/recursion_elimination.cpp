// Recursion elimination as a query optimization (the paper's §1
// motivation): check that a recursive program equals a nonrecursive
// rewriting, then evaluate both on synthetic data and report the speedup.
//
//   $ ./build/examples/recursion_elimination [people] [items]
#include <chrono>
#include <iostream>

#include "src/containment/equivalence.h"
#include "src/engine/eval.h"
#include "src/generators/examples.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  using namespace datalog;
  using Clock = std::chrono::steady_clock;

  int people = argc > 1 ? std::atoi(argv[1]) : 200;
  int items = argc > 2 ? std::atoi(argv[2]) : 50;

  Program recursive = Buys1Program();
  Program nonrecursive = Buys1NonrecursiveProgram();

  // Step 1: prove the rewriting is safe (Theorem 6.5 machinery).
  StatusOr<EquivalenceResult> equivalence =
      DecideRecNonrecEquivalence(recursive, "buys", nonrecursive, "buys");
  if (!equivalence.ok()) {
    std::cerr << equivalence.status() << "\n";
    return 1;
  }
  std::cout << "rewriting verified equivalent: "
            << (equivalence->equivalent ? "yes" : "NO (aborting)") << "\n";
  if (!equivalence->equivalent) return 1;

  // Step 2: synthetic shopping data.
  Database db;
  for (int p = 0; p < people; ++p) {
    if (p % 3 == 0) db.AddFact("trendy", {StrCat("p", p)});
    for (int i = 0; i < items; ++i) {
      if ((p + i) % 7 == 0) {
        db.AddFact("likes", {StrCat("p", p), StrCat("i", i)});
      }
    }
  }
  std::cout << "database: " << db.TotalFacts() << " facts\n";

  // Step 3: evaluate both and compare.
  auto timed = [&db](const Program& program) {
    auto start = Clock::now();
    StatusOr<Relation> result = EvaluateGoal(program, "buys", db);
    auto elapsed = std::chrono::duration<double, std::milli>(
        Clock::now() - start);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      std::exit(1);
    }
    return std::make_pair(*result, elapsed.count());
  };
  auto [rec_result, rec_ms] = timed(recursive);
  auto [nonrec_result, nonrec_ms] = timed(nonrecursive);

  std::cout << "recursive evaluation:    " << rec_result.size()
            << " tuples in " << rec_ms << " ms\n"
            << "nonrecursive evaluation: " << nonrec_result.size()
            << " tuples in " << nonrec_ms << " ms\n"
            << "results identical: "
            << (rec_result == nonrec_result ? "yes" : "NO — BUG") << "\n";
  if (nonrec_ms > 0) {
    std::cout << "speedup: " << rec_ms / nonrec_ms << "x\n";
  }
  return rec_result == nonrec_result ? 0 : 1;
}
