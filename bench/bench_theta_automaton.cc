// Experiment E5 (Proposition 5.10 / Theorem 5.11): explicit A^θ
// construction cost and the full explicit-automata containment pipeline,
// as the query grows. This is the construction whose worst case drives the
// 2EXPTIME upper bound; the measured state counts show the blowup in the
// query size.
#include <benchmark/benchmark.h>

#include "src/containment/theta_automaton.h"
#include "src/generators/examples.h"
#include "src/util/logging.h"

namespace datalog {
namespace {

void BM_ThetaAutomatonVsQuerySize(benchmark::State& state) {
  int query_length = static_cast<int>(state.range(0));
  Program tc = TransitiveClosureProgram("e", "e");
  ConjunctiveQuery theta = ChainQuery(query_length);
  StatusOr<PtreesAutomaton> ptrees = BuildPtreesAutomaton(tc, "p");
  DATALOG_CHECK(ptrees.ok());
  std::size_t states = 0;
  std::size_t transitions = 0;
  for (auto _ : state) {
    StatusOr<ThetaAutomaton> automaton =
        BuildThetaAutomaton(tc, "p", theta, ptrees->alphabet);
    DATALOG_CHECK(automaton.ok()) << automaton.status();
    states = automaton->nfta.num_states();
    transitions = automaton->nfta.NumTransitions();
    benchmark::DoNotOptimize(automaton);
  }
  state.counters["theta_states"] = static_cast<double>(states);
  state.counters["transitions"] = static_cast<double>(transitions);
}
BENCHMARK(BM_ThetaAutomatonVsQuerySize)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_ExplicitContainmentPipeline(benchmark::State& state) {
  // Theorem 5.11 end to end: TC ⊆ paths(k)? (never; counterexample found).
  int k = static_cast<int>(state.range(0));
  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs paths = PathQueries(k);
  bool contained = true;
  for (auto _ : state) {
    StatusOr<ExplicitContainmentResult> result =
        DecideContainmentViaExplicitAutomata(tc, "p", paths);
    DATALOG_CHECK(result.ok()) << result.status();
    contained = result->contained;
    benchmark::DoNotOptimize(result);
  }
  DATALOG_CHECK(!contained);
}
BENCHMARK(BM_ExplicitContainmentPipeline)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace datalog
