// Experiments E1/E10 (Example 1.1, Theorem 6.5): end-to-end equivalence of
// recursive and nonrecursive programs — the paper's titular problem — on
// the headline example and on scaled variants.
#include <benchmark/benchmark.h>

#include "src/ast/parser.h"
#include "src/containment/boundedness.h"
#include "src/containment/equivalence.h"
#include "src/generators/examples.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

void BM_Example11Positive(benchmark::State& state) {
  Program rec = Buys1Program();
  Program nonrec = Buys1NonrecursiveProgram();
  for (auto _ : state) {
    StatusOr<EquivalenceResult> result =
        DecideRecNonrecEquivalence(rec, "buys", nonrec, "buys");
    DATALOG_CHECK(result.ok());
    DATALOG_CHECK(result->equivalent);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Example11Positive);

void BM_Example11Negative(benchmark::State& state) {
  Program rec = Buys2Program();
  Program nonrec = Buys2NonrecursiveProgram();
  for (auto _ : state) {
    StatusOr<EquivalenceResult> result =
        DecideRecNonrecEquivalence(rec, "buys", nonrec, "buys");
    DATALOG_CHECK(result.ok());
    DATALOG_CHECK(!result->equivalent);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Example11Negative);

// Equivalence against deeper nonrecursive rewritings: the nonrecursive
// comparand spells out k trendy-steps; unfolding grows, the verdict stays
// "equivalent".
void BM_DeeperRewriting(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Program rec = Buys1Program();
  Program nonrec;
  {
    StatusOr<Rule> base = ParseRule("buys(X, Y) :- likes(X, Y).");
    DATALOG_CHECK(base.ok());
    nonrec.AddRule(*base);
  }
  std::string body = "trendy(X)";
  for (int i = 1; i <= k; ++i) {
    StatusOr<Rule> rule = ParseRule(
        StrCat("buys(X, Y) :- ", body, ", likes(Z, Y)."));
    DATALOG_CHECK(rule.ok());
    nonrec.AddRule(*rule);
    body += StrCat(", trendy(W", i, ")");
  }
  for (auto _ : state) {
    StatusOr<EquivalenceResult> result =
        DecideRecNonrecEquivalence(rec, "buys", nonrec, "buys");
    DATALOG_CHECK(result.ok());
    DATALOG_CHECK(result->equivalent);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rewriting_rules"] =
      static_cast<double>(nonrec.rules().size());
}
BENCHMARK(BM_DeeperRewriting)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_BoundednessProbe(benchmark::State& state) {
  // FindBoundedDepth on the bounded buys1 (succeeds at 2) and on TC with
  // the same budget (exhausts it).
  Program buys1 = Buys1Program();
  Program tc = TransitiveClosureProgram("e", "e");
  std::size_t budget = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto bounded = FindBoundedDepth(buys1, "buys", budget);
    DATALOG_CHECK(bounded.ok());
    DATALOG_CHECK(bounded->has_value());
    auto unbounded = FindBoundedDepth(tc, "p", budget);
    DATALOG_CHECK(unbounded.ok());
    DATALOG_CHECK(!unbounded->has_value());
    benchmark::DoNotOptimize(bounded);
  }
}
BENCHMARK(BM_BoundednessProbe)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace datalog
