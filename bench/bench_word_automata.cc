// Experiment E11 (Propositions 4.2/4.3): word-automaton emptiness is
// cheap (graph reachability); containment pays for the subset
// construction, with antichain pruning as the mitigation.
#include <benchmark/benchmark.h>

#include <random>

#include "src/automata/nfa.h"
#include "src/util/logging.h"

namespace datalog {
namespace {

Nfa RandomNfa(std::mt19937_64& rng, int states, int symbols,
              double edge_prob) {
  Nfa nfa(states, symbols);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  nfa.SetInitial(0);
  for (int s = 0; s < states; ++s) {
    if (coin(rng) < 0.2) nfa.SetAccepting(s);
    for (int a = 0; a < symbols; ++a) {
      for (int t = 0; t < states; ++t) {
        if (coin(rng) < edge_prob) nfa.AddTransition(s, a, t);
      }
    }
  }
  return nfa;
}

void BM_NfaEmptiness(benchmark::State& state) {
  std::mt19937_64 rng(1);
  Nfa nfa = RandomNfa(rng, static_cast<int>(state.range(0)), 4, 0.05);
  for (auto _ : state) {
    bool empty = nfa.IsEmpty();
    benchmark::DoNotOptimize(empty);
  }
  state.counters["states"] = static_cast<double>(nfa.num_states());
}
BENCHMARK(BM_NfaEmptiness)->Arg(64)->Arg(256)->Arg(1024);

void RunContainment(benchmark::State& state, bool antichain) {
  std::mt19937_64 rng(7);
  int n = static_cast<int>(state.range(0));
  Nfa a = RandomNfa(rng, n, 2, 2.0 / n);
  Nfa b = RandomNfa(rng, n, 2, 2.0 / n);
  Nfa::ContainmentOptions options;
  options.antichain = antichain;
  std::size_t explored = 0;
  for (auto _ : state) {
    auto result = Nfa::Contains(a, b, options);
    DATALOG_CHECK(result.ok());
    explored = result->explored;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs_explored"] = static_cast<double>(explored);
}

void BM_NfaContainmentAntichain(benchmark::State& state) {
  RunContainment(state, true);
}
BENCHMARK(BM_NfaContainmentAntichain)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_NfaContainmentExact(benchmark::State& state) {
  RunContainment(state, false);
}
BENCHMARK(BM_NfaContainmentExact)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_NfaDeterminize(benchmark::State& state) {
  std::mt19937_64 rng(3);
  int n = static_cast<int>(state.range(0));
  Nfa nfa = RandomNfa(rng, n, 2, 2.5 / n);
  std::size_t det_states = 0;
  for (auto _ : state) {
    StatusOr<Nfa> det = nfa.Determinize();
    DATALOG_CHECK(det.ok());
    det_states = det->num_states();
    benchmark::DoNotOptimize(det);
  }
  state.counters["det_states"] = static_cast<double>(det_states);
}
BENCHMARK(BM_NfaDeterminize)->Arg(8)->Arg(12)->Arg(16);

}  // namespace
}  // namespace datalog
