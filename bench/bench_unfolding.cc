// Experiments E8/E9 (Examples 6.1, 6.2, 6.3, 6.6): nonrecursive programs
// are exponentially more succinct than unions of conjunctive queries.
// dist_n unfolds to one CQ with 2^n atoms; word_n (linear nonrecursive)
// unfolds to 2^n disjuncts of size O(n). These measured blowups are the
// engine behind the 3EXPTIME lower bound (Theorem 6.4).
#include <benchmark/benchmark.h>

#include "src/containment/unfold.h"
#include "src/generators/examples.h"
#include "src/util/logging.h"

namespace datalog {
namespace {

void BM_UnfoldDist(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Program program = DistProgram(n);
  std::size_t atoms = 0;
  for (auto _ : state) {
    StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(program, DistPredicate(n));
    DATALOG_CHECK(ucq.ok());
    atoms = ucq->disjuncts()[0].body().size();
    benchmark::DoNotOptimize(ucq);
  }
  state.counters["program_rules"] =
      static_cast<double>(program.rules().size());
  state.counters["cq_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_UnfoldDist)->DenseRange(2, 14, 3);

void BM_UnfoldWord(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Program program = WordProgram(n);
  std::size_t disjuncts = 0;
  for (auto _ : state) {
    StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(program, WordPredicate(n));
    DATALOG_CHECK(ucq.ok());
    disjuncts = ucq->size();
    benchmark::DoNotOptimize(ucq);
  }
  state.counters["program_rules"] =
      static_cast<double>(program.rules().size());
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_UnfoldWord)->DenseRange(2, 12, 2);

void BM_UnfoldDistLe(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Program program = DistLeProgram(n);
  std::size_t disjuncts = 0;
  for (auto _ : state) {
    StatusOr<UnionOfCqs> ucq =
        UnfoldNonrecursive(program, DistLePredicate(n));
    DATALOG_CHECK(ucq.ok());
    disjuncts = ucq->size();
    benchmark::DoNotOptimize(ucq);
  }
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_UnfoldDistLe)->DenseRange(1, 7, 2);

void BM_UnfoldEqual(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Program program = EqualProgram(n);
  std::size_t disjuncts = 0;
  for (auto _ : state) {
    StatusOr<UnionOfCqs> ucq =
        UnfoldNonrecursive(program, EqualPredicate(n));
    DATALOG_CHECK(ucq.ok());
    disjuncts = ucq->size();
    benchmark::DoNotOptimize(ucq);
  }
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_UnfoldEqual)->DenseRange(1, 4, 1);

void BM_EstimateOnly(benchmark::State& state) {
  // The size estimate is polynomial even where materialization is
  // astronomically large.
  int n = static_cast<int>(state.range(0));
  Program program = DistProgram(n);
  std::uint64_t atoms = 0;
  for (auto _ : state) {
    StatusOr<UnfoldSizeEstimate> estimate =
        EstimateUnfoldSize(program, DistPredicate(n));
    DATALOG_CHECK(estimate.ok());
    atoms = estimate->max_disjunct_atoms;
    benchmark::DoNotOptimize(estimate);
  }
  state.counters["estimated_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_EstimateOnly)->Arg(10)->Arg(20)->Arg(40)->Arg(60);

}  // namespace
}  // namespace datalog
