#!/usr/bin/env python3
"""Validates the BENCH_eval.json schema.

Used by bench/run_bench.sh before replacing the committed baseline and by
the CI bench-smoke job against the committed file, so a truncated run or
a hand-edit that breaks the shape fails loudly instead of silently
corrupting the perf trajectory.

Usage: check_bench_schema.py <bench.json> [--expect-prefix NAME ...]
                                          [--names-file FILE]

With --expect-prefix, at least one benchmark entry must start with each
given prefix (e.g. BM_Decider, BM_RecursiveBuys) — a guard against a
filter accidentally dropping a whole family from the baseline.

With --names-file, every (non-aggregate) benchmark entry's name must
appear in FILE (one name per line — the output of
`bench_eval --benchmark_list_tests`): the baseline must never name a
benchmark that no longer exists in the binary, which is how renamed or
deleted cases silently rot out of the perf trajectory.
"""
import json
import sys


def fail(message: str) -> None:
    print(f"check_bench_schema: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_bench_schema.py <bench.json> "
             "[--expect-prefix NAME ...]")
    path = sys.argv[1]
    prefixes = []
    names_file = None
    args = sys.argv[2:]
    while args:
        if args[0] == "--expect-prefix" and len(args) >= 2:
            prefixes.append(args[1])
            args = args[2:]
        elif args[0] == "--names-file" and len(args) >= 2:
            names_file = args[1]
            args = args[2:]
        else:
            fail(f"unknown argument {args[0]}")

    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")

    if not isinstance(data, dict):
        fail("top level must be an object")
    for key in ("context", "benchmarks"):
        if key not in data:
            fail(f"missing top-level key {key!r}")
    if not isinstance(data["benchmarks"], list) or not data["benchmarks"]:
        fail("'benchmarks' must be a non-empty list")
    for entry in data["benchmarks"]:
        if not isinstance(entry, dict):
            fail("benchmark entries must be objects")
        for key in ("name", "real_time", "cpu_time", "time_unit"):
            if key not in entry:
                fail(f"benchmark entry missing {key!r}: "
                     f"{entry.get('name', '<unnamed>')}")
        if not isinstance(entry["real_time"], (int, float)):
            fail(f"{entry['name']}: real_time must be numeric")

    names = [entry["name"] for entry in data["benchmarks"]]
    for prefix in prefixes:
        if not any(name.startswith(prefix) for name in names):
            fail(f"no benchmark entry starts with {prefix!r}")

    if names_file is not None:
        try:
            with open(names_file) as handle:
                known = {line.strip() for line in handle if line.strip()}
        except OSError as error:
            fail(f"{names_file}: {error}")
        for entry in data["benchmarks"]:
            # Aggregate rows (mean/median/stddev under repetitions > 1)
            # derive their names from a real case; only check base runs.
            if entry.get("run_type", "iteration") != "iteration":
                continue
            if entry["name"] not in known:
                fail(f"baseline names benchmark {entry['name']!r}, which "
                     f"the binary no longer provides (stale baseline? "
                     f"re-record with bench/run_bench.sh)")

    print(f"check_bench_schema: {path} OK "
          f"({len(names)} entries)")


if __name__ == "__main__":
    main()
