// Experiment E4 (Proposition 5.9): the proof-tree automaton A^ptrees is
// exponential in the program's rule width (variables per rule) but linear
// in the number of rules. Measured by constructing the explicit automaton
// for chain programs of growing step width and for programs with a
// growing number of rules.
#include <benchmark/benchmark.h>

#include "src/containment/ptrees_automaton.h"
#include "src/generators/examples.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

void BM_PtreesAutomatonVsRuleWidth(benchmark::State& state) {
  // ChainProgram(step) has step+2 variables in the recursive rule, so the
  // alphabet grows like (2*(step+2))^(step+2).
  int step = static_cast<int>(state.range(0));
  Program program = ChainProgram(step);
  std::size_t labels = 0;
  std::size_t states = 0;
  for (auto _ : state) {
    StatusOr<PtreesAutomaton> automaton =
        BuildPtreesAutomaton(program, "p", ExecutionLimits().WithMaxLabels(50'000'000));
    DATALOG_CHECK(automaton.ok()) << automaton.status();
    labels = automaton->alphabet.num_labels();
    states = automaton->nfta.num_states();
    benchmark::DoNotOptimize(automaton);
  }
  state.counters["alphabet"] = static_cast<double>(labels);
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_PtreesAutomatonVsRuleWidth)->Arg(1)->Arg(2)->Arg(3);

void BM_PtreesAutomatonVsRuleCount(benchmark::State& state) {
  // Many rules of fixed width: p alternates over k distinct EDB
  // predicates; the automaton grows linearly.
  int k = static_cast<int>(state.range(0));
  Program program;
  for (int i = 0; i < k; ++i) {
    program.AddRule(Rule(
        Atom("p", {Term::Variable("X"), Term::Variable("Y")}),
        {Atom(StrCat("e", i), {Term::Variable("X"), Term::Variable("Z")}),
         Atom("p", {Term::Variable("Z"), Term::Variable("Y")})}));
  }
  program.AddRule(Rule(Atom("p", {Term::Variable("X"), Term::Variable("Y")}),
                       {Atom("base", {Term::Variable("X"),
                                      Term::Variable("Y")})}));
  std::size_t labels = 0;
  for (auto _ : state) {
    StatusOr<PtreesAutomaton> automaton =
        BuildPtreesAutomaton(program, "p", ExecutionLimits().WithMaxLabels(50'000'000));
    DATALOG_CHECK(automaton.ok());
    labels = automaton->alphabet.num_labels();
    benchmark::DoNotOptimize(automaton);
  }
  state.counters["alphabet"] = static_cast<double>(labels);
}
BENCHMARK(BM_PtreesAutomatonVsRuleCount)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace datalog
