// Experiment E14 (design-choice ablation): the on-the-fly decider with and
// without antichain pruning of achievable sets, and with and without
// counterexample witness tracking. Antichain pruning is the difference
// between the exact determinized-subset construction and the pruned one;
// both are sound and complete (see decider.h).
#include <benchmark/benchmark.h>

#include "src/containment/decider.h"
#include "src/generators/examples.h"
#include "src/util/logging.h"

namespace datalog {
namespace {

void RunAblation(benchmark::State& state, bool antichain,
                 bool track_witness) {
  int k = static_cast<int>(state.range(0));
  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs paths = PathQueries(k);
  ContainmentOptions options;
  options.antichain = antichain;
  options.track_witness = track_witness;
  std::size_t states = 0;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision =
        DecideDatalogInUcq(tc, "p", paths, options);
    DATALOG_CHECK(decision.ok());
    states = decision->stats.states_discovered;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["states"] = static_cast<double>(states);
}

void BM_AntichainOnWitnessOn(benchmark::State& state) {
  RunAblation(state, true, true);
}
BENCHMARK(BM_AntichainOnWitnessOn)->Arg(2)->Arg(4)->Arg(6);

void BM_AntichainOnWitnessOff(benchmark::State& state) {
  RunAblation(state, true, false);
}
BENCHMARK(BM_AntichainOnWitnessOff)->Arg(2)->Arg(4)->Arg(6);

void BM_AntichainOffWitnessOff(benchmark::State& state) {
  RunAblation(state, false, false);
}
BENCHMARK(BM_AntichainOffWitnessOff)->Arg(2)->Arg(4)->Arg(6);

// Positive instances (full fixpoint; nothing to find early): buys1 versus
// progressively redundant rewritings.
void BM_PositiveInstanceAblation(benchmark::State& state) {
  bool antichain = state.range(0) != 0;
  Program buys1 = Buys1Program();
  UnionOfCqs theta;
  theta.Add(CqFromRule(
      Buys1NonrecursiveProgram().rules()[0]));
  theta.Add(CqFromRule(
      Buys1NonrecursiveProgram().rules()[1]));
  ContainmentOptions options;
  options.antichain = antichain;
  options.track_witness = false;
  std::size_t states = 0;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision =
        DecideDatalogInUcq(buys1, "buys", theta, options);
    DATALOG_CHECK(decision.ok());
    DATALOG_CHECK(decision->contained);
    states = decision->stats.states_discovered;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_PositiveInstanceAblation)->Arg(0)->Arg(1);

}  // namespace
}  // namespace datalog
