// Experiment E7 (Theorem 5.15): the §5.3 lower-bound reduction as a
// workload. Measures (a) the size of the generated instance as n grows —
// program linear in n, query set linear in n — and (b) the containment
// decision on micro machines with n = 1 (both verdicts), which is already
// a heavyweight instance for the decider, as the lower bound predicts.
#include <benchmark/benchmark.h>

#include "src/containment/decider.h"
#include "src/tm/tm_encoding.h"
#include "src/util/logging.h"

namespace datalog {
namespace {

void BM_EncodingSize(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TuringMachine tm = BounceAndAcceptMachine();
  std::size_t rules = 0;
  std::size_t queries = 0;
  for (auto _ : state) {
    StatusOr<TmEncoding> encoding = EncodeLinearTmContainment(tm, n);
    DATALOG_CHECK(encoding.ok());
    rules = encoding->program.rules().size();
    queries = encoding->queries.size();
    benchmark::DoNotOptimize(encoding);
  }
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["queries"] = static_cast<double>(queries);
}
BENCHMARK(BM_EncodingSize)->DenseRange(1, 8, 1);

void RunReduction(benchmark::State& state, const TuringMachine& tm,
                  bool expect_contained) {
  StatusOr<TmEncoding> encoding = EncodeLinearTmContainment(tm, 1);
  DATALOG_CHECK(encoding.ok());
  ContainmentOptions options;
  options.track_witness = false;
  options.limits.max_states = 5'000'000;
  std::size_t states = 0;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision = DecideDatalogInUcq(
        encoding->program, encoding->goal, encoding->queries, options);
    DATALOG_CHECK(decision.ok()) << decision.status();
    DATALOG_CHECK(decision->contained == expect_contained);
    states = decision->stats.states_discovered;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["decider_states"] = static_cast<double>(states);
  state.counters["queries"] = static_cast<double>(encoding->queries.size());
}

void BM_AcceptingMachineNotContained(benchmark::State& state) {
  RunReduction(state, ImmediatelyAcceptingMachine(),
               /*expect_contained=*/false);
}
BENCHMARK(BM_AcceptingMachineNotContained)->Unit(benchmark::kMillisecond);

void BM_LoopingMachineContained(benchmark::State& state) {
  RunReduction(state, LoopsInPlaceMachine(), /*expect_contained=*/true);
}
BENCHMARK(BM_LoopingMachineContained)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace datalog
