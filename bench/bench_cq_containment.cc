// Experiment E1 (substrate): conjunctive-query containment mapping search
// (Theorem 2.2). Chain-into-chain containments scale the NP-complete
// homomorphism search; the grid case forces backtracking.
#include <benchmark/benchmark.h>

#include "src/cq/containment.h"
#include "src/generators/examples.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// psi = chain of length k; theta = chain of length m >= k: containment
// mapping from psi to theta exists (collapse is allowed since inner
// variables are existential... it maps onto a prefix).
void BM_ChainIntoChain(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  ConjunctiveQuery theta = ChainQuery(2 * k);
  // Drop head to make inner variables flexible: use Boolean versions.
  ConjunctiveQuery psi_bool(std::vector<Term>{}, ChainQuery(k).body());
  ConjunctiveQuery theta_bool(std::vector<Term>{}, theta.body());
  for (auto _ : state) {
    auto mapping = FindContainmentMapping(psi_bool, theta_bool);
    DATALOG_CHECK(mapping.has_value());
    benchmark::DoNotOptimize(mapping);
  }
  state.counters["atoms"] = k;
}
BENCHMARK(BM_ChainIntoChain)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// A negative case: cycle of odd length into a long even cycle — no
// containment mapping; the search must exhaust.
void BM_OddCycleIntoEvenCycle(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));  // odd
  auto cycle = [](int length, const std::string& prefix) {
    std::vector<Atom> body;
    for (int i = 0; i < length; ++i) {
      body.push_back(
          Atom("e", {Term::Variable(StrCat(prefix, i)),
                     Term::Variable(StrCat(prefix, (i + 1) % length))}));
    }
    return ConjunctiveQuery({}, body);
  };
  ConjunctiveQuery psi = cycle(k, "A");
  ConjunctiveQuery theta = cycle(2 * k, "B");
  for (auto _ : state) {
    auto mapping = FindContainmentMapping(psi, theta);
    DATALOG_CHECK(!mapping.has_value());
    benchmark::DoNotOptimize(mapping);
  }
  state.counters["atoms"] = k;
}
BENCHMARK(BM_OddCycleIntoEvenCycle)->Arg(3)->Arg(5)->Arg(7)->Arg(9);

// UCQ containment (Theorem 2.3): unions of path queries.
void BM_UcqContainment(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  UnionOfCqs shorter = PathQueries(k);
  UnionOfCqs longer = PathQueries(2 * k);
  for (auto _ : state) {
    bool contained = IsUcqContained(shorter, longer);
    DATALOG_CHECK(contained);
    benchmark::DoNotOptimize(contained);
  }
  state.counters["disjuncts"] = k;
}
BENCHMARK(BM_UcqContainment)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace datalog
