#!/usr/bin/env bash
# Runs the evaluation-engine benchmark suite and records the results as
# JSON (BENCH_eval.json at the repo root by default), seeding the perf
# trajectory: future PRs compare their numbers against this file.
#
# Usage: bench/run_bench.sh [build_dir] [output.json]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
output="${2:-${repo_root}/BENCH_eval.json}"

if [[ ! -x "${build_dir}/bench_eval" ]]; then
  echo "bench_eval not found in ${build_dir}; configure and build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"${build_dir}/bench_eval" \
  --benchmark_format=json \
  --benchmark_out="${output}" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}"

echo "wrote ${output}"
