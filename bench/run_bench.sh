#!/usr/bin/env bash
# Runs the evaluation-engine + decider benchmark suite and records the
# results as JSON (BENCH_eval.json at the repo root by default), seeding
# the perf trajectory: future PRs compare their numbers against this file.
#
# The benchmark binary streams JSON into its output file as it runs, so a
# crash mid-suite would leave a truncated file behind. To make failures
# loud instead of silently corrupting the baseline, the run writes to a
# temp file and only replaces the real output on a clean exit.
#
# Usage: bench/run_bench.sh [build_dir] [output.json]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
output="${2:-${repo_root}/BENCH_eval.json}"

if [[ ! -x "${build_dir}/bench_eval" ]]; then
  echo "bench_eval not found in ${build_dir}; configure and build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

tmp_output="$(mktemp "${output}.XXXXXX.tmp")"
cleanup() {
  rm -f "${tmp_output}"
}
trap cleanup EXIT

if ! "${build_dir}/bench_eval" \
    --benchmark_format=json \
    --benchmark_out="${tmp_output}" \
    --benchmark_out_format=json \
    --benchmark_repetitions="${BENCH_REPETITIONS:-1}"; then
  echo "bench_eval failed; leaving ${output} untouched" >&2
  exit 1
fi

# A clean exit must still have produced complete, well-shaped JSON (the
# stream ends with the closing brace of the top-level object, and every
# entry carries the fields perf comparisons read). Validation needs a
# JSON parser; without python3 the check is skipped, not misreported.
if command -v python3 >/dev/null 2>&1; then
  names_file="$(mktemp)"
  "${build_dir}/bench_eval" --benchmark_list_tests > "${names_file}"
  if ! python3 "${repo_root}/bench/check_bench_schema.py" "${tmp_output}" \
      --expect-prefix BM_Decider --expect-prefix BM_TransitiveClosure \
      --expect-prefix BM_PtreesAutomaton --expect-prefix BM_TmReduction \
      --expect-prefix BM_StratifiedEval \
      --expect-prefix BM_DeciderGoalPruning \
      --expect-prefix BM_CostBasedJoinOrder \
      --expect-prefix BM_PlanCacheSteadyState \
      --names-file "${names_file}"; then
    rm -f "${names_file}"
    echo "bench_eval produced invalid JSON; leaving ${output} untouched" >&2
    exit 1
  fi
  rm -f "${names_file}"
else
  echo "python3 not found; skipping JSON validation of ${output}" >&2
fi

mv "${tmp_output}" "${output}"
trap - EXIT
echo "wrote ${output}"
