// Experiment E13 (paper §1 motivation): recursion elimination pays off at
// evaluation time. Evaluates Example 1.1's recursive buys1 against its
// equivalent nonrecursive rewriting on synthetic data, and measures
// semi-naive vs naive fixpoint evaluation on transitive closure.
//
// The *Scan variants ablate the indexed engine: they disable hash column
// indexes and runtime join ordering, reproducing the pre-index engine's
// scan-every-tuple joins in textual order. Comparing e.g.
// BM_TransitiveClosureSemiNaive/128 against
// BM_TransitiveClosureSemiNaiveScan/128 quantifies the index win;
// per-iteration join_probes are exported as benchmark counters.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>

#include "src/ast/parser.h"
#include "src/automata/nfa.h"
#include "src/containment/decider.h"
#include "src/containment/linear.h"
#include "src/containment/ptrees_automaton.h"
#include "src/engine/eval.h"
#include "src/engine/random_db.h"
#include "src/generators/examples.h"
#include "src/tm/tm_encoding.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

EvalOptions ScanOptions(bool semi_naive) {
  EvalOptions options;
  options.semi_naive = semi_naive;
  options.use_index = false;
  options.reorder_joins = false;
  return options;
}

EvalOptions IndexedOptions(bool semi_naive) {
  EvalOptions options;
  options.semi_naive = semi_naive;
  return options;
}

Database BuysDatabase(int people, int items) {
  Database db;
  for (int p = 0; p < people; ++p) {
    if (p % 3 == 0) db.AddFact("trendy", {StrCat("p", p)});
    for (int i = 0; i < items; ++i) {
      if ((p + i) % 7 == 0) {
        db.AddFact("likes", {StrCat("p", p), StrCat("i", i)});
      }
    }
  }
  return db;
}

void RunBuys(benchmark::State& state, const EvalOptions& options) {
  Program program = Buys1Program();
  Database db = BuysDatabase(static_cast<int>(state.range(0)), 40);
  EvalStats stats;
  for (auto _ : state) {
    StatusOr<Relation> result =
        EvaluateGoal(program, "buys", db, options, &stats);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["join_probes"] = benchmark::Counter(
      static_cast<double>(stats.join_probes) /
          static_cast<double>(state.iterations()),
      benchmark::Counter::kAvgThreads);
}

void BM_RecursiveBuys(benchmark::State& state) {
  RunBuys(state, IndexedOptions(/*semi_naive=*/true));
}
BENCHMARK(BM_RecursiveBuys)->Arg(30)->Arg(60)->Arg(120);

void BM_RecursiveBuysScan(benchmark::State& state) {
  RunBuys(state, ScanOptions(/*semi_naive=*/true));
}
BENCHMARK(BM_RecursiveBuysScan)->Arg(30)->Arg(60)->Arg(120);

void BM_NonrecursiveBuys(benchmark::State& state) {
  Program program = Buys1NonrecursiveProgram();
  Database db = BuysDatabase(static_cast<int>(state.range(0)), 40);
  for (auto _ : state) {
    StatusOr<Relation> result = EvaluateGoal(program, "buys", db);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NonrecursiveBuys)->Arg(30)->Arg(60)->Arg(120);

Database LineGraph(int length) {
  Database db;
  for (int i = 0; i < length; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  return db;
}

void RunTransitiveClosure(benchmark::State& state, const EvalOptions& options) {
  Program tc = TransitiveClosureProgram("e", "e");
  Database db = LineGraph(static_cast<int>(state.range(0)));
  EvalStats stats;
  for (auto _ : state) {
    StatusOr<Relation> result = EvaluateGoal(tc, "p", db, options, &stats);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["join_probes"] = benchmark::Counter(
      static_cast<double>(stats.join_probes) /
          static_cast<double>(state.iterations()),
      benchmark::Counter::kAvgThreads);
}

void BM_TransitiveClosureSemiNaive(benchmark::State& state) {
  RunTransitiveClosure(state, IndexedOptions(/*semi_naive=*/true));
}
BENCHMARK(BM_TransitiveClosureSemiNaive)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256);

void BM_TransitiveClosureSemiNaiveScan(benchmark::State& state) {
  RunTransitiveClosure(state, ScanOptions(/*semi_naive=*/true));
}
BENCHMARK(BM_TransitiveClosureSemiNaiveScan)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256);

void BM_TransitiveClosureNaive(benchmark::State& state) {
  RunTransitiveClosure(state, IndexedOptions(/*semi_naive=*/false));
}
BENCHMARK(BM_TransitiveClosureNaive)->Arg(32)->Arg(64)->Arg(128);

void BM_TransitiveClosureNaiveScan(benchmark::State& state) {
  RunTransitiveClosure(state, ScanOptions(/*semi_naive=*/false));
}
BENCHMARK(BM_TransitiveClosureNaiveScan)->Arg(32)->Arg(64)->Arg(128);

// Isolates the two legs of the indexed engine: indexes without join
// reordering, and reordering without indexes.
void BM_TransitiveClosureIndexNoReorder(benchmark::State& state) {
  EvalOptions options;
  options.reorder_joins = false;
  RunTransitiveClosure(state, options);
}
BENCHMARK(BM_TransitiveClosureIndexNoReorder)->Arg(32)->Arg(64)->Arg(128);

void BM_TransitiveClosureReorderNoIndex(benchmark::State& state) {
  EvalOptions options;
  options.use_index = false;
  RunTransitiveClosure(state, options);
}
BENCHMARK(BM_TransitiveClosureReorderNoIndex)->Arg(32)->Arg(64)->Arg(128);

// --- parallel evaluation: the thread sweep ----------------------------
//
// Arg(1) is EvalOptions::num_threads: 1 = the serial engine (the exact
// pre-parallel code path), 2/4 = staged parallel rounds over a worker
// pool with sharded merges (docs/engine.md, "Parallel evaluation").
// Single-core hosts still run the full staged machinery — the sweep
// then measures the staging/merge overhead rather than a speedup, and
// per-iteration rounds/staged counters are exported either way.

void RunTransitiveClosureThreads(benchmark::State& state, Program program,
                                 Database db) {
  EvalOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  EvalStats stats;
  for (auto _ : state) {
    StatusOr<Relation> result =
        EvaluateGoal(program, "p", db, options, &stats);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  const double iterations = static_cast<double>(state.iterations());
  state.counters["rounds_parallel"] = benchmark::Counter(
      static_cast<double>(stats.rounds_parallel) / iterations,
      benchmark::Counter::kAvgThreads);
  state.counters["tuples_staged"] = benchmark::Counter(
      static_cast<double>(stats.tuples_staged) / iterations,
      benchmark::Counter::kAvgThreads);
}

void BM_TransitiveClosureSemiNaiveThreads(benchmark::State& state) {
  RunTransitiveClosureThreads(
      state, TransitiveClosureProgram("e", "e"),
      LineGraph(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_TransitiveClosureSemiNaiveThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

void BM_TransitiveClosureRandomGraphThreads(benchmark::State& state) {
  Program tc = NonlinearTransitiveClosureProgram();
  RandomDbOptions db_options;
  db_options.domain_size = static_cast<int>(state.range(0));
  db_options.tuples_per_relation = static_cast<int>(state.range(0)) * 2;
  db_options.seed = 42;
  RunTransitiveClosureThreads(state, tc, RandomDatabaseFor(tc, db_options));
}
BENCHMARK(BM_TransitiveClosureRandomGraphThreads)
    ->Args({48, 1})
    ->Args({48, 2})
    ->Args({48, 4});

// --- hub-bucket delta seeks (the BucketArena chunk directory) ---------
//
// A "broom" graph — a chain feeding a hub that fans out to Arg(0)
// leaves — grows index buckets with hundreds of chunks, and textual
// join order (reordering off) makes every recursive-rule evaluation
// delta-probe those buckets: each probe seeks the watermark inside a
// fat bucket, the regression case for SkipBelow's chunk-id directory
// (log-time binary search vs the linear chunk-header walk).
void BM_TransitiveClosureHubDeltaSeek(benchmark::State& state) {
  constexpr int kChain = 64;
  Program tc = TransitiveClosureProgram("e", "e");
  Database db;
  for (int i = 0; i < kChain; ++i) {
    db.AddFact("e", {StrCat("c", i), StrCat("c", i + 1)});
  }
  for (int j = 0; j < static_cast<int>(state.range(0)); ++j) {
    db.AddFact("e", {StrCat("c", kChain), StrCat("m", j)});
  }
  EvalOptions options;
  options.reorder_joins = false;  // keep the delta atom in probe position
  EvalStats stats;
  for (auto _ : state) {
    StatusOr<Relation> result = EvaluateGoal(tc, "p", db, options, &stats);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["index_probes"] = benchmark::Counter(
      static_cast<double>(stats.index_probes) /
          static_cast<double>(state.iterations()),
      benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_TransitiveClosureHubDeltaSeek)->Arg(512)->Arg(2048);

// Dense random graphs stress the join planner harder than line graphs:
// bucket sizes are larger and the delta stays fat for several rounds.
void BM_TransitiveClosureRandomGraph(benchmark::State& state) {
  Program tc = NonlinearTransitiveClosureProgram();
  RandomDbOptions db_options;
  db_options.domain_size = static_cast<int>(state.range(0));
  db_options.tuples_per_relation = static_cast<int>(state.range(0)) * 2;
  db_options.seed = 42;
  Database db = RandomDatabaseFor(tc, db_options);
  EvalOptions options;
  options.use_index = state.range(1) != 0;
  options.reorder_joins = state.range(1) != 0;
  for (auto _ : state) {
    StatusOr<Relation> result = EvaluateGoal(tc, "p", db, options);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TransitiveClosureRandomGraph)
    ->Args({24, 1})
    ->Args({24, 0})
    ->Args({48, 1})
    ->Args({48, 0});

// --- cost-based join planning (src/engine/eval.cc planner) ------------
//
// A hub join where greedy most-bound-args ordering is a bad plan:
// reach(W) :- reach(X), hub(X, Y), mid(Y, Z), sel(Z, W) with hub
// fan-out Arg(0) per chain node, a sparse mid (in-degree 16 per Z
// value), and |sel| tiny. Greedy walks the rule forward from the delta:
// the fat hub bucket (fan-out candidates) times mid's per-Y out-degree,
// each combination spawning a sel probe — fan_out * (1 + 2 * 16) probes
// per delta row. The cost model starts from the cheap end instead: scan
// sel, probe mid with Z bound (in-degree-sized buckets), and finish on
// hub with both columns bound — chain-sized work per delta row plus a
// one-time two-column hub index. Arg(1) toggles
// EvalOptions::cost_based; the differential suites pin both arms to the
// identical fixpoint, so the time ratio plus join_probes isolate the
// ordering.
void BM_CostBasedJoinOrder(benchmark::State& state) {
  constexpr int kChain = 24;
  constexpr int kMidInDegree = 16;
  StatusOr<Program> parsed = ParseProgram(R"(
    reach(X) :- start(X).
    reach(W) :- reach(X), hub(X, Y), mid(Y, Z), sel(Z, W).
  )");
  DATALOG_CHECK(parsed.ok());
  Program& prog = *parsed;
  const int fan_out = static_cast<int>(state.range(0));
  Database db;
  db.AddFact("start", {"a0"});
  for (int i = 0; i <= kChain; ++i) {
    for (int j = 0; j < fan_out; ++j) {
      db.AddFact("hub", {StrCat("a", i), StrCat("b", j)});
    }
  }
  for (int l = 0; l < fan_out; ++l) {
    for (int j = 0; j < kMidInDegree; ++j) {
      db.AddFact("mid",
                 {StrCat("b", (l * 7 + j * 11) % fan_out), StrCat("c", l)});
    }
  }
  for (int i = 0; i < kChain; ++i) {
    db.AddFact("sel", {StrCat("c", i), StrCat("a", i + 1)});
  }
  EvalOptions options;
  options.cost_based = state.range(1) != 0;
  EvalStats stats;
  for (auto _ : state) {
    StatusOr<Relation> result =
        EvaluateGoal(prog, "reach", db, options, &stats);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  const double iterations = static_cast<double>(state.iterations());
  state.counters["join_probes"] = benchmark::Counter(
      static_cast<double>(stats.join_probes) / iterations,
      benchmark::Counter::kAvgThreads);
  state.counters["plans_rebuilt"] = benchmark::Counter(
      static_cast<double>(stats.plans_rebuilt) / iterations,
      benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_CostBasedJoinOrder)
    ->Args({192, 1})
    ->Args({192, 0})
    ->Args({256, 1})
    ->Args({256, 0});

// Plan-cache steady state: deep chain transitive closure under staged
// parallel rounds (the database is frozen per round, so rounds track
// the chain length and relation growth settles after the early rounds).
// Once sizes settle, the 2x watermark rule stops rebuilding: plans_cached
// grows with the rounds while plans_rebuilt stays flat — the exported
// counters make the steady state visible in the recorded JSON. Arg(0)
// is the chain length.
void BM_PlanCacheSteadyState(benchmark::State& state) {
  Program tc = TransitiveClosureProgram("e", "e");
  Database db = LineGraph(static_cast<int>(state.range(0)));
  EvalOptions options;  // cost_based defaults on
  options.num_threads = 2;
  EvalStats stats;
  for (auto _ : state) {
    StatusOr<Relation> result = EvaluateGoal(tc, "p", db, options, &stats);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  const double iterations = static_cast<double>(state.iterations());
  state.counters["plans_cached"] = benchmark::Counter(
      static_cast<double>(stats.plans_cached) / iterations,
      benchmark::Counter::kAvgThreads);
  state.counters["plans_rebuilt"] = benchmark::Counter(
      static_cast<double>(stats.plans_rebuilt) / iterations,
      benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_PlanCacheSteadyState)->Arg(96)->Arg(192);

// --- containment decider memoization baseline -------------------------
//
// The decider's perf anchor, mirroring the *Scan ablations above: a deep
// recursion × multi-disjunct Θ workload where the fixpoint runs many
// rounds and the combination memo is hammered. Arg(0) is the number of
// path disjuncts in Θ (a universal disjunct is added so the instance is
// contained and the fixpoint runs to completion); Arg(1) selects the
// memoization substrate — 2 = the shared interned IR (TermId pinned
// images, integer combine/accept steps, renamed-set memo), 1 = interned
// dense ids with Term-based achieved sets (flat integer memo rows,
// vector goal store, cached canonical instances), 0 = the string-keyed
// baseline both replaced (instance.ToString() memo keys, string-keyed
// goal store, instances re-materialized every round).
ContainmentOptions DeciderSubstrateOptions(std::int64_t substrate) {
  ContainmentOptions options;
  options.track_witness = false;
  options.use_ir = substrate == 2;
  options.intern_memo = substrate >= 1;
  return options;
}

void BM_DeciderNonlinearDeepRecursion(benchmark::State& state) {
  Program nl = NonlinearTransitiveClosureProgram();
  UnionOfCqs theta = PathQueries(static_cast<int>(state.range(0)));
  theta.Add(ConjunctiveQuery(
      {Term::Variable("X"), Term::Variable("Y")}, {}));  // universal CQ
  ContainmentOptions options = DeciderSubstrateOptions(state.range(1));
  ContainmentStats stats;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision =
        DecideDatalogInUcq(nl, "p", theta, options);
    DATALOG_CHECK(decision.ok());
    DATALOG_CHECK(decision->contained);
    stats = decision->stats;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["states"] = static_cast<double>(stats.states_discovered);
  state.counters["memo_hits"] = static_cast<double>(stats.memo_hits);
  state.counters["sig_rejects"] =
      static_cast<double>(stats.subset_sig_rejects);
  state.counters["rename_hits"] =
      static_cast<double>(stats.rename_memo_hits);
}
BENCHMARK(BM_DeciderNonlinearDeepRecursion)
    ->Args({2, 2})
    ->Args({2, 1})
    ->Args({2, 0})
    ->Args({3, 2})
    ->Args({3, 1})
    ->Args({3, 0});

// Linear variant with a wider recursive rule: the canonical-instance
// space is larger (more rule variables), so the cross-round instance
// cache carries more of the win.
void BM_DeciderDeepChainMultiDisjunct(benchmark::State& state) {
  Program chain = ChainProgram(2);
  UnionOfCqs theta = PathQueries(static_cast<int>(state.range(0)));
  theta.Add(ConjunctiveQuery(
      {Term::Variable("X"), Term::Variable("Y")}, {}));  // universal CQ
  ContainmentOptions options = DeciderSubstrateOptions(state.range(1));
  ContainmentStats stats;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision =
        DecideDatalogInUcq(chain, "p", theta, options);
    DATALOG_CHECK(decision.ok());
    DATALOG_CHECK(decision->contained);
    stats = decision->stats;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["states"] = static_cast<double>(stats.states_discovered);
  state.counters["memo_hits"] = static_cast<double>(stats.memo_hits);
  state.counters["sig_rejects"] =
      static_cast<double>(stats.subset_sig_rejects);
  state.counters["rename_hits"] =
      static_cast<double>(stats.rename_memo_hits);
}
BENCHMARK(BM_DeciderDeepChainMultiDisjunct)
    ->Args({3, 2})
    ->Args({3, 1})
    ->Args({3, 0})
    ->Args({4, 2})
    ->Args({4, 1})
    ->Args({4, 0});

// Non-contained variant: transitive closure against bounded path unions,
// where the decider must discover the escaping proof tree. Checker reuse
// across Decide calls (boundedness-style drivers) is part of what the
// interned substrate buys, so each iteration decides the same Θ through
// one reused checker three times.
void BM_DeciderTcPathsCheckerReuse(benchmark::State& state) {
  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs paths = PathQueries(static_cast<int>(state.range(0)));
  ContainmentOptions options = DeciderSubstrateOptions(state.range(1));
  ContainmentStats stats;
  for (auto _ : state) {
    ContainmentChecker checker(tc, "p");
    for (int repeat = 0; repeat < 3; ++repeat) {
      StatusOr<ContainmentDecision> decision =
          checker.Decide(paths, options);
      DATALOG_CHECK(decision.ok());
      DATALOG_CHECK(!decision->contained);
      stats = decision->stats;
      benchmark::DoNotOptimize(decision);
    }
  }
  state.counters["states"] = static_cast<double>(stats.states_discovered);
  state.counters["memo_hits"] = static_cast<double>(stats.memo_hits);
  state.counters["rename_hits"] =
      static_cast<double>(stats.rename_memo_hits);
}
BENCHMARK(BM_DeciderTcPathsCheckerReuse)
    ->Args({5, 2})
    ->Args({5, 1})
    ->Args({5, 0})
    ->Args({7, 2})
    ->Args({7, 1})
    ->Args({7, 0});

// --- word-parallel bitset substrate (PR 6) -----------------------------
//
// The decider's achieved sets and the automata containment frontiers now
// run on Bitset/AntichainStore kernels; Arg(1) selects the substrate —
// 1 = bitsets (default), 0 = the Bloom-signature + sorted-vector path
// they replaced (the ablation arm).

// Deep nonlinear recursion drives many achieved sets per goal, so the
// antichain's subset testing dominates; the word-parallel kernels and
// the popcount-bucket/fold-signature candidate filter carry the win.
// Arg(0) is the PathQueries depth; {4, *} is the wide-achieved-set
// stress case (hundreds of interned pairs per set).
void BM_DeciderAchievedAntichain(benchmark::State& state) {
  Program nl = NonlinearTransitiveClosureProgram();
  UnionOfCqs theta = PathQueries(static_cast<int>(state.range(0)));
  theta.Add(ConjunctiveQuery(
      {Term::Variable("X"), Term::Variable("Y")}, {}));  // universal CQ
  ContainmentOptions options;
  options.track_witness = false;
  options.use_bitsets = state.range(1) != 0;
  ContainmentStats stats;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision =
        DecideDatalogInUcq(nl, "p", theta, options);
    DATALOG_CHECK(decision.ok());
    DATALOG_CHECK(decision->contained);
    stats = decision->stats;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["states"] = static_cast<double>(stats.states_discovered);
  state.counters["subset_checks"] =
      static_cast<double>(stats.subset_checks);
  state.counters["prunes"] = static_cast<double>(stats.antichain_prunes);
  state.counters["word_ops"] = static_cast<double>(stats.subset_word_ops);
}
BENCHMARK(BM_DeciderAchievedAntichain)
    ->Args({2, 1})
    ->Args({2, 0})
    ->Args({3, 1})
    ->Args({3, 0})
    ->Args({4, 1})
    ->Args({4, 0});

// Self-containment of a dense random NFA: subset frontiers span a large
// fraction of the state space, so successor-set construction (unions)
// and the per-dequeue visited-store subset tests dominate — the
// workload the word-parallel kernels target. Both arms explore the
// identical (state, subset) sequence (the differential suite pins
// this), so the time ratio isolates the representation. Arg(0) = number
// of states; Arg(2) = antichain pruning (0 = exact-store ablation arm).
void BM_NfaContainmentBitset(benchmark::State& state) {
  const int states = static_cast<int>(state.range(0));
  std::mt19937_64 rng(7);
  Nfa nfa(states, 2);
  nfa.SetInitial(0);
  for (int s = 0; s < states; ++s) {
    if (s % 5 == 0) nfa.SetAccepting(s);
    for (int symbol = 0; symbol < 2; ++symbol) {
      for (int d = 0; d < 3; ++d) {
        nfa.AddTransition(s, symbol, static_cast<int>(rng() % states));
      }
    }
  }
  Nfa::ContainmentOptions options;
  options.use_bitsets = state.range(1) != 0;
  options.antichain = state.range(2) != 0;
  std::size_t explored = 0;
  for (auto _ : state) {
    StatusOr<Nfa::ContainmentResult> result =
        Nfa::Contains(nfa, nfa, options);
    DATALOG_CHECK(result.ok());
    DATALOG_CHECK(result->contained);
    explored = result->explored;
    benchmark::DoNotOptimize(result);
  }
  state.counters["explored"] = static_cast<double>(explored);
}
BENCHMARK(BM_NfaContainmentBitset)
    ->Args({64, 1, 1})
    ->Args({64, 0, 1})
    ->Args({128, 1, 1})
    ->Args({128, 0, 1})
    ->Args({64, 1, 0})
    ->Args({64, 0, 0})
    ->Unit(benchmark::kMicrosecond);

// --- explicit automata constructions (PR 4 ports) ----------------------
//
// The ptrees automaton and the linear word-automaton decider now stamp
// their labels and states from rule-template int rows through a
// VarKeyTable; Arg(0) selects the substrate — 1 = interned rows
// (default), 0 = the rendered-string identity they replaced.

void BM_PtreesAutomaton(benchmark::State& state) {
  // ChainProgram(2): 8 proof variables over a 4-variable recursive rule
  // (8^4 instances) plus the base rule — a mid-size alphabet.
  Program program = ChainProgram(2);
  const bool use_ir = state.range(0) != 0;
  std::size_t labels = 0;
  std::size_t states = 0;
  for (auto _ : state) {
    StatusOr<PtreesAutomaton> automaton =
        BuildPtreesAutomaton(program, "p", ExecutionLimits().WithMaxLabels(50'000'000), use_ir);
    DATALOG_CHECK(automaton.ok());
    labels = automaton->alphabet.num_labels();
    states = automaton->nfta.num_states();
    benchmark::DoNotOptimize(automaton);
  }
  state.counters["alphabet"] = static_cast<double>(labels);
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_PtreesAutomaton)->Arg(1)->Arg(0);

void BM_LinearWordAutomaton(benchmark::State& state) {
  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs paths = PathQueries(3);
  LinearContainmentOptions options;
  options.use_ir = state.range(0) != 0;
  std::size_t theta_states = 0;
  for (auto _ : state) {
    StatusOr<LinearContainmentResult> result =
        DecideLinearDatalogInUcq(tc, "p", paths, options);
    DATALOG_CHECK(result.ok());
    DATALOG_CHECK(!result->contained);
    theta_states = result->theta_states;
    benchmark::DoNotOptimize(result);
  }
  state.counters["theta_states"] = static_cast<double>(theta_states);
}
BENCHMARK(BM_LinearWordAutomaton)->Arg(1)->Arg(0);

// --- the §5.3 TM-reduction workload ------------------------------------
//
// A heavyweight end-to-end decider instance (the lower-bound reduction on
// a micro machine); Arg(0) is the memoization substrate as in the
// BM_Decider* cases above. Tracks how the decider-wide ports (carried IR,
// interned combination steps) move the hardest workload in the suite.

void BM_TmReduction(benchmark::State& state) {
  StatusOr<TmEncoding> encoding =
      EncodeLinearTmContainment(ImmediatelyAcceptingMachine(), 1);
  DATALOG_CHECK(encoding.ok());
  ContainmentOptions options = DeciderSubstrateOptions(state.range(0));
  options.limits.max_states = 5'000'000;
  std::size_t states = 0;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision = DecideDatalogInUcq(
        encoding->program, encoding->goal, encoding->queries, options);
    DATALOG_CHECK(decision.ok()) << decision.status();
    DATALOG_CHECK(!decision->contained);
    states = decision->stats.states_discovered;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["decider_states"] = static_cast<double>(states);
}
BENCHMARK(BM_TmReduction)->Arg(2)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// --- SCC-stratified evaluation (src/analysis/stratify.h) ---------------
//
// DistProgram(Arg(0)) is a tower of strata (dist0 .. distN, each its own
// SCC); a flat fixpoint re-evaluates every layer's rules in every round,
// while strata-ordered evaluation saturates each layer once. Arg(1)
// toggles EvalOptions::use_strata; the differential tests
// (tests/prune_strata_test.cc) pin that both arms compute the same
// fixpoint, this case tracks the work gap (join_probes, rounds_saved).

void BM_StratifiedEval(benchmark::State& state) {
  Program dist = DistProgram(static_cast<int>(state.range(0)));
  RandomDbOptions db_options;
  db_options.domain_size = 24;
  db_options.tuples_per_relation = 48;
  db_options.seed = 7;
  Database edb = RandomDatabaseFor(dist, db_options);
  EvalOptions options;
  options.use_strata = state.range(1) != 0;
  EvalStats stats;
  for (auto _ : state) {
    EvalStats round_stats;
    StatusOr<Database> result =
        EvaluateProgram(dist, edb, options, &round_stats);
    DATALOG_CHECK(result.ok()) << result.status();
    stats = round_stats;
    benchmark::DoNotOptimize(result);
  }
  state.counters["strata"] = static_cast<double>(stats.strata);
  state.counters["rounds_saved"] = static_cast<double>(stats.rounds_saved);
  state.counters["join_probes"] = static_cast<double>(stats.join_probes);
}
BENCHMARK(BM_StratifiedEval)
    ->Args({3, 1})
    ->Args({3, 0})
    ->Args({4, 1})
    ->Args({4, 0});

// --- goal-directed rule pruning in the decider -------------------------
//
// Transitive closure carrying Arg(0) unreachable junk rules (a recursive
// island per index); Arg(1) toggles
// ContainmentOptions::prune_unreachable. With pruning the decider's
// rounds skip the junk rules outright; without it every round re-fires
// them. Verdict and witness are pinned identical by
// tests/prune_strata_test.cc; rules_pruned is exported to keep the
// workload honest.

void BM_DeciderGoalPruning(benchmark::State& state) {
  Program program = TransitiveClosureProgram("e", "e");
  const int junk_rules = static_cast<int>(state.range(0));
  for (int i = 0; i < junk_rules; ++i) {
    std::string junk = StrCat("junk", i);
    program.AddRule(Rule(
        Atom(junk, {Term::Variable("X")}),
        {Atom("e", {Term::Variable("X"), Term::Variable("Y")}),
         Atom(junk, {Term::Variable("Y")})}));
  }
  UnionOfCqs theta = PathQueries(3);
  ContainmentOptions options;
  options.prune_unreachable = state.range(1) != 0;
  ContainmentStats stats;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision =
        DecideDatalogInUcq(program, "p", theta, options);
    DATALOG_CHECK(decision.ok()) << decision.status();
    DATALOG_CHECK(!decision->contained);
    stats = decision->stats;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["rules_pruned"] = static_cast<double>(stats.rules_pruned);
  state.counters["states"] = static_cast<double>(stats.states_discovered);
  state.counters["combine_calls"] =
      static_cast<double>(stats.combine_calls);
}
BENCHMARK(BM_DeciderGoalPruning)
    ->Args({6, 1})
    ->Args({6, 0})
    ->Args({12, 1})
    ->Args({12, 0});

}  // namespace
}  // namespace datalog
