// Experiment E13 (paper §1 motivation): recursion elimination pays off at
// evaluation time. Evaluates Example 1.1's recursive buys1 against its
// equivalent nonrecursive rewriting on synthetic data, and measures
// semi-naive vs naive fixpoint evaluation on transitive closure.
#include <benchmark/benchmark.h>

#include "src/engine/eval.h"
#include "src/engine/random_db.h"
#include "src/generators/examples.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

Database BuysDatabase(int people, int items) {
  Database db;
  for (int p = 0; p < people; ++p) {
    if (p % 3 == 0) db.AddFact("trendy", {StrCat("p", p)});
    for (int i = 0; i < items; ++i) {
      if ((p + i) % 7 == 0) {
        db.AddFact("likes", {StrCat("p", p), StrCat("i", i)});
      }
    }
  }
  return db;
}

void BM_RecursiveBuys(benchmark::State& state) {
  Program program = Buys1Program();
  Database db = BuysDatabase(static_cast<int>(state.range(0)), 40);
  for (auto _ : state) {
    StatusOr<Relation> result = EvaluateGoal(program, "buys", db);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RecursiveBuys)->Arg(30)->Arg(60)->Arg(120);

void BM_NonrecursiveBuys(benchmark::State& state) {
  Program program = Buys1NonrecursiveProgram();
  Database db = BuysDatabase(static_cast<int>(state.range(0)), 40);
  for (auto _ : state) {
    StatusOr<Relation> result = EvaluateGoal(program, "buys", db);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NonrecursiveBuys)->Arg(30)->Arg(60)->Arg(120);

Database LineGraph(int length) {
  Database db;
  for (int i = 0; i < length; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  return db;
}

void BM_TransitiveClosureSemiNaive(benchmark::State& state) {
  Program tc = TransitiveClosureProgram("e", "e");
  Database db = LineGraph(static_cast<int>(state.range(0)));
  EvalOptions options;
  options.semi_naive = true;
  for (auto _ : state) {
    StatusOr<Relation> result = EvaluateGoal(tc, "p", db, options);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TransitiveClosureSemiNaive)->Arg(32)->Arg(64)->Arg(128);

void BM_TransitiveClosureNaive(benchmark::State& state) {
  Program tc = TransitiveClosureProgram("e", "e");
  Database db = LineGraph(static_cast<int>(state.range(0)));
  EvalOptions options;
  options.semi_naive = false;
  for (auto _ : state) {
    StatusOr<Relation> result = EvaluateGoal(tc, "p", db, options);
    DATALOG_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TransitiveClosureNaive)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace datalog
