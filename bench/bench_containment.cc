// Experiment E6 (Theorem 5.12): the on-the-fly containment decider's cost
// as the program and query sizes grow, and the word-automaton track for
// linear programs compared with the general tree track on the same
// instances.
#include <benchmark/benchmark.h>

#include "src/containment/decider.h"
#include "src/containment/linear.h"
#include "src/generators/examples.h"
#include "src/util/logging.h"

namespace datalog {
namespace {

void BM_DeciderTcVsPathUnionSize(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs paths = PathQueries(k);
  ContainmentOptions options;
  options.track_witness = false;
  std::size_t states = 0;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision =
        DecideDatalogInUcq(tc, "p", paths, options);
    DATALOG_CHECK(decision.ok());
    DATALOG_CHECK(!decision->contained);
    states = decision->stats.states_discovered;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_DeciderTcVsPathUnionSize)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_DeciderVsRuleWidth(benchmark::State& state) {
  // Wider chain rules blow up the canonical-instance space.
  int step = static_cast<int>(state.range(0));
  Program chain = ChainProgram(step);
  UnionOfCqs top;
  top.Add(ConjunctiveQuery({Term::Variable("X"), Term::Variable("Y")}, {}));
  ContainmentOptions options;
  options.track_witness = false;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision =
        DecideDatalogInUcq(chain, "p", top, options);
    DATALOG_CHECK(decision.ok());
    DATALOG_CHECK(decision->contained);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_DeciderVsRuleWidth)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_DeciderNonlinearProgram(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Program nl = NonlinearTransitiveClosureProgram();
  UnionOfCqs paths = PathQueries(k);
  ContainmentOptions options;
  options.track_witness = false;
  for (auto _ : state) {
    StatusOr<ContainmentDecision> decision =
        DecideDatalogInUcq(nl, "p", paths, options);
    DATALOG_CHECK(decision.ok());
    DATALOG_CHECK(!decision->contained);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_DeciderNonlinearProgram)->Arg(1)->Arg(2)->Arg(3);

void BM_LinearWordTrack(benchmark::State& state) {
  // Same instance as BM_DeciderTcVsPathUnionSize, via word automata.
  int k = static_cast<int>(state.range(0));
  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs paths = PathQueries(k);
  std::size_t explored = 0;
  for (auto _ : state) {
    StatusOr<LinearContainmentResult> result =
        DecideLinearDatalogInUcq(tc, "p", paths);
    DATALOG_CHECK(result.ok());
    DATALOG_CHECK(!result->contained);
    explored = result->pairs_explored;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs_explored"] = static_cast<double>(explored);
}
BENCHMARK(BM_LinearWordTrack)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

}  // namespace
}  // namespace datalog
