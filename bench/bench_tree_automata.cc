// Experiment E12 (Propositions 4.5/4.6): tree-automaton emptiness is
// polynomial; containment is exponential in the worst case (subset
// construction), mitigated by antichain pruning.
#include <benchmark/benchmark.h>

#include <random>

#include "src/automata/nfta.h"
#include "src/util/logging.h"

namespace datalog {
namespace {

// Alphabet: two leaves and one binary symbol.
const std::vector<int> kArity = {0, 0, 2};

Nfta RandomNfta(std::mt19937_64& rng, int states, double density) {
  Nfta nfta(states, kArity);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> pick(0, states - 1);
  for (int s = 0; s < states; ++s) {
    if (coin(rng) < 0.25) nfta.SetFinal(s);
    if (coin(rng) < 0.6) nfta.AddTransition(0, {}, s);
    if (coin(rng) < 0.3) nfta.AddTransition(1, {}, s);
  }
  int binary = std::max(1, static_cast<int>(density * states * states));
  for (int i = 0; i < binary; ++i) {
    nfta.AddTransition(2, {pick(rng), pick(rng)}, pick(rng));
  }
  return nfta;
}

void BM_NftaEmptiness(benchmark::State& state) {
  std::mt19937_64 rng(1);
  Nfta nfta = RandomNfta(rng, static_cast<int>(state.range(0)), 0.05);
  for (auto _ : state) {
    bool empty = nfta.IsEmpty();
    benchmark::DoNotOptimize(empty);
  }
  state.counters["transitions"] = static_cast<double>(nfta.NumTransitions());
}
BENCHMARK(BM_NftaEmptiness)->Arg(32)->Arg(128)->Arg(512);

void RunContainment(benchmark::State& state, bool antichain) {
  std::mt19937_64 rng(5);
  int n = static_cast<int>(state.range(0));
  Nfta a = RandomNfta(rng, n, 0.4);
  Nfta b = RandomNfta(rng, n, 0.4);
  Nfta::ContainmentOptions options;
  options.antichain = antichain;
  std::size_t explored = 0;
  for (auto _ : state) {
    auto result = Nfta::Contains(a, b, options);
    DATALOG_CHECK(result.ok());
    explored = result->explored;
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs_explored"] = static_cast<double>(explored);
}

void BM_NftaContainmentAntichain(benchmark::State& state) {
  RunContainment(state, true);
}
BENCHMARK(BM_NftaContainmentAntichain)->Arg(4)->Arg(6)->Arg(8);

void BM_NftaContainmentExact(benchmark::State& state) {
  RunContainment(state, false);
}
BENCHMARK(BM_NftaContainmentExact)->Arg(4)->Arg(6)->Arg(8);

void BM_NftaDeterminize(benchmark::State& state) {
  std::mt19937_64 rng(9);
  int n = static_cast<int>(state.range(0));
  Nfta nfta = RandomNfta(rng, n, 0.3);
  std::size_t det_states = 0;
  for (auto _ : state) {
    StatusOr<Nfta> det = nfta.Determinize();
    DATALOG_CHECK(det.ok());
    det_states = det->num_states();
    benchmark::DoNotOptimize(det);
  }
  state.counters["det_states"] = static_cast<double>(det_states);
}
BENCHMARK(BM_NftaDeterminize)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace datalog
