#include "src/automata/nfa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/util/bitset.h"
#include "src/util/hash.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// Sorted-vector subset representation, kept for the use_bitsets=false
// ablation arm of Contains (the word-parallel paths run on Bitset).
using StateSet = std::vector<int>;

StateSet SortedUnique(StateSet set) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

bool IsSubsetOf(const StateSet& a, const StateSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

Nfa::Nfa(std::size_t num_states, std::size_t num_symbols)
    : num_states_(num_states),
      num_symbols_(num_symbols),
      initial_(num_states, false),
      accepting_(num_states, false),
      delta_(num_states, std::vector<std::vector<int>>(num_symbols)) {}

int Nfa::AddState() {
  initial_.push_back(false);
  accepting_.push_back(false);
  delta_.emplace_back(num_symbols_);
  return static_cast<int>(num_states_++);
}

void Nfa::AddTransition(int from, int symbol, int to) {
  DATALOG_CHECK_LT(static_cast<std::size_t>(from), num_states_);
  DATALOG_CHECK_LT(static_cast<std::size_t>(to), num_states_);
  DATALOG_CHECK_LT(static_cast<std::size_t>(symbol), num_symbols_);
  delta_[from][symbol].push_back(to);
}

void Nfa::SetInitial(int state, bool initial) { initial_[state] = initial; }
void Nfa::SetAccepting(int state, bool accepting) {
  accepting_[state] = accepting;
}

std::size_t Nfa::NumTransitions() const {
  std::size_t total = 0;
  for (const auto& per_state : delta_) {
    for (const auto& successors : per_state) total += successors.size();
  }
  return total;
}

bool Nfa::Accepts(const std::vector<int>& word) const {
  // Word-parallel frontier: one Bitset over the state universe, advanced
  // symbol by symbol.
  Bitset current(num_states_);
  Bitset accepting(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (initial_[s]) current.Set(s);
    if (accepting_[s]) accepting.Set(s);
  }
  Bitset next(num_states_);
  for (int symbol : word) {
    next.Clear();
    current.ForEachSetBit([&](std::size_t s) {
      for (int t : delta_[s][symbol]) next.Set(static_cast<std::size_t>(t));
    });
    std::swap(current, next);
    if (current.None()) return false;
  }
  return current.Intersects(accepting);
}

bool Nfa::IsEmpty() const { return !ShortestWord().has_value(); }

std::optional<std::vector<int>> Nfa::ShortestWord() const {
  // BFS from initial states; remember the (symbol, predecessor) that first
  // reached each state.
  std::vector<int> pred_state(num_states_, -1);
  std::vector<int> pred_symbol(num_states_, -1);
  std::vector<bool> seen(num_states_, false);
  std::deque<int> queue;
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (initial_[s]) {
      seen[s] = true;
      queue.push_back(static_cast<int>(s));
    }
  }
  int goal = -1;
  while (!queue.empty() && goal == -1) {
    int s = queue.front();
    queue.pop_front();
    if (accepting_[s]) {
      goal = s;
      break;
    }
    for (std::size_t a = 0; a < num_symbols_; ++a) {
      for (int t : delta_[s][a]) {
        if (!seen[t]) {
          seen[t] = true;
          pred_state[t] = s;
          pred_symbol[t] = static_cast<int>(a);
          queue.push_back(t);
        }
      }
    }
  }
  if (goal == -1) return std::nullopt;
  std::vector<int> word;
  for (int s = goal; pred_state[s] != -1; s = pred_state[s]) {
    word.push_back(pred_symbol[s]);
  }
  std::reverse(word.begin(), word.end());
  return word;
}

Nfa Nfa::Union(const Nfa& a, const Nfa& b) {
  DATALOG_CHECK_EQ(a.num_symbols_, b.num_symbols_);
  Nfa result(a.num_states_ + b.num_states_, a.num_symbols_);
  auto copy = [&result](const Nfa& source, std::size_t offset) {
    for (std::size_t s = 0; s < source.num_states_; ++s) {
      result.initial_[offset + s] = source.initial_[s];
      result.accepting_[offset + s] = source.accepting_[s];
      for (std::size_t sym = 0; sym < source.num_symbols_; ++sym) {
        for (int t : source.delta_[s][sym]) {
          result.delta_[offset + s][sym].push_back(static_cast<int>(offset) +
                                                   t);
        }
      }
    }
  };
  copy(a, 0);
  copy(b, a.num_states_);
  return result;
}

Nfa Nfa::Intersection(const Nfa& a, const Nfa& b) {
  DATALOG_CHECK_EQ(a.num_symbols_, b.num_symbols_);
  // Product over reachable pairs only.
  std::map<std::pair<int, int>, int> ids;
  std::deque<std::pair<int, int>> queue;
  Nfa result(0, a.num_symbols_);
  auto intern = [&](int sa, int sb) {
    auto [it, inserted] = ids.emplace(std::make_pair(sa, sb), -1);
    if (inserted) {
      it->second = result.AddState();
      result.accepting_[it->second] = a.accepting_[sa] && b.accepting_[sb];
      queue.emplace_back(sa, sb);
    }
    return it->second;
  };
  for (std::size_t sa = 0; sa < a.num_states_; ++sa) {
    if (!a.initial_[sa]) continue;
    for (std::size_t sb = 0; sb < b.num_states_; ++sb) {
      if (!b.initial_[sb]) continue;
      int id = intern(static_cast<int>(sa), static_cast<int>(sb));
      result.initial_[id] = true;
    }
  }
  while (!queue.empty()) {
    auto [sa, sb] = queue.front();
    queue.pop_front();
    int from = ids.at({sa, sb});
    for (std::size_t sym = 0; sym < a.num_symbols_; ++sym) {
      for (int ta : a.delta_[sa][sym]) {
        for (int tb : b.delta_[sb][sym]) {
          int to = intern(ta, tb);
          result.delta_[from][sym].push_back(to);
        }
      }
    }
  }
  return result;
}

StatusOr<Nfa> Nfa::Determinize(std::size_t max_states) const {
  // Subsets are Bitsets interned by hash; ids are assigned at first
  // encounter in BFS order, so state numbering matches the discovery
  // order regardless of the interning container.
  std::unordered_map<Bitset, int, BitsetHash> ids;
  std::deque<Bitset> queue;
  Nfa result(0, num_symbols_);
  Bitset accepting(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (accepting_[s]) accepting.Set(s);
  }
  auto intern = [&](Bitset set) -> int {
    auto [it, inserted] = ids.emplace(std::move(set), -1);
    if (inserted) {
      it->second = result.AddState();
      result.accepting_[it->second] = it->first.Intersects(accepting);
      queue.push_back(it->first);
    }
    return it->second;
  };
  Bitset start(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (initial_[s]) start.Set(s);
  }
  int start_id = intern(std::move(start));
  result.initial_[start_id] = true;
  while (!queue.empty()) {
    if (ids.size() > max_states) {
      return Status(ResourceExhaustedError(
          StrCat("determinization exceeded ", max_states, " states")));
    }
    Bitset current = std::move(queue.front());
    queue.pop_front();
    int from = ids.at(current);
    for (std::size_t sym = 0; sym < num_symbols_; ++sym) {
      Bitset next(num_states_);
      current.ForEachSetBit([&](std::size_t s) {
        for (int t : delta_[s][sym]) next.Set(static_cast<std::size_t>(t));
      });
      int to = intern(std::move(next));
      result.delta_[from][sym].push_back(to);
    }
  }
  return result;
}

StatusOr<Nfa> Nfa::Complement(std::size_t max_states) const {
  StatusOr<Nfa> determinized = Determinize(max_states);
  if (!determinized.ok()) return determinized.status();
  Nfa result = std::move(determinized).value();
  for (std::size_t s = 0; s < result.num_states_; ++s) {
    result.accepting_[s] = !result.accepting_[s];
  }
  return result;
}

namespace {

// Word-parallel arm of Contains: subsets of b's states are Bitsets and
// each a-state's visited family lives in an AntichainStore (kKeepMinimal
// under antichain pruning, kExact otherwise). Domination verdicts match
// the sorted-vector arm below exactly — legacy "already covered" is
// "some visited subset of the candidate exists" (antichain) or equality
// (plain), which is precisely Dominated()/Insert()-returning-false — so
// verdicts, counterexamples, and explored counts are byte-identical.
StatusOr<Nfa::ContainmentResult> ContainsBitset(
    const Nfa& a, const Nfa& b, const Nfa::ContainmentOptions& options) {
  Nfa::ContainmentResult result;
  Governor governor(options.limits, "NFA containment");
  const std::size_t max_explored = options.limits.ExploredOr(10'000'000);
  struct Item {
    int state;
    Bitset set;
    std::vector<int> word;
  };
  std::vector<AntichainStore> visited(
      a.num_states(), AntichainStore(options.antichain
                                         ? AntichainStore::Mode::kKeepMinimal
                                         : AntichainStore::Mode::kExact));
  Bitset b_accepting(b.num_states());
  for (std::size_t s = 0; s < b.num_states(); ++s) {
    if (b.IsAccepting(static_cast<int>(s))) b_accepting.Set(s);
  }

  std::deque<Item> queue;
  Bitset b_start(b.num_states());
  for (std::size_t s = 0; s < b.num_states(); ++s) {
    if (b.IsInitial(static_cast<int>(s))) b_start.Set(s);
  }
  for (std::size_t s = 0; s < a.num_states(); ++s) {
    if (!a.IsInitial(static_cast<int>(s))) continue;
    queue.push_back({static_cast<int>(s), b_start, {}});
  }
  while (!queue.empty()) {
    // Per-pop poll point: cancellation/deadline observed within one
    // frontier item's work.
    Status s = governor.Poll();
    if (!s.ok()) return s;
    Item item = std::move(queue.front());
    queue.pop_front();
    // Insert both probes for a dominating visited subset and prunes the
    // now-dominated supersets — the covered-check + record pair in one.
    if (!visited[item.state].Insert(item.set, 0)) continue;
    if (++result.explored > max_explored) {
      return Status(ResourceExhaustedError(
          StrCat("containment exceeded ", max_explored, " pairs")));
    }
    bool a_accepts = a.IsAccepting(item.state);
    bool b_accepts = item.set.Intersects(b_accepting);
    if (a_accepts && !b_accepts) {
      result.contained = false;
      result.counterexample = item.word;
      return result;
    }
    for (std::size_t sym = 0; sym < a.num_symbols(); ++sym) {
      Bitset next_set(b.num_states());
      item.set.ForEachSetBit([&](std::size_t s) {
        for (int t : b.Successors(static_cast<int>(s),
                                  static_cast<int>(sym))) {
          next_set.Set(static_cast<std::size_t>(t));
        }
      });
      for (int t : a.Successors(item.state, static_cast<int>(sym))) {
        if (visited[t].Dominated(next_set)) continue;
        Item next{t, next_set, item.word};
        next.word.push_back(static_cast<int>(sym));
        queue.push_back(std::move(next));
      }
    }
  }
  return result;
}

// Sorted-vector ablation arm (use_bitsets=false): linear pairwise subset
// scans over plain vectors, the pre-bitset implementation.
StatusOr<Nfa::ContainmentResult> ContainsSortedVec(
    const Nfa& a, const Nfa& b, const Nfa::ContainmentOptions& options) {
  Nfa::ContainmentResult result;
  Governor governor(options.limits, "NFA containment");
  const std::size_t max_explored = options.limits.ExploredOr(10'000'000);
  // Frontier of (a-state, subset of b-states) with the word that got us
  // there; BFS so counterexamples are shortest.
  struct Item {
    int state;
    StateSet set;
    std::vector<int> word;
  };
  // visited[a-state] = antichain (or plain list) of explored b-subsets.
  std::vector<std::vector<StateSet>> visited(a.num_states());
  auto already_covered = [&](int state, const StateSet& set) {
    for (const StateSet& existing : visited[state]) {
      if (options.antichain ? IsSubsetOf(existing, set) : existing == set) {
        return true;
      }
    }
    return false;
  };
  auto record = [&](int state, const StateSet& set) {
    if (options.antichain) {
      // Drop dominated (superset) entries.
      auto& chain = visited[state];
      chain.erase(std::remove_if(chain.begin(), chain.end(),
                                 [&set](const StateSet& existing) {
                                   return IsSubsetOf(set, existing);
                                 }),
                  chain.end());
    }
    visited[state].push_back(set);
  };

  std::deque<Item> queue;
  StateSet b_start;
  for (std::size_t s = 0; s < b.num_states(); ++s) {
    if (b.IsInitial(static_cast<int>(s))) b_start.push_back(static_cast<int>(s));
  }
  b_start = SortedUnique(std::move(b_start));
  for (std::size_t s = 0; s < a.num_states(); ++s) {
    if (!a.IsInitial(static_cast<int>(s))) continue;
    queue.push_back({static_cast<int>(s), b_start, {}});
  }
  while (!queue.empty()) {
    // Per-pop poll point, mirroring the bitset arm.
    Status s = governor.Poll();
    if (!s.ok()) return s;
    Item item = std::move(queue.front());
    queue.pop_front();
    if (already_covered(item.state, item.set)) continue;
    record(item.state, item.set);
    if (++result.explored > max_explored) {
      return Status(ResourceExhaustedError(
          StrCat("containment exceeded ", max_explored, " pairs")));
    }
    bool a_accepts = a.IsAccepting(item.state);
    bool b_accepts = std::any_of(item.set.begin(), item.set.end(),
                                 [&b](int s) { return b.IsAccepting(s); });
    if (a_accepts && !b_accepts) {
      result.contained = false;
      result.counterexample = item.word;
      return result;
    }
    for (std::size_t sym = 0; sym < a.num_symbols(); ++sym) {
      StateSet next_set;
      for (int s : item.set) {
        for (int t : b.Successors(s, static_cast<int>(sym))) {
          next_set.push_back(t);
        }
      }
      next_set = SortedUnique(std::move(next_set));
      for (int t : a.Successors(item.state, static_cast<int>(sym))) {
        if (already_covered(t, next_set)) continue;
        Item next{t, next_set, item.word};
        next.word.push_back(static_cast<int>(sym));
        queue.push_back(std::move(next));
      }
    }
  }
  return result;
}

}  // namespace

StatusOr<Nfa::ContainmentResult> Nfa::Contains(
    const Nfa& a, const Nfa& b, const ContainmentOptions& options) {
  DATALOG_CHECK_EQ(a.num_symbols_, b.num_symbols_);
  return options.use_bitsets ? ContainsBitset(a, b, options)
                             : ContainsSortedVec(a, b, options);
}

StatusOr<Nfa::ContainmentResult> Nfa::Contains(const Nfa& a, const Nfa& b) {
  return Contains(a, b, ContainmentOptions());
}

std::string Nfa::ToString() const {
  std::string out = StrCat("NFA states=", num_states_,
                           " symbols=", num_symbols_, "\n");
  for (std::size_t s = 0; s < num_states_; ++s) {
    out += StrCat("  q", s, initial_[s] ? " [init]" : "",
                  accepting_[s] ? " [acc]" : "", ":");
    for (std::size_t sym = 0; sym < num_symbols_; ++sym) {
      for (int t : delta_[s][sym]) {
        out += StrCat(" --", sym, "--> q", t, "; ");
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace datalog
