#include "src/automata/nfta.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "src/util/bitset.h"
#include "src/util/iteration.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// Sorted-vector subset representation, kept for the use_bitsets=false
// ablation arm of Contains (the word-parallel paths run on Bitset).
using StateSet = std::vector<int>;  // sorted, unique

StateSet SortedUnique(StateSet set) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

bool SetContains(const StateSet& set, int state) {
  return std::binary_search(set.begin(), set.end(), state);
}

bool IsSubsetOf(const StateSet& a, const StateSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

std::size_t LabeledTree::Size() const {
  std::size_t total = 1;
  for (const LabeledTree& child : children) total += child.Size();
  return total;
}

std::size_t LabeledTree::Depth() const {
  std::size_t deepest = 0;
  for (const LabeledTree& child : children) {
    deepest = std::max(deepest, child.Depth());
  }
  return deepest + 1;
}

bool LabeledTree::operator==(const LabeledTree& other) const {
  return symbol == other.symbol && children == other.children;
}

std::string LabeledTree::ToString() const {
  if (children.empty()) return StrCat(symbol);
  return StrCat(symbol, "(",
                StrJoin(children, ", ",
                        [](std::ostream& os, const LabeledTree& t) {
                          os << t.ToString();
                        }),
                ")");
}

Nfta::Nfta(std::size_t num_states, std::vector<int> symbol_arity)
    : num_states_(num_states),
      symbol_arity_(std::move(symbol_arity)),
      by_symbol_(symbol_arity_.size()),
      final_(num_states, false) {}

int Nfta::AddState() {
  final_.push_back(false);
  return static_cast<int>(num_states_++);
}

void Nfta::AddTransition(int symbol, std::vector<int> children, int state) {
  DATALOG_CHECK_LT(static_cast<std::size_t>(symbol), symbol_arity_.size());
  DATALOG_CHECK_EQ(children.size(),
                   static_cast<std::size_t>(symbol_arity_[symbol]));
  DATALOG_CHECK_LT(static_cast<std::size_t>(state), num_states_);
  for (int c : children) {
    DATALOG_CHECK_LT(static_cast<std::size_t>(c), num_states_);
  }
  by_symbol_[symbol].push_back(transitions_.size());
  transitions_.push_back({symbol, std::move(children), state});
}

void Nfta::SetFinal(int state, bool is_final) { final_[state] = is_final; }

namespace {

// Computes the subset of states a deterministic-run of `nfta` reaches on
// `tree`, bottom-up, as a word-parallel Bitset.
Bitset EvaluateSubset(const Nfta& nfta,
                      const std::vector<Nfta::Transition>& transitions,
                      const std::vector<std::vector<std::size_t>>& by_symbol,
                      const LabeledTree& tree) {
  std::vector<Bitset> child_sets;
  child_sets.reserve(tree.children.size());
  for (const LabeledTree& child : tree.children) {
    child_sets.push_back(
        EvaluateSubset(nfta, transitions, by_symbol, child));
  }
  Bitset result(nfta.num_states());
  for (std::size_t index : by_symbol[tree.symbol]) {
    const Nfta::Transition& t = transitions[index];
    bool applies = true;
    for (std::size_t i = 0; i < t.children.size(); ++i) {
      if (!child_sets[i].Test(static_cast<std::size_t>(t.children[i]))) {
        applies = false;
        break;
      }
    }
    if (applies) result.Set(static_cast<std::size_t>(t.state));
  }
  return result;
}

}  // namespace

bool Nfta::Accepts(const LabeledTree& tree) const {
  if (static_cast<std::size_t>(tree.symbol) >= symbol_arity_.size()) {
    return false;
  }
  Bitset root = EvaluateSubset(*this, transitions_, by_symbol_, tree);
  Bitset finals(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (final_[s]) finals.Set(s);
  }
  return root.Intersects(finals);
}

bool Nfta::IsEmpty() const { return !WitnessTree().has_value(); }

std::optional<LabeledTree> Nfta::WitnessTree() const {
  // Bottom-up reachability; keep one witness tree per reachable state.
  std::vector<std::optional<LabeledTree>> witness(num_states_);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : transitions_) {
      if (witness[t.state].has_value()) continue;
      bool ready = std::all_of(
          t.children.begin(), t.children.end(),
          [&witness](int c) { return witness[c].has_value(); });
      if (!ready) continue;
      LabeledTree tree;
      tree.symbol = t.symbol;
      for (int c : t.children) tree.children.push_back(*witness[c]);
      witness[t.state] = std::move(tree);
      changed = true;
    }
  }
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (final_[s] && witness[s].has_value()) return witness[s];
  }
  return std::nullopt;
}

Nfta Nfta::Union(const Nfta& a, const Nfta& b) {
  DATALOG_CHECK(a.symbol_arity_ == b.symbol_arity_);
  Nfta result(a.num_states_ + b.num_states_, a.symbol_arity_);
  auto copy = [&result](const Nfta& source, int offset) {
    for (std::size_t s = 0; s < source.num_states_; ++s) {
      if (source.final_[s]) result.SetFinal(offset + static_cast<int>(s));
    }
    for (const Transition& t : source.transitions_) {
      std::vector<int> children;
      children.reserve(t.children.size());
      for (int c : t.children) children.push_back(offset + c);
      result.AddTransition(t.symbol, std::move(children), offset + t.state);
    }
  };
  copy(a, 0);
  copy(b, static_cast<int>(a.num_states_));
  return result;
}

Nfta Nfta::Intersection(const Nfta& a, const Nfta& b) {
  DATALOG_CHECK(a.symbol_arity_ == b.symbol_arity_);
  // Pair construction over the full state product (kept simple; callers
  // work with modest automata).
  Nfta result(a.num_states_ * b.num_states_, a.symbol_arity_);
  auto id = [&b](int sa, int sb) {
    return sa * static_cast<int>(b.num_states_) + sb;
  };
  for (std::size_t sa = 0; sa < a.num_states_; ++sa) {
    for (std::size_t sb = 0; sb < b.num_states_; ++sb) {
      if (a.final_[sa] && b.final_[sb]) {
        result.SetFinal(id(static_cast<int>(sa), static_cast<int>(sb)));
      }
    }
  }
  for (const Transition& ta : a.transitions_) {
    for (std::size_t tb_index : b.by_symbol_[ta.symbol]) {
      const Transition& tb = b.transitions_[tb_index];
      std::vector<int> children;
      children.reserve(ta.children.size());
      for (std::size_t i = 0; i < ta.children.size(); ++i) {
        children.push_back(id(ta.children[i], tb.children[i]));
      }
      result.AddTransition(ta.symbol, std::move(children),
                           id(ta.state, tb.state));
    }
  }
  return result;
}

StatusOr<Nfta> Nfta::Determinize(std::size_t max_states) const {
  // Bottom-up subset construction, restricted to reachable subsets but
  // kept complete: for every symbol and every tuple of reachable subsets
  // there is exactly one successor subset (possibly the empty subset).
  // Subsets are Bitsets interned by hash; ids are assigned at first
  // encounter in the deterministic fixpoint order, so state numbering
  // does not depend on the interning container.
  std::unordered_map<Bitset, int, BitsetHash> ids;
  std::vector<Bitset> subsets;
  Nfta result(0, symbol_arity_);
  Bitset finals(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (final_[s]) finals.Set(s);
  }
  auto intern = [&](Bitset set) -> int {
    auto [it, inserted] = ids.emplace(std::move(set), -1);
    if (inserted) {
      it->second = result.AddState();
      subsets.push_back(it->first);
      result.SetFinal(it->second, it->first.Intersects(finals));
    }
    return it->second;
  };

  // Fixpoint: repeatedly apply every symbol to every tuple of known
  // subsets until no new subset appears.
  std::set<std::pair<int, std::vector<std::size_t>>> done;
  bool changed = true;
  while (changed) {
    changed = false;
    std::size_t known = subsets.size();
    for (std::size_t symbol = 0; symbol < symbol_arity_.size(); ++symbol) {
      int arity = symbol_arity_[symbol];
      std::vector<std::size_t> sizes(arity, known);
      bool ok = ForEachProduct(sizes, [&](const std::vector<std::size_t>&
                                              choice) {
        auto key = std::make_pair(static_cast<int>(symbol), choice);
        if (done.count(key) > 0) return true;
        done.insert(key);
        // Successor subset for this symbol over the chosen child subsets.
        Bitset next(num_states_);
        for (std::size_t index : by_symbol_[symbol]) {
          const Transition& t = transitions_[index];
          bool applies = true;
          for (int i = 0; i < arity; ++i) {
            if (!subsets[choice[i]].Test(
                    static_cast<std::size_t>(t.children[i]))) {
              applies = false;
              break;
            }
          }
          if (applies) next.Set(static_cast<std::size_t>(t.state));
        }
        std::size_t before = subsets.size();
        int to = intern(std::move(next));
        if (subsets.size() > before) changed = true;
        if (subsets.size() > max_states) return false;
        std::vector<int> children;
        children.reserve(arity);
        for (std::size_t c : choice) children.push_back(static_cast<int>(c));
        result.AddTransition(static_cast<int>(symbol), std::move(children),
                             to);
        return true;
      });
      if (!ok) {
        return Status(ResourceExhaustedError(
            StrCat("tree determinization exceeded ", max_states, " states")));
      }
    }
  }
  return result;
}

StatusOr<Nfta> Nfta::Complement(std::size_t max_states) const {
  StatusOr<Nfta> determinized = Determinize(max_states);
  if (!determinized.ok()) return determinized.status();
  Nfta result = std::move(determinized).value();
  for (std::size_t s = 0; s < result.num_states_; ++s) {
    result.final_[s] = !result.final_[s];
  }
  return result;
}

StatusOr<Nfta::ContainmentResult> Nfta::Contains(
    const Nfta& a, const Nfta& b, const ContainmentOptions& options) {
  DATALOG_CHECK(a.symbol_arity_ == b.symbol_arity_);
  ContainmentResult result;
  Governor governor(options.limits, "NFTA containment");
  const std::size_t max_explored = options.limits.ExploredOr(10'000'000);
  // First governor failure (cancellation / deadline / injected fault);
  // product callbacks abort by returning false and the `!ok` exits report
  // this status ahead of the explored-pair diagnosis.
  Status interrupt = OkStatus();
  if (options.use_bitsets) {
    // Word-parallel arm: b-subsets are Bitsets; each a-state keeps its
    // discovered family in a vector (the product-iteration source, so
    // entry order matches the ablation arm exactly) indexed by an
    // AntichainStore whose payloads are per-entry ids, used to mirror
    // prunes back into the vector. Domination verdicts coincide with the
    // sorted-vector scans — "covered" is "some discovered subset of the
    // candidate exists" (antichain) or equality (plain) — so verdicts,
    // witness trees, and explored counts are byte-identical.
    struct Entry {
      Bitset set;
      LabeledTree witness;
      std::uint64_t id = 0;
    };
    std::vector<std::vector<Entry>> discovered(a.num_states_);
    std::vector<AntichainStore> stores(
        a.num_states_, AntichainStore(options.antichain
                                          ? AntichainStore::Mode::kKeepMinimal
                                          : AntichainStore::Mode::kExact));
    Bitset b_finals(b.num_states_);
    for (std::size_t s = 0; s < b.num_states_; ++s) {
      if (b.final_[s]) b_finals.Set(s);
    }
    std::uint64_t next_id = 0;
    std::vector<std::uint64_t> pruned;
    bool changed = true;
    while (changed) {
      changed = false;
      interrupt = governor.Poll();
      if (!interrupt.ok()) return interrupt;
      for (const Transition& ta : a.transitions_) {
        int arity = a.symbol_arity_[ta.symbol];
        // Choose one discovered entry per child state of ta. The body
        // below grows and (with antichain pruning) erases
        // discovered[ta.state], which aliases a child slot whenever the
        // transition is self-recursive; indexing the live vector across
        // product iterations would then read freed or reshuffled
        // storage. Only the aliased slots need a by-value snapshot.
        std::vector<std::size_t> sizes(arity);
        bool feasible = true;
        bool self_recursive = false;
        for (int i = 0; i < arity; ++i) {
          sizes[i] = discovered[ta.children[i]].size();
          if (sizes[i] == 0) feasible = false;
          if (ta.children[i] == ta.state) self_recursive = true;
        }
        if (!feasible && arity > 0) continue;
        std::vector<Entry> self_snapshot;
        if (self_recursive) self_snapshot = discovered[ta.state];
        std::vector<const std::vector<Entry>*> child_entries(arity);
        for (int i = 0; i < arity; ++i) {
          child_entries[i] = ta.children[i] == ta.state
                                 ? &self_snapshot
                                 : &discovered[ta.children[i]];
        }
        bool ok = ForEachProduct(sizes, [&](const std::vector<std::size_t>&
                                                choice) {
          // Compute the b-subset over the chosen child subsets.
          Bitset next(b.num_states_);
          for (std::size_t index : b.by_symbol_[ta.symbol]) {
            const Transition& tb = b.transitions_[index];
            bool applies = true;
            for (int i = 0; i < arity; ++i) {
              const Bitset& child_set = (*child_entries[i])[choice[i]].set;
              if (!child_set.Test(static_cast<std::size_t>(tb.children[i]))) {
                applies = false;
                break;
              }
            }
            if (applies) next.Set(static_cast<std::size_t>(tb.state));
          }
          if (stores[ta.state].Dominated(next)) return true;
          interrupt = governor.ChargeSteps(1);
          if (!interrupt.ok()) return false;
          if (++result.explored > max_explored) return false;
          LabeledTree witness;
          witness.symbol = ta.symbol;
          for (int i = 0; i < arity; ++i) {
            witness.children.push_back(
                (*child_entries[i])[choice[i]].witness);
          }
          bool a_accepts = a.final_[ta.state];
          bool b_accepts = next.Intersects(b_finals);
          if (a_accepts && !b_accepts) {
            result.contained = false;
            result.counterexample = witness;
            return false;
          }
          pruned.clear();
          const std::uint64_t id = next_id++;
          stores[ta.state].Insert(next, id, &pruned);
          if (!pruned.empty()) {
            // Mirror the store's prunes into the ordered vector; stable
            // remove_if keeps the surviving order identical to the
            // ablation arm's erase.
            auto& entries = discovered[ta.state];
            entries.erase(
                std::remove_if(entries.begin(), entries.end(),
                               [&](const Entry& e) {
                                 return std::find(pruned.begin(),
                                                  pruned.end(),
                                                  e.id) != pruned.end();
                               }),
                entries.end());
          }
          discovered[ta.state].push_back(
              {std::move(next), std::move(witness), id});
          changed = true;
          return true;
        });
        if (!ok) {
          if (!result.contained) return result;
          if (!interrupt.ok()) return interrupt;
          return Status(ResourceExhaustedError(
              StrCat("tree containment exceeded ", max_explored,
                     " pairs")));
        }
      }
    }
    return result;
  }
  // Sorted-vector ablation arm (use_bitsets=false): linear pairwise
  // subset scans over plain vectors, the pre-bitset implementation.
  // Discovered pairs: per a-state, the b-subsets reachable on a common
  // tree, with a witness tree each.
  struct Entry {
    StateSet set;
    LabeledTree witness;
  };
  std::vector<std::vector<Entry>> discovered(a.num_states_);
  auto covered = [&](int state, const StateSet& set) {
    for (const Entry& e : discovered[state]) {
      if (options.antichain ? IsSubsetOf(e.set, set) : e.set == set) {
        return true;
      }
    }
    return false;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    interrupt = governor.Poll();
    if (!interrupt.ok()) return interrupt;
    for (const Transition& ta : a.transitions_) {
      int arity = a.symbol_arity_[ta.symbol];
      // Choose one discovered entry per child state of ta. The body below
      // grows and (with antichain pruning) erases discovered[ta.state],
      // which aliases a child slot whenever the transition is
      // self-recursive; indexing the live vector across product
      // iterations would then read freed or reshuffled storage. Only the
      // aliased slots need a by-value snapshot — other children's entry
      // vectors are not mutated during this transition's product.
      std::vector<std::size_t> sizes(arity);
      bool feasible = true;
      bool self_recursive = false;
      for (int i = 0; i < arity; ++i) {
        sizes[i] = discovered[ta.children[i]].size();
        if (sizes[i] == 0) feasible = false;
        if (ta.children[i] == ta.state) self_recursive = true;
      }
      if (!feasible && arity > 0) continue;
      std::vector<Entry> self_snapshot;
      if (self_recursive) self_snapshot = discovered[ta.state];
      std::vector<const std::vector<Entry>*> child_entries(arity);
      for (int i = 0; i < arity; ++i) {
        child_entries[i] = ta.children[i] == ta.state
                               ? &self_snapshot
                               : &discovered[ta.children[i]];
      }
      bool ok = ForEachProduct(sizes, [&](const std::vector<std::size_t>&
                                              choice) {
        // Compute the b-subset over the chosen child subsets.
        StateSet next;
        for (std::size_t index : b.by_symbol_[ta.symbol]) {
          const Transition& tb = b.transitions_[index];
          bool applies = true;
          for (int i = 0; i < arity; ++i) {
            const StateSet& child_set = (*child_entries[i])[choice[i]].set;
            if (!SetContains(child_set, tb.children[i])) {
              applies = false;
              break;
            }
          }
          if (applies) next.push_back(tb.state);
        }
        next = SortedUnique(std::move(next));
        if (covered(ta.state, next)) return true;
        interrupt = governor.ChargeSteps(1);
        if (!interrupt.ok()) return false;
        if (++result.explored > max_explored) return false;
        LabeledTree witness;
        witness.symbol = ta.symbol;
        for (int i = 0; i < arity; ++i) {
          witness.children.push_back((*child_entries[i])[choice[i]].witness);
        }
        bool a_accepts = a.final_[ta.state];
        bool b_accepts = std::any_of(next.begin(), next.end(),
                                     [&b](int s) { return b.final_[s]; });
        if (a_accepts && !b_accepts) {
          result.contained = false;
          result.counterexample = witness;
          return false;
        }
        if (options.antichain) {
          auto& entries = discovered[ta.state];
          entries.erase(std::remove_if(entries.begin(), entries.end(),
                                       [&next](const Entry& e) {
                                         return IsSubsetOf(next, e.set);
                                       }),
                        entries.end());
        }
        discovered[ta.state].push_back({std::move(next), std::move(witness)});
        changed = true;
        return true;
      });
      if (!ok) {
        if (!result.contained) return result;
        if (!interrupt.ok()) return interrupt;
        return Status(ResourceExhaustedError(
            StrCat("tree containment exceeded ", max_explored,
                   " pairs")));
      }
    }
  }
  return result;
}

StatusOr<Nfta::ContainmentResult> Nfta::Contains(const Nfta& a,
                                                 const Nfta& b) {
  return Contains(a, b, ContainmentOptions());
}

std::string Nfta::ToString() const {
  std::string out = StrCat("NFTA states=", num_states_,
                           " symbols=", symbol_arity_.size(), "\n");
  for (const Transition& t : transitions_) {
    out += StrCat("  ", t.symbol, "(", StrJoin(t.children, ","), ") -> q",
                  t.state, final_[t.state] ? " [final]" : "", "\n");
  }
  return out;
}

bool EnumerateLabeledTrees(
    const std::vector<int>& symbol_arity, std::size_t max_depth,
    std::size_t max_trees,
    const std::function<bool(const LabeledTree&)>& visit) {
  // trees_by_depth[d] = all trees of depth <= d (d starting at 1).
  std::vector<LabeledTree> current;  // depth <= d
  std::size_t yielded = 0;
  // Depth 1: nullary symbols.
  for (std::size_t s = 0; s < symbol_arity.size(); ++s) {
    if (symbol_arity[s] == 0) {
      LabeledTree leaf;
      leaf.symbol = static_cast<int>(s);
      current.push_back(leaf);
      if (++yielded > max_trees || !visit(current.back())) return false;
    }
  }
  for (std::size_t depth = 2; depth <= max_depth; ++depth) {
    std::vector<LabeledTree> next = current;
    for (std::size_t s = 0; s < symbol_arity.size(); ++s) {
      int arity = symbol_arity[s];
      if (arity == 0) continue;
      std::vector<std::size_t> sizes(arity, current.size());
      bool ok = ForEachProduct(sizes, [&](const std::vector<std::size_t>&
                                              choice) {
        LabeledTree tree;
        tree.symbol = static_cast<int>(s);
        bool max_depth_child = false;
        for (std::size_t c : choice) {
          tree.children.push_back(current[c]);
          if (current[c].Depth() == depth - 1) max_depth_child = true;
        }
        if (!max_depth_child) return true;  // already seen at lower depth
        next.push_back(tree);
        if (++yielded > max_trees) return false;
        return visit(next.back());
      });
      if (!ok) return false;
    }
    current = std::move(next);
  }
  return true;
}

}  // namespace datalog
