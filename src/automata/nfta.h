// Nondeterministic finite tree automata over ranked alphabets
// (paper §4.2), in bottom-up form.
//
// Each symbol has a fixed arity. A transition (symbol, (c1..ck), s) lets a
// node labeled `symbol` whose children evaluated to states c1..ck evaluate
// to state s; a tree is accepted when its root can evaluate to a final
// state. This is the standard bottom-up presentation; the paper's top-down
// automata (§4.2) translate by reversing transitions, with the paper's
// initial states becoming final states here.
//
// Supports the operations the paper relies on: boolean closure
// (Proposition 4.4), linear-time emptiness (Proposition 4.5), and
// containment (Proposition 4.6; EXPTIME-complete) via an on-the-fly
// product with the subset construction, with optional antichain pruning.
#ifndef DATALOG_EQ_SRC_AUTOMATA_NFTA_H_
#define DATALOG_EQ_SRC_AUTOMATA_NFTA_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/util/governor.h"
#include "src/util/status.h"

namespace datalog {

/// A finite ordered tree with integer-labeled nodes.
struct LabeledTree {
  int symbol = 0;
  std::vector<LabeledTree> children;

  std::size_t Size() const;
  std::size_t Depth() const;
  bool operator==(const LabeledTree& other) const;
  std::string ToString() const;
};

class Nfta {
 public:
  /// `symbol_arity[i]` is the arity of symbol i.
  Nfta(std::size_t num_states, std::vector<int> symbol_arity);

  std::size_t num_states() const { return num_states_; }
  std::size_t num_symbols() const { return symbol_arity_.size(); }
  int SymbolArity(int symbol) const { return symbol_arity_[symbol]; }
  const std::vector<int>& symbol_arities() const { return symbol_arity_; }

  int AddState();
  void AddTransition(int symbol, std::vector<int> children, int state);
  void SetFinal(int state, bool is_final = true);
  bool IsFinal(int state) const { return final_[state]; }
  std::size_t NumTransitions() const { return transitions_.size(); }

  struct Transition {
    int symbol;
    std::vector<int> children;
    int state;
  };
  const std::vector<Transition>& transitions() const { return transitions_; }

  bool Accepts(const LabeledTree& tree) const;

  /// T(A) == ∅, by the bottom-up reachable-state fixpoint
  /// (Proposition 4.5).
  bool IsEmpty() const;

  /// Some accepted tree (of minimal construction order), or nullopt.
  std::optional<LabeledTree> WitnessTree() const;

  /// Disjoint union: T = T(a) ∪ T(b). Alphabets must match.
  static Nfta Union(const Nfta& a, const Nfta& b);

  /// Product: T = T(a) ∩ T(b). Alphabets must match.
  static Nfta Intersection(const Nfta& a, const Nfta& b);

  /// Bottom-up subset construction; the result is deterministic and
  /// complete. Fails with ResourceExhausted beyond `max_states`.
  StatusOr<Nfta> Determinize(std::size_t max_states = 1u << 16) const;

  /// Complement via determinization (exponential in the worst case).
  StatusOr<Nfta> Complement(std::size_t max_states = 1u << 16) const;

  struct ContainmentOptions {
    bool antichain = true;
    /// The governed bounds (src/util/governor.h): deadline, CancelToken,
    /// fault injection, and the explored-pair cap
    /// (`limits.max_explored`, resolving 0 to 10M — the pre-governor
    /// default; beyond it the run aborts with ResourceExhausted). The
    /// fixpoint polls the governor at every round and every explored
    /// pair.
    ExecutionLimits limits;
    /// Run the fixpoint on word-parallel Bitset subsets with each
    /// a-state's discovered family indexed by an AntichainStore
    /// (src/util/bitset.h). Disabling falls back to sorted-vector subsets
    /// with linear pairwise scans (ablation baseline; verdicts, witness
    /// trees, and explored counts are identical either way —
    /// tests/nfta_test.cc).
    bool use_bitsets = true;
  };
  struct ContainmentResult {
    bool contained = true;
    /// A witness tree in T(a) \ T(b) when not contained.
    LabeledTree counterexample;
    std::size_t explored = 0;
  };

  /// Decides T(a) ⊆ T(b) via a bottom-up fixpoint over pairs of an
  /// `a`-state and the subset of `b`-states reachable on the same tree.
  static StatusOr<ContainmentResult> Contains(
      const Nfta& a, const Nfta& b, const ContainmentOptions& options);
  static StatusOr<ContainmentResult> Contains(const Nfta& a, const Nfta& b);

  std::string ToString() const;

 private:
  std::size_t num_states_;
  std::vector<int> symbol_arity_;
  std::vector<Transition> transitions_;
  std::vector<std::vector<std::size_t>> by_symbol_;  // transition indices
  std::vector<bool> final_;
};

/// Enumerates all trees over `symbol_arity` with depth <= max_depth,
/// stopping after max_trees or when `visit` returns false. Returns false
/// if cut short.
bool EnumerateLabeledTrees(const std::vector<int>& symbol_arity,
                           std::size_t max_depth, std::size_t max_trees,
                           const std::function<bool(const LabeledTree&)>& visit);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_AUTOMATA_NFTA_H_
