// Nondeterministic finite word automata (paper §4.1).
//
// Symbols are dense integers 0..num_symbols-1 (callers keep their own label
// tables). Supports the operations the paper relies on: boolean closure
// (Proposition 4.1), emptiness via reachability (Proposition 4.2), and
// containment via on-the-fly subset construction with optional antichain
// pruning (Proposition 4.3; PSPACE-complete in general).
#ifndef DATALOG_EQ_SRC_AUTOMATA_NFA_H_
#define DATALOG_EQ_SRC_AUTOMATA_NFA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/util/governor.h"
#include "src/util/status.h"

namespace datalog {

class Nfa {
 public:
  Nfa(std::size_t num_states, std::size_t num_symbols);

  std::size_t num_states() const { return num_states_; }
  std::size_t num_symbols() const { return num_symbols_; }

  int AddState();
  void AddTransition(int from, int symbol, int to);
  void SetInitial(int state, bool initial = true);
  void SetAccepting(int state, bool accepting = true);

  bool IsInitial(int state) const { return initial_[state]; }
  bool IsAccepting(int state) const { return accepting_[state]; }
  const std::vector<int>& Successors(int state, int symbol) const {
    return delta_[state][symbol];
  }
  std::size_t NumTransitions() const;

  bool Accepts(const std::vector<int>& word) const;

  /// L(A) == ∅, by graph reachability (Proposition 4.2).
  bool IsEmpty() const;

  /// Some accepted word (shortest), or nullopt if the language is empty.
  std::optional<std::vector<int>> ShortestWord() const;

  /// Disjoint union: L = L(a) ∪ L(b). Alphabets must match.
  static Nfa Union(const Nfa& a, const Nfa& b);

  /// Product: L = L(a) ∩ L(b). Alphabets must match.
  static Nfa Intersection(const Nfa& a, const Nfa& b);

  /// Subset construction; the result is deterministic and complete.
  /// Fails with ResourceExhausted beyond `max_states`.
  StatusOr<Nfa> Determinize(std::size_t max_states = 1u << 20) const;

  /// Complement via determinization (exponential in the worst case, per
  /// [MF71]).
  StatusOr<Nfa> Complement(std::size_t max_states = 1u << 20) const;

  struct ContainmentOptions {
    /// Prune subset states dominated by a smaller visited subset.
    bool antichain = true;
    /// The governed bounds (src/util/governor.h): deadline, CancelToken,
    /// fault injection, and the explored-pair cap
    /// (`limits.max_explored`, resolving 0 to 10M — the pre-governor
    /// default; beyond it the run aborts with ResourceExhausted). The
    /// BFS polls the governor at every queue pop.
    ExecutionLimits limits;
    /// Run the product on word-parallel Bitset subsets with the visited
    /// families kept in an AntichainStore (src/util/bitset.h). Disabling
    /// falls back to the sorted-vector subsets with linear pairwise
    /// scans (ablation baseline; verdicts, counterexamples, and explored
    /// counts are identical either way — tests/nfa_test.cc).
    bool use_bitsets = true;
  };
  struct ContainmentResult {
    bool contained = true;
    /// A witness word in L(a) \ L(b) when not contained.
    std::vector<int> counterexample;
    /// Number of (state, subset) pairs explored.
    std::size_t explored = 0;
  };

  /// Decides L(a) ⊆ L(b) by an on-the-fly product of `a` with the subset
  /// construction of `b`.
  static StatusOr<ContainmentResult> Contains(
      const Nfa& a, const Nfa& b, const ContainmentOptions& options);
  static StatusOr<ContainmentResult> Contains(const Nfa& a, const Nfa& b);

  std::string ToString() const;

 private:
  std::size_t num_states_;
  std::size_t num_symbols_;
  std::vector<bool> initial_;
  std::vector<bool> accepting_;
  // delta_[state][symbol] -> successor states
  std::vector<std::vector<std::vector<int>>> delta_;
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_AUTOMATA_NFA_H_
