#include "src/containment/equivalence.h"

#include <algorithm>

#include "src/ast/analysis.h"
#include "src/containment/ucq_in_datalog.h"
#include "src/util/strings.h"

namespace datalog {

StatusOr<ContainmentDecision> DecideDatalogInNonrecursive(
    ContainmentChecker& checker, const Program& nonrecursive,
    const std::string& nonrecursive_goal, const EquivalenceOptions& options) {
  StatusOr<UnionOfCqs> unfolded =
      UnfoldNonrecursive(nonrecursive, nonrecursive_goal, options.unfold);
  if (!unfolded.ok()) return unfolded.status();
  return checker.Decide(*unfolded, options.containment);
}

StatusOr<ContainmentDecision> DecideDatalogInNonrecursive(
    const Program& recursive, const std::string& recursive_goal,
    const Program& nonrecursive, const std::string& nonrecursive_goal,
    const EquivalenceOptions& options) {
  ContainmentChecker checker(recursive, recursive_goal);
  return DecideDatalogInNonrecursive(checker, nonrecursive,
                                     nonrecursive_goal, options);
}

StatusOr<EquivalenceResult> DecideRecNonrecEquivalence(
    ContainmentChecker& checker, const Program& nonrecursive,
    const std::string& nonrecursive_goal, const EquivalenceOptions& options) {
  if (IsRecursive(nonrecursive)) {
    return Status(InvalidArgumentError(
        "second program must be nonrecursive; swap the arguments"));
  }
  EquivalenceResult result;
  StatusOr<UnionOfCqs> unfolded =
      UnfoldNonrecursive(nonrecursive, nonrecursive_goal, options.unfold);
  if (!unfolded.ok()) return unfolded.status();
  result.unfolded_disjuncts = unfolded->size();

  // Forward direction: Π ⊆ Π' via Theorem 5.12.
  StatusOr<ContainmentDecision> forward =
      checker.Decide(*unfolded, options.containment);
  if (!forward.ok()) return forward.status();
  result.forward_contained = forward->contained;
  result.forward_counterexample = forward->counterexample;
  result.forward_stats = forward->stats;

  // Backward direction: Π' ⊆ Π via canonical databases, disjunct by
  // disjunct (Theorem 2.3 reduces UCQ containment to its disjuncts). The
  // union-level call freezes through the unfolded union's carried IR.
  // When the disjunct fan-out would spawn a pool and the caller supplied
  // none, borrow the checker's shared pool: repeated equivalence calls
  // on one checker then reuse the workers instead of re-spawning them
  // per containment check.
  CanonicalDbOptions canonical_db = options.canonical_db;
  if (canonical_db.pool == nullptr) {
    canonical_db.pool = checker.SharedEvalPool(std::min(
        ResolvedEvalThreads(canonical_db.eval), unfolded->size()));
  }
  std::size_t failing_disjunct = 0;
  StatusOr<bool> backward = IsUcqContainedInDatalog(
      *unfolded, checker.program(), checker.goal(),
      &result.backward_eval_stats, canonical_db, &failing_disjunct);
  if (!backward.ok()) return backward.status();
  result.backward_contained = *backward;
  if (!*backward) {
    result.backward_counterexample = unfolded->disjuncts()[failing_disjunct];
  }
  result.equivalent = result.forward_contained && result.backward_contained;
  return result;
}

StatusOr<EquivalenceResult> DecideRecNonrecEquivalence(
    const Program& recursive, const std::string& recursive_goal,
    const Program& nonrecursive, const std::string& nonrecursive_goal,
    const EquivalenceOptions& options) {
  ContainmentChecker checker(recursive, recursive_goal);
  return DecideRecNonrecEquivalence(checker, nonrecursive, nonrecursive_goal,
                                    options);
}

}  // namespace datalog
