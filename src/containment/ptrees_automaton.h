// The explicit tree automaton A^ptrees_{Q,Π} of Proposition 5.9, whose
// language is exactly ptrees(Q, Π) — the proof trees of the goal
// predicate. Faithful to the paper: the alphabet is the set of rule
// instances over var(Π) (exponential in the size of Π), the states are the
// IDB atoms over var(Π), and (read bottom-up) a node labeled by instance ρ
// maps the states of its children (the IDB body atoms of ρ) to the state
// head(ρ); final states are the goal-predicate atoms.
//
// Intended for small programs and cross-validation against the on-the-fly
// decider; construction cost is exponential by design.
#ifndef DATALOG_EQ_SRC_CONTAINMENT_PTREES_AUTOMATON_H_
#define DATALOG_EQ_SRC_CONTAINMENT_PTREES_AUTOMATON_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/ast/rule.h"
#include "src/automata/nfta.h"
#include "src/trees/expansion_tree.h"
#include "src/util/status.h"

namespace datalog {

/// The label alphabet of Propositions 5.9/5.10: every instance of every
/// program rule over var(Π), tagged with the originating rule. The symbol
/// arity is the number of IDB atoms in the instance's body.
struct ProgramAlphabet {
  std::vector<Rule> labels;
  std::vector<std::size_t> label_rule_index;
  /// Positions of IDB atoms in each label's body (children align).
  std::vector<std::vector<std::size_t>> label_idb_positions;
  std::vector<int> arities;
  std::map<std::string, int> label_ids;  // Rule::ToString() -> symbol
  std::vector<std::string> proof_vars;

  int SymbolOf(const Rule& instance) const;
};

/// Enumerates the full alphabet. Fails with ResourceExhausted beyond
/// `max_labels` instances.
StatusOr<ProgramAlphabet> BuildProgramAlphabet(
    const Program& program, std::size_t max_labels = 2'000'000);

struct PtreesAutomaton {
  ProgramAlphabet alphabet;
  Nfta nfta;
  std::map<std::string, int> atom_states;  // Atom::ToString() -> state
  std::vector<Atom> state_atoms;

  int StateOf(const Atom& atom) const;
};

/// Builds A^ptrees_{Q,Π} (Proposition 5.9).
StatusOr<PtreesAutomaton> BuildPtreesAutomaton(
    const Program& program, const std::string& goal,
    std::size_t max_labels = 2'000'000);

/// Encodes a proof tree as a labeled tree over the alphabet; nullopt if a
/// node's rule instance is not an alphabet label (i.e. uses variables
/// outside var(Π)).
std::optional<LabeledTree> ProofTreeToLabeledTree(
    const ProgramAlphabet& alphabet, const ExpansionTree& tree);

/// Decodes a labeled tree back into an expansion tree (goals are the
/// instance heads). The result may fail ValidateExpansionTree if the
/// labeled tree was not actually accepted.
ExpansionTree LabeledTreeToProofTree(const ProgramAlphabet& alphabet,
                                     const LabeledTree& tree);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_PTREES_AUTOMATON_H_
