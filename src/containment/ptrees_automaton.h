// The explicit tree automaton A^ptrees_{Q,Π} of Proposition 5.9, whose
// language is exactly ptrees(Q, Π) — the proof trees of the goal
// predicate. Faithful to the paper: the alphabet is the set of rule
// instances over var(Π) (exponential in the size of Π), the states are the
// IDB atoms over var(Π), and (read bottom-up) a node labeled by instance ρ
// maps the states of its children (the IDB body atoms of ρ) to the state
// head(ρ); final states are the goal-predicate atoms.
//
// Labels and states are interned on flat integer rows (rule templates
// stamped per variable assignment, deduplicated through a VarKeyTable over
// shared name dictionaries) by default; the rendered-string identity the
// rows replaced is kept behind `use_ir = false` as the ablation baseline.
// Both arms build identical automata (tests/decider_intern_test.cc).
//
// Intended for small programs and cross-validation against the on-the-fly
// decider; construction cost is exponential by design.
#ifndef DATALOG_EQ_SRC_CONTAINMENT_PTREES_AUTOMATON_H_
#define DATALOG_EQ_SRC_CONTAINMENT_PTREES_AUTOMATON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ast/rule.h"
#include "src/automata/nfta.h"
#include "src/ir/ir.h"
#include "src/trees/expansion_tree.h"
#include "src/util/flat_table.h"
#include "src/util/governor.h"
#include "src/util/status.h"

namespace datalog {

/// The label alphabet of Propositions 5.9/5.10: every instance of every
/// program rule over var(Π), tagged with the originating rule. The symbol
/// arity is the number of IDB atoms in the instance's body.
struct ProgramAlphabet {
  /// String-arm label storage: the materialized Rule per symbol. Empty on
  /// the interned arm, where Term-level labels are decoded on demand from
  /// label_ir — go through num_labels()/Label() instead of this field.
  std::vector<Rule> eager_labels;
  std::vector<std::size_t> label_rule_index;
  /// Positions of IDB atoms in each label's body (children align).
  std::vector<std::vector<std::size_t>> label_idb_positions;
  std::vector<int> arities;
  std::vector<std::string> proof_vars;

  // --- interned identity (the use_ir arm) ------------------------------
  // Labels are rows [pred, arity, enc(arg)...] per atom, head first, over
  // the shared dictionaries: proof variable $k encodes as -(k+1),
  // constants as their non-negative dictionary ids (the decider's goal-row
  // convention). The VarKeyTable's dense index is the symbol.
  bool interned = false;
  ir::NameDictionary predicates;
  ir::NameDictionary constants;
  VarKeyTable label_keys;

  /// Per-symbol IR encoding of a label in the instance frame (argument
  /// TermIds are proof-variable indexes or constant dictionary ids).
  /// Populated on the interned arm; the word- and tree-automaton
  /// constructions run on these rows instead of the Term-level labels.
  struct LabelIr {
    std::int32_t head_pred = 0;
    std::vector<ir::TermId> head_args;
    /// Non-IDB body atoms, in body order.
    std::vector<ir::TermAtom> edb_atoms;
    /// IDB body atoms (the children), aligned with label_idb_positions.
    std::vector<ir::TermAtom> idb_atoms;
  };
  std::vector<LabelIr> label_ir;

  // --- string identity (ablation arm) ----------------------------------
  std::map<std::string, int> label_ids;  // Rule::ToString() -> symbol

  /// Number of symbols (both arms fill `arities`, one entry per label).
  std::size_t num_labels() const { return arities.size(); }

  /// Interned-arm labels materialized so far by Label() — the lazy
  /// decode's work counter, pinned by tests/ptrees_automaton_test.cc:
  /// the IR constructions render no label at all, and witness decoding
  /// renders only the symbols on the witness path. Always 0 on the
  /// string arm (its labels are eager by construction).
  std::size_t num_decoded_labels() const { return decoded_labels_; }

  /// The Term-level rendering of a label. The interned arm decodes the
  /// LabelIr through the dictionaries on first use and caches the Rule,
  /// so constructions that never render a symbol (the IR word/tree
  /// automata) pay nothing; the string arm returns its eager storage.
  const Rule& Label(std::size_t symbol) const;

  /// Decodes one instance-frame IR atom into Terms (dictionary lookups);
  /// lets callers that need a single atom — e.g. automaton state atoms —
  /// avoid rendering the whole label.
  Atom DecodeAtom(const ir::TermAtom& atom) const;

  int SymbolOf(const Rule& instance) const;

 private:
  // Lazily decoded labels, indexed by symbol (interned arm only).
  mutable std::vector<std::unique_ptr<Rule>> label_cache_;
  mutable std::size_t decoded_labels_ = 0;
};

/// Enumerates the full alphabet. `limits` carries the governed bounds
/// (src/util/governor.h): deadline, CancelToken, fault injection, and the
/// label cap (`limits.max_labels`, 0 resolving to 2M — the pre-governor
/// default; beyond it the enumeration fails with ResourceExhausted). The
/// enumeration polls the governor once per materialized label. `use_ir`
/// selects the interned (default) or rendered-string label identity; the
/// alphabets are identical either way (same symbols in the same order).
StatusOr<ProgramAlphabet> BuildProgramAlphabet(
    const Program& program,
    const ExecutionLimits& limits = ExecutionLimits(), bool use_ir = true);

struct PtreesAutomaton {
  ProgramAlphabet alphabet;
  Nfta nfta = Nfta(0, {});
  std::map<std::string, int> atom_states;  // string arm: Atom::ToString()
  /// String-arm state storage: the materialized Atom per state. Empty on
  /// the interned arm, where state atoms are decoded on demand from the
  /// state_keys rows — go through num_states()/StateAtom() instead.
  std::vector<Atom> state_atoms;
  VarKeyTable state_keys;  // interned arm: [pred, enc(arg)...] rows

  std::size_t num_states() const {
    return alphabet.interned ? state_keys.size() : state_atoms.size();
  }

  /// The Term-level atom of a state. The interned arm decodes the
  /// state's key row through the alphabet dictionaries on first use and
  /// caches the Atom, so constructions that never render a state — the
  /// IR decider cross-checks, emptiness tests — pay nothing; the string
  /// arm returns its eager storage.
  const Atom& StateAtom(std::size_t state) const;

  /// Interned-arm state atoms materialized so far by StateAtom() — the
  /// lazy decode's work counter (see ProgramAlphabet's
  /// num_decoded_labels). Always 0 on the string arm.
  std::size_t num_decoded_state_atoms() const {
    return decoded_state_atoms_;
  }

  int StateOf(const Atom& atom) const;

 private:
  // Lazily decoded state atoms, indexed by state (interned arm only).
  mutable std::vector<std::unique_ptr<Atom>> state_cache_;
  mutable std::size_t decoded_state_atoms_ = 0;
};

/// Builds A^ptrees_{Q,Π} (Proposition 5.9); `use_ir` as above. By
/// default rules not backward-reachable from `goal` are dropped first
/// (src/analysis/reachability.h) — they cannot label any node of a
/// goal-rooted proof tree, so the accepted language is unchanged while
/// the alphabet (exponential per rule) shrinks; `prune_unreachable =
/// false` keeps the full alphabet for cross-validation.
StatusOr<PtreesAutomaton> BuildPtreesAutomaton(
    const Program& program, const std::string& goal,
    const ExecutionLimits& limits = ExecutionLimits(), bool use_ir = true,
    bool prune_unreachable = true);

/// Encodes a proof tree as a labeled tree over the alphabet; nullopt if a
/// node's rule instance is not an alphabet label (i.e. uses variables
/// outside var(Π)).
std::optional<LabeledTree> ProofTreeToLabeledTree(
    const ProgramAlphabet& alphabet, const ExpansionTree& tree);

/// Decodes a labeled tree back into an expansion tree (goals are the
/// instance heads). The result may fail ValidateExpansionTree if the
/// labeled tree was not actually accepted.
ExpansionTree LabeledTreeToProofTree(const ProgramAlphabet& alphabet,
                                     const LabeledTree& tree);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_PTREES_AUTOMATON_H_
