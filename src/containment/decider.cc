#include "src/containment/decider.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ast/analysis.h"
#include "src/containment/absorb.h"
#include "src/containment/instances.h"
#include "src/containment/query_analysis.h"
#include "src/util/iteration.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

struct StateEntry {
  AchievedSet set;
  ExpansionTree witness;  // a proof subtree realizing the set
  std::uint64_t serial = 0;  // stable identity for combination memoization
};

struct GoalEntry {
  Atom goal;  // canonical form
  std::vector<StateEntry> states;
};

class Decider {
 public:
  Decider(const Program& program, const std::string& goal,
          const UnionOfCqs& theta, const ContainmentOptions& options)
      : program_(program),
        goal_(goal),
        options_(options),
        idb_(program.IdbPredicates()),
        proof_vars_(ProofVariables(program)) {
    StatusOr<std::vector<QueryAnalysis>> analyses = AnalyzeUnion(theta);
    if (!analyses.ok()) {
      init_error_ = analyses.status();
      return;
    }
    queries_ = std::move(analyses).value();
  }

  StatusOr<ContainmentDecision> Run() {
    if (!init_error_.ok()) return init_error_;
    if (idb_.count(goal_) == 0) {
      return Status(InvalidArgumentError(
          StrCat("goal predicate ", goal_, " is not an IDB predicate")));
    }
    ContainmentDecision decision;
    // Process EDB-only rules first (they seed the fixpoint), then rules
    // heading the goal predicate (failing root states surface early),
    // then the rest.
    std::vector<const Rule*> ordered_rules;
    auto rule_class = [this](const Rule& rule) {
      bool leaf = true;
      for (const Atom& atom : rule.body()) {
        if (idb_.count(atom.predicate()) > 0) leaf = false;
      }
      if (leaf) return 0;
      return rule.head().predicate() == goal_ ? 1 : 2;
    };
    for (int cls = 0; cls <= 2; ++cls) {
      for (const Rule& rule : program_.rules()) {
        if (rule_class(rule) == cls) ordered_rules.push_back(&rule);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      ++decision.stats.rounds;
      for (const Rule* rule : ordered_rules) {
        bool ok = ForEachCanonicalInstance(
            *rule, proof_vars_.size(), [&](const Rule& instance) {
              return ProcessInstance(instance, &decision, &changed);
            });
        if (!ok) {
          // Stopped early: either a counterexample or a resource limit.
          if (!decision.contained) return decision;
          return Status(ResourceExhaustedError(
              StrCat("containment decider exceeded ", options_.max_states,
                     " states")));
        }
      }
    }
    decision.stats.goals_discovered = store_.size();
    return decision;
  }

 private:
  // Returns false to stop the enumeration (counterexample or limit hit).
  bool ProcessInstance(const Rule& instance, ContainmentDecision* decision,
                       bool* changed) {
    ++decision->stats.combine_calls;
    // Split the body into EDB atoms and child goals.
    std::vector<const Atom*> edb_atoms;
    std::vector<Atom> child_goals;
    std::vector<std::size_t> idb_positions;
    for (std::size_t i = 0; i < instance.body().size(); ++i) {
      const Atom& atom = instance.body()[i];
      if (idb_.count(atom.predicate()) > 0) {
        child_goals.push_back(atom);
        idb_positions.push_back(i);
      } else {
        edb_atoms.push_back(&atom);
      }
    }
    // Look up the canonical entry for each child goal. The states are
    // snapshotted by value: Register() below may grow or prune the very
    // same GoalEntry when the rule is self-recursive (child canonical goal
    // == parent goal), which would invalidate references into it.
    std::vector<std::vector<StateEntry>> child_states;
    std::vector<CanonicalAtomInfo> child_canonical;
    for (const Atom& child : child_goals) {
      CanonicalAtomInfo info = CanonicalizeAtom(child);
      auto it = store_.find(info.atom.ToString());
      if (it == store_.end()) return true;  // no subtree for this child yet
      child_states.push_back(it->second.states);
      child_canonical.push_back(std::move(info));
    }
    // Iterate over every choice of one discovered state per child.
    std::vector<std::size_t> sizes;
    sizes.reserve(child_states.size());
    for (const std::vector<StateEntry>& states : child_states) {
      sizes.push_back(states.size());
    }
    return ForEachProduct(sizes, [&](const std::vector<std::size_t>& choice) {
      // Skip combinations already combined in an earlier round.
      std::string memo_key = instance.ToString();
      for (std::size_t j = 0; j < child_states.size(); ++j) {
        memo_key += StrCat("#", child_states[j][choice[j]].serial);
      }
      if (!combined_.insert(std::move(memo_key)).second) return true;
      // Rename each child state from its canonical frame into the
      // instance frame.
      std::vector<AchievedSet> renamed_sets(child_goals.size());
      std::vector<const AchievedSet*> set_ptrs(child_goals.size());
      for (std::size_t j = 0; j < child_goals.size(); ++j) {
        const StateEntry& state = child_states[j][choice[j]];
        const std::vector<std::string>& originals =
            child_canonical[j].original_vars;
        AchievedSet renamed;
        renamed.reserve(state.set.size());
        for (const AchievedPair& pair : state.set) {
          AchievedPair copy = pair;
          for (auto& [v, term] : copy.pinned) {
            if (term.is_variable()) {
              // Canonical variable $k corresponds to originals[k].
              std::size_t k = CanonicalIndex(term.name());
              DATALOG_CHECK_LT(k, originals.size());
              term = Term::Variable(originals[k]);
            }
          }
          renamed.push_back(std::move(copy));
        }
        std::sort(renamed.begin(), renamed.end());
        renamed_sets[j] = std::move(renamed);
        set_ptrs[j] = &renamed_sets[j];
      }
      AchievedSet parent_set;
      CombineAtNode(queries_, instance, edb_atoms, child_goals, set_ptrs,
                    &parent_set);
      return Register(instance, idb_positions, child_states, child_canonical,
                      choice, std::move(parent_set), decision, changed);
    });
  }

  static std::size_t CanonicalIndex(const std::string& name) {
    DATALOG_CHECK(IsProofVariableName(name));
    return static_cast<std::size_t>(std::stoul(name.substr(1)));
  }

  // Registers a (goal, set) state; returns false to stop everything.
  bool Register(const Rule& instance,
                const std::vector<std::size_t>& idb_positions,
                const std::vector<std::vector<StateEntry>>& child_states,
                const std::vector<CanonicalAtomInfo>& child_canonical,
                const std::vector<std::size_t>& choice, AchievedSet set,
                ContainmentDecision* decision, bool* changed) {
    const Atom& goal_atom = instance.head();
    std::string key = goal_atom.ToString();
    auto [it, inserted] = store_.emplace(key, GoalEntry{goal_atom, {}});
    GoalEntry& entry = it->second;
    if (options_.antichain) {
      for (const StateEntry& existing : entry.states) {
        if (IsAchievedSubset(existing.set, set)) return true;  // dominated
      }
      entry.states.erase(
          std::remove_if(entry.states.begin(), entry.states.end(),
                         [&set](const StateEntry& existing) {
                           return IsAchievedSubset(set, existing.set);
                         }),
          entry.states.end());
    } else {
      for (const StateEntry& existing : entry.states) {
        if (existing.set == set) return true;  // already known
      }
    }
    StateEntry state;
    state.serial = next_serial_++;
    state.set = std::move(set);
    if (options_.track_witness) {
      ExpansionNode node;
      node.goal = goal_atom;
      node.rule = instance;
      node.idb_positions = idb_positions;
      for (std::size_t j = 0; j < child_states.size(); ++j) {
        const StateEntry& child_state = child_states[j][choice[j]];
        // The child witness's root goal is the canonical child goal; embed
        // it into the instance frame by a var(Π) permutation extending
        // canonical-var -> original-var.
        std::vector<std::string> from;
        for (std::size_t k = 0; k < child_canonical[j].original_vars.size();
             ++k) {
          from.push_back(ProofVariableName(k));
        }
        Substitution permutation = ExtendToPermutation(
            from, child_canonical[j].original_vars, proof_vars_);
        node.children.push_back(
            RenameTree(child_state.witness, permutation).root());
      }
      state.witness = ExpansionTree(std::move(node));
    }
    // A new root-goal state must accept, or we have a counterexample.
    if (goal_atom.predicate() == goal_ &&
        !RootAccepts(queries_, goal_atom, state.set)) {
      decision->contained = false;
      if (options_.track_witness) {
        decision->counterexample = state.witness;
      }
      return false;
    }
    entry.states.push_back(std::move(state));
    *changed = true;
    if (++decision->stats.states_discovered > options_.max_states) {
      return false;
    }
    return true;
  }

  const Program& program_;
  const std::string goal_;
  const ContainmentOptions& options_;
  Status init_error_;
  std::set<std::string> idb_;
  std::vector<std::string> proof_vars_;
  std::vector<QueryAnalysis> queries_;
  std::map<std::string, GoalEntry> store_;
  std::set<std::string> combined_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace

StatusOr<ContainmentDecision> DecideDatalogInUcq(
    const Program& program, const std::string& goal, const UnionOfCqs& theta,
    const ContainmentOptions& options) {
  Decider decider(program, goal, theta, options);
  return decider.Run();
}

StatusOr<ContainmentDecision> DecideDatalogInCq(
    const Program& program, const std::string& goal,
    const ConjunctiveQuery& theta, const ContainmentOptions& options) {
  UnionOfCqs union_of_one;
  union_of_one.Add(theta);
  return DecideDatalogInUcq(program, goal, union_of_one, options);
}

}  // namespace datalog
