#include "src/containment/decider.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/ast/analysis.h"
#include "src/containment/absorb.h"
#include "src/containment/instances.h"
#include "src/containment/query_analysis.h"
#include "src/util/flat_table.h"
#include "src/util/iteration.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// One discovered (goal, achievable set) state. The set and witness are
// immutable once registered and held by shared_ptr: combination snapshots
// states by value (a self-recursive rule may grow or prune the very entry
// being iterated), and sharing makes a snapshot O(states), not
// O(states × set size × subtree size).
struct StateEntry {
  std::shared_ptr<const AchievedSet> set;
  std::uint64_t sig = 0;  // AchievedSetSignature(*set)
  std::shared_ptr<const ExpansionTree> witness;
  std::uint64_t serial = 0;  // stable identity for combination memoization
};

struct GoalEntry {
  std::vector<StateEntry> states;
  bool touched = false;  // Register reached this goal in the current run
};

std::size_t CanonicalIndex(const std::string& name) {
  DATALOG_CHECK(IsProofVariableName(name));
  return static_cast<std::size_t>(std::stoul(name.substr(1)));
}

}  // namespace

// θ-independent state shared across Decide calls on one (program, goal):
// the ordered rules plus the interned dense-id substrate — a goal-atom
// dictionary and the materialized canonical instances. Mirrors the
// engine's PredicateDictionary scheme: structures are interned once and
// the decider hot path moves integer ids, not strings.
struct ContainmentChecker::Context {
  // The program being checked: borrowed for one-shot decisions
  // (DecideDatalogInUcq), owned when the checker is reused across Θs.
  const Program* program = nullptr;
  std::optional<Program> owned_program;
  std::string goal;
  std::unordered_set<std::string> idb;  // hashed; no ordering needed here
  std::vector<std::string> proof_vars;
  // EDB-only rules first (they seed the fixpoint), then rules heading the
  // goal predicate (failing root states surface early), then the rest.
  std::vector<const Rule*> ordered_rules;

  // --- interned substrate (the intern_memo path) ----------------------
  // Decider-local predicate ids for goal-atom rows.
  std::unordered_map<std::string, int> pred_ids;
  // Decider-local constant ids. Constants encode as non-negative ints and
  // proof variables $k as -(k+1), so the namespaces cannot collide within
  // an encoded row.
  std::unordered_map<std::string, int> const_ids;
  // Canonical goal atoms -> dense goal ids; row = [pred_id, enc(args)...].
  VarKeyTable goal_keys;

  // A materialized canonical instance plus everything ProcessInstance
  // used to recompute from strings every round: the EDB/IDB split, the
  // canonicalization of each child goal, and the interned goal ids. The
  // dense instance id is the index into `instances`.
  struct CachedInstance {
    Rule rule;
    // Pointers into rule.body()'s heap buffer: stable across moves of the
    // CachedInstance (moving a Rule transfers the same atom storage).
    std::vector<const Atom*> edb_atoms;
    std::vector<std::size_t> idb_positions;
    std::vector<Atom> child_goals;
    std::vector<CanonicalAtomInfo> child_canonical;
    // child_canonical[j].original_vars materialized as variable Terms.
    std::vector<std::vector<Term>> child_original_terms;
    std::vector<std::uint32_t> child_goal_ids;
    std::uint32_t head_goal_id = 0;
  };
  // Per rule (in ordered_rules order): the dense ids of its cached
  // instances, in canonical-enumeration order. `complete` marks that the
  // enumeration ran to the end; until then a round resumes it, skipping
  // the cached prefix at integer cost (ForEachCanonicalAssignment).
  struct RuleCache {
    std::vector<std::string> rule_vars;
    std::vector<std::uint32_t> instance_ids;
    bool complete = false;
  };
  std::vector<CachedInstance> instances;
  std::vector<RuleCache> rule_caches;  // parallel to ordered_rules

  // Populates the Θ-independent fields. `program_ref` must outlive this
  // context's use; the ordered rule pointers point into it.
  void Init(const Program& program_ref, std::string goal_name) {
    program = &program_ref;
    goal = std::move(goal_name);
    for (const std::string& predicate : program_ref.IdbPredicates()) {
      idb.insert(predicate);
    }
    proof_vars = ProofVariables(program_ref);
    auto rule_class = [this](const Rule& rule) {
      bool leaf = true;
      for (const Atom& atom : rule.body()) {
        if (idb.count(atom.predicate()) > 0) leaf = false;
      }
      if (leaf) return 0;
      return rule.head().predicate() == goal ? 1 : 2;
    };
    for (int cls = 0; cls <= 2; ++cls) {
      for (const Rule& rule : program_ref.rules()) {
        if (rule_class(rule) == cls) {
          ordered_rules.push_back(&rule);
        }
      }
    }
  }

  int EncodeTerm(const Term& term) {
    if (term.is_variable()) {
      return -(static_cast<int>(CanonicalIndex(term.name())) + 1);
    }
    auto [it, inserted] =
        const_ids.emplace(term.name(), static_cast<int>(const_ids.size()));
    return it->second;
  }

  std::uint32_t InternGoalAtom(const Atom& atom) {
    auto [pit, pinserted] = pred_ids.emplace(
        atom.predicate(), static_cast<int>(pred_ids.size()));
    std::vector<int> row;
    row.reserve(atom.arity() + 1);
    row.push_back(pit->second);
    for (const Term& t : atom.args()) row.push_back(EncodeTerm(t));
    return goal_keys.Intern(row.data(), row.size()).first;
  }

  CachedInstance BuildCachedInstance(Rule instance) {
    CachedInstance cached;
    for (std::size_t i = 0; i < instance.body().size(); ++i) {
      const Atom& atom = instance.body()[i];
      if (idb.count(atom.predicate()) > 0) {
        cached.idb_positions.push_back(i);
        cached.child_goals.push_back(atom);
      }
    }
    for (const Atom& child : cached.child_goals) {
      CanonicalAtomInfo info = CanonicalizeAtom(child);
      cached.child_goal_ids.push_back(InternGoalAtom(info.atom));
      std::vector<Term> originals;
      originals.reserve(info.original_vars.size());
      for (const std::string& v : info.original_vars) {
        originals.push_back(Term::Variable(v));
      }
      cached.child_original_terms.push_back(std::move(originals));
      cached.child_canonical.push_back(std::move(info));
    }
    // Instance heads are already canonical: rule variables are numbered in
    // head-first first-occurrence order, so the head's variables carry
    // canonical indexes exactly as CanonicalizeAtom would assign them.
    // (The string-keyed path relies on the same fact: it stores goals
    // under the raw head rendering and looks children up canonicalized.)
    cached.head_goal_id = InternGoalAtom(instance.head());
    cached.rule = std::move(instance);
    for (const Atom& atom : cached.rule.body()) {
      if (idb.count(atom.predicate()) == 0) {
        cached.edb_atoms.push_back(&atom);
      }
    }
    return cached;
  }
};

// One Decide call: the per-Θ fixpoint over (goal, achievable set) states.
// Two memoization substrates are implemented behind one Register core:
// the interned path (dense goal/instance ids, flat integer memo rows) and
// the string-keyed baseline it replaced, kept as an ablation arm.
class DeciderRun {
 public:
  DeciderRun(ContainmentChecker::Context* context, const UnionOfCqs& theta,
             const ContainmentOptions& options)
      : ctx_(*context), options_(options) {
    StatusOr<std::vector<QueryAnalysis>> analyses = AnalyzeUnion(theta);
    if (!analyses.ok()) {
      init_error_ = analyses.status();
      return;
    }
    queries_ = std::move(analyses).value();
  }

  StatusOr<ContainmentDecision> Run() {
    if (!init_error_.ok()) return init_error_;
    if (ctx_.idb.count(ctx_.goal) == 0) {
      return Status(InvalidArgumentError(
          StrCat("goal predicate ", ctx_.goal, " is not an IDB predicate")));
    }
    ContainmentDecision decision;
    if (options_.intern_memo) {
      if (ctx_.rule_caches.empty()) {
        ctx_.rule_caches.resize(ctx_.ordered_rules.size());
        for (std::size_t r = 0; r < ctx_.ordered_rules.size(); ++r) {
          ctx_.rule_caches[r].rule_vars =
              ctx_.ordered_rules[r]->VariableNames();
        }
      }
      store_.resize(ctx_.goal_keys.size());
    }
    bool changed = true;
    while (changed) {
      changed = false;
      ++decision.stats.rounds;
      bool ok = options_.intern_memo ? RunRoundInterned(&decision, &changed)
                                     : RunRoundString(&decision, &changed);
      if (!ok) {
        // Stopped early: either a counterexample or a resource limit.
        if (options_.intern_memo) {
          decision.stats.instances_cached = ctx_.instances.size();
        }
        if (!decision.contained) return decision;
        return Status(ResourceExhaustedError(
            StrCat("containment decider exceeded ", options_.max_states,
                   " states")));
      }
    }
    decision.stats.goals_discovered =
        options_.intern_memo ? touched_goals_ : string_store_.size();
    if (options_.intern_memo) {
      decision.stats.instances_cached = ctx_.instances.size();
    }
    return decision;
  }

 private:
  // --- interned round: cached instances + flat integer memo -----------

  bool RunRoundInterned(ContainmentDecision* decision, bool* changed) {
    for (std::size_t r = 0; r < ctx_.ordered_rules.size(); ++r) {
      ContainmentChecker::Context::RuleCache& cache = ctx_.rule_caches[r];
      for (std::uint32_t id : cache.instance_ids) {
        if (!ProcessCached(ctx_.instances[id], id, decision, changed)) {
          return false;
        }
      }
      if (cache.complete) continue;
      // Resume the canonical enumeration past the cached prefix. The
      // prefix is skipped at assignment level — no substitution strings.
      std::size_t seen = 0;
      bool finished = ForEachCanonicalAssignment(
          *ctx_.ordered_rules[r], ctx_.proof_vars.size(),
          [&](const std::vector<std::size_t>& classes) {
            if (seen++ < cache.instance_ids.size()) return true;
            Rule instance = InstantiateAssignment(*ctx_.ordered_rules[r],
                                                  cache.rule_vars, classes);
            std::uint32_t id =
                static_cast<std::uint32_t>(ctx_.instances.size());
            ctx_.instances.push_back(
                ctx_.BuildCachedInstance(std::move(instance)));
            store_.resize(ctx_.goal_keys.size());
            cache.instance_ids.push_back(id);
            return ProcessCached(ctx_.instances[id], id, decision, changed);
          });
      if (!finished) return false;
      cache.complete = true;
    }
    return true;
  }

  bool ProcessCached(const ContainmentChecker::Context::CachedInstance& inst,
                     std::uint32_t instance_id, ContainmentDecision* decision,
                     bool* changed) {
    ++decision->stats.combine_calls;
    // Snapshot the states of each child goal by value: Register below may
    // grow or prune the very same GoalEntry when the rule is
    // self-recursive (child canonical goal == parent goal).
    std::vector<std::vector<StateEntry>> child_states;
    child_states.reserve(inst.child_goal_ids.size());
    for (std::uint32_t goal_id : inst.child_goal_ids) {
      const GoalEntry& entry = store_[goal_id];
      if (entry.states.empty()) return true;  // no subtree for this child yet
      child_states.push_back(entry.states);
    }
    // Iterate over every choice of one discovered state per child.
    std::vector<std::size_t> sizes;
    sizes.reserve(child_states.size());
    for (const std::vector<StateEntry>& states : child_states) {
      sizes.push_back(states.size());
    }
    return ForEachProduct(sizes, [&](const std::vector<std::size_t>& choice) {
      // Skip combinations already combined in an earlier round: the memo
      // row is (instance id, child serial...) with each 64-bit serial
      // packed into two ints, deduplicated open-addressing style.
      memo_row_.clear();
      memo_row_.push_back(static_cast<int>(instance_id));
      for (std::size_t j = 0; j < child_states.size(); ++j) {
        std::uint64_t serial = child_states[j][choice[j]].serial;
        memo_row_.push_back(static_cast<int>(
            static_cast<std::uint32_t>(serial)));
        memo_row_.push_back(static_cast<int>(
            static_cast<std::uint32_t>(serial >> 32)));
      }
      if (!combined_.Intern(memo_row_.data(), memo_row_.size()).second) {
        ++decision->stats.memo_hits;
        return true;
      }
      AchievedSet parent_set;
      CombineChoice(inst.rule, inst.edb_atoms, inst.child_goals,
                    inst.child_original_terms, child_states, choice,
                    &parent_set);
      GoalEntry& entry = store_[inst.head_goal_id];
      if (!entry.touched) {
        entry.touched = true;
        ++touched_goals_;
      }
      return Register(entry, inst.rule, inst.idb_positions, child_states,
                      inst.child_canonical, choice, std::move(parent_set),
                      decision, changed);
    });
  }

  // --- string-keyed round: the pre-interning baseline (ablation arm) --

  bool RunRoundString(ContainmentDecision* decision, bool* changed) {
    for (const Rule* rule : ctx_.ordered_rules) {
      bool ok = ForEachCanonicalInstance(
          *rule, ctx_.proof_vars.size(), [&](const Rule& instance) {
            return ProcessInstanceString(instance, decision, changed);
          });
      if (!ok) return false;
    }
    return true;
  }

  bool ProcessInstanceString(const Rule& instance,
                             ContainmentDecision* decision, bool* changed) {
    ++decision->stats.combine_calls;
    // Split the body into EDB atoms and child goals.
    std::vector<const Atom*> edb_atoms;
    std::vector<Atom> child_goals;
    std::vector<std::size_t> idb_positions;
    for (std::size_t i = 0; i < instance.body().size(); ++i) {
      const Atom& atom = instance.body()[i];
      if (ctx_.idb.count(atom.predicate()) > 0) {
        child_goals.push_back(atom);
        idb_positions.push_back(i);
      } else {
        edb_atoms.push_back(&atom);
      }
    }
    // Look up the canonical entry for each child goal, snapshotting the
    // states by value (see ProcessCached).
    std::vector<std::vector<StateEntry>> child_states;
    std::vector<CanonicalAtomInfo> child_canonical;
    std::vector<std::vector<Term>> child_original_terms;
    for (const Atom& child : child_goals) {
      CanonicalAtomInfo info = CanonicalizeAtom(child);
      auto it = string_store_.find(info.atom.ToString());
      if (it == string_store_.end()) return true;  // no subtree yet
      child_states.push_back(it->second.states);
      std::vector<Term> originals;
      originals.reserve(info.original_vars.size());
      for (const std::string& v : info.original_vars) {
        originals.push_back(Term::Variable(v));
      }
      child_original_terms.push_back(std::move(originals));
      child_canonical.push_back(std::move(info));
    }
    std::vector<std::size_t> sizes;
    sizes.reserve(child_states.size());
    for (const std::vector<StateEntry>& states : child_states) {
      sizes.push_back(states.size());
    }
    return ForEachProduct(sizes, [&](const std::vector<std::size_t>& choice) {
      // Skip combinations already combined in an earlier round.
      std::string memo_key = instance.ToString();
      for (std::size_t j = 0; j < child_states.size(); ++j) {
        memo_key += StrCat("#", child_states[j][choice[j]].serial);
      }
      if (!combined_strings_.insert(std::move(memo_key)).second) {
        ++decision->stats.memo_hits;
        return true;
      }
      AchievedSet parent_set;
      CombineChoice(instance, edb_atoms, child_goals, child_original_terms,
                    child_states, choice, &parent_set);
      GoalEntry& entry = string_store_[instance.head().ToString()];
      return Register(entry, instance, idb_positions, child_states,
                      child_canonical, choice, std::move(parent_set),
                      decision, changed);
    });
  }

  // --- shared combination + registration core -------------------------

  // Renames each chosen child state from its canonical frame into the
  // instance frame and runs one bottom-up combination step.
  void CombineChoice(const Rule& instance,
                     const std::vector<const Atom*>& edb_atoms,
                     const std::vector<Atom>& child_goals,
                     const std::vector<std::vector<Term>>& child_original_terms,
                     const std::vector<std::vector<StateEntry>>& child_states,
                     const std::vector<std::size_t>& choice,
                     AchievedSet* parent_set) {
    std::vector<AchievedSet> renamed_sets(child_goals.size());
    std::vector<const AchievedSet*> set_ptrs(child_goals.size());
    for (std::size_t j = 0; j < child_goals.size(); ++j) {
      const StateEntry& state = child_states[j][choice[j]];
      const std::vector<Term>& originals = child_original_terms[j];
      AchievedSet renamed;
      renamed.reserve(state.set->size());
      for (const AchievedPair& pair : *state.set) {
        AchievedPair copy = pair;
        for (auto& [v, term] : copy.pinned) {
          if (term.is_variable()) {
            // Canonical variable $k corresponds to originals[k].
            std::size_t k = CanonicalIndex(term.name());
            DATALOG_CHECK_LT(k, originals.size());
            term = originals[k];
          }
        }
        renamed.push_back(std::move(copy));
      }
      std::sort(renamed.begin(), renamed.end());
      renamed_sets[j] = std::move(renamed);
      set_ptrs[j] = &renamed_sets[j];
    }
    CombineAtNode(queries_, instance, edb_atoms, child_goals, set_ptrs,
                  parent_set);
  }

  // Registers a (goal, set) state; returns false to stop everything.
  bool Register(GoalEntry& entry, const Rule& instance,
                const std::vector<std::size_t>& idb_positions,
                const std::vector<std::vector<StateEntry>>& child_states,
                const std::vector<CanonicalAtomInfo>& child_canonical,
                const std::vector<std::size_t>& choice, AchievedSet set,
                ContainmentDecision* decision, bool* changed) {
    const Atom& goal_atom = instance.head();
    const std::uint64_t sig = AchievedSetSignature(set);
    if (options_.antichain) {
      for (const StateEntry& existing : entry.states) {
        ++decision->stats.subset_checks;
        if (!SignatureMayBeSubset(existing.sig, sig)) {
          ++decision->stats.subset_sig_rejects;
          continue;
        }
        if (IsAchievedSubset(*existing.set, set)) return true;  // dominated
      }
      entry.states.erase(
          std::remove_if(entry.states.begin(), entry.states.end(),
                         [&](const StateEntry& existing) {
                           ++decision->stats.subset_checks;
                           if (!SignatureMayBeSubset(sig, existing.sig)) {
                             ++decision->stats.subset_sig_rejects;
                             return false;
                           }
                           return IsAchievedSubset(set, *existing.set);
                         }),
          entry.states.end());
    } else {
      for (const StateEntry& existing : entry.states) {
        if (existing.sig == sig && *existing.set == set) {
          return true;  // already known
        }
      }
    }
    StateEntry state;
    state.serial = next_serial_++;
    state.set = std::make_shared<const AchievedSet>(std::move(set));
    state.sig = sig;
    if (options_.track_witness) {
      ExpansionNode node;
      node.goal = goal_atom;
      node.rule = instance;
      node.idb_positions = idb_positions;
      for (std::size_t j = 0; j < child_states.size(); ++j) {
        const StateEntry& child_state = child_states[j][choice[j]];
        // The child witness's root goal is the canonical child goal; embed
        // it into the instance frame by a var(Π) permutation extending
        // canonical-var -> original-var.
        std::vector<std::string> from;
        for (std::size_t k = 0; k < child_canonical[j].original_vars.size();
             ++k) {
          from.push_back(ProofVariableName(k));
        }
        Substitution permutation = ExtendToPermutation(
            from, child_canonical[j].original_vars, ctx_.proof_vars);
        node.children.push_back(
            RenameTree(*child_state.witness, permutation).root());
      }
      state.witness =
          std::make_shared<const ExpansionTree>(std::move(node));
    }
    // A new root-goal state must accept, or we have a counterexample.
    if (goal_atom.predicate() == ctx_.goal &&
        !RootAccepts(queries_, goal_atom, *state.set)) {
      decision->contained = false;
      if (options_.track_witness) {
        decision->counterexample = *state.witness;
      }
      return false;
    }
    entry.states.push_back(std::move(state));
    *changed = true;
    if (++decision->stats.states_discovered > options_.max_states) {
      return false;
    }
    return true;
  }

  ContainmentChecker::Context& ctx_;
  const ContainmentOptions& options_;
  Status init_error_;
  std::vector<QueryAnalysis> queries_;
  std::uint64_t next_serial_ = 1;

  // Interned-path per-run state: goal store indexed by dense goal id and
  // the flat combination memo.
  std::vector<GoalEntry> store_;
  std::size_t touched_goals_ = 0;
  VarKeyTable combined_;
  std::vector<int> memo_row_;

  // String-keyed per-run state. The ablation arm deliberately keeps the
  // seed's ordered containers (std::map/std::set) so the decider
  // benchmarks measure exactly the memoization substrate the interned
  // path replaced; the production path never touches these.
  std::map<std::string, GoalEntry> string_store_;
  std::set<std::string> combined_strings_;
};

ContainmentChecker::ContainmentChecker(Program program, std::string goal)
    : context_(new Context) {
  context_->owned_program.emplace(std::move(program));
  context_->Init(*context_->owned_program, std::move(goal));
}

ContainmentChecker::~ContainmentChecker() = default;
ContainmentChecker::ContainmentChecker(ContainmentChecker&&) noexcept =
    default;
ContainmentChecker& ContainmentChecker::operator=(
    ContainmentChecker&&) noexcept = default;

const Program& ContainmentChecker::program() const {
  return *context_->program;
}

const std::string& ContainmentChecker::goal() const { return context_->goal; }

StatusOr<ContainmentDecision> ContainmentChecker::Decide(
    const UnionOfCqs& theta, const ContainmentOptions& options) {
  DeciderRun run(context_.get(), theta, options);
  return run.Run();
}

StatusOr<ContainmentDecision> DecideDatalogInUcq(
    const Program& program, const std::string& goal, const UnionOfCqs& theta,
    const ContainmentOptions& options) {
  // One-shot path: borrow the caller's program for the duration of the
  // call rather than copying it into an owning checker.
  ContainmentChecker::Context context;
  context.Init(program, goal);
  DeciderRun run(&context, theta, options);
  return run.Run();
}

StatusOr<ContainmentDecision> DecideDatalogInCq(
    const Program& program, const std::string& goal,
    const ConjunctiveQuery& theta, const ContainmentOptions& options) {
  UnionOfCqs union_of_one;
  union_of_one.Add(theta);
  return DecideDatalogInUcq(program, goal, union_of_one, options);
}

}  // namespace datalog
