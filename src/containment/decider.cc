#include "src/containment/decider.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/analysis/reachability.h"
#include "src/ast/analysis.h"
#include "src/containment/absorb.h"
#include "src/containment/instances.h"
#include "src/containment/query_analysis.h"
#include "src/ir/ir.h"
#include "src/util/bitset.h"
#include "src/util/flat_table.h"
#include "src/util/iteration.h"
#include "src/util/logging.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace datalog {
namespace {

// One discovered (goal, achievable set) state, parameterized over the
// achieved-set representation (Term-based AchievedSet on the baseline
// paths, IrAchievedSet on the IR path). The set and witness are
// immutable once registered and held by shared_ptr: combination snapshots
// states by value (a self-recursive rule may grow or prune the very entry
// being iterated), and sharing makes a snapshot O(states), not
// O(states × set size × subtree size).
template <typename SetT>
struct StateEntryT {
  std::shared_ptr<const SetT> set;
  std::uint64_t sig = 0;  // AchievedSetSignature(*set)
  // Exact wide bitset over interned achieved-pair ids — the word-parallel
  // rendering of *set. Populated only on the bitset path
  // (use_ir && use_bitsets); empty on the ablation arms.
  Bitset bits;
  std::shared_ptr<const ExpansionTree> witness;
  std::uint64_t serial = 0;  // stable identity for combination memoization
};

template <typename SetT>
struct GoalEntryT {
  std::vector<StateEntryT<SetT>> states;
  // Bitset-path index over `states`: the same achieved sets as exact
  // bitsets, payloads are state serials so prunes can be mirrored back
  // into the ordered vector. kKeepMinimal under antichain maintenance,
  // kExact (pure dedup) otherwise; unused on the ablation arms.
  AntichainStore antichain;
  bool touched = false;  // Register reached this goal in the current run
};

using StateEntry = StateEntryT<AchievedSet>;
using GoalEntry = GoalEntryT<AchievedSet>;
using IrStateEntry = StateEntryT<IrAchievedSet>;
using IrGoalEntry = GoalEntryT<IrAchievedSet>;

// Canonical variables are proof variables; their index is their identity
// on the interned substrate.
std::size_t CanonicalIndex(const std::string& name) {
  return ProofVariableIndex(name);
}

}  // namespace

// θ-independent state shared across Decide calls on one (program, goal):
// the ordered rules plus the interned dense-id substrate — the shared
// program IR (predicate/constant dictionaries; src/ir/ir.h), a goal-atom
// dictionary, and the materialized canonical instances. Mirrors the
// engine's PredicateDictionary scheme: structures are interned once and
// the decider hot path moves integer ids, not strings.
struct ContainmentChecker::Context {
  // The program being checked: borrowed for one-shot decisions
  // (DecideDatalogInUcq), owned when the checker is reused across Θs.
  const Program* program = nullptr;
  std::optional<Program> owned_program;
  std::string goal;
  std::unordered_set<std::string> idb;  // hashed; no ordering needed here
  std::vector<std::string> proof_vars;
  // EDB-only rules first (they seed the fixpoint), then rules heading the
  // goal predicate (failing root states surface early), then the rest.
  std::vector<const Rule*> ordered_rules;
  // Parallel to ordered_rules: 1 when the rule's head predicate is
  // backward-reachable from the goal. An unreachable rule can head no
  // subtree of a goal-rooted proof tree, so runs with
  // ContainmentOptions::prune_unreachable skip it entirely.
  std::vector<char> rule_reachable;

  // --- interned substrate (the use_ir / intern_memo paths) -------------
  // The shared program IR, seeded from the program's *carried* IR
  // (ir::CarriedIr) — so a Program that was already interned by an
  // earlier Decide, a previous checker, or any other IR consumer is
  // never re-interned. The carried object is shared immutable state
  // with copy-on-fold semantics, and this context folds each Θ's
  // predicates and constants into the dictionaries per run, so Init
  // takes a private copy to fold into (append-only, so cached instance
  // encodings stay valid across Decide calls and existing ids never
  // move).
  std::shared_ptr<ir::ProgramIr> program_ir;
  // Interning passes Init paid (1 when the carried IR was missing, else
  // 0); consumed into ContainmentStats::program_ir_builds by the first
  // Decide on this context.
  std::size_t ir_builds_paid = 0;
  // Lazily-built worker pool handed to looping canonical-database
  // drivers via SharedEvalPool (amortizes thread spawns across a
  // checker's lifetime); null until requested.
  std::unique_ptr<ThreadPool> eval_pool;
  std::size_t eval_pool_threads = 0;
  std::int32_t goal_pred_id = -1;
  // Canonical goal atoms -> dense goal ids; row = [pred_id, enc(args)...]
  // with proof variables $k encoded as -(k+1) and constants as their
  // non-negative dictionary ids (the namespaces cannot collide).
  VarKeyTable goal_keys;

  // One rule encoded once onto the IR id spaces: atoms carry the
  // predicate dictionary id and int arguments (rule-variable slot in
  // VariableNames() order, or ~constant_id). Canonical instances are then
  // stamped out of the template at integer cost — no substitution maps,
  // no Term construction.
  struct RuleTemplate {
    struct AtomTpl {
      std::int32_t predicate = 0;
      bool idb = false;
      // args >= 0: rule-variable slot; args < 0: constant ~id.
      std::vector<std::int32_t> args;
    };
    AtomTpl head;
    std::vector<AtomTpl> body;
    std::vector<std::size_t> idb_positions;  // body positions of IDB atoms
  };

  // A materialized canonical instance plus everything ProcessInstance
  // used to recompute from strings every round: the interned goal ids and
  // the IR encodings the use_ir combination step runs on (built for every
  // instance, at integer cost), and the Term-level rendering — the Rule,
  // the EDB/IDB split as Atoms, the canonicalization bookkeeping — built
  // lazily only when a run actually needs Terms (the non-IR arms, or
  // witness tracking on any arm).
  struct CachedInstance {
    // The class assignment that materialized this instance (classes[i] is
    // the proof-variable index of rule variable slot i); kept so the
    // Term-level rendering can be reproduced on demand.
    std::vector<std::size_t> classes;
    std::vector<std::size_t> idb_positions;
    std::vector<std::uint32_t> child_goal_ids;
    std::uint32_t head_goal_id = 0;
    // --- IR encodings (instance frame: variables are proof-var indexes,
    // --- constants dictionary ids) -----------------------------------
    std::vector<IrInstanceAtom> ir_edb;
    std::int32_t ir_head_pred = 0;
    std::vector<ir::TermId> ir_head_args;
    // Indexed by proof-variable index: does the variable occur in the
    // head (i.e. is its image visible at the parent goal)?
    Bitset ir_head_visible;
    // The variable of the instance frame each canonical child variable
    // replaced: canonical $k of child j is ir_child_originals[j][k].
    std::vector<std::vector<ir::TermId>> ir_child_originals;
    // --- lazy Term-level rendering -----------------------------------
    bool has_strings = false;
    Rule rule;
    // Pointers into rule.body()'s heap buffer: stable across moves of the
    // CachedInstance (moving a Rule transfers the same atom storage).
    std::vector<const Atom*> edb_atoms;
    std::vector<Atom> child_goals;
    std::vector<CanonicalAtomInfo> child_canonical;
    // child_canonical[j].original_vars materialized as variable Terms.
    std::vector<std::vector<Term>> child_original_terms;
  };
  // Per rule (in ordered_rules order): the encoded template plus the
  // dense ids of its cached instances, in canonical-enumeration order.
  // `complete` marks that the enumeration ran to the end; until then a
  // round resumes it, skipping the cached prefix at integer cost
  // (ForEachCanonicalAssignment).
  struct RuleCache {
    std::vector<std::string> rule_vars;
    RuleTemplate tpl;
    std::vector<std::uint32_t> instance_ids;
    bool complete = false;
  };
  std::vector<CachedInstance> instances;
  std::vector<RuleCache> rule_caches;  // parallel to ordered_rules

  // Populates the Θ-independent fields. `program_ref` must outlive this
  // context's use; the ordered rule pointers point into it.
  void Init(const Program& program_ref, std::string goal_name) {
    program = &program_ref;
    goal = std::move(goal_name);
    for (const std::string& predicate : program_ref.IdbPredicates()) {
      idb.insert(predicate);
    }
    proof_vars = ProofVariables(program_ref);
    const std::size_t builds_before = ir::ProgramIrBuildCount();
    // Copy-on-fold: the carried IR is shared and immutable; this
    // context interns Θ names into the dictionaries, so it folds into a
    // private copy (an id-for-id clone — no re-interning, not a build).
    program_ir = std::make_shared<ir::ProgramIr>(*ir::CarriedIr(program_ref));
    ir_builds_paid = ir::ProgramIrBuildCount() - builds_before;
    goal_pred_id =
        static_cast<std::int32_t>(program_ir->predicates().Intern(goal));
    auto rule_class = [this](const Rule& rule) {
      bool leaf = true;
      for (const Atom& atom : rule.body()) {
        if (idb.count(atom.predicate()) > 0) leaf = false;
      }
      if (leaf) return 0;
      return rule.head().predicate() == goal ? 1 : 2;
    };
    for (int cls = 0; cls <= 2; ++cls) {
      for (const Rule& rule : program_ref.rules()) {
        if (rule_class(rule) == cls) {
          ordered_rules.push_back(&rule);
        }
      }
    }
    std::unordered_set<std::string> reachable =
        GoalReachablePredicates(program_ref, goal);
    rule_reachable.reserve(ordered_rules.size());
    for (const Rule* rule : ordered_rules) {
      rule_reachable.push_back(
          reachable.count(rule->head().predicate()) > 0 ? 1 : 0);
    }
  }

  // Encodes `rule` once onto the IR id spaces; pays the string lookups a
  // single time per (program, goal) context.
  RuleTemplate BuildRuleTemplate(const Rule& rule,
                                 const std::vector<std::string>& rule_vars) {
    RuleTemplate tpl;
    std::unordered_map<std::string, std::int32_t> slots;
    for (std::size_t i = 0; i < rule_vars.size(); ++i) {
      slots.emplace(rule_vars[i], static_cast<std::int32_t>(i));
    }
    auto encode_atom = [&](const Atom& atom) {
      RuleTemplate::AtomTpl enc;
      enc.predicate = static_cast<std::int32_t>(
          program_ir->predicates().Intern(atom.predicate()));
      enc.idb = idb.count(atom.predicate()) > 0;
      enc.args.reserve(atom.arity());
      for (const Term& t : atom.args()) {
        if (t.is_variable()) {
          enc.args.push_back(slots.at(t.name()));
        } else {
          enc.args.push_back(~static_cast<std::int32_t>(
              program_ir->constants().Intern(t.name())));
        }
      }
      return enc;
    };
    tpl.head = encode_atom(rule.head());
    tpl.body.reserve(rule.body().size());
    for (std::size_t i = 0; i < rule.body().size(); ++i) {
      tpl.body.push_back(encode_atom(rule.body()[i]));
      if (tpl.body.back().idb) tpl.idb_positions.push_back(i);
    }
    return tpl;
  }

  // Stamps the canonical instance for one class assignment out of the
  // rule template: goal rows, IR atoms, and the child canonicalization
  // all on integers. The Term-level rendering is deferred to
  // EnsureInstanceStrings.
  CachedInstance BuildCachedInstance(const RuleTemplate& tpl,
                                     const std::vector<std::size_t>& classes) {
    CachedInstance cached;
    cached.classes = classes;
    cached.idb_positions = tpl.idb_positions;
    auto encode_ir = [&](std::int32_t arg) {
      return arg >= 0
                 ? ir::TermId::Variable(
                       static_cast<std::uint32_t>(classes[arg]))
                 : ir::TermId::Constant(static_cast<std::uint32_t>(~arg));
    };
    // Head: instance heads are already canonical — rule variables are
    // numbered in head-first first-occurrence order, so head classes
    // carry canonical indexes exactly as CanonicalizeAtom would assign
    // them. (The string-keyed path relies on the same fact: it stores
    // goals under the raw head rendering and looks children up
    // canonicalized.) Goal rows encode variables $k as -(k+1) and
    // constants as their non-negative dictionary ids.
    cached.ir_head_pred = tpl.head.predicate;
    cached.ir_head_visible = Bitset(proof_vars.size());
    row_scratch.clear();
    row_scratch.push_back(tpl.head.predicate);
    for (std::int32_t arg : tpl.head.args) {
      ir::TermId id = encode_ir(arg);
      cached.ir_head_args.push_back(id);
      if (id.is_variable()) {
        cached.ir_head_visible.Set(id.index());
        row_scratch.push_back(-(static_cast<int>(id.index()) + 1));
      } else {
        row_scratch.push_back(static_cast<int>(id.index()));
      }
    }
    cached.head_goal_id =
        goal_keys.Intern(row_scratch.data(), row_scratch.size()).first;
    // Body: EDB atoms become IR atoms in the instance frame; IDB atoms
    // are canonicalized on integers (first-occurrence renumbering of the
    // proof-variable indexes) into goal rows plus the canonical->frame
    // variable mapping the combination step renames through.
    canon_scratch.assign(proof_vars.size(), -1);
    for (const RuleTemplate::AtomTpl& atom : tpl.body) {
      if (!atom.idb) {
        IrInstanceAtom enc;
        enc.predicate = atom.predicate;
        enc.args.reserve(atom.args.size());
        for (std::int32_t arg : atom.args) enc.args.push_back(encode_ir(arg));
        cached.ir_edb.push_back(std::move(enc));
        continue;
      }
      std::vector<ir::TermId> originals;
      row_scratch.clear();
      row_scratch.push_back(atom.predicate);
      for (std::int32_t arg : atom.args) {
        ir::TermId id = encode_ir(arg);
        if (!id.is_variable()) {
          row_scratch.push_back(static_cast<int>(id.index()));
          continue;
        }
        int& canonical = canon_scratch[id.index()];
        if (canonical < 0) {
          canonical = static_cast<int>(originals.size());
          originals.push_back(id);
        }
        row_scratch.push_back(-(canonical + 1));
      }
      cached.child_goal_ids.push_back(
          goal_keys.Intern(row_scratch.data(), row_scratch.size()).first);
      // Reset only the entries this child touched.
      for (ir::TermId original : originals) {
        canon_scratch[original.index()] = -1;
      }
      cached.ir_child_originals.push_back(std::move(originals));
    }
    return cached;
  }

  // Materializes the Term-level rendering of a cached instance: the Rule
  // itself, the EDB/IDB split as Atoms, and the canonicalization
  // bookkeeping. Needed by the non-IR arms (their achieved sets carry
  // Terms) and by witness construction on every arm; the IR fixpoint with
  // witness tracking off never calls this.
  void EnsureInstanceStrings(CachedInstance* cached, const Rule& rule,
                             const std::vector<std::string>& rule_vars) {
    if (cached->has_strings) return;
    Rule instance = InstantiateAssignment(rule, rule_vars, cached->classes);
    for (const std::size_t i : cached->idb_positions) {
      cached->child_goals.push_back(instance.body()[i]);
    }
    for (const Atom& child : cached->child_goals) {
      CanonicalAtomInfo info = CanonicalizeAtom(child);
      std::vector<Term> originals;
      originals.reserve(info.original_vars.size());
      for (const std::string& v : info.original_vars) {
        originals.push_back(Term::Variable(v));
      }
      cached->child_original_terms.push_back(std::move(originals));
      cached->child_canonical.push_back(std::move(info));
    }
    cached->rule = std::move(instance);
    for (const Atom& atom : cached->rule.body()) {
      if (idb.count(atom.predicate()) == 0) {
        cached->edb_atoms.push_back(&atom);
      }
    }
    cached->has_strings = true;
  }

  // Scratch buffers for BuildCachedInstance (goal rows and the per-child
  // canonical renumbering, indexed by proof-variable index).
  std::vector<int> row_scratch;
  std::vector<int> canon_scratch;
};

// One Decide call: the per-Θ fixpoint over (goal, achievable set) states.
// Three memoization substrates are implemented behind one Register core:
// the IR path (dense goal/instance ids, integer pinned images, renamed-set
// memo), the interned path it extends (dense ids but Term-based achieved
// sets), and the string-keyed baseline both replaced, kept as ablation
// arms.
class DeciderRun {
 public:
  DeciderRun(ContainmentChecker::Context* context, const UnionOfCqs& theta,
             const ContainmentOptions& options)
      : ctx_(*context),
        options_(options),
        governor_(options.limits, "containment decider"),
        max_states_(options.limits.StatesOr(1'000'000)) {
    StatusOr<std::vector<QueryAnalysis>> analyses = AnalyzeUnion(theta);
    if (!analyses.ok()) {
      init_error_ = analyses.status();
      return;
    }
    queries_ = std::move(analyses).value();
  }

  StatusOr<ContainmentDecision> Run() {
    if (!init_error_.ok()) return init_error_;
    if (ctx_.idb.count(ctx_.goal) == 0) {
      return Status(InvalidArgumentError(
          StrCat("goal predicate ", ctx_.goal, " is not an IDB predicate")));
    }
    const bool interned_substrate = options_.use_ir || options_.intern_memo;
    ContainmentDecision decision;
    // The interning pass (if Init had to pay one) is charged to the first
    // Decide on this context; later Decides report 0, pinning the
    // carried-IR reuse in the stats.
    decision.stats.program_ir_builds = ctx_.ir_builds_paid;
    ctx_.ir_builds_paid = 0;
    if (options_.prune_unreachable) {
      for (char reachable : ctx_.rule_reachable) {
        if (!reachable) ++decision.stats.rules_pruned;
      }
    }
    if (interned_substrate) {
      if (ctx_.rule_caches.empty()) {
        ctx_.rule_caches.resize(ctx_.ordered_rules.size());
        for (std::size_t r = 0; r < ctx_.ordered_rules.size(); ++r) {
          ctx_.rule_caches[r].rule_vars =
              ctx_.ordered_rules[r]->VariableNames();
          ctx_.rule_caches[r].tpl = ctx_.BuildRuleTemplate(
              *ctx_.ordered_rules[r], ctx_.rule_caches[r].rule_vars);
        }
      }
      if (options_.use_ir) {
        ir_store_.resize(ctx_.goal_keys.size());
        ir_queries_.reserve(queries_.size());
        for (const QueryAnalysis& query : queries_) {
          ir_queries_.push_back(BuildIrQueryAnalysis(
              query, &ctx_.program_ir->predicates(),
              &ctx_.program_ir->constants()));
        }
      } else {
        store_.resize(ctx_.goal_keys.size());
      }
    }
    bool changed = true;
    bool ok = true;
    while (ok && changed) {
      changed = false;
      ++decision.stats.rounds;
      // Round-boundary poll: a new absorption round never starts after
      // cancellation or past the deadline.
      ok = PollGovernor();
      if (ok) {
        ok = options_.use_ir
                 ? RunRoundCached(ir_store_, &decision, &changed)
                 : options_.intern_memo
                       ? RunRoundCached(store_, &decision, &changed)
                       : RunRoundString(&decision, &changed);
      }
    }
    if (!ok) {
      // Stopped early: a counterexample, a resource limit, or a
      // governor interruption. Either way the stats harvested so far
      // are a consistent partial result — published through
      // options_.partial_stats even when the return is a bare Status.
      if (interned_substrate) {
        decision.stats.instances_cached = ctx_.instances.size();
      }
      HarvestBitsetStats(&decision);
      ReportStats(decision.stats);
      if (!decision.contained) return decision;
      if (!interrupt_status_.ok()) return interrupt_status_;
      return Status(ResourceExhaustedError(StrCat(
          "containment decider exceeded ", max_states_, " states")));
    }
    decision.stats.goals_discovered =
        interned_substrate ? touched_goals_ : string_store_.size();
    if (interned_substrate) {
      decision.stats.instances_cached = ctx_.instances.size();
    }
    HarvestBitsetStats(&decision);
    ReportStats(decision.stats);
    if (options_.export_trace) {
      DATALOG_RETURN_IF_ERROR(ExportTrace(&decision));
    }
    return decision;
  }

 private:
  // --- governed polling -------------------------------------------------

  // Publishes the run's stats through options_.partial_stats (when set):
  // called on every exit path, so interrupted runs surface consistent
  // partial progress even though the StatusOr return is a bare error.
  void ReportStats(const ContainmentStats& stats) const {
    if (options_.partial_stats != nullptr) *options_.partial_stats = stats;
  }

  // Polls the governor, latching the first failure into
  // interrupt_status_ — the Run() error exit then distinguishes an
  // interruption (returns that Status) from the state-cap abort
  // (synthesizes the ResourceExhausted message). Returns false to stop
  // the fixpoint machinery.
  bool PollGovernor() {
    if (!interrupt_status_.ok()) return false;
    Status s = governor_.Poll();
    if (!s.ok()) {
      interrupt_status_ = std::move(s);
      return false;
    }
    return true;
  }

  // The per-instance poll point, charging one decider step (the step
  // budget's unit is a processed rule instance).
  bool ChargeInstance() {
    if (!interrupt_status_.ok()) return false;
    Status s = governor_.ChargeSteps(1);
    if (!s.ok()) {
      interrupt_status_ = std::move(s);
      return false;
    }
    return true;
  }

  // The in-product poll point: one instance's combination product over
  // child states can dwarf the per-instance granularity, so poll every
  // 1024 iterations (deterministic — the product order is a function of
  // the discovered states).
  bool PollCombineTick() {
    if ((++combine_ticks_ & 1023u) != 0) return true;
    return PollGovernor();
  }

  // --- trace export -----------------------------------------------------

  // Decodes a dense goal id back to its Atom over var(Π): goal rows are
  // [pred_id, enc(args)...] with variables $k stored as -(k+1) and
  // constants as their non-negative dictionary ids.
  Atom DecodeGoalAtom(std::size_t goal_id) const {
    const int* row = ctx_.goal_keys.KeyData(goal_id);
    const std::size_t length = ctx_.goal_keys.KeyLength(goal_id);
    std::string predicate = ctx_.program_ir->predicates().name(
        static_cast<std::uint32_t>(row[0]));
    std::vector<Term> args;
    args.reserve(length - 1);
    for (std::size_t i = 1; i < length; ++i) {
      if (row[i] < 0) {
        args.push_back(Term::Variable(
            ProofVariableName(static_cast<std::size_t>(-row[i] - 1))));
      } else {
        args.push_back(Term::Constant(ctx_.program_ir->constants().name(
            static_cast<std::uint32_t>(row[i]))));
      }
    }
    return Atom(std::move(predicate), std::move(args));
  }

  // Decodes an IR achieved set back to Terms. The IR sort order (dense
  // ids) need not match the Term sort order, so the result is re-sorted
  // to restore the AchievedSet invariant.
  AchievedSet DecodeIrSet(const IrAchievedSet& set) const {
    AchievedSet out;
    out.reserve(set.size());
    for (const IrAchievedPair& pair : set) {
      AchievedPair decoded;
      decoded.query = static_cast<int>(pair.query);
      decoded.mask = pair.mask;
      decoded.pinned.reserve(pair.pinned.size());
      for (const auto& [var, term] : pair.pinned) {
        decoded.pinned.emplace_back(
            static_cast<int>(var),
            term.is_variable()
                ? Term::Variable(ProofVariableName(term.index()))
                : Term::Constant(
                      ctx_.program_ir->constants().name(term.index())));
      }
      out.push_back(std::move(decoded));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // Exports the converged fixpoint table (see ContainmentOptions::
  // export_trace). Only the interned substrates index goals densely; the
  // string-keyed ablation arm stores goals under their rendering and is
  // not worth a parser here.
  Status ExportTrace(ContainmentDecision* decision) const {
    if (!options_.use_ir && !options_.intern_memo) {
      return InvalidArgumentError(
          "export_trace requires the interned substrate (use_ir or "
          "intern_memo)");
    }
    const std::size_t num_goals = ctx_.goal_keys.size();
    for (std::size_t g = 0; g < num_goals; ++g) {
      AbsorptionTraceEntry entry;
      if (options_.use_ir) {
        if (g >= ir_store_.size() || ir_store_[g].states.empty()) continue;
        for (const IrStateEntry& state : ir_store_[g].states) {
          entry.sets.push_back(DecodeIrSet(*state.set));
        }
      } else {
        if (g >= store_.size() || store_[g].states.empty()) continue;
        for (const StateEntry& state : store_[g].states) {
          entry.sets.push_back(*state.set);
        }
      }
      entry.goal = DecodeGoalAtom(g);
      decision->trace.push_back(std::move(entry));
    }
    return OkStatus();
  }

  // --- cached rounds: materialized instances + flat integer memo -------
  // Shared by the interned (Term sets) and IR (TermId sets) paths; the
  // store type selects the achieved-set representation.

  template <typename SetT>
  bool RunRoundCached(std::vector<GoalEntryT<SetT>>& goal_store,
                      ContainmentDecision* decision, bool* changed) {
    // The Term-level instance rendering is only materialized when this
    // run moves Terms: always on the Term-set arm, and for witness
    // construction on the IR arm. The IR fixpoint with witness tracking
    // off runs on integers end to end.
    const bool need_strings =
        !std::is_same<SetT, IrAchievedSet>::value || options_.track_witness;
    for (std::size_t r = 0; r < ctx_.ordered_rules.size(); ++r) {
      // Goal-directed pruning: a rule whose head predicate cannot reach
      // the goal contributes states only to unreachable goal entries,
      // which no root acceptance ever consults — skip its enumeration.
      if (options_.prune_unreachable && !ctx_.rule_reachable[r]) continue;
      ContainmentChecker::Context::RuleCache& cache = ctx_.rule_caches[r];
      for (std::uint32_t id : cache.instance_ids) {
        if (need_strings) {
          ctx_.EnsureInstanceStrings(&ctx_.instances[id],
                                     *ctx_.ordered_rules[r],
                                     cache.rule_vars);
        }
        if (!ProcessCached(goal_store, ctx_.instances[id], id, decision,
                           changed)) {
          return false;
        }
      }
      if (cache.complete) continue;
      // Resume the canonical enumeration past the cached prefix. The
      // prefix is skipped at assignment level — no substitution strings.
      std::size_t seen = 0;
      bool finished = ForEachCanonicalAssignment(
          *ctx_.ordered_rules[r], ctx_.proof_vars.size(),
          [&](const std::vector<std::size_t>& classes) {
            if (seen++ < cache.instance_ids.size()) return true;
            std::uint32_t id =
                static_cast<std::uint32_t>(ctx_.instances.size());
            ctx_.instances.push_back(
                ctx_.BuildCachedInstance(cache.tpl, classes));
            if (need_strings) {
              ctx_.EnsureInstanceStrings(&ctx_.instances[id],
                                         *ctx_.ordered_rules[r],
                                         cache.rule_vars);
            }
            goal_store.resize(ctx_.goal_keys.size());
            cache.instance_ids.push_back(id);
            return ProcessCached(goal_store, ctx_.instances[id], id,
                                 decision, changed);
          });
      if (!finished) return false;
      cache.complete = true;
    }
    return true;
  }

  template <typename SetT>
  bool ProcessCached(std::vector<GoalEntryT<SetT>>& goal_store,
                     const ContainmentChecker::Context::CachedInstance& inst,
                     std::uint32_t instance_id, ContainmentDecision* decision,
                     bool* changed) {
    if (!ChargeInstance()) return false;
    ++decision->stats.combine_calls;
    // Snapshot the states of each child goal by value: Register below may
    // grow or prune the very same GoalEntry when the rule is
    // self-recursive (child canonical goal == parent goal).
    std::vector<std::vector<StateEntryT<SetT>>> child_states;
    child_states.reserve(inst.child_goal_ids.size());
    for (std::uint32_t goal_id : inst.child_goal_ids) {
      const GoalEntryT<SetT>& entry = goal_store[goal_id];
      if (entry.states.empty()) return true;  // no subtree for this child yet
      child_states.push_back(entry.states);
    }
    // Iterate over every choice of one discovered state per child.
    std::vector<std::size_t> sizes;
    sizes.reserve(child_states.size());
    for (const std::vector<StateEntryT<SetT>>& states : child_states) {
      sizes.push_back(states.size());
    }
    const bool is_goal_pred = inst.ir_head_pred == ctx_.goal_pred_id;
    return ForEachProduct(sizes, [&](const std::vector<std::size_t>& choice) {
      if (!PollCombineTick()) return false;
      // Skip combinations already combined in an earlier round: the memo
      // row is (instance id, child serial...) with each 64-bit serial
      // packed into two ints, deduplicated open-addressing style.
      memo_row_.clear();
      memo_row_.push_back(static_cast<int>(instance_id));
      for (std::size_t j = 0; j < child_states.size(); ++j) {
        std::uint64_t serial = child_states[j][choice[j]].serial;
        memo_row_.push_back(static_cast<int>(
            static_cast<std::uint32_t>(serial)));
        memo_row_.push_back(static_cast<int>(
            static_cast<std::uint32_t>(serial >> 32)));
      }
      if (!combined_.Intern(memo_row_.data(), memo_row_.size()).second) {
        ++decision->stats.memo_hits;
        return true;
      }
      SetT parent_set;
      CombineChoice(inst, instance_id, child_states, choice, decision,
                    &parent_set);
      GoalEntryT<SetT>& entry = goal_store[inst.head_goal_id];
      if (!entry.touched) {
        entry.touched = true;
        ++touched_goals_;
      }
      // Root acceptance per achieved-set representation; the generic
      // lambda discards the branch the representation never takes.
      auto accepts = [&](const SetT& set) {
        if constexpr (std::is_same_v<SetT, IrAchievedSet>) {
          return RootAccepts(ir_queries_, inst.ir_head_args, set,
                             &decision->stats.pinned_compares);
        } else {
          return RootAccepts(queries_, inst.rule.head(), set);
        }
      };
      return Register(entry, is_goal_pred, accepts,
                      options_.track_witness ? &inst.rule : nullptr,
                      inst.idb_positions, child_states,
                      &inst.child_canonical, choice, std::move(parent_set),
                      decision, changed);
    });
  }

  // --- string-keyed round: the pre-interning baseline (ablation arm) --

  bool RunRoundString(ContainmentDecision* decision, bool* changed) {
    for (std::size_t r = 0; r < ctx_.ordered_rules.size(); ++r) {
      if (options_.prune_unreachable && !ctx_.rule_reachable[r]) continue;
      bool ok = ForEachCanonicalInstance(
          *ctx_.ordered_rules[r], ctx_.proof_vars.size(),
          [&](const Rule& instance) {
            return ProcessInstanceString(instance, decision, changed);
          });
      if (!ok) return false;
    }
    return true;
  }

  bool ProcessInstanceString(const Rule& instance,
                             ContainmentDecision* decision, bool* changed) {
    if (!ChargeInstance()) return false;
    ++decision->stats.combine_calls;
    // Split the body into EDB atoms and child goals.
    std::vector<const Atom*> edb_atoms;
    std::vector<Atom> child_goals;
    std::vector<std::size_t> idb_positions;
    for (std::size_t i = 0; i < instance.body().size(); ++i) {
      const Atom& atom = instance.body()[i];
      if (ctx_.idb.count(atom.predicate()) > 0) {
        child_goals.push_back(atom);
        idb_positions.push_back(i);
      } else {
        edb_atoms.push_back(&atom);
      }
    }
    // Look up the canonical entry for each child goal, snapshotting the
    // states by value (see ProcessCached).
    std::vector<std::vector<StateEntry>> child_states;
    std::vector<CanonicalAtomInfo> child_canonical;
    std::vector<std::vector<Term>> child_original_terms;
    for (const Atom& child : child_goals) {
      CanonicalAtomInfo info = CanonicalizeAtom(child);
      auto it = string_store_.find(info.atom.ToString());
      if (it == string_store_.end()) return true;  // no subtree yet
      child_states.push_back(it->second.states);
      std::vector<Term> originals;
      originals.reserve(info.original_vars.size());
      for (const std::string& v : info.original_vars) {
        originals.push_back(Term::Variable(v));
      }
      child_original_terms.push_back(std::move(originals));
      child_canonical.push_back(std::move(info));
    }
    std::vector<std::size_t> sizes;
    sizes.reserve(child_states.size());
    for (const std::vector<StateEntry>& states : child_states) {
      sizes.push_back(states.size());
    }
    const bool is_goal_pred = instance.head().predicate() == ctx_.goal;
    return ForEachProduct(sizes, [&](const std::vector<std::size_t>& choice) {
      if (!PollCombineTick()) return false;
      // Skip combinations already combined in an earlier round.
      std::string memo_key = instance.ToString();
      for (std::size_t j = 0; j < child_states.size(); ++j) {
        memo_key += StrCat("#", child_states[j][choice[j]].serial);
      }
      if (!combined_strings_.insert(std::move(memo_key)).second) {
        ++decision->stats.memo_hits;
        return true;
      }
      AchievedSet parent_set;
      CombineChoiceString(instance, edb_atoms, child_goals,
                          child_original_terms, child_states, choice,
                          &parent_set);
      GoalEntry& entry = string_store_[instance.head().ToString()];
      auto accepts = [&](const AchievedSet& set) {
        return RootAccepts(queries_, instance.head(), set);
      };
      return Register(entry, is_goal_pred, accepts, &instance, idb_positions,
                      child_states, &child_canonical, choice,
                      std::move(parent_set), decision, changed);
    });
  }

  // --- combination steps ----------------------------------------------

  // Term-based combination for the interned (non-IR) path: renames each
  // chosen child state from its canonical frame into the instance frame
  // and runs one bottom-up combination step.
  void CombineChoice(const ContainmentChecker::Context::CachedInstance& inst,
                     std::uint32_t /*instance_id*/,
                     const std::vector<std::vector<StateEntry>>& child_states,
                     const std::vector<std::size_t>& choice,
                     ContainmentDecision* /*decision*/,
                     AchievedSet* parent_set) {
    CombineChoiceString(inst.rule, inst.edb_atoms, inst.child_goals,
                        inst.child_original_terms, child_states, choice,
                        parent_set);
  }

  // IR combination: renamed child sets come from the per-(instance,
  // child, serial) memo, and the combination step runs on integer ids.
  void CombineChoice(const ContainmentChecker::Context::CachedInstance& inst,
                     std::uint32_t instance_id,
                     const std::vector<std::vector<IrStateEntry>>&
                         child_states,
                     const std::vector<std::size_t>& choice,
                     ContainmentDecision* decision,
                     IrAchievedSet* parent_set) {
    std::vector<const IrAchievedSet*> set_ptrs(child_states.size());
    for (std::size_t j = 0; j < child_states.size(); ++j) {
      set_ptrs[j] =
          RenamedChildSet(instance_id, j, inst.ir_child_originals[j],
                          child_states[j][choice[j]], decision);
    }
    CombineAtNode(ir_queries_, inst.ir_edb, inst.ir_head_visible, set_ptrs,
                  parent_set, &decision->stats.pinned_compares);
  }

  void CombineChoiceString(
      const Rule& instance, const std::vector<const Atom*>& edb_atoms,
      const std::vector<Atom>& child_goals,
      const std::vector<std::vector<Term>>& child_original_terms,
      const std::vector<std::vector<StateEntry>>& child_states,
      const std::vector<std::size_t>& choice, AchievedSet* parent_set) {
    std::vector<AchievedSet> renamed_sets(child_goals.size());
    std::vector<const AchievedSet*> set_ptrs(child_goals.size());
    for (std::size_t j = 0; j < child_goals.size(); ++j) {
      const StateEntry& state = child_states[j][choice[j]];
      const std::vector<Term>& originals = child_original_terms[j];
      AchievedSet renamed;
      renamed.reserve(state.set->size());
      for (const AchievedPair& pair : *state.set) {
        AchievedPair copy = pair;
        for (auto& [v, term] : copy.pinned) {
          if (term.is_variable()) {
            // Canonical variable $k corresponds to originals[k].
            std::size_t k = CanonicalIndex(term.name());
            DATALOG_CHECK_LT(k, originals.size());
            term = originals[k];
          }
        }
        renamed.push_back(std::move(copy));
      }
      std::sort(renamed.begin(), renamed.end());
      renamed_sets[j] = std::move(renamed);
      set_ptrs[j] = &renamed_sets[j];
    }
    CombineAtNode(queries_, instance, edb_atoms, child_goals, set_ptrs,
                  parent_set);
  }

  // The renamed-set memo: a child state's achieved set renamed from its
  // canonical frame into the frame of instance `instance_id` at child
  // position `j` depends only on (instance_id, j, serial), but the
  // combination product visits the same (j, serial) once per choice of
  // the *other* children. Memoizing the renamed set turns that repeated
  // O(set size) rename+sort into a pointer lookup.
  const IrAchievedSet* RenamedChildSet(
      std::uint32_t instance_id, std::size_t j,
      const std::vector<ir::TermId>& originals, const IrStateEntry& state,
      ContainmentDecision* decision) {
    int row[4] = {static_cast<int>(instance_id), static_cast<int>(j),
                  static_cast<int>(static_cast<std::uint32_t>(state.serial)),
                  static_cast<int>(
                      static_cast<std::uint32_t>(state.serial >> 32))};
    auto [index, inserted] = rename_keys_.Intern(row, 4);
    if (!inserted) {
      ++decision->stats.rename_memo_hits;
      return renamed_cache_[index].get();
    }
    auto renamed = std::make_shared<IrAchievedSet>();
    renamed->reserve(state.set->size());
    for (const IrAchievedPair& pair : *state.set) {
      IrAchievedPair copy = pair;
      for (auto& [v, term] : copy.pinned) {
        if (term.is_variable()) {
          // Canonical variable $k corresponds to originals[k].
          DATALOG_CHECK_LT(term.index(), originals.size());
          term = originals[term.index()];
        }
      }
      renamed->push_back(std::move(copy));
    }
    std::sort(renamed->begin(), renamed->end());
    DATALOG_CHECK_EQ(static_cast<std::size_t>(index), renamed_cache_.size());
    renamed_cache_.push_back(std::move(renamed));
    return renamed_cache_[index].get();
  }

  // --- achieved-pair interning (bitset path) ---------------------------

  // Maps an IrAchievedPair to its dense bit index: the row is
  // [query, mask_lo, mask_hi, (var, enc(term))...] — variable-width, like
  // the goal rows — so identical pairs intern to identical ids and an
  // achieved set becomes an exact Bitset over those ids. Ids are global
  // to the run, which is sound because sets are only ever compared within
  // one goal entry and equal pairs get equal ids everywhere.
  std::uint32_t InternAchievedPair(const IrAchievedPair& pair) {
    pair_row_.clear();
    pair_row_.push_back(static_cast<int>(pair.query));
    pair_row_.push_back(
        static_cast<int>(static_cast<std::uint32_t>(pair.mask)));
    pair_row_.push_back(
        static_cast<int>(static_cast<std::uint32_t>(pair.mask >> 32)));
    for (const auto& [v, term] : pair.pinned) {
      pair_row_.push_back(static_cast<int>(v));
      pair_row_.push_back(ir::EncodeRowTerm(term));
    }
    return pair_keys_.Intern(pair_row_.data(), pair_row_.size()).first;
  }

  // Folds the per-goal AntichainStore counters into the decision stats;
  // called once per Run exit path (the stores are per-run, so the sums
  // are exactly this Decide's work).
  void HarvestBitsetStats(ContainmentDecision* decision) const {
    if (!options_.use_ir || !options_.use_bitsets) return;
    for (const IrGoalEntry& entry : ir_store_) {
      const AntichainStore::Stats& s = entry.antichain.stats();
      decision->stats.subset_checks += s.subset_checks;
      decision->stats.subset_word_ops += s.word_ops;
      decision->stats.antichain_prunes += s.prunes;
    }
  }

  // --- shared registration core ---------------------------------------

  // Registers a (goal, set) state; returns false to stop everything.
  // `accepts` runs root acceptance on the set representation;
  // `witness_rule` and `child_canonical` back witness construction and
  // may be null/empty when track_witness is off (the IR arm then never
  // materializes the Term-level instance at all).
  template <typename SetT, typename AcceptsFn>
  bool Register(GoalEntryT<SetT>& entry, bool is_goal_pred,
                const AcceptsFn& accepts, const Rule* witness_rule,
                const std::vector<std::size_t>& idb_positions,
                const std::vector<std::vector<StateEntryT<SetT>>>&
                    child_states,
                const std::vector<CanonicalAtomInfo>* child_canonical,
                const std::vector<std::size_t>& choice, SetT set,
                ContainmentDecision* decision, bool* changed) {
    std::uint64_t sig = 0;
    Bitset bits;
    bool on_bitset_path = false;
    if constexpr (std::is_same_v<SetT, IrAchievedSet>) {
      // The exact-bitset representation exists only on the IR achieved-set
      // encoding (pairs intern to dense ids); the Term arms always run the
      // Bloom-signature + merge-scan maintenance below.
      on_bitset_path = options_.use_bitsets;
    }
    if (on_bitset_path) {
      if constexpr (std::is_same_v<SetT, IrAchievedSet>) {
        for (const IrAchievedPair& pair : set) {
          bits.Set(InternAchievedPair(pair));
        }
        if (entry.states.empty() && entry.antichain.empty() &&
            !options_.antichain) {
          entry.antichain = AntichainStore(AntichainStore::Mode::kExact);
        }
        // One Insert is the whole maintenance step: it rejects a candidate
        // some retained subset dominates (kKeepMinimal) or duplicates
        // (kExact) and prunes retained supersets, handing back their
        // serials. Domination verdicts coincide with the merge scans below
        // — pair membership and bit membership are the same relation — so
        // surviving states, their order, and serial assignment are
        // byte-identical. No Bloom signature is computed on this path
        // (state.sig stays 0; subset_sig_rejects is reported 0).
        pruned_serials_.clear();
        if (!entry.antichain.Insert(bits, next_serial_, &pruned_serials_)) {
          return true;  // dominated (antichain) or already known (dedup)
        }
        if (!pruned_serials_.empty()) {
          // Mirror the store's prunes into the ordered state vector;
          // stable remove_if keeps the surviving order identical to the
          // ablation arm's erase.
          entry.states.erase(
              std::remove_if(entry.states.begin(), entry.states.end(),
                             [&](const StateEntryT<SetT>& existing) {
                               return std::find(pruned_serials_.begin(),
                                                pruned_serials_.end(),
                                                existing.serial) !=
                                      pruned_serials_.end();
                             }),
              entry.states.end());
        }
      }
    } else {
      sig = AchievedSetSignature(set);
      if (options_.antichain) {
        for (const StateEntryT<SetT>& existing : entry.states) {
          ++decision->stats.subset_checks;
          if (!SignatureMayBeSubset(existing.sig, sig)) {
            ++decision->stats.subset_sig_rejects;
            continue;
          }
          if (IsAchievedSubset(*existing.set, set)) return true;  // dominated
        }
        entry.states.erase(
            std::remove_if(entry.states.begin(), entry.states.end(),
                           [&](const StateEntryT<SetT>& existing) {
                             ++decision->stats.subset_checks;
                             if (!SignatureMayBeSubset(sig, existing.sig)) {
                               ++decision->stats.subset_sig_rejects;
                               return false;
                             }
                             if (!IsAchievedSubset(set, *existing.set)) {
                               return false;
                             }
                             ++decision->stats.antichain_prunes;
                             return true;
                           }),
            entry.states.end());
      } else {
        for (const StateEntryT<SetT>& existing : entry.states) {
          if (existing.sig == sig && *existing.set == set) {
            return true;  // already known
          }
        }
      }
    }
    StateEntryT<SetT> state;
    state.serial = next_serial_++;
    state.set = std::make_shared<const SetT>(std::move(set));
    state.sig = sig;
    state.bits = std::move(bits);
    if (options_.track_witness) {
      ExpansionNode node;
      node.goal = witness_rule->head();
      node.rule = *witness_rule;
      node.idb_positions = idb_positions;
      for (std::size_t j = 0; j < child_states.size(); ++j) {
        const StateEntryT<SetT>& child_state = child_states[j][choice[j]];
        // The child witness's root goal is the canonical child goal; embed
        // it into the instance frame by a var(Π) permutation extending
        // canonical-var -> original-var.
        std::vector<std::string> from;
        for (std::size_t k = 0;
             k < (*child_canonical)[j].original_vars.size(); ++k) {
          from.push_back(ProofVariableName(k));
        }
        Substitution permutation = ExtendToPermutation(
            from, (*child_canonical)[j].original_vars, ctx_.proof_vars);
        node.children.push_back(
            RenameTree(*child_state.witness, permutation).root());
      }
      state.witness =
          std::make_shared<const ExpansionTree>(std::move(node));
    }
    // A new root-goal state must accept, or we have a counterexample.
    if (is_goal_pred && !accepts(*state.set)) {
      decision->contained = false;
      if (options_.track_witness) {
        decision->counterexample = *state.witness;
      }
      return false;
    }
    entry.states.push_back(std::move(state));
    *changed = true;
    if (++decision->stats.states_discovered > max_states_) {
      return false;
    }
    return true;
  }

  ContainmentChecker::Context& ctx_;
  const ContainmentOptions& options_;
  // The governed bounds: polled at round starts, per instance, and every
  // 1024 combination iterations (see ContainmentOptions::limits).
  Governor governor_;
  // options_.limits.max_states with 0 resolved to the decider default.
  std::size_t max_states_;
  // First governor failure, latched by the poll helpers and returned by
  // Run()'s error exit (distinguishing interruption from the state cap).
  Status interrupt_status_;
  std::uint64_t combine_ticks_ = 0;
  Status init_error_;
  std::vector<QueryAnalysis> queries_;
  std::vector<IrQueryAnalysis> ir_queries_;  // parallel to queries_ (IR path)
  std::uint64_t next_serial_ = 1;

  // Cached-path per-run state: goal stores indexed by dense goal id (one
  // per achieved-set representation; only the active one is populated)
  // and the flat combination memo.
  std::vector<GoalEntry> store_;
  std::vector<IrGoalEntry> ir_store_;
  std::size_t touched_goals_ = 0;
  VarKeyTable combined_;
  std::vector<int> memo_row_;
  // Renamed-set memo (IR path): (instance, child position, serial) rows
  // mapping to the renamed achieved set, alive for the whole run.
  VarKeyTable rename_keys_;
  std::vector<std::shared_ptr<const IrAchievedSet>> renamed_cache_;
  // Achieved-pair id dictionary and scratch buffers (bitset path).
  VarKeyTable pair_keys_;
  std::vector<int> pair_row_;
  std::vector<std::uint64_t> pruned_serials_;

  // String-keyed per-run state. The ablation arm deliberately keeps the
  // seed's ordered containers (std::map/std::set) so the decider
  // benchmarks measure exactly the memoization substrate the interned
  // path replaced; the production path never touches these.
  std::map<std::string, GoalEntry> string_store_;
  std::set<std::string> combined_strings_;
};

ContainmentChecker::ContainmentChecker(Program program, std::string goal)
    : context_(new Context) {
  context_->owned_program.emplace(std::move(program));
  context_->Init(*context_->owned_program, std::move(goal));
}

ContainmentChecker::~ContainmentChecker() = default;
ContainmentChecker::ContainmentChecker(ContainmentChecker&&) noexcept =
    default;
ContainmentChecker& ContainmentChecker::operator=(
    ContainmentChecker&&) noexcept = default;

const Program& ContainmentChecker::program() const {
  return *context_->program;
}

const std::string& ContainmentChecker::goal() const { return context_->goal; }

StatusOr<ContainmentDecision> ContainmentChecker::Decide(
    const UnionOfCqs& theta, const ContainmentOptions& options) {
  DeciderRun run(context_.get(), theta, options);
  return run.Run();
}

ThreadPool* ContainmentChecker::SharedEvalPool(std::size_t threads) {
  if (threads <= 1) return nullptr;
  if (context_->eval_pool == nullptr ||
      context_->eval_pool_threads != threads) {
    context_->eval_pool = std::make_unique<ThreadPool>(threads);
    context_->eval_pool_threads = threads;
  }
  return context_->eval_pool.get();
}

StatusOr<ContainmentDecision> DecideDatalogInUcq(
    const Program& program, const std::string& goal, const UnionOfCqs& theta,
    const ContainmentOptions& options) {
  // One-shot path: borrow the caller's program for the duration of the
  // call rather than copying it into an owning checker.
  ContainmentChecker::Context context;
  context.Init(program, goal);
  DeciderRun run(&context, theta, options);
  return run.Run();
}

StatusOr<ContainmentDecision> DecideDatalogInCq(
    const Program& program, const std::string& goal,
    const ConjunctiveQuery& theta, const ContainmentOptions& options) {
  UnionOfCqs union_of_one;
  union_of_one.Add(theta);
  return DecideDatalogInUcq(program, goal, union_of_one, options);
}

}  // namespace datalog
