// Rule-instance enumeration over var(Π) (paper §5.1-5.2).
//
// The automata of Propositions 5.9/5.10 run over the alphabet of rule
// instances with variables in var(Π). Two enumeration modes are provided:
//
// * Full enumeration — every substitution of the rule's variables by
//   var(Π) variables. Faithful to the paper; exponential; used by the
//   explicit automaton constructions on small programs.
//
// * Canonical enumeration — one instance per variable-identification
//   pattern (set partition of the rule's variables, via restricted-growth
//   strings), with classes named $0, $1, ... in first-occurrence order.
//   The achievable-set semantics of proof subtrees is equivariant under
//   permutations of var(Π), so exploring canonical instances and
//   re-embedding child states through a permutation is complete; this is
//   what makes the on-the-fly decider practical.
#ifndef DATALOG_EQ_SRC_CONTAINMENT_INSTANCES_H_
#define DATALOG_EQ_SRC_CONTAINMENT_INSTANCES_H_

#include <functional>
#include <string>
#include <vector>

#include "src/ast/rule.h"
#include "src/trees/expansion_tree.h"

namespace datalog {

/// An atom with variables renamed to $0, $1, ... in first-occurrence
/// order, plus the original variable spelled by each canonical index.
struct CanonicalAtomInfo {
  Atom atom;
  /// original_vars[i] is the variable the canonical variable $i replaced.
  std::vector<std::string> original_vars;
};

CanonicalAtomInfo CanonicalizeAtom(const Atom& atom);

/// Enumerates one instance per set partition of the rule's variables
/// (classes named canonically); partitions needing more than
/// `num_proof_vars` classes are skipped (cannot occur over var(Π)).
/// Returns false if `visit` stopped the enumeration.
bool ForEachCanonicalInstance(const Rule& rule, std::size_t num_proof_vars,
                              const std::function<bool(const Rule&)>& visit);

/// The assignment-level view of ForEachCanonicalInstance: enumerates the
/// restricted-growth class assignments themselves without materializing
/// any instance. `visit` receives the class of each rule variable in
/// VariableNames() order; an assignment is materialized on demand with
/// InstantiateAssignment. This lets callers that cache instances across
/// fixpoint rounds (the containment decider) skip already-materialized
/// prefixes of the enumeration at integer cost instead of re-paying the
/// substitution strings. Returns false if `visit` stopped early.
bool ForEachCanonicalAssignment(
    const Rule& rule, std::size_t num_proof_vars,
    const std::function<bool(const std::vector<std::size_t>&)>& visit);

/// Materializes the canonical instance for one class assignment produced
/// by ForEachCanonicalAssignment; `vars` must be rule.VariableNames().
Rule InstantiateAssignment(const Rule& rule,
                           const std::vector<std::string>& vars,
                           const std::vector<std::size_t>& classes);

/// Enumerates every instance of `rule` over the variable names in
/// `proof_vars` (full substitution space; |proof_vars|^k instances).
bool ForEachInstanceOver(const Rule& rule,
                         const std::vector<std::string>& proof_vars,
                         const std::function<bool(const Rule&)>& visit);

/// Applies a variable renaming to every label of an expansion tree.
ExpansionTree RenameTree(const ExpansionTree& tree, const Substitution& subst);

/// Builds a permutation of `proof_vars` (as a Substitution) that sends
/// from[i] to to[i] for each i; the partial map must be injective and both
/// sides must consist of proof variables. Remaining variables are matched
/// up arbitrarily.
Substitution ExtendToPermutation(const std::vector<std::string>& from,
                                 const std::vector<std::string>& to,
                                 const std::vector<std::string>& proof_vars);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_INSTANCES_H_
