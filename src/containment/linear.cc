#include "src/containment/linear.h"

#include <map>
#include <set>
#include <unordered_set>

#include "src/ast/analysis.h"
#include "src/containment/absorb.h"
#include "src/containment/query_analysis.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

std::string PinnedToString(const PinnedMap& pinned) {
  std::string out;
  for (const auto& [v, t] : pinned) out += StrCat(v, "=", t.ToString(), ";");
  return out;
}

// Builds the word automaton for one disjunct over the shared alphabet.
// States: (goal atom, pending atom mask, pinned images) plus `accept`.
StatusOr<Nfa> BuildThetaWordAutomaton(
    const QueryAnalysis& query, const ProgramAlphabet& alphabet,
    const std::map<std::string, std::vector<int>>& labels_by_head,
    const std::vector<Atom>& goal_atoms, std::size_t max_states) {
  Nfa nfa(0, alphabet.labels.size());
  int accept = nfa.AddState();
  nfa.SetAccepting(accept);

  struct State {
    Atom atom;
    std::uint64_t mask;
    PinnedMap pinned;
  };
  std::vector<State> states;
  std::map<std::string, int> ids;
  std::vector<int> worklist;
  auto intern = [&](Atom atom, std::uint64_t mask, PinnedMap pinned) -> int {
    std::string key =
        StrCat(atom.ToString(), "|", mask, "|", PinnedToString(pinned));
    auto [it, inserted] = ids.emplace(key, -1);
    if (inserted) {
      it->second = nfa.AddState();
      states.push_back({std::move(atom), mask, std::move(pinned)});
      worklist.push_back(it->second);
    }
    return it->second;
  };

  // Initial states: unify the disjunct's head vector with each goal atom.
  const ConjunctiveQuery& cq = *query.cq;
  for (const Atom& root : goal_atoms) {
    if (cq.head_args().size() != root.args().size()) continue;
    PinnedMap pinned;
    std::vector<std::optional<Term>> head_image(query.vars.size());
    bool ok = true;
    for (std::size_t i = 0; i < root.args().size() && ok; ++i) {
      const Term& from = cq.head_args()[i];
      const Term& to = root.args()[i];
      if (from.is_constant()) {
        ok = to.is_constant() && to.name() == from.name();
        continue;
      }
      int v = query.var_ids.at(from.name());
      if (head_image[v].has_value()) {
        ok = (*head_image[v] == to);
      } else {
        head_image[v] = to;
      }
    }
    if (!ok) continue;
    // Pin distinguished variables that occur in the body.
    for (std::size_t v = 0; v < query.vars.size(); ++v) {
      if (head_image[v].has_value() && query.atoms_of_var[v] != 0) {
        pinned.emplace_back(static_cast<int>(v), *head_image[v]);
      }
    }
    int id = intern(root, query.full_mask, std::move(pinned));
    nfa.SetInitial(id);
  }

  std::set<std::string> idb_free;  // not needed; arity from alphabet
  (void)idb_free;
  while (!worklist.empty()) {
    if (states.size() > max_states) {
      return Status(ResourceExhaustedError(
          StrCat("linear theta automaton exceeded ", max_states,
                 " states")));
    }
    int id = worklist.back();
    worklist.pop_back();
    // Copy: `states` may reallocate while we intern successors.
    State state = states[id - 1];  // state ids start after `accept`
    auto it = labels_by_head.find(state.atom.ToString());
    if (it == labels_by_head.end()) continue;
    for (int symbol : it->second) {
      const Rule& label = alphabet.labels[symbol];
      std::vector<const Atom*> edb_atoms;
      for (std::size_t i = 0; i < label.body().size(); ++i) {
        bool is_idb = false;
        for (std::size_t pos : alphabet.label_idb_positions[symbol]) {
          if (pos == i) is_idb = true;
        }
        if (!is_idb) edb_atoms.push_back(&label.body()[i]);
      }
      int arity = alphabet.arities[symbol];
      const Atom* child_goal =
          arity == 1
              ? &label.body()[alphabet.label_idb_positions[symbol][0]]
              : nullptr;
      EnumerateForwardAbsorptions(
          query, state.mask, edb_atoms, state.pinned,
          [&](std::uint64_t beta_prime,
              const std::vector<std::optional<Term>>& images) {
            if (arity == 0) {
              // Leaf: everything pending must be absorbed here.
              if (beta_prime == state.mask) {
                nfa.AddTransition(id, symbol, accept);
              }
              return;
            }
            std::uint64_t next_mask = state.mask & ~beta_prime;
            // Variables still relevant below: pending atoms contain them
            // and their image is already determined.
            PinnedMap next_pinned;
            std::unordered_set<std::string> child_vars;
            for (const Term& t : child_goal->args()) {
              if (t.is_variable()) child_vars.insert(t.name());
            }
            for (std::size_t v = 0; v < query.vars.size(); ++v) {
              if ((query.atoms_of_var[v] & next_mask) == 0) continue;
              if (!images[v].has_value()) continue;
              // Visibility (the paper's condition 4): the image must
              // occur in the child goal to stay connected.
              if (images[v]->is_variable() &&
                  child_vars.count(images[v]->name()) == 0) {
                return;  // this absorption cannot continue downward
              }
              next_pinned.emplace_back(static_cast<int>(v), *images[v]);
            }
            int next = intern(*child_goal, next_mask, std::move(next_pinned));
            nfa.AddTransition(id, symbol, next);
          });
    }
  }
  return nfa;
}

}  // namespace

StatusOr<LinearContainmentResult> DecideLinearDatalogInUcq(
    const Program& program, const std::string& goal, const UnionOfCqs& theta,
    const LinearContainmentOptions& options) {
  if (!IsLinearInIdb(program)) {
    return Status(InvalidArgumentError(
        "program is not linear (a rule has more than one IDB subgoal)"));
  }
  StatusOr<ProgramAlphabet> alphabet_or =
      BuildProgramAlphabet(program, options.max_labels);
  if (!alphabet_or.ok()) return alphabet_or.status();
  const ProgramAlphabet& alphabet = *alphabet_or;

  LinearContainmentResult result;
  result.alphabet_size = alphabet.labels.size();

  // A^ptrees as a word automaton: states are the IDB atoms, words read the
  // labels from the root to the leaf.
  Nfa ptrees(0, alphabet.labels.size());
  int accept = ptrees.AddState();
  ptrees.SetAccepting(accept);
  std::map<std::string, int> atom_ids;
  std::vector<Atom> state_atoms;
  auto atom_state = [&](const Atom& atom) {
    auto [it, inserted] =
        atom_ids.emplace(atom.ToString(), -1);
    if (inserted) {
      it->second = ptrees.AddState();
      state_atoms.push_back(atom);
    }
    return it->second;
  };
  std::map<std::string, std::vector<int>> labels_by_head;
  for (std::size_t symbol = 0; symbol < alphabet.labels.size(); ++symbol) {
    const Rule& label = alphabet.labels[symbol];
    int from = atom_state(label.head());
    labels_by_head[label.head().ToString()].push_back(
        static_cast<int>(symbol));
    if (alphabet.arities[symbol] == 0) {
      ptrees.AddTransition(from, static_cast<int>(symbol), accept);
    } else {
      int to =
          atom_state(label.body()[alphabet.label_idb_positions[symbol][0]]);
      ptrees.AddTransition(from, static_cast<int>(symbol), to);
    }
  }
  std::vector<Atom> goal_atoms;
  for (const Atom& atom : state_atoms) {
    if (atom.predicate() == goal) {
      ptrees.SetInitial(atom_ids.at(atom.ToString()));
      goal_atoms.push_back(atom);
    }
  }
  result.ptrees_states = ptrees.num_states();

  // Union of the disjuncts' word automata.
  std::optional<Nfa> union_automaton;
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    StatusOr<QueryAnalysis> analysis = AnalyzeQuery(disjunct);
    if (!analysis.ok()) return analysis.status();
    StatusOr<Nfa> theta_nfa =
        BuildThetaWordAutomaton(*analysis, alphabet, labels_by_head,
                                goal_atoms, options.max_states);
    if (!theta_nfa.ok()) return theta_nfa.status();
    result.theta_states += theta_nfa->num_states();
    if (union_automaton.has_value()) {
      union_automaton = Nfa::Union(*union_automaton, *theta_nfa);
    } else {
      union_automaton = std::move(theta_nfa).value();
    }
  }

  auto decode = [&alphabet](const std::vector<int>& word) {
    DATALOG_CHECK(!word.empty());
    // Build the path tree bottom-up from the last label.
    ExpansionNode node;
    for (std::size_t i = word.size(); i-- > 0;) {
      ExpansionNode parent;
      parent.rule = alphabet.labels[word[i]];
      parent.goal = parent.rule.head();
      parent.idb_positions = alphabet.label_idb_positions[word[i]];
      if (i + 1 < word.size()) {
        parent.children.push_back(std::move(node));
      }
      node = std::move(parent);
    }
    return ExpansionTree(std::move(node));
  };

  if (!union_automaton.has_value()) {
    result.contained = ptrees.IsEmpty();
    if (!result.contained) {
      result.counterexample = decode(*ptrees.ShortestWord());
    }
    return result;
  }

  Nfa::ContainmentOptions containment_options;
  containment_options.antichain = options.antichain;
  StatusOr<Nfa::ContainmentResult> containment =
      Nfa::Contains(ptrees, *union_automaton, containment_options);
  if (!containment.ok()) return containment.status();
  result.contained = containment->contained;
  result.pairs_explored = containment->explored;
  if (!containment->contained) {
    result.counterexample = decode(containment->counterexample);
  }
  return result;
}

}  // namespace datalog
