#include "src/containment/linear.h"

#include <map>
#include <optional>
#include <set>
#include <unordered_set>

#include "src/analysis/reachability.h"
#include "src/ast/analysis.h"
#include "src/containment/absorb.h"
#include "src/containment/query_analysis.h"
#include "src/ir/ir.h"
#include "src/util/bitset.h"
#include "src/util/flat_table.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

std::string PinnedToString(const PinnedMap& pinned) {
  std::string out;
  for (const auto& [v, t] : pinned) out += StrCat(v, "=", t.ToString(), ";");
  return out;
}

// ---- the interned (IR) arm ---------------------------------------------
//
// States and transitions are built from the alphabet's per-symbol IR
// encodings (ProgramAlphabet::LabelIr): IDB atoms over var(Π) intern to
// dense ids through rows [pred, enc(arg)...] in a VarKeyTable, a theta
// state is the row [atom id, mask, pinned (variable, image) ints...], and
// the absorption enumeration runs on the IR overload of
// EnumerateForwardAbsorptions — no Terms move and nothing is rendered.
// Discovery order matches the string arm exactly, so the automata are
// identical state for state.

// The A^ptrees word automaton plus the per-symbol lookup structures the
// theta automata share: dense IDB-atom ids, symbols grouped by head atom,
// and each symbol's child atom id / child-visible proof variables.
struct LinearIrContext {
  VarKeyTable atom_keys;
  std::vector<ir::TermAtom> atoms;               // by atom id
  std::vector<std::vector<int>> labels_by_head;  // by atom id
  std::vector<int> child_atom_id;                // by symbol; -1 for leaves
  // By symbol, indexed by proof-variable index: does the variable occur
  // in the child goal (the paper's visibility condition 4)?
  std::vector<Bitset> child_visible;

  std::uint32_t InternAtom(const ir::TermAtom& atom) {
    row_.clear();
    row_.push_back(atom.predicate);
    for (ir::TermId t : atom.args) row_.push_back(ir::EncodeRowTerm(t));
    auto [id, inserted] = atom_keys.Intern(row_.data(), row_.size());
    if (inserted) {
      atoms.push_back(atom);
      labels_by_head.emplace_back();
    }
    return id;
  }

 private:
  std::vector<int> row_;
};

// Builds the word automaton for one disjunct over the shared alphabet,
// on the IR encoding. State ids offset the shared accept state by one,
// mirroring the string arm's numbering.
StatusOr<Nfa> BuildThetaWordAutomatonIr(
    const IrQueryAnalysis& query, const ProgramAlphabet& alphabet,
    const LinearIrContext& ctx,
    const std::vector<std::uint32_t>& goal_atom_ids,
    const ExecutionLimits& limits) {
  Governor governor(limits, "linear theta automaton");
  const std::size_t max_states = limits.StatesOr(500'000);
  const QueryAnalysis& base = *query.base;
  Nfa nfa(0, alphabet.num_labels());
  int accept = nfa.AddState();
  nfa.SetAccepting(accept);

  struct State {
    std::uint32_t atom_id = 0;
    std::uint64_t mask = 0;
    IrPinnedMap pinned;
  };
  std::vector<State> states;
  VarKeyTable state_keys;
  std::vector<int> worklist;
  std::vector<int> row;
  auto intern = [&](std::uint32_t atom_id, std::uint64_t mask,
                    IrPinnedMap pinned) -> int {
    row.clear();
    row.push_back(static_cast<int>(atom_id));
    row.push_back(static_cast<int>(static_cast<std::uint32_t>(mask)));
    row.push_back(static_cast<int>(static_cast<std::uint32_t>(mask >> 32)));
    for (const auto& [v, term] : pinned) {
      row.push_back(v);
      row.push_back(ir::EncodeRowTerm(term));
    }
    auto [id, inserted] = state_keys.Intern(row.data(), row.size());
    if (inserted) {
      int nfa_id = nfa.AddState();
      DATALOG_CHECK_EQ(nfa_id, static_cast<int>(id) + 1);
      states.push_back({atom_id, mask, std::move(pinned)});
      worklist.push_back(nfa_id);
    }
    return static_cast<int>(id) + 1;  // accept is state 0
  };

  // Initial states: unify the disjunct's head vector with each goal atom.
  for (std::uint32_t atom_id : goal_atom_ids) {
    const ir::TermAtom& root = ctx.atoms[atom_id];
    if (query.head_args.size() != root.args.size()) continue;
    IrPinnedMap pinned;
    std::vector<ir::TermId> head_image(base.vars.size());
    bool ok = true;
    for (std::size_t i = 0; i < root.args.size() && ok; ++i) {
      std::int32_t from = query.head_args[i];
      ir::TermId to = root.args[i];
      if (from < 0) {  // constant: images must be the same constant
        ok = to == ir::TermId::Constant(static_cast<std::uint32_t>(~from));
        continue;
      }
      if (head_image[from].valid()) {
        ok = head_image[from] == to;
      } else {
        head_image[from] = to;
      }
    }
    if (!ok) continue;
    // Pin distinguished variables that occur in the body.
    for (std::size_t v = 0; v < base.vars.size(); ++v) {
      if (head_image[v].valid() && base.atoms_of_var[v] != 0) {
        pinned.emplace_back(static_cast<std::int32_t>(v), head_image[v]);
      }
    }
    int id = intern(atom_id, base.full_mask, std::move(pinned));
    nfa.SetInitial(id);
  }

  while (!worklist.empty()) {
    DATALOG_RETURN_IF_ERROR(governor.ChargeSteps(1));
    if (states.size() > max_states) {
      return Status(ResourceExhaustedError(
          StrCat("linear theta automaton exceeded ", max_states,
                 " states")));
    }
    int id = worklist.back();
    worklist.pop_back();
    // Copy: `states` may reallocate while we intern successors.
    State state = states[id - 1];  // state ids start after `accept`
    for (int symbol : ctx.labels_by_head[state.atom_id]) {
      const ProgramAlphabet::LabelIr& label = alphabet.label_ir[symbol];
      int arity = alphabet.arities[symbol];
      EnumerateForwardAbsorptions(
          query, state.mask, label.edb_atoms, state.pinned,
          [&](std::uint64_t beta_prime, const ir::IrSubstitution& images) {
            if (arity == 0) {
              // Leaf: everything pending must be absorbed here.
              if (beta_prime == state.mask) {
                nfa.AddTransition(id, symbol, accept);
              }
              return;
            }
            std::uint64_t next_mask = state.mask & ~beta_prime;
            // Variables still relevant below: pending atoms contain them
            // and their image is already determined.
            const Bitset& child_vars = ctx.child_visible[symbol];
            IrPinnedMap next_pinned;
            for (std::size_t v = 0; v < base.vars.size(); ++v) {
              if ((base.atoms_of_var[v] & next_mask) == 0) continue;
              if (!images[v].valid()) continue;
              // Visibility (the paper's condition 4): the image must
              // occur in the child goal to stay connected.
              if (images[v].is_variable() &&
                  !child_vars.Test(images[v].index())) {
                return;  // this absorption cannot continue downward
              }
              next_pinned.emplace_back(static_cast<std::int32_t>(v),
                                       images[v]);
            }
            int next =
                intern(static_cast<std::uint32_t>(ctx.child_atom_id[symbol]),
                       next_mask, std::move(next_pinned));
            nfa.AddTransition(id, symbol, next);
          });
    }
  }
  return nfa;
}

// ---- the string arm (ablation baseline: the pre-IR construction) -------

// Builds the word automaton for one disjunct over the shared alphabet.
// States: (goal atom, pending atom mask, pinned images) plus `accept`.
StatusOr<Nfa> BuildThetaWordAutomaton(
    const QueryAnalysis& query, const ProgramAlphabet& alphabet,
    const std::map<std::string, std::vector<int>>& labels_by_head,
    const std::vector<Atom>& goal_atoms, const ExecutionLimits& limits) {
  Governor governor(limits, "linear theta automaton");
  const std::size_t max_states = limits.StatesOr(500'000);
  Nfa nfa(0, alphabet.num_labels());
  int accept = nfa.AddState();
  nfa.SetAccepting(accept);

  struct State {
    Atom atom;
    std::uint64_t mask;
    PinnedMap pinned;
  };
  std::vector<State> states;
  std::map<std::string, int> ids;
  std::vector<int> worklist;
  auto intern = [&](Atom atom, std::uint64_t mask, PinnedMap pinned) -> int {
    std::string key =
        StrCat(atom.ToString(), "|", mask, "|", PinnedToString(pinned));
    auto [it, inserted] = ids.emplace(key, -1);
    if (inserted) {
      it->second = nfa.AddState();
      states.push_back({std::move(atom), mask, std::move(pinned)});
      worklist.push_back(it->second);
    }
    return it->second;
  };

  // Initial states: unify the disjunct's head vector with each goal atom.
  const ConjunctiveQuery& cq = *query.cq;
  for (const Atom& root : goal_atoms) {
    if (cq.head_args().size() != root.args().size()) continue;
    PinnedMap pinned;
    std::vector<std::optional<Term>> head_image(query.vars.size());
    bool ok = true;
    for (std::size_t i = 0; i < root.args().size() && ok; ++i) {
      const Term& from = cq.head_args()[i];
      const Term& to = root.args()[i];
      if (from.is_constant()) {
        ok = to.is_constant() && to.name() == from.name();
        continue;
      }
      int v = query.var_ids.at(from.name());
      if (head_image[v].has_value()) {
        ok = (*head_image[v] == to);
      } else {
        head_image[v] = to;
      }
    }
    if (!ok) continue;
    // Pin distinguished variables that occur in the body.
    for (std::size_t v = 0; v < query.vars.size(); ++v) {
      if (head_image[v].has_value() && query.atoms_of_var[v] != 0) {
        pinned.emplace_back(static_cast<int>(v), *head_image[v]);
      }
    }
    int id = intern(root, query.full_mask, std::move(pinned));
    nfa.SetInitial(id);
  }

  while (!worklist.empty()) {
    DATALOG_RETURN_IF_ERROR(governor.ChargeSteps(1));
    if (states.size() > max_states) {
      return Status(ResourceExhaustedError(
          StrCat("linear theta automaton exceeded ", max_states,
                 " states")));
    }
    int id = worklist.back();
    worklist.pop_back();
    // Copy: `states` may reallocate while we intern successors.
    State state = states[id - 1];  // state ids start after `accept`
    auto it = labels_by_head.find(state.atom.ToString());
    if (it == labels_by_head.end()) continue;
    for (int symbol : it->second) {
      const Rule& label = alphabet.Label(symbol);
      std::vector<const Atom*> edb_atoms;
      for (std::size_t i = 0; i < label.body().size(); ++i) {
        bool is_idb = false;
        for (std::size_t pos : alphabet.label_idb_positions[symbol]) {
          if (pos == i) is_idb = true;
        }
        if (!is_idb) edb_atoms.push_back(&label.body()[i]);
      }
      int arity = alphabet.arities[symbol];
      const Atom* child_goal =
          arity == 1
              ? &label.body()[alphabet.label_idb_positions[symbol][0]]
              : nullptr;
      EnumerateForwardAbsorptions(
          query, state.mask, edb_atoms, state.pinned,
          [&](std::uint64_t beta_prime,
              const std::vector<std::optional<Term>>& images) {
            if (arity == 0) {
              // Leaf: everything pending must be absorbed here.
              if (beta_prime == state.mask) {
                nfa.AddTransition(id, symbol, accept);
              }
              return;
            }
            std::uint64_t next_mask = state.mask & ~beta_prime;
            // Variables still relevant below: pending atoms contain them
            // and their image is already determined.
            PinnedMap next_pinned;
            std::unordered_set<std::string> child_vars;
            for (const Term& t : child_goal->args()) {
              if (t.is_variable()) child_vars.insert(t.name());
            }
            for (std::size_t v = 0; v < query.vars.size(); ++v) {
              if ((query.atoms_of_var[v] & next_mask) == 0) continue;
              if (!images[v].has_value()) continue;
              // Visibility (the paper's condition 4): the image must
              // occur in the child goal to stay connected.
              if (images[v]->is_variable() &&
                  child_vars.count(images[v]->name()) == 0) {
                return;  // this absorption cannot continue downward
              }
              next_pinned.emplace_back(static_cast<int>(v), *images[v]);
            }
            int next = intern(*child_goal, next_mask, std::move(next_pinned));
            nfa.AddTransition(id, symbol, next);
          });
    }
  }
  return nfa;
}

// Decodes a word over the alphabet into the path proof tree it spells.
ExpansionTree DecodeWord(const ProgramAlphabet& alphabet,
                         const std::vector<int>& word) {
  DATALOG_CHECK(!word.empty());
  // Build the path tree bottom-up from the last label.
  ExpansionNode node;
  for (std::size_t i = word.size(); i-- > 0;) {
    ExpansionNode parent;
    parent.rule = alphabet.Label(word[i]);
    parent.goal = parent.rule.head();
    parent.idb_positions = alphabet.label_idb_positions[word[i]];
    if (i + 1 < word.size()) {
      parent.children.push_back(std::move(node));
    }
    node = std::move(parent);
  }
  return ExpansionTree(std::move(node));
}

}  // namespace

StatusOr<LinearContainmentResult> DecideLinearDatalogInUcq(
    const Program& program, const std::string& goal, const UnionOfCqs& theta,
    const LinearContainmentOptions& options) {
  // Goal-directed pruning first: unreachable rules label no goal-rooted
  // path, so everything below — including the linearity check — runs on
  // the reachable fragment.
  std::optional<Program> pruned;
  if (options.prune_unreachable) {
    pruned = PruneUnreachableRules(program, goal);
  }
  const Program& prog = pruned.has_value() ? *pruned : program;
  if (!IsLinearInIdb(prog)) {
    return Status(InvalidArgumentError(
        "program is not linear (a rule has more than one IDB subgoal)"));
  }
  ProgramAlphabet alphabet;
  DATALOG_ASSIGN_OR_RETURN(
      alphabet, BuildProgramAlphabet(prog, options.limits, options.use_ir));

  LinearContainmentResult result;
  result.alphabet_size = alphabet.num_labels();

  // A^ptrees as a word automaton: states are the IDB atoms, words read the
  // labels from the root to the leaf.
  Nfa ptrees(0, alphabet.num_labels());
  int accept = ptrees.AddState();
  ptrees.SetAccepting(accept);

  LinearIrContext ctx;                              // IR arm
  std::map<std::string, int> atom_ids;              // string arm
  std::vector<Atom> state_atoms;                    // string arm
  std::map<std::string, std::vector<int>> labels_by_head;  // string arm
  std::vector<Atom> goal_atoms;                     // string arm
  std::vector<std::uint32_t> goal_atom_ids;         // IR arm

  if (options.use_ir) {
    // Keeps the NFA's state count aligned with the interned atoms before
    // any transition references them (atom id + 1, after `accept`).
    auto grow_states = [&]() {
      while (static_cast<std::size_t>(ptrees.num_states()) <
             ctx.atoms.size() + 1) {
        ptrees.AddState();
      }
    };
    for (std::size_t symbol = 0; symbol < alphabet.num_labels(); ++symbol) {
      const ProgramAlphabet::LabelIr& label = alphabet.label_ir[symbol];
      ir::TermAtom head;
      head.predicate = label.head_pred;
      head.args = label.head_args;
      std::uint32_t head_id = ctx.InternAtom(head);
      ctx.labels_by_head[head_id].push_back(static_cast<int>(symbol));
      if (alphabet.arities[symbol] == 0) {
        ctx.child_atom_id.push_back(-1);
        ctx.child_visible.emplace_back();
        grow_states();
        ptrees.AddTransition(static_cast<int>(head_id) + 1,
                             static_cast<int>(symbol), accept);
      } else {
        std::uint32_t child_id = ctx.InternAtom(label.idb_atoms[0]);
        ctx.child_atom_id.push_back(static_cast<int>(child_id));
        Bitset visible(alphabet.proof_vars.size());
        for (ir::TermId t : label.idb_atoms[0].args) {
          if (t.is_variable()) visible.Set(t.index());
        }
        ctx.child_visible.push_back(std::move(visible));
        grow_states();
        ptrees.AddTransition(static_cast<int>(head_id) + 1,
                             static_cast<int>(symbol),
                             static_cast<int>(child_id) + 1);
      }
    }
    std::uint32_t goal_pred = alphabet.predicates.Find(goal);
    for (std::uint32_t atom_id = 0; atom_id < ctx.atoms.size(); ++atom_id) {
      if (goal_pred != ir::NameDictionary::kNotFound &&
          static_cast<std::uint32_t>(ctx.atoms[atom_id].predicate) ==
              goal_pred) {
        ptrees.SetInitial(static_cast<int>(atom_id) + 1);
        goal_atom_ids.push_back(atom_id);
      }
    }
  } else {
    auto atom_state = [&](const Atom& atom) {
      auto [it, inserted] = atom_ids.emplace(atom.ToString(), -1);
      if (inserted) {
        it->second = ptrees.AddState();
        state_atoms.push_back(atom);
      }
      return it->second;
    };
    for (std::size_t symbol = 0; symbol < alphabet.num_labels(); ++symbol) {
      const Rule& label = alphabet.Label(symbol);
      int from = atom_state(label.head());
      labels_by_head[label.head().ToString()].push_back(
          static_cast<int>(symbol));
      if (alphabet.arities[symbol] == 0) {
        ptrees.AddTransition(from, static_cast<int>(symbol), accept);
      } else {
        int to =
            atom_state(label.body()[alphabet.label_idb_positions[symbol][0]]);
        ptrees.AddTransition(from, static_cast<int>(symbol), to);
      }
    }
    for (const Atom& atom : state_atoms) {
      if (atom.predicate() == goal) {
        ptrees.SetInitial(atom_ids.at(atom.ToString()));
        goal_atoms.push_back(atom);
      }
    }
  }
  result.ptrees_states = ptrees.num_states();

  // Union of the disjuncts' word automata.
  std::optional<Nfa> union_automaton;
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    StatusOr<QueryAnalysis> analysis = AnalyzeQuery(disjunct);
    if (!analysis.ok()) return analysis.status();
    StatusOr<Nfa> theta_nfa =
        options.use_ir
            ? [&]() {
                IrQueryAnalysis ir_query = BuildIrQueryAnalysis(
                    *analysis, &alphabet.predicates, &alphabet.constants);
                return BuildThetaWordAutomatonIr(ir_query, alphabet, ctx,
                                                 goal_atom_ids,
                                                 options.limits);
              }()
            : BuildThetaWordAutomaton(*analysis, alphabet, labels_by_head,
                                      goal_atoms, options.limits);
    if (!theta_nfa.ok()) return theta_nfa.status();
    result.theta_states += theta_nfa->num_states();
    if (union_automaton.has_value()) {
      union_automaton = Nfa::Union(*union_automaton, *theta_nfa);
    } else {
      union_automaton = std::move(theta_nfa).value();
    }
  }

  if (!union_automaton.has_value()) {
    result.contained = ptrees.IsEmpty();
    if (!result.contained) {
      result.counterexample = DecodeWord(alphabet, *ptrees.ShortestWord());
    }
    return result;
  }

  Nfa::ContainmentOptions containment_options;
  containment_options.antichain = options.antichain;
  containment_options.limits = options.limits;
  StatusOr<Nfa::ContainmentResult> containment =
      Nfa::Contains(ptrees, *union_automaton, containment_options);
  if (!containment.ok()) return containment.status();
  result.contained = containment->contained;
  result.pairs_explored = containment->explored;
  if (!containment->contained) {
    result.counterexample = DecodeWord(alphabet, containment->counterexample);
  }
  return result;
}

}  // namespace datalog
