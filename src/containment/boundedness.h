// Bounded-depth approximation of the (undecidable [GMSV93]) boundedness
// problem discussed in the paper's introduction: a program is *bounded*
// when it is equivalent to SOME nonrecursive program. Since the depth-k
// expansions Π_k always satisfy Π_k ⊆ Π, the program is equivalent to its
// own depth-k unfolding iff Π ⊆ Π_k — which Theorem 5.12 lets us decide.
// Searching k = 1, 2, ... yields a semi-decision procedure for
// boundedness (it cannot terminate on unbounded programs; the caller
// provides the cutoff).
#ifndef DATALOG_EQ_SRC_CONTAINMENT_BOUNDEDNESS_H_
#define DATALOG_EQ_SRC_CONTAINMENT_BOUNDEDNESS_H_

#include <optional>
#include <string>

#include "src/containment/decider.h"

namespace datalog {

/// Is Π equivalent to the union of its depth<=k expansions?
StatusOr<bool> IsBoundedAtDepth(
    const Program& program, const std::string& goal, std::size_t depth,
    const ContainmentOptions& options = ContainmentOptions());

/// Checker-reusing variant: the depth search decides one containment per
/// candidate depth against the same (program, goal), so callers hand in a
/// ContainmentChecker and the canonical-instance cache and goal interning
/// are paid once across the whole search instead of once per depth.
StatusOr<bool> IsBoundedAtDepth(
    ContainmentChecker& checker, std::size_t depth,
    const ContainmentOptions& options = ContainmentOptions());

/// Smallest k <= max_depth at which the program is bounded, or nullopt.
/// Internally reuses one ContainmentChecker across all candidate depths.
StatusOr<std::optional<std::size_t>> FindBoundedDepth(
    const Program& program, const std::string& goal, std::size_t max_depth,
    const ContainmentOptions& options = ContainmentOptions());

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_BOUNDEDNESS_H_
