#include "src/containment/boundedness.h"

#include "src/trees/enumerate.h"

namespace datalog {

StatusOr<bool> IsBoundedAtDepth(const Program& program,
                                const std::string& goal, std::size_t depth,
                                const ContainmentOptions& options) {
  EnumerateOptions enumerate;
  enumerate.max_depth = depth;
  UnionOfCqs expansions = BoundedExpansions(program, goal, enumerate);
  if (expansions.empty()) {
    // No expansion up to this depth; Π ⊆ ∅ iff Π has no expansions at all,
    // which the decider determines with an empty union.
  }
  StatusOr<ContainmentDecision> decision =
      DecideDatalogInUcq(program, goal, expansions, options);
  if (!decision.ok()) return decision.status();
  return decision->contained;
}

StatusOr<std::optional<std::size_t>> FindBoundedDepth(
    const Program& program, const std::string& goal, std::size_t max_depth,
    const ContainmentOptions& options) {
  for (std::size_t depth = 1; depth <= max_depth; ++depth) {
    StatusOr<bool> bounded = IsBoundedAtDepth(program, goal, depth, options);
    if (!bounded.ok()) return bounded.status();
    if (*bounded) return std::optional<std::size_t>(depth);
  }
  return std::optional<std::size_t>();
}

}  // namespace datalog
