#include "src/containment/boundedness.h"

#include "src/trees/enumerate.h"

namespace datalog {

StatusOr<bool> IsBoundedAtDepth(ContainmentChecker& checker,
                                std::size_t depth,
                                const ContainmentOptions& options) {
  EnumerateOptions enumerate;
  enumerate.max_depth = depth;
  UnionOfCqs expansions =
      BoundedExpansions(checker.program(), checker.goal(), enumerate);
  if (expansions.empty()) {
    // No expansion up to this depth; Π ⊆ ∅ iff Π has no expansions at all,
    // which the decider determines with an empty union.
  }
  StatusOr<ContainmentDecision> decision =
      checker.Decide(expansions, options);
  if (!decision.ok()) return decision.status();
  return decision->contained;
}

StatusOr<bool> IsBoundedAtDepth(const Program& program,
                                const std::string& goal, std::size_t depth,
                                const ContainmentOptions& options) {
  ContainmentChecker checker(program, goal);
  return IsBoundedAtDepth(checker, depth, options);
}

StatusOr<std::optional<std::size_t>> FindBoundedDepth(
    const Program& program, const std::string& goal, std::size_t max_depth,
    const ContainmentOptions& options) {
  // One checker across all depths: the canonical-instance cache and goal
  // interning depend only on (program, goal), not on the candidate Θ.
  ContainmentChecker checker(program, goal);
  for (std::size_t depth = 1; depth <= max_depth; ++depth) {
    StatusOr<bool> bounded = IsBoundedAtDepth(checker, depth, options);
    if (!bounded.ok()) return bounded.status();
    if (*bounded) return std::optional<std::size_t>(depth);
  }
  return std::optional<std::size_t>();
}

}  // namespace datalog
