#include "src/containment/unfold.h"

#include <limits>
#include <map>
#include <set>

#include "src/ast/analysis.h"
#include "src/cq/containment.h"
#include "src/cq/minimize.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// Composes sigma with {var -> term}: applies the new binding to existing
// right-hand sides, then records it.
void ComposeBinding(Substitution* sigma, const std::string& var,
                    const Term& term) {
  Substitution single;
  single.emplace(var, term);
  for (auto& [from, to] : *sigma) {
    to = ApplySubstitution(single, to);
  }
  sigma->emplace(var, term);
}

// Unifies two term vectors (no function symbols, so plain union suffices);
// extends `sigma`. Returns false on clash.
bool UnifyTermVectors(const std::vector<Term>& a, const std::vector<Term>& b,
                      Substitution* sigma) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    Term lhs = ApplySubstitution(*sigma, a[i]);
    Term rhs = ApplySubstitution(*sigma, b[i]);
    if (lhs == rhs) continue;
    if (lhs.is_variable()) {
      ComposeBinding(sigma, lhs.name(), rhs);
    } else if (rhs.is_variable()) {
      ComposeBinding(sigma, rhs.name(), lhs);
    } else {
      return false;  // distinct constants
    }
  }
  return true;
}

class Unfolder {
 public:
  Unfolder(const Program& program, const UnfoldOptions& options)
      : program_(program), options_(options), idb_(program.IdbPredicates()) {}

  StatusOr<UnionOfCqs> Run(const std::string& goal) {
    if (IsRecursive(program_)) {
      return Status(
          InvalidArgumentError("cannot unfold a recursive program"));
    }
    for (const std::string& predicate :
         TopologicalPredicateOrder(program_)) {
      if (idb_.count(predicate) == 0) continue;
      UnionOfCqs ucq;
      for (std::size_t rule_index : program_.RulesFor(predicate)) {
        const Rule& rule = program_.rules()[rule_index];
        std::vector<Atom> done;
        Status s = Expand(rule.head().args(), done, rule.body(), 0, &ucq);
        if (!s.ok()) return s;
      }
      if (options_.minimize) {
        CqMappingOptions mapping;
        mapping.use_ir = options_.use_ir;
        ucq = MinimizeUcq(ucq, mapping);
      }
      ucqs_[predicate] = std::move(ucq);
    }
    auto it = ucqs_.find(goal);
    if (it == ucqs_.end()) {
      return Status(InvalidArgumentError(
          StrCat("goal predicate ", goal, " is not an IDB predicate")));
    }
    return it->second;
  }

 private:
  // Expands `pending[index..]`, with `done` holding the EDB atoms
  // assembled so far; emits completed disjuncts into `out`.
  Status Expand(std::vector<Term> head_args, std::vector<Atom> done,
                std::vector<Atom> pending, std::size_t index,
                UnionOfCqs* out) {
    while (index < pending.size() &&
           idb_.count(pending[index].predicate()) == 0) {
      done.push_back(pending[index]);
      ++index;
    }
    if (index == pending.size()) {
      total_atoms_ += done.size();
      out->Add(ConjunctiveQuery(std::move(head_args), std::move(done)));
      if (out->size() > options_.max_disjuncts ||
          total_atoms_ > options_.max_total_atoms) {
        return ResourceExhaustedError(
            StrCat("unfolding exceeded limits (disjuncts=", out->size(),
                   ", atoms=", total_atoms_, ")"));
      }
      return OkStatus();
    }
    const Atom idb_atom = pending[index];
    const UnionOfCqs& sub = ucqs_.at(idb_atom.predicate());
    for (const ConjunctiveQuery& disjunct : sub.disjuncts()) {
      // Freshly rename the disjunct.
      Substitution fresh;
      for (const std::string& v : disjunct.VariableNames()) {
        fresh.emplace(v, Term::Variable(StrCat("_f", fresh_counter_, "_", v)));
      }
      ++fresh_counter_;
      ConjunctiveQuery renamed = ApplySubstitution(fresh, disjunct);
      // Unify the disjunct's head vector with the atom's arguments.
      Substitution sigma;
      if (!UnifyTermVectors(renamed.head_args(), idb_atom.args(), &sigma)) {
        continue;  // incompatible constants: this combination is empty
      }
      // Apply sigma everywhere and splice in the disjunct's body.
      std::vector<Term> new_head;
      new_head.reserve(head_args.size());
      for (const Term& t : head_args) {
        new_head.push_back(ApplySubstitution(sigma, t));
      }
      std::vector<Atom> new_done;
      new_done.reserve(done.size() + renamed.body().size());
      for (const Atom& a : done) {
        new_done.push_back(ApplySubstitution(sigma, a));
      }
      for (const Atom& a : renamed.body()) {
        new_done.push_back(ApplySubstitution(sigma, a));
      }
      std::vector<Atom> new_pending;
      new_pending.reserve(pending.size() - index - 1);
      for (std::size_t i = index + 1; i < pending.size(); ++i) {
        new_pending.push_back(ApplySubstitution(sigma, pending[i]));
      }
      Status s = Expand(std::move(new_head), std::move(new_done),
                        std::move(new_pending), 0, out);
      if (!s.ok()) return s;
    }
    return OkStatus();
  }

  const Program& program_;
  const UnfoldOptions& options_;
  std::set<std::string> idb_;
  std::map<std::string, UnionOfCqs> ucqs_;
  std::size_t fresh_counter_ = 0;
  std::size_t total_atoms_ = 0;
};

std::uint64_t SaturatingAdd(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r = a + b;
  return r < a ? std::numeric_limits<std::uint64_t>::max() : r;
}

std::uint64_t SaturatingMul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<std::uint64_t>::max() / b) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

}  // namespace

StatusOr<UnionOfCqs> UnfoldNonrecursive(const Program& program,
                                        const std::string& goal,
                                        const UnfoldOptions& options) {
  Unfolder unfolder(program, options);
  return unfolder.Run(goal);
}

StatusOr<UnfoldSizeEstimate> EstimateUnfoldSize(const Program& program,
                                                const std::string& goal) {
  if (IsRecursive(program)) {
    return Status(
        InvalidArgumentError("cannot estimate unfolding of a recursive "
                             "program"));
  }
  std::set<std::string> idb = program.IdbPredicates();
  std::map<std::string, UnfoldSizeEstimate> estimates;
  for (const std::string& predicate : TopologicalPredicateOrder(program)) {
    if (idb.count(predicate) == 0) continue;
    UnfoldSizeEstimate estimate;
    for (std::size_t rule_index : program.RulesFor(predicate)) {
      const Rule& rule = program.rules()[rule_index];
      std::uint64_t rule_disjuncts = 1;
      std::uint64_t rule_atoms = 0;
      for (const Atom& atom : rule.body()) {
        if (idb.count(atom.predicate()) > 0) {
          const UnfoldSizeEstimate& sub = estimates.at(atom.predicate());
          rule_disjuncts = SaturatingMul(rule_disjuncts, sub.disjuncts);
          rule_atoms = SaturatingAdd(rule_atoms, sub.max_disjunct_atoms);
        } else {
          rule_atoms = SaturatingAdd(rule_atoms, 1);
        }
      }
      estimate.disjuncts = SaturatingAdd(estimate.disjuncts, rule_disjuncts);
      estimate.max_disjunct_atoms =
          std::max(estimate.max_disjunct_atoms, rule_atoms);
    }
    estimates[predicate] = estimate;
  }
  auto it = estimates.find(goal);
  if (it == estimates.end()) {
    return Status(InvalidArgumentError(
        StrCat("goal predicate ", goal, " is not an IDB predicate")));
  }
  return it->second;
}

}  // namespace datalog
