// Containment of (unions of) conjunctive queries in a Datalog program —
// the "easy" direction, decidable by the classic canonical-database method
// [CK86] cited in the paper's introduction: freeze the CQ into a database,
// evaluate the program, and check that the frozen head tuple is derived.
//
// The freeze feeds the engine through the shared-IR dictionary handoff by
// default (FreezeDisjunctIntoDatabase, src/cq/canonical_db.h), reusing the
// union's carried ProgramIr across calls; the Term-level freeze is kept
// behind `CanonicalDbOptions::use_ir = false` as the ablation baseline.
#ifndef DATALOG_EQ_SRC_CONTAINMENT_UCQ_IN_DATALOG_H_
#define DATALOG_EQ_SRC_CONTAINMENT_UCQ_IN_DATALOG_H_

#include <string>

#include "src/ast/rule.h"
#include "src/cq/cq.h"
#include "src/engine/eval.h"
#include "src/util/status.h"

namespace datalog {

class ThreadPool;

/// The canonical-database instance behind one disjunct's verdict,
/// exported for independently checkable certificates: the frozen body
/// facts exactly as the engine loaded them (before evaluation, before
/// the auxiliary __domain relation) and the goal atom over the frozen
/// head tuple. On a negative verdict this is the complete
/// counterexample — any sound fixpoint over `facts` fails to derive
/// `goal_atom` (src/corpus/verify.h replays it with a naive evaluator).
struct CanonicalDbWitness {
  std::vector<Atom> facts;
  Atom goal_atom;
};

/// Ablation switch for the canonical-database construction substrate.
struct CanonicalDbOptions {
  /// Freeze through the ProgramIr → engine dictionary handoff (each name
  /// interned once, facts inserted as already-encoded tuples). Disabling
  /// falls back to the Term-level freeze (frozen "@v" Atoms re-hashed per
  /// argument occurrence). Both arms build identical databases and
  /// produce identical verdicts (tests/canonical_db_test.cc).
  bool use_ir = true;
  /// Engine options for the canonical-database evaluations. num_threads
  /// additionally gates the union-level driver's disjunct fan-out: when
  /// it resolves to more than one thread, IsUcqContainedInDatalog
  /// evaluates its disjuncts concurrently across a worker pool (each
  /// disjunct's engine then runs serially — the two parallelism levels
  /// do not nest) with verdict, failing disjunct, and accumulated stats
  /// identical to the sequential loop's.
  EvalOptions eval;
  /// Optional caller-owned worker pool for the disjunct fan-out. When
  /// set, IsUcqContainedInDatalog schedules its disjuncts on this pool
  /// instead of constructing (and tearing down) a fresh ThreadPool per
  /// call — drivers that loop containment checks (the equivalence
  /// pipeline, rewriting searches) amortize thread spawns across the
  /// whole loop. The pool's own parallelism applies; eval.num_threads
  /// still decides whether fan-out happens at all. Unowned; must outlive
  /// the call.
  ThreadPool* pool = nullptr;
  /// Drop the program's rules that are not backward-reachable from the
  /// goal before the canonical-database evaluations, via the
  /// active-domain-guarded PruneForEvaluation
  /// (src/analysis/reachability.h) — the guard declines to prune exactly
  /// when removing a rule's constants could change an unsafe retained
  /// rule's enumeration, so verdicts are identical with this off
  /// (ablation switch). Pruning happens once per call, before any
  /// disjunct loop or fan-out.
  bool prune_unreachable = true;
  /// When non-null, the single-disjunct entry points
  /// (IsCqContainedInDatalog, IsUcqDisjunctContainedInDatalog) fill in
  /// the frozen database they evaluated, for certificate export. The
  /// union-level driver ignores it (its disjunct fan-out would race on
  /// one slot); re-check the failing disjunct through the per-disjunct
  /// entry to capture its witness. Unowned; must outlive the call.
  CanonicalDbWitness* witness = nullptr;
};

/// θ ⊆ Q_Π: evaluates Π over the canonical database of θ and tests the
/// frozen head tuple. For θ with head variables that do not occur in the
/// body, active-domain semantics applies (consistent with the evaluation
/// engine); such a θ over an empty body is contained only if the program
/// derives the goal over every database, which the canonical-database
/// method checks on the frozen instance. When `stats` is non-null, the
/// engine's work counters accumulate into it across calls.
StatusOr<bool> IsCqContainedInDatalog(
    const ConjunctiveQuery& theta, const Program& program,
    const std::string& goal, EvalStats* stats = nullptr,
    const CanonicalDbOptions& options = CanonicalDbOptions());

/// θ_i ⊆ Q_Π for one disjunct of a union, freezing through the union's
/// carried ProgramIr (ir::CarriedIr). This is the entry for drivers that
/// loop single CQs: batch the CQs into a UnionOfCqs once and check
/// disjuncts through it, instead of paying a throwaway singleton IR per
/// IsCqContainedInDatalog call. IsUcqContainedInDatalog's sequential and
/// parallel loops are both built on it.
StatusOr<bool> IsUcqDisjunctContainedInDatalog(
    const UnionOfCqs& theta, std::size_t disjunct, const Program& program,
    const std::string& goal, EvalStats* stats = nullptr,
    const CanonicalDbOptions& options = CanonicalDbOptions());

/// Θ ⊆ Q_Π: every disjunct contained. Uses Θ's carried ProgramIr
/// (ir::CarriedIr) on the IR arm, so repeated calls on the same union —
/// the equivalence pipeline's backward direction, rewriting searches —
/// re-intern nothing. When not contained and `failing_disjunct` is
/// non-null, it receives the index of the first uncontained disjunct.
StatusOr<bool> IsUcqContainedInDatalog(
    const UnionOfCqs& theta, const Program& program, const std::string& goal,
    EvalStats* stats = nullptr,
    const CanonicalDbOptions& options = CanonicalDbOptions(),
    std::size_t* failing_disjunct = nullptr);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_UCQ_IN_DATALOG_H_
