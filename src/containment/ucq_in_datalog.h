// Containment of (unions of) conjunctive queries in a Datalog program —
// the "easy" direction, decidable by the classic canonical-database method
// [CK86] cited in the paper's introduction: freeze the CQ into a database,
// evaluate the program, and check that the frozen head tuple is derived.
#ifndef DATALOG_EQ_SRC_CONTAINMENT_UCQ_IN_DATALOG_H_
#define DATALOG_EQ_SRC_CONTAINMENT_UCQ_IN_DATALOG_H_

#include <string>

#include "src/ast/rule.h"
#include "src/cq/cq.h"
#include "src/engine/eval.h"
#include "src/util/status.h"

namespace datalog {

/// θ ⊆ Q_Π: evaluates Π over the canonical database of θ and tests the
/// frozen head tuple. For θ with head variables that do not occur in the
/// body, active-domain semantics applies (consistent with the evaluation
/// engine); such a θ over an empty body is contained only if the program
/// derives the goal over every database, which the canonical-database
/// method checks on the frozen instance. When `stats` is non-null, the
/// engine's work counters accumulate into it across calls.
StatusOr<bool> IsCqContainedInDatalog(const ConjunctiveQuery& theta,
                                      const Program& program,
                                      const std::string& goal,
                                      EvalStats* stats = nullptr);

/// Θ ⊆ Q_Π: every disjunct contained.
StatusOr<bool> IsUcqContainedInDatalog(const UnionOfCqs& theta,
                                       const Program& program,
                                       const std::string& goal,
                                       EvalStats* stats = nullptr);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_UCQ_IN_DATALOG_H_
