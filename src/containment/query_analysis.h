// Per-disjunct precomputation for the containment machinery of §5:
// variable indexing, atom-incidence bitmasks, and the "exposed variable"
// computation that underlies both the A^θ automaton (Proposition 5.10) and
// the on-the-fly containment decider.
//
// For a subset β of θ's atoms (an absorbed set), a variable v of β is
// *exposed* when its image must remain visible at the current subtree's
// root goal: v is distinguished, or v also occurs in atoms outside β.
// Exposed images are exactly the partial mapping M the paper threads
// through the automaton states; restricting M to exposed variables is
// language-preserving and keeps the state space finite-practical.
#ifndef DATALOG_EQ_SRC_CONTAINMENT_QUERY_ANALYSIS_H_
#define DATALOG_EQ_SRC_CONTAINMENT_QUERY_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cq/cq.h"
#include "src/ir/ir.h"
#include "src/util/status.h"

namespace datalog {

/// Analysis of one conjunctive query (a disjunct of Θ).
struct QueryAnalysis {
  const ConjunctiveQuery* cq = nullptr;
  /// Distinct variable names, head first.
  std::vector<std::string> vars;
  std::unordered_map<std::string, int> var_ids;
  /// For each variable: bitmask of body atoms containing it.
  std::vector<std::uint64_t> atoms_of_var;
  /// For each variable: whether it occurs in the head.
  std::vector<bool> distinguished;
  /// For each body atom: the variable ids occurring in it.
  std::vector<std::vector<int>> vars_of_atom;
  /// Bitmask with one bit per body atom.
  std::uint64_t full_mask = 0;

  /// True if variable `v` is exposed w.r.t. absorbed set `mask`.
  bool IsExposed(int v, std::uint64_t mask) const {
    if ((atoms_of_var[v] & mask) == 0) return false;  // not in beta at all
    if (distinguished[v]) return true;
    return (atoms_of_var[v] & full_mask & ~mask) != 0;
  }
};

/// Hard cap on body atoms per disjunct. Atom subsets are 64-bit masks
/// (AchievedPair::mask), and `uint64_t{1} << atom_index` in the absorption
/// machinery (src/containment/absorb.cc) is undefined behavior at index
/// 64+; the subset enumeration ForEachSubsetMask additionally needs
/// `1 << n` headroom above the largest index. Every mask producer routes
/// through AnalyzeQuery/AnalyzeUnion, which reject larger disjuncts with
/// InvalidArgumentError so the unguarded shifts are never reached.
constexpr std::size_t kMaxDisjunctAtoms = 62;

/// Builds the analysis; fails if a disjunct has more than
/// kMaxDisjunctAtoms body atoms.
StatusOr<QueryAnalysis> AnalyzeQuery(const ConjunctiveQuery& cq);

/// Analyses for all disjuncts of a union.
StatusOr<std::vector<QueryAnalysis>> AnalyzeUnion(const UnionOfCqs& ucq);

/// One query atom on the interned IR encoding: a pattern atom whose
/// `arg >= 0` entries are query-local variable ids and whose `arg < 0`
/// entries are constants (`~arg` is the dictionary id). Matching an
/// argument against an instance-side ir::TermId is then a branch plus an
/// integer compare — no string hashing (see absorb.h's IR combination
/// step).
using IrQueryAtom = ir::PatternAtom;

/// The IR companion of a QueryAnalysis: the same variable numbering and
/// atom masks (borrowed from `base`), with the body atoms and head
/// arguments re-encoded onto shared predicate/constant dictionaries.
struct IrQueryAnalysis {
  const QueryAnalysis* base = nullptr;
  std::vector<IrQueryAtom> body;
  /// Head arguments, IrQueryAtom-encoded (var id or ~constant).
  std::vector<std::int32_t> head_args;
};

/// Encodes `analysis` onto the given dictionaries (interning any new
/// predicate or constant names). `analysis` must outlive the result.
IrQueryAnalysis BuildIrQueryAnalysis(const QueryAnalysis& analysis,
                                     ir::NameDictionary* predicates,
                                     ir::NameDictionary* constants);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_QUERY_ANALYSIS_H_
