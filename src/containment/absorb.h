// The (β, M) absorption machinery shared by the A^θ automaton construction
// (Proposition 5.10) and the on-the-fly containment decider (§5.2).
//
// An *achieved pair* (query, β, pinned) records that a proof subtree can
// strongly absorb the atom subset β (a bitmask) of disjunct `query`, with
// every exposed variable of β pinned to an image term that is visible in
// the subtree's root goal (a variable of the goal atom, or a constant).
// This is the bottom-up rendering of the paper's automaton states
// (α, β, M), with M restricted to the exposed variables (a
// language-preserving quotient — see query_analysis.h).
//
// `CombineAtNode` implements one bottom-up automaton step: given a rule
// instance ρ and one achieved pair per child subtree, it enumerates the
// pairs achievable at the parent, i.e. the transition relation of
// Proposition 5.10 read bottom-up (conditions 1-4 of the paper map to the
// partition/consistency/visibility checks here).
#ifndef DATALOG_EQ_SRC_CONTAINMENT_ABSORB_H_
#define DATALOG_EQ_SRC_CONTAINMENT_ABSORB_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/ast/rule.h"
#include "src/containment/query_analysis.h"
#include "src/util/bitset.h"

namespace datalog {

/// Pinned exposed-variable images: (variable id, image term), sorted by
/// variable id.
using PinnedMap = std::vector<std::pair<int, Term>>;

struct AchievedPair {
  int query = 0;
  std::uint64_t mask = 0;
  PinnedMap pinned;

  bool operator==(const AchievedPair& other) const {
    return query == other.query && mask == other.mask &&
           pinned == other.pinned;
  }
  bool operator<(const AchievedPair& other) const {
    if (query != other.query) return query < other.query;
    if (mask != other.mask) return mask < other.mask;
    return pinned < other.pinned;
  }
  std::string ToString() const;
};

/// A deduplicated, sorted set of achieved pairs: the "achievable set" of a
/// proof subtree (one deterministic-subset-construction state). The empty
/// pair (β = ∅) is implicit and never stored.
///
/// The sort order is load-bearing: IsAchievedSubset runs a linear merge
/// (std::includes) over both sets and set equality is positional, so an
/// AchievedSet must stay sorted by AchievedPair::operator< at all times —
/// do not replace it with a hashed container.
using AchievedSet = std::vector<AchievedPair>;

/// Inserts `pair` keeping the set sorted and unique.
void InsertPair(AchievedSet* set, AchievedPair pair);

/// True if every pair of `a` also occurs in `b` (both sorted).
bool IsAchievedSubset(const AchievedSet& a, const AchievedSet& b);

/// Order-independent 64-bit Bloom signature of an achieved set: every pair
/// hashes to one of 64 bits and the signature is their union. Because
/// a ⊆ b implies Signature(a) & ~Signature(b) == 0, the decider's
/// antichain maintenance — which runs pairwise subset tests against every
/// retained state of a goal — can reject most candidates with one AND
/// instead of a merge scan.
std::uint64_t AchievedPairSignatureBit(const AchievedPair& pair);
std::uint64_t AchievedSetSignature(const AchievedSet& set);

/// True when the signatures do not refute a ⊆ b (a necessary condition;
/// confirm with IsAchievedSubset).
inline bool SignatureMayBeSubset(std::uint64_t sig_a, std::uint64_t sig_b) {
  return (sig_a & ~sig_b) == 0;
}

/// One bottom-up combination step at a node labeled with `instance`.
///
/// `queries`: analyses of all disjuncts of Θ.
/// `instance`: the rule instance ρ labelling the node (head = node goal).
/// `edb_atoms`: pointers to the EDB atoms of ρ's body.
/// `child_goals`: the IDB atoms of ρ's body, in order.
/// `child_sets`: the achievable set of each child subtree, with pinned
///   images expressed in the instance's variable frame.
///
/// Emits every nonempty pair achievable at the parent into `out`
/// (deduplicated). The implicit empty pair stays implicit.
void CombineAtNode(const std::vector<QueryAnalysis>& queries,
                   const Rule& instance,
                   const std::vector<const Atom*>& edb_atoms,
                   const std::vector<Atom>& child_goals,
                   const std::vector<const AchievedSet*>& child_sets,
                   AchievedSet* out);

/// One fixpoint-table row exported by the decider when
/// ContainmentOptions::export_trace is set: a canonical goal atom over
/// var(Π) and every achievable set retained for it at convergence
/// (the ⊆-minimal ones under the antichain option). The full table is
/// the inductive invariant behind a "contained" verdict — base, closure
/// under CombineAtNode, and root acceptance — which an independent
/// verifier can re-check without the decider (src/corpus/verify.h;
/// docs/corpus.md, "Absorption traces").
struct AbsorptionTraceEntry {
  Atom goal;
  std::vector<AchievedSet> sets;
};
using AbsorptionTrace = std::vector<AbsorptionTraceEntry>;

/// Root acceptance (Theorem 5.8 / start states of Proposition 5.10): true
/// if some disjunct maps strongly into a subtree with root goal
/// `root_goal` whose achievable set is `set` — i.e. the disjunct's head
/// unifies with the root goal's argument vector and, when the disjunct has
/// body atoms, `set` contains a full-mask pair whose pinned distinguished
/// images agree with that unification.
bool RootAccepts(const std::vector<QueryAnalysis>& queries,
                 const Atom& root_goal, const AchievedSet& set);

/// Like RootAccepts for a single disjunct (the set must contain only this
/// disjunct's pairs).
bool RootAcceptsQuery(const QueryAnalysis& query, const Atom& root_goal,
                      const AchievedSet& set);

// --- the interned IR encoding of the same machinery -------------------
//
// The string path above moves Term objects (heap strings) through every
// bind, compare, and sort. The IR path runs the identical semantics on
// dense ids: pinned images are ir::TermId (variables are frame-local
// proof-variable indexes, constants dictionary ids), so homomorphism and
// consistency checks are single integer compares and an achieved pair is
// a trivially-copyable span. ContainmentOptions::use_ir selects between
// them; decisions are byte-identical (tests/decider_intern_test.cc).

/// Pinned exposed-variable images on the IR encoding, sorted by variable
/// id. The pair is trivially copyable.
using IrPinnedMap = std::vector<std::pair<std::int32_t, ir::TermId>>;

struct IrAchievedPair {
  std::int32_t query = 0;
  std::uint64_t mask = 0;
  IrPinnedMap pinned;

  bool operator==(const IrAchievedPair& other) const {
    return query == other.query && mask == other.mask &&
           pinned == other.pinned;
  }
  bool operator<(const IrAchievedPair& other) const {
    if (query != other.query) return query < other.query;
    if (mask != other.mask) return mask < other.mask;
    return pinned < other.pinned;
  }
};

/// Sorted, deduplicated achieved set on the IR encoding. The same
/// sort-order contract as AchievedSet applies: subset tests are linear
/// merges, so the set must stay sorted by IrAchievedPair::operator< at
/// all times.
using IrAchievedSet = std::vector<IrAchievedPair>;

/// Inserts `pair` keeping the set sorted and unique.
void InsertPair(IrAchievedSet* set, IrAchievedPair pair);

/// True if every pair of `a` also occurs in `b` (both sorted).
bool IsAchievedSubset(const IrAchievedSet& a, const IrAchievedSet& b);

/// Order-independent 64-bit Bloom signature (IR pairs hash over ids, so
/// the bit pattern differs from the string path's — only ever compare IR
/// signatures with IR signatures).
std::uint64_t AchievedPairSignatureBit(const IrAchievedPair& pair);
std::uint64_t AchievedSetSignature(const IrAchievedSet& set);

/// An instance-side atom on the IR encoding: predicate dictionary id plus
/// TermId arguments (variables are proof-variable indexes in the
/// instance's frame, constants dictionary ids).
using IrInstanceAtom = ir::TermAtom;

/// IR rendering of CombineAtNode: one bottom-up combination step at a
/// node whose rule instance has EDB body atoms `edb_atoms` and whose head
/// contains exactly the proof variables set in `parent_visible` (a Bitset
/// indexed by proof-variable index). `child_sets` are the children's
/// achievable sets with pinned images already renamed into the instance
/// frame. Every integer pinned-image comparison is counted into
/// `*pinned_compares` when non-null.
void CombineAtNode(const std::vector<IrQueryAnalysis>& queries,
                   const std::vector<IrInstanceAtom>& edb_atoms,
                   const Bitset& parent_visible,
                   const std::vector<const IrAchievedSet*>& child_sets,
                   IrAchievedSet* out, std::size_t* pinned_compares);

/// IR rendering of RootAccepts: `root_goal_args` are the root goal's
/// argument TermIds (the goal predicate is checked by the caller).
bool RootAccepts(const std::vector<IrQueryAnalysis>& queries,
                 const std::vector<ir::TermId>& root_goal_args,
                 const IrAchievedSet& set, std::size_t* pinned_compares);

/// Forward (top-down) absorption step, used by the word-automaton
/// construction for linear programs: enumerates every subset β' of the
/// pending atoms `pending_mask` of `query` that maps homomorphically into
/// `edb_atoms` consistently with the seed assignment, and calls
/// `visit(beta_prime, assignment)` with the extended assignment (indexed
/// by query variable id; unassigned entries are nullopt). The empty subset
/// is included.
void EnumerateForwardAbsorptions(
    const QueryAnalysis& query, std::uint64_t pending_mask,
    const std::vector<const Atom*>& edb_atoms, const PinnedMap& seed,
    const std::function<void(std::uint64_t,
                             const std::vector<std::optional<Term>>&)>&
        visit);

/// IR rendering of EnumerateForwardAbsorptions: the same enumeration in
/// the same order, with every unification an integer compare and no Terms
/// moved. The seed pins images in the instance frame (TermIds); `visit`
/// receives the chosen subset and the extended dense assignment (invalid
/// TermId = unassigned).
void EnumerateForwardAbsorptions(
    const IrQueryAnalysis& query, std::uint64_t pending_mask,
    const std::vector<IrInstanceAtom>& edb_atoms, const IrPinnedMap& seed,
    const std::function<void(std::uint64_t, const ir::IrSubstitution&)>&
        visit);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_ABSORB_H_
