// The (β, M) absorption machinery shared by the A^θ automaton construction
// (Proposition 5.10) and the on-the-fly containment decider (§5.2).
//
// An *achieved pair* (query, β, pinned) records that a proof subtree can
// strongly absorb the atom subset β (a bitmask) of disjunct `query`, with
// every exposed variable of β pinned to an image term that is visible in
// the subtree's root goal (a variable of the goal atom, or a constant).
// This is the bottom-up rendering of the paper's automaton states
// (α, β, M), with M restricted to the exposed variables (a
// language-preserving quotient — see query_analysis.h).
//
// `CombineAtNode` implements one bottom-up automaton step: given a rule
// instance ρ and one achieved pair per child subtree, it enumerates the
// pairs achievable at the parent, i.e. the transition relation of
// Proposition 5.10 read bottom-up (conditions 1-4 of the paper map to the
// partition/consistency/visibility checks here).
#ifndef DATALOG_EQ_SRC_CONTAINMENT_ABSORB_H_
#define DATALOG_EQ_SRC_CONTAINMENT_ABSORB_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/ast/rule.h"
#include "src/containment/query_analysis.h"

namespace datalog {

/// Pinned exposed-variable images: (variable id, image term), sorted by
/// variable id.
using PinnedMap = std::vector<std::pair<int, Term>>;

struct AchievedPair {
  int query = 0;
  std::uint64_t mask = 0;
  PinnedMap pinned;

  bool operator==(const AchievedPair& other) const {
    return query == other.query && mask == other.mask &&
           pinned == other.pinned;
  }
  bool operator<(const AchievedPair& other) const {
    if (query != other.query) return query < other.query;
    if (mask != other.mask) return mask < other.mask;
    return pinned < other.pinned;
  }
  std::string ToString() const;
};

/// A deduplicated, sorted set of achieved pairs: the "achievable set" of a
/// proof subtree (one deterministic-subset-construction state). The empty
/// pair (β = ∅) is implicit and never stored.
///
/// The sort order is load-bearing: IsAchievedSubset runs a linear merge
/// (std::includes) over both sets and set equality is positional, so an
/// AchievedSet must stay sorted by AchievedPair::operator< at all times —
/// do not replace it with a hashed container.
using AchievedSet = std::vector<AchievedPair>;

/// Inserts `pair` keeping the set sorted and unique.
void InsertPair(AchievedSet* set, AchievedPair pair);

/// True if every pair of `a` also occurs in `b` (both sorted).
bool IsAchievedSubset(const AchievedSet& a, const AchievedSet& b);

/// Order-independent 64-bit Bloom signature of an achieved set: every pair
/// hashes to one of 64 bits and the signature is their union. Because
/// a ⊆ b implies Signature(a) & ~Signature(b) == 0, the decider's
/// antichain maintenance — which runs pairwise subset tests against every
/// retained state of a goal — can reject most candidates with one AND
/// instead of a merge scan.
std::uint64_t AchievedPairSignatureBit(const AchievedPair& pair);
std::uint64_t AchievedSetSignature(const AchievedSet& set);

/// True when the signatures do not refute a ⊆ b (a necessary condition;
/// confirm with IsAchievedSubset).
inline bool SignatureMayBeSubset(std::uint64_t sig_a, std::uint64_t sig_b) {
  return (sig_a & ~sig_b) == 0;
}

/// One bottom-up combination step at a node labeled with `instance`.
///
/// `queries`: analyses of all disjuncts of Θ.
/// `instance`: the rule instance ρ labelling the node (head = node goal).
/// `edb_atoms`: pointers to the EDB atoms of ρ's body.
/// `child_goals`: the IDB atoms of ρ's body, in order.
/// `child_sets`: the achievable set of each child subtree, with pinned
///   images expressed in the instance's variable frame.
///
/// Emits every nonempty pair achievable at the parent into `out`
/// (deduplicated). The implicit empty pair stays implicit.
void CombineAtNode(const std::vector<QueryAnalysis>& queries,
                   const Rule& instance,
                   const std::vector<const Atom*>& edb_atoms,
                   const std::vector<Atom>& child_goals,
                   const std::vector<const AchievedSet*>& child_sets,
                   AchievedSet* out);

/// Root acceptance (Theorem 5.8 / start states of Proposition 5.10): true
/// if some disjunct maps strongly into a subtree with root goal
/// `root_goal` whose achievable set is `set` — i.e. the disjunct's head
/// unifies with the root goal's argument vector and, when the disjunct has
/// body atoms, `set` contains a full-mask pair whose pinned distinguished
/// images agree with that unification.
bool RootAccepts(const std::vector<QueryAnalysis>& queries,
                 const Atom& root_goal, const AchievedSet& set);

/// Like RootAccepts for a single disjunct (the set must contain only this
/// disjunct's pairs).
bool RootAcceptsQuery(const QueryAnalysis& query, const Atom& root_goal,
                      const AchievedSet& set);

/// Forward (top-down) absorption step, used by the word-automaton
/// construction for linear programs: enumerates every subset β' of the
/// pending atoms `pending_mask` of `query` that maps homomorphically into
/// `edb_atoms` consistently with the seed assignment, and calls
/// `visit(beta_prime, assignment)` with the extended assignment (indexed
/// by query variable id; unassigned entries are nullopt). The empty subset
/// is included.
void EnumerateForwardAbsorptions(
    const QueryAnalysis& query, std::uint64_t pending_mask,
    const std::vector<const Atom*>& edb_atoms, const PinnedMap& seed,
    const std::function<void(std::uint64_t,
                             const std::vector<std::optional<Term>>&)>&
        visit);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_ABSORB_H_
