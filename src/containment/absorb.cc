#include "src/containment/absorb.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/hash.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// Working assignment of query variables to image terms during a combine.
struct Assignment {
  std::vector<std::optional<Term>> image;

  explicit Assignment(std::size_t num_vars) : image(num_vars) {}

  bool Bind(int var, const Term& term, std::vector<int>* trail) {
    if (image[var].has_value()) return *image[var] == term;
    image[var] = term;
    trail->push_back(var);
    return true;
  }
  void Undo(std::vector<int>* trail, std::size_t mark) {
    while (trail->size() > mark) {
      image[trail->back()].reset();
      trail->pop_back();
    }
  }
};

// Enumerates (β', h'): subsets of the candidate atoms of `query` mapped
// homomorphically into `edb_atoms`, consistent with the current
// assignment. Calls `emit(beta_prime_mask)` for each choice (including the
// empty one) with the assignment reflecting h'.
void EnumerateAbsorptions(const QueryAnalysis& query,
                          std::uint64_t candidate_mask,
                          const std::vector<const Atom*>& edb_atoms,
                          Assignment* assignment, std::vector<int>* trail,
                          int atom_index, std::uint64_t chosen,
                          const std::function<void(std::uint64_t)>& emit) {
  // Find the next candidate atom at or after atom_index.
  int n = static_cast<int>(query.cq->body().size());
  while (atom_index < n &&
         (candidate_mask & (std::uint64_t{1} << atom_index)) == 0) {
    ++atom_index;
  }
  if (atom_index >= n) {
    emit(chosen);
    return;
  }
  const Atom& from = query.cq->body()[atom_index];
  // Option 1: skip this atom.
  EnumerateAbsorptions(query, candidate_mask, edb_atoms, assignment, trail,
                       atom_index + 1, chosen, emit);
  // Option 2: map it to some EDB atom of the rule body.
  for (const Atom* to : edb_atoms) {
    if (to->predicate() != from.predicate() || to->arity() != from.arity()) {
      continue;
    }
    std::size_t mark = trail->size();
    bool ok = true;
    for (std::size_t i = 0; i < from.arity(); ++i) {
      const Term& f = from.args()[i];
      const Term& t = to->args()[i];
      if (f.is_constant()) {
        if (!(t.is_constant() && t.name() == f.name())) {
          ok = false;
          break;
        }
        continue;
      }
      int v = query.var_ids.at(f.name());
      if (!assignment->Bind(v, t, trail)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      EnumerateAbsorptions(query, candidate_mask, edb_atoms, assignment,
                           trail, atom_index + 1,
                           chosen | (std::uint64_t{1} << atom_index), emit);
    }
    assignment->Undo(trail, mark);
  }
}

// --- the IR (dense-id) mirror of the machinery above -------------------
// The working assignment is the shared ir::DenseBinding (binds are
// integer stores; consistency checks integer compares, counted into
// *pinned_compares by the callers that thread a counter through).

// IR rendering of EnumerateAbsorptions: subsets of the candidate atoms of
// `query` mapped homomorphically into `edb_atoms`, with every unification
// an integer compare.
void IrEnumerateAbsorptions(const IrQueryAnalysis& query,
                            std::uint64_t candidate_mask,
                            const std::vector<IrInstanceAtom>& edb_atoms,
                            ir::DenseBinding* assignment,
                            std::vector<std::int32_t>* trail, int atom_index,
                            std::uint64_t chosen, std::size_t* pinned_compares,
                            const std::function<void(std::uint64_t)>& emit) {
  int n = static_cast<int>(query.body.size());
  while (atom_index < n &&
         (candidate_mask & (std::uint64_t{1} << atom_index)) == 0) {
    ++atom_index;
  }
  if (atom_index >= n) {
    emit(chosen);
    return;
  }
  const IrQueryAtom& from = query.body[atom_index];
  // Option 1: skip this atom.
  IrEnumerateAbsorptions(query, candidate_mask, edb_atoms, assignment, trail,
                         atom_index + 1, chosen, pinned_compares, emit);
  // Option 2: map it to some EDB atom of the rule body.
  for (const IrInstanceAtom& to : edb_atoms) {
    if (to.predicate != from.predicate ||
        to.args.size() != from.args.size()) {
      continue;
    }
    std::size_t mark = trail->size();
    bool ok = true;
    for (std::size_t i = 0; i < from.args.size(); ++i) {
      std::int32_t f = from.args[i];
      ir::TermId t = to.args[i];
      if (f < 0) {  // constant: image must be the same constant
        if (t != ir::TermId::Constant(static_cast<std::uint32_t>(~f))) {
          ok = false;
          break;
        }
        continue;
      }
      if (!assignment->Bind(f, t, trail, pinned_compares)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      IrEnumerateAbsorptions(query, candidate_mask, edb_atoms, assignment,
                             trail, atom_index + 1,
                             chosen | (std::uint64_t{1} << atom_index),
                             pinned_compares, emit);
    }
    assignment->Undo(trail, mark);
  }
}

}  // namespace

std::string AchievedPair::ToString() const {
  std::string out = StrCat("q", query, " mask=", mask, " {");
  for (const auto& [v, t] : pinned) {
    out += StrCat(v, "->", t.ToString(), " ");
  }
  out += "}";
  return out;
}

void InsertPair(AchievedSet* set, AchievedPair pair) {
  auto it = std::lower_bound(set->begin(), set->end(), pair);
  if (it != set->end() && *it == pair) return;
  set->insert(it, std::move(pair));
}

bool IsAchievedSubset(const AchievedSet& a, const AchievedSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::uint64_t AchievedPairSignatureBit(const AchievedPair& pair) {
  std::size_t seed = static_cast<std::size_t>(pair.query);
  HashCombine(&seed, pair.mask);
  for (const auto& [v, term] : pair.pinned) {
    HashCombine(&seed, v);
    HashCombine(&seed, static_cast<int>(term.kind()));
    HashCombine(&seed, term.name());
  }
  return std::uint64_t{1} << (seed & 63);
}

std::uint64_t AchievedSetSignature(const AchievedSet& set) {
  std::uint64_t sig = 0;
  for (const AchievedPair& pair : set) sig |= AchievedPairSignatureBit(pair);
  return sig;
}

void CombineAtNode(const std::vector<QueryAnalysis>& queries,
                   const Rule& instance,
                   const std::vector<const Atom*>& edb_atoms,
                   const std::vector<Atom>& child_goals,
                   const std::vector<const AchievedSet*>& child_sets,
                   AchievedSet* out) {
  DATALOG_CHECK_EQ(child_goals.size(), child_sets.size());
  const Atom& parent_goal = instance.head();
  std::unordered_set<std::string> parent_goal_vars;
  for (const Term& t : parent_goal.args()) {
    if (t.is_variable()) parent_goal_vars.insert(t.name());
  }

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const QueryAnalysis& query = queries[qi];
    // Options per child: that child's pairs for this query, plus the
    // implicit empty pair (index == count).
    std::vector<std::vector<const AchievedPair*>> options(child_sets.size());
    for (std::size_t j = 0; j < child_sets.size(); ++j) {
      for (const AchievedPair& pair : *child_sets[j]) {
        if (pair.query == static_cast<int>(qi)) {
          options[j].push_back(&pair);
        }
      }
    }
    // Iterate all choices (empty included) via counters.
    std::vector<std::size_t> choice(child_sets.size(), 0);
    while (true) {
      // Gather chosen pairs; index == options[j].size() means empty.
      bool consistent = true;
      std::uint64_t union_mask = 0;
      Assignment assignment(query.vars.size());
      std::vector<int> trail;
      for (std::size_t j = 0; j < child_sets.size() && consistent; ++j) {
        if (choice[j] == options[j].size()) continue;  // empty pair
        const AchievedPair& pair = *options[j][choice[j]];
        if ((union_mask & pair.mask) != 0) {
          consistent = false;  // β must partition across children
          break;
        }
        union_mask |= pair.mask;
        for (const auto& [v, term] : pair.pinned) {
          if (!assignment.Bind(v, term, &trail)) {
            consistent = false;
            break;
          }
        }
      }
      if (consistent) {
        std::uint64_t candidates = query.full_mask & ~union_mask;
        EnumerateAbsorptions(
            query, candidates, edb_atoms, &assignment, &trail, 0, 0,
            [&](std::uint64_t beta_prime) {
              std::uint64_t total = union_mask | beta_prime;
              if (total == 0) return;  // the empty pair stays implicit
              // Visibility: exposed variables must have images that are
              // visible at the parent goal (goal variables or constants).
              AchievedPair result;
              result.query = static_cast<int>(qi);
              result.mask = total;
              for (std::size_t v = 0; v < query.vars.size(); ++v) {
                if (!query.IsExposed(static_cast<int>(v), total)) continue;
                const std::optional<Term>& image = assignment.image[v];
                DATALOG_CHECK(image.has_value())
                    << "exposed variable must be assigned";
                if (image->is_variable() &&
                    parent_goal_vars.count(image->name()) == 0) {
                  return;  // image not visible at the parent goal
                }
                result.pinned.emplace_back(static_cast<int>(v), *image);
              }
              InsertPair(out, std::move(result));
            });
      }
      // Advance the choice counters.
      std::size_t j = 0;
      for (; j < choice.size(); ++j) {
        if (++choice[j] <= options[j].size()) break;
        choice[j] = 0;
      }
      if (j == choice.size()) break;
      if (choice.empty()) break;
    }
    // Leaf case with no children: the while loop above runs exactly once
    // with the empty choice vector... except choice.empty() breaks after
    // one iteration, which is what we want.
    if (child_sets.empty()) {
      // Already handled by the single iteration above.
    }
  }
}

void InsertPair(IrAchievedSet* set, IrAchievedPair pair) {
  auto it = std::lower_bound(set->begin(), set->end(), pair);
  if (it != set->end() && *it == pair) return;
  set->insert(it, std::move(pair));
}

bool IsAchievedSubset(const IrAchievedSet& a, const IrAchievedSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::uint64_t AchievedPairSignatureBit(const IrAchievedPair& pair) {
  std::size_t seed = static_cast<std::size_t>(pair.query);
  HashCombine(&seed, pair.mask);
  for (const auto& [v, term] : pair.pinned) {
    HashCombine(&seed, v);
    HashCombine(&seed, term.raw());
  }
  return std::uint64_t{1} << (seed & 63);
}

std::uint64_t AchievedSetSignature(const IrAchievedSet& set) {
  std::uint64_t sig = 0;
  for (const IrAchievedPair& pair : set) sig |= AchievedPairSignatureBit(pair);
  return sig;
}

void CombineAtNode(const std::vector<IrQueryAnalysis>& queries,
                   const std::vector<IrInstanceAtom>& edb_atoms,
                   const Bitset& parent_visible,
                   const std::vector<const IrAchievedSet*>& child_sets,
                   IrAchievedSet* out, std::size_t* pinned_compares) {
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const IrQueryAnalysis& query = queries[qi];
    const QueryAnalysis& base = *query.base;
    // Options per child: that child's pairs for this query, plus the
    // implicit empty pair (index == count).
    std::vector<std::vector<const IrAchievedPair*>> options(
        child_sets.size());
    for (std::size_t j = 0; j < child_sets.size(); ++j) {
      for (const IrAchievedPair& pair : *child_sets[j]) {
        if (pair.query == static_cast<std::int32_t>(qi)) {
          options[j].push_back(&pair);
        }
      }
    }
    std::vector<std::size_t> choice(child_sets.size(), 0);
    // One binding + trail reused across the whole choice odometer: each
    // iteration unwinds its own binds (EnumerateAbsorptions already
    // restores to its entry point; the pinned-image seeds are undone at
    // the bottom of the loop), so no per-iteration allocation.
    ir::DenseBinding assignment(base.vars.size());
    std::vector<std::int32_t> trail;
    while (true) {
      bool consistent = true;
      std::uint64_t union_mask = 0;
      for (std::size_t j = 0; j < child_sets.size() && consistent; ++j) {
        if (choice[j] == options[j].size()) continue;  // empty pair
        const IrAchievedPair& pair = *options[j][choice[j]];
        if ((union_mask & pair.mask) != 0) {
          consistent = false;  // β must partition across children
          break;
        }
        union_mask |= pair.mask;
        for (const auto& [v, term] : pair.pinned) {
          if (!assignment.Bind(v, term, &trail, pinned_compares)) {
            consistent = false;
            break;
          }
        }
      }
      if (consistent) {
        std::uint64_t candidates = base.full_mask & ~union_mask;
        IrEnumerateAbsorptions(
            query, candidates, edb_atoms, &assignment, &trail, 0, 0,
            pinned_compares, [&](std::uint64_t beta_prime) {
              std::uint64_t total = union_mask | beta_prime;
              if (total == 0) return;  // the empty pair stays implicit
              // Visibility: exposed variables must have images that are
              // visible at the parent goal (goal variables or constants).
              IrAchievedPair result;
              result.query = static_cast<std::int32_t>(qi);
              result.mask = total;
              for (std::size_t v = 0; v < base.vars.size(); ++v) {
                if (!base.IsExposed(static_cast<int>(v), total)) continue;
                ir::TermId image = assignment.image[v];
                DATALOG_CHECK(image.valid())
                    << "exposed variable must be assigned";
                if (image.is_variable() &&
                    !parent_visible.Test(image.index())) {
                  return;  // image not visible at the parent goal
                }
                result.pinned.emplace_back(static_cast<std::int32_t>(v),
                                           image);
              }
              InsertPair(out, std::move(result));
            });
      }
      // Unwind this iteration's seed binds (also the partial trail of an
      // inconsistent choice) and advance the choice counters. A node
      // with no children runs exactly one iteration: the empty choice
      // vector advances straight to j == choice.size().
      assignment.Undo(&trail, 0);
      std::size_t j = 0;
      for (; j < choice.size(); ++j) {
        if (++choice[j] <= options[j].size()) break;
        choice[j] = 0;
      }
      if (j == choice.size()) break;
    }
  }
}

bool RootAccepts(const std::vector<IrQueryAnalysis>& queries,
                 const std::vector<ir::TermId>& root_goal_args,
                 const IrAchievedSet& set, std::size_t* pinned_compares) {
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const IrQueryAnalysis& query = queries[qi];
    const QueryAnalysis& base = *query.base;
    if (query.head_args.size() != root_goal_args.size()) continue;
    // Unify the disjunct's head argument vector with the root goal's.
    std::vector<ir::TermId> head_image(base.vars.size());
    bool unified = true;
    for (std::size_t i = 0; i < query.head_args.size() && unified; ++i) {
      std::int32_t from = query.head_args[i];
      ir::TermId to = root_goal_args[i];
      if (from < 0) {  // constant
        unified =
            to == ir::TermId::Constant(static_cast<std::uint32_t>(~from));
        continue;
      }
      if (head_image[from].valid()) {
        if (pinned_compares != nullptr) ++*pinned_compares;
        unified = head_image[from] == to;
      } else {
        head_image[from] = to;
      }
    }
    if (!unified) continue;
    if (base.full_mask == 0) return true;  // empty body: head match suffices
    for (const IrAchievedPair& pair : set) {
      if (pair.query != static_cast<std::int32_t>(qi) ||
          pair.mask != base.full_mask) {
        continue;
      }
      bool ok = true;
      for (const auto& [v, term] : pair.pinned) {
        // Exposed variables of the full mask are exactly the
        // distinguished variables occurring in the body; their pinned
        // images must agree with the head unification.
        if (head_image[v].valid()) {
          if (pinned_compares != nullptr) ++*pinned_compares;
          if (head_image[v] != term) {
            ok = false;
            break;
          }
        }
      }
      if (ok) return true;
    }
  }
  return false;
}

void EnumerateForwardAbsorptions(
    const QueryAnalysis& query, std::uint64_t pending_mask,
    const std::vector<const Atom*>& edb_atoms, const PinnedMap& seed,
    const std::function<void(std::uint64_t,
                             const std::vector<std::optional<Term>>&)>&
        visit) {
  Assignment assignment(query.vars.size());
  std::vector<int> trail;
  for (const auto& [v, term] : seed) {
    bool ok = assignment.Bind(v, term, &trail);
    DATALOG_CHECK(ok) << "inconsistent seed assignment";
  }
  EnumerateAbsorptions(query, pending_mask, edb_atoms, &assignment, &trail,
                       0, 0, [&](std::uint64_t beta_prime) {
                         visit(beta_prime, assignment.image);
                       });
}

void EnumerateForwardAbsorptions(
    const IrQueryAnalysis& query, std::uint64_t pending_mask,
    const std::vector<IrInstanceAtom>& edb_atoms, const IrPinnedMap& seed,
    const std::function<void(std::uint64_t, const ir::IrSubstitution&)>&
        visit) {
  ir::DenseBinding assignment(query.base->vars.size());
  std::vector<std::int32_t> trail;
  for (const auto& [v, term] : seed) {
    bool ok = assignment.Bind(v, term, &trail, nullptr);
    DATALOG_CHECK(ok) << "inconsistent seed assignment";
  }
  IrEnumerateAbsorptions(query, pending_mask, edb_atoms, &assignment, &trail,
                         0, 0, nullptr, [&](std::uint64_t beta_prime) {
                           visit(beta_prime, assignment.image);
                         });
}

bool RootAcceptsQuery(const QueryAnalysis& query, const Atom& root_goal,
                      const AchievedSet& set) {
  const ConjunctiveQuery& cq = *query.cq;
  if (cq.head_args().size() != root_goal.args().size()) return false;
  // Unify the disjunct's head argument vector with the root goal's.
  std::vector<std::optional<Term>> head_image(query.vars.size());
  for (std::size_t i = 0; i < cq.head_args().size(); ++i) {
    const Term& from = cq.head_args()[i];
    const Term& to = root_goal.args()[i];
    if (from.is_constant()) {
      if (!(to.is_constant() && to.name() == from.name())) return false;
      continue;
    }
    int v = query.var_ids.at(from.name());
    if (head_image[v].has_value()) {
      if (*head_image[v] != to) return false;
    } else {
      head_image[v] = to;
    }
  }
  if (query.full_mask == 0) return true;  // empty body: head match suffices
  for (const AchievedPair& pair : set) {
    if (pair.mask != query.full_mask) continue;
    bool ok = true;
    for (const auto& [v, term] : pair.pinned) {
      // Exposed variables of the full mask are exactly the distinguished
      // variables occurring in the body; their pinned images must agree
      // with the head unification.
      if (head_image[v].has_value() && *head_image[v] != term) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

bool RootAccepts(const std::vector<QueryAnalysis>& queries,
                 const Atom& root_goal, const AchievedSet& set) {
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    // Restrict the set to this query's pairs.
    AchievedSet filtered;
    for (const AchievedPair& pair : set) {
      if (pair.query == static_cast<int>(qi)) filtered.push_back(pair);
    }
    if (RootAcceptsQuery(queries[qi], root_goal, filtered)) return true;
  }
  return false;
}

}  // namespace datalog
