// The explicit tree automaton A^θ_{Q,Π} of Proposition 5.10: it accepts
// exactly the proof trees in ptrees(Q,Π) into which the conjunctive query
// θ has a strong containment mapping. Containment of Π in a union Θ then
// reduces to tree-automaton containment (Theorem 5.11):
//   Π ⊆ Θ  iff  T(A^ptrees) ⊆ ∪_i T(A^θi).
//
// States are (IDB atom α over var(Π), absorbed pair (β, m)) with m the
// paper's partial mapping restricted to the exposed variables of β (a
// language-preserving quotient; see query_analysis.h), plus an "absorbed
// nothing" state per atom. Construction is bottom-up over reachable
// states only, but still exponential by design — use the on-the-fly
// decider for anything but small inputs.
#ifndef DATALOG_EQ_SRC_CONTAINMENT_THETA_AUTOMATON_H_
#define DATALOG_EQ_SRC_CONTAINMENT_THETA_AUTOMATON_H_

#include <optional>
#include <string>
#include <vector>

#include "src/automata/nfta.h"
#include "src/containment/absorb.h"
#include "src/containment/ptrees_automaton.h"
#include "src/cq/cq.h"
#include "src/util/governor.h"
#include "src/util/status.h"

namespace datalog {

struct ThetaAutomaton {
  struct State {
    Atom atom;
    /// nullopt encodes the "absorbed nothing" state.
    std::optional<AchievedPair> pair;
  };
  Nfta nfta;
  // States are deduplicated during construction on interned integer rows
  // (atom id + encoded pair; see BuildThetaAutomaton), not rendered
  // strings; the state index in `states` is the dense id.
  std::vector<State> states;
};

/// Builds A^θ_{Q,Π} over the given program alphabet. `limits` carries the
/// governed bounds (src/util/governor.h): deadline, CancelToken, fault
/// injection, plus the construction caps — `limits.max_states` (0 resolves
/// to 200k) and `limits.max_transitions` (0 resolves to 2M), the
/// pre-governor defaults. The bottom-up fixpoint polls the governor at
/// every round and charges a step per product combination.
StatusOr<ThetaAutomaton> BuildThetaAutomaton(
    const Program& program, const std::string& goal,
    const ConjunctiveQuery& theta, const ProgramAlphabet& alphabet,
    const ExecutionLimits& limits = ExecutionLimits());

/// Theorem 5.11 end-to-end on explicit automata: decides Π ⊆ Θ by testing
/// T(A^ptrees) ⊆ ∪_i T(A^θi); returns the automaton-level result plus the
/// decoded counterexample proof tree when not contained.
struct ExplicitContainmentResult {
  bool contained = true;
  std::optional<ExpansionTree> counterexample;
  std::size_t ptrees_states = 0;
  std::size_t theta_states = 0;
  std::size_t alphabet_size = 0;
};
StatusOr<ExplicitContainmentResult> DecideContainmentViaExplicitAutomata(
    const Program& program, const std::string& goal, const UnionOfCqs& theta,
    const ExecutionLimits& limits = ExecutionLimits());

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_THETA_AUTOMATON_H_
