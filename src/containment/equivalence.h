// Equivalence of recursive and nonrecursive Datalog programs — the
// paper's titular problem (Corollary 3.3, Theorems 6.4/6.5).
//
// Π ≡ Π' (Π recursive with goal Q, Π' nonrecursive) is decided as
//   Π ⊆ Π'  — unfold Π' to a UCQ (§6; exponential blowup) and run the
//             automata-theoretic containment decider (Theorem 5.12), and
//   Π' ⊆ Π  — per unfolded disjunct, the canonical-database test [CK86].
#ifndef DATALOG_EQ_SRC_CONTAINMENT_EQUIVALENCE_H_
#define DATALOG_EQ_SRC_CONTAINMENT_EQUIVALENCE_H_

#include <optional>
#include <string>

#include "src/containment/decider.h"
#include "src/containment/ucq_in_datalog.h"
#include "src/containment/unfold.h"
#include "src/cq/cq.h"
#include "src/engine/eval.h"

namespace datalog {

struct EquivalenceOptions {
  ContainmentOptions containment;
  UnfoldOptions unfold;
  /// Options for the backward direction's canonical-database checks —
  /// canonical_db.eval.num_threads > 1 (or 0 = hardware) fans the
  /// unfolded disjuncts out across a worker pool.
  CanonicalDbOptions canonical_db;
};

struct EquivalenceResult {
  /// Π ⊆ Π' (recursive in nonrecursive).
  bool forward_contained = false;
  /// Π' ⊆ Π (nonrecursive in recursive).
  bool backward_contained = false;
  bool equivalent = false;
  /// When !forward_contained: a counterexample proof tree of Π whose
  /// expansion is not covered by Π'.
  std::optional<ExpansionTree> forward_counterexample;
  /// When !backward_contained: a disjunct of Π' not contained in Π.
  std::optional<ConjunctiveQuery> backward_counterexample;
  /// Size of Π' as a UCQ after unfolding.
  std::size_t unfolded_disjuncts = 0;
  ContainmentStats forward_stats;
  /// Evaluation-engine work done by the backward direction's
  /// canonical-database checks (accumulated across disjuncts).
  EvalStats backward_eval_stats;
};

/// Decides Q_Π ⊆ Q'_Π' for recursive Π and nonrecursive Π'
/// (Theorem 6.4 upper-bound path: unfold, then Theorem 5.12).
StatusOr<ContainmentDecision> DecideDatalogInNonrecursive(
    const Program& recursive, const std::string& recursive_goal,
    const Program& nonrecursive, const std::string& nonrecursive_goal,
    const EquivalenceOptions& options = EquivalenceOptions());

/// Decides Π ≡ Π' (Theorem 6.5).
StatusOr<EquivalenceResult> DecideRecNonrecEquivalence(
    const Program& recursive, const std::string& recursive_goal,
    const Program& nonrecursive, const std::string& nonrecursive_goal,
    const EquivalenceOptions& options = EquivalenceOptions());

/// Checker-reusing variants for drivers that test many nonrecursive
/// candidates against one recursive (program, goal) — e.g. rewriting
/// searches: the checker's interned instance cache is shared across
/// candidates instead of rebuilt per call.
StatusOr<ContainmentDecision> DecideDatalogInNonrecursive(
    ContainmentChecker& checker, const Program& nonrecursive,
    const std::string& nonrecursive_goal,
    const EquivalenceOptions& options = EquivalenceOptions());

StatusOr<EquivalenceResult> DecideRecNonrecEquivalence(
    ContainmentChecker& checker, const Program& nonrecursive,
    const std::string& nonrecursive_goal,
    const EquivalenceOptions& options = EquivalenceOptions());

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_EQUIVALENCE_H_
