#include "src/containment/instances.h"

#include <unordered_map>
#include <unordered_set>

#include "src/ast/analysis.h"
#include "src/util/logging.h"

namespace datalog {

CanonicalAtomInfo CanonicalizeAtom(const Atom& atom) {
  CanonicalAtomInfo info;
  Substitution rename;
  for (const Term& t : atom.args()) {
    if (!t.is_variable()) continue;
    if (rename.count(t.name()) > 0) continue;
    std::string canonical = ProofVariableName(info.original_vars.size());
    rename.emplace(t.name(), Term::Variable(canonical));
    info.original_vars.push_back(t.name());
  }
  info.atom = ApplySubstitution(rename, atom);
  return info;
}

bool ForEachCanonicalAssignment(
    const Rule& rule, std::size_t num_proof_vars,
    const std::function<bool(const std::vector<std::size_t>&)>& visit) {
  std::vector<std::string> vars = rule.VariableNames();
  // Restricted-growth strings: assignment[i] in 0..max(assignment[0..i-1])+1.
  std::vector<std::size_t> classes(vars.size(), 0);
  std::function<bool(std::size_t, std::size_t)> recurse =
      [&](std::size_t index, std::size_t num_classes) -> bool {
    if (index == vars.size()) {
      return visit(static_cast<const std::vector<std::size_t>&>(classes));
    }
    std::size_t limit = std::min(num_classes + 1, num_proof_vars);
    for (std::size_t c = 0; c < limit; ++c) {
      classes[index] = c;
      if (!recurse(index + 1, std::max(num_classes, c + 1))) return false;
    }
    return true;
  };
  return recurse(0, 0);
}

Rule InstantiateAssignment(const Rule& rule,
                           const std::vector<std::string>& vars,
                           const std::vector<std::size_t>& classes) {
  DATALOG_CHECK_EQ(vars.size(), classes.size());
  Substitution subst;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    subst.emplace(vars[i], Term::Variable(ProofVariableName(classes[i])));
  }
  return ApplySubstitution(subst, rule);
}

bool ForEachCanonicalInstance(const Rule& rule, std::size_t num_proof_vars,
                              const std::function<bool(const Rule&)>& visit) {
  std::vector<std::string> vars = rule.VariableNames();
  return ForEachCanonicalAssignment(
      rule, num_proof_vars, [&](const std::vector<std::size_t>& classes) {
        return visit(InstantiateAssignment(rule, vars, classes));
      });
}

bool ForEachInstanceOver(const Rule& rule,
                         const std::vector<std::string>& proof_vars,
                         const std::function<bool(const Rule&)>& visit) {
  std::vector<std::string> vars = rule.VariableNames();
  std::vector<std::size_t> choice(vars.size(), 0);
  std::function<bool(std::size_t)> recurse = [&](std::size_t index) -> bool {
    if (index == vars.size()) {
      Substitution subst;
      for (std::size_t i = 0; i < vars.size(); ++i) {
        subst.emplace(vars[i], Term::Variable(proof_vars[choice[i]]));
      }
      return visit(ApplySubstitution(subst, rule));
    }
    for (std::size_t c = 0; c < proof_vars.size(); ++c) {
      choice[index] = c;
      if (!recurse(index + 1)) return false;
    }
    return true;
  };
  return recurse(0);
}

namespace {

ExpansionNode RenameNode(const ExpansionNode& node, const Substitution& subst) {
  ExpansionNode renamed;
  renamed.goal = ApplySubstitution(subst, node.goal);
  renamed.rule = ApplySubstitution(subst, node.rule);
  renamed.idb_positions = node.idb_positions;
  renamed.children.reserve(node.children.size());
  for (const ExpansionNode& child : node.children) {
    renamed.children.push_back(RenameNode(child, subst));
  }
  return renamed;
}

}  // namespace

ExpansionTree RenameTree(const ExpansionTree& tree, const Substitution& subst) {
  return ExpansionTree(RenameNode(tree.root(), subst));
}

Substitution ExtendToPermutation(const std::vector<std::string>& from,
                                 const std::vector<std::string>& to,
                                 const std::vector<std::string>& proof_vars) {
  DATALOG_CHECK_EQ(from.size(), to.size());
  Substitution permutation;
  std::unordered_set<std::string> used_targets;
  for (std::size_t i = 0; i < from.size(); ++i) {
    auto [it, inserted] = permutation.emplace(from[i], Term::Variable(to[i]));
    DATALOG_CHECK(inserted || it->second.name() == to[i])
        << "partial map is not a function";
    DATALOG_CHECK(used_targets.insert(to[i]).second || !inserted)
        << "partial map is not injective";
  }
  // Pair up the remaining proof variables.
  std::vector<std::string> free_targets;
  for (const std::string& v : proof_vars) {
    if (used_targets.count(v) == 0) free_targets.push_back(v);
  }
  std::size_t next = 0;
  for (const std::string& v : proof_vars) {
    if (permutation.count(v) > 0) continue;
    DATALOG_CHECK_LT(next, free_targets.size());
    permutation.emplace(v, Term::Variable(free_targets[next++]));
  }
  return permutation;
}

}  // namespace datalog
