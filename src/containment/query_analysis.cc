#include "src/containment/query_analysis.h"

#include "src/util/strings.h"

namespace datalog {

StatusOr<QueryAnalysis> AnalyzeQuery(const ConjunctiveQuery& cq) {
  if (cq.body().size() > kMaxDisjunctAtoms) {
    return Status(InvalidArgumentError(
        StrCat("disjunct has ", cq.body().size(), " atoms; at most ",
               kMaxDisjunctAtoms,
               " are supported (64-bit atom masks; see kMaxDisjunctAtoms)")));
  }
  QueryAnalysis analysis;
  analysis.cq = &cq;
  auto var_id = [&analysis](const std::string& name) {
    auto [it, inserted] =
        analysis.var_ids.emplace(name, static_cast<int>(analysis.vars.size()));
    if (inserted) {
      analysis.vars.push_back(name);
      analysis.atoms_of_var.push_back(0);
      analysis.distinguished.push_back(false);
    }
    return it->second;
  };
  for (const Term& t : cq.head_args()) {
    if (t.is_variable()) analysis.distinguished[var_id(t.name())] = true;
  }
  for (std::size_t a = 0; a < cq.body().size(); ++a) {
    analysis.full_mask |= std::uint64_t{1} << a;
    std::vector<int> vars_here;
    for (const Term& t : cq.body()[a].args()) {
      if (!t.is_variable()) continue;
      int v = var_id(t.name());
      analysis.atoms_of_var[v] |= std::uint64_t{1} << a;
      bool seen = false;
      for (int existing : vars_here) {
        if (existing == v) seen = true;
      }
      if (!seen) vars_here.push_back(v);
    }
    analysis.vars_of_atom.push_back(std::move(vars_here));
  }
  return analysis;
}

StatusOr<std::vector<QueryAnalysis>> AnalyzeUnion(const UnionOfCqs& ucq) {
  std::vector<QueryAnalysis> analyses;
  analyses.reserve(ucq.size());
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    StatusOr<QueryAnalysis> analysis = AnalyzeQuery(cq);
    if (!analysis.ok()) return analysis.status();
    analyses.push_back(std::move(analysis).value());
  }
  return analyses;
}

}  // namespace datalog
