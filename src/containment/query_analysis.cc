#include "src/containment/query_analysis.h"

#include "src/util/strings.h"

namespace datalog {

StatusOr<QueryAnalysis> AnalyzeQuery(const ConjunctiveQuery& cq) {
  if (cq.body().size() > kMaxDisjunctAtoms) {
    return Status(InvalidArgumentError(
        StrCat("disjunct has ", cq.body().size(), " atoms; at most ",
               kMaxDisjunctAtoms,
               " are supported (64-bit atom masks; see kMaxDisjunctAtoms)")));
  }
  QueryAnalysis analysis;
  analysis.cq = &cq;
  auto var_id = [&analysis](const std::string& name) {
    auto [it, inserted] =
        analysis.var_ids.emplace(name, static_cast<int>(analysis.vars.size()));
    if (inserted) {
      analysis.vars.push_back(name);
      analysis.atoms_of_var.push_back(0);
      analysis.distinguished.push_back(false);
    }
    return it->second;
  };
  for (const Term& t : cq.head_args()) {
    if (t.is_variable()) analysis.distinguished[var_id(t.name())] = true;
  }
  for (std::size_t a = 0; a < cq.body().size(); ++a) {
    analysis.full_mask |= std::uint64_t{1} << a;
    std::vector<int> vars_here;
    for (const Term& t : cq.body()[a].args()) {
      if (!t.is_variable()) continue;
      int v = var_id(t.name());
      analysis.atoms_of_var[v] |= std::uint64_t{1} << a;
      bool seen = false;
      for (int existing : vars_here) {
        if (existing == v) seen = true;
      }
      if (!seen) vars_here.push_back(v);
    }
    analysis.vars_of_atom.push_back(std::move(vars_here));
  }
  return analysis;
}

IrQueryAnalysis BuildIrQueryAnalysis(const QueryAnalysis& analysis,
                                     ir::NameDictionary* predicates,
                                     ir::NameDictionary* constants) {
  IrQueryAnalysis out;
  out.base = &analysis;
  auto encode = [&](const Term& t) -> std::int32_t {
    if (t.is_variable()) return analysis.var_ids.at(t.name());
    return ~static_cast<std::int32_t>(constants->Intern(t.name()));
  };
  out.body.reserve(analysis.cq->body().size());
  for (const Atom& atom : analysis.cq->body()) {
    IrQueryAtom enc;
    enc.predicate =
        static_cast<std::int32_t>(predicates->Intern(atom.predicate()));
    enc.args.reserve(atom.arity());
    for (const Term& t : atom.args()) enc.args.push_back(encode(t));
    out.body.push_back(std::move(enc));
  }
  out.head_args.reserve(analysis.cq->head_args().size());
  for (const Term& t : analysis.cq->head_args()) {
    out.head_args.push_back(encode(t));
  }
  return out;
}

StatusOr<std::vector<QueryAnalysis>> AnalyzeUnion(const UnionOfCqs& ucq) {
  std::vector<QueryAnalysis> analyses;
  analyses.reserve(ucq.size());
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    StatusOr<QueryAnalysis> analysis = AnalyzeQuery(cq);
    if (!analysis.ok()) return analysis.status();
    analyses.push_back(std::move(analysis).value());
  }
  return analyses;
}

}  // namespace datalog
