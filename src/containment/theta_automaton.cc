#include "src/containment/theta_automaton.h"

#include <cstdint>
#include <deque>
#include <set>

#include "src/ast/analysis.h"
#include "src/containment/query_analysis.h"
#include "src/ir/ir.h"
#include "src/util/flat_table.h"
#include "src/util/iteration.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// Interns states and transitions on flat integer rows instead of rendered
// strings: atoms over var(Π) encode proof variables $k as -(k+1) and
// constants as shared-dictionary ids (the same scheme as the decider's
// goal rows), and an achieved pair contributes its mask and pinned
// (variable, image) ints. The VarKeyTable's dense indexes are the state
// and atom ids.
class StateInterner {
 public:
  int EncodeTerm(const Term& term) {
    if (term.is_variable()) {
      return -(static_cast<int>(ProofVariableIndex(term.name())) + 1);
    }
    return static_cast<int>(constants_.Intern(term.name()));
  }

  std::uint32_t InternAtom(const Atom& atom) {
    row_.clear();
    row_.push_back(static_cast<int>(predicates_.Intern(atom.predicate())));
    for (const Term& t : atom.args()) row_.push_back(EncodeTerm(t));
    auto [id, inserted] = atom_keys_.Intern(row_.data(), row_.size());
    if (inserted) states_by_atom_.emplace_back();
    return id;
  }

  // Returns (state id, inserted).
  std::pair<std::uint32_t, bool> InternState(
      std::uint32_t atom_id, const std::optional<AchievedPair>& pair) {
    row_.clear();
    row_.push_back(static_cast<int>(atom_id));
    if (pair.has_value()) {
      row_.push_back(1);
      row_.push_back(static_cast<int>(
          static_cast<std::uint32_t>(pair->mask)));
      row_.push_back(static_cast<int>(
          static_cast<std::uint32_t>(pair->mask >> 32)));
      for (const auto& [v, term] : pair->pinned) {
        row_.push_back(v);
        row_.push_back(EncodeTerm(term));
      }
    } else {
      row_.push_back(0);
    }
    auto [id, inserted] = state_keys_.Intern(row_.data(), row_.size());
    if (inserted) states_by_atom_[atom_id].push_back(static_cast<int>(id));
    return {id, inserted};
  }

  // Returns true if the transition row was new.
  bool InternTransition(std::size_t symbol, const std::vector<int>& children,
                        int parent) {
    row_.clear();
    row_.push_back(static_cast<int>(symbol));
    row_.push_back(parent);
    for (int child : children) row_.push_back(child);
    return transition_keys_.Intern(row_.data(), row_.size()).second;
  }

  std::size_t num_transitions() const { return transition_keys_.size(); }
  const std::vector<int>* StatesForAtom(std::uint32_t atom_id) const {
    return &states_by_atom_[atom_id];
  }
  bool HasAtom(const Atom& atom, std::uint32_t* atom_id) {
    // InternAtom is idempotent and cheap; "has" means some state exists.
    *atom_id = InternAtom(atom);
    return !states_by_atom_[*atom_id].empty();
  }

 private:
  ir::NameDictionary predicates_;
  ir::NameDictionary constants_;
  VarKeyTable atom_keys_;
  VarKeyTable state_keys_;
  VarKeyTable transition_keys_;
  // Deque: callers hold StatesForAtom pointers across interning of new
  // atoms, so the per-atom vectors must not move when the directory
  // grows. (The vectors themselves may gain states mid-iteration; the
  // product enumeration indexes with a size snapshot, like the decider.)
  std::deque<std::vector<int>> states_by_atom_;
  std::vector<int> row_;
};

}  // namespace

StatusOr<ThetaAutomaton> BuildThetaAutomaton(
    const Program& program, const std::string& goal,
    const ConjunctiveQuery& theta, const ProgramAlphabet& alphabet,
    const ExecutionLimits& limits) {
  QueryAnalysis analysis;
  DATALOG_ASSIGN_OR_RETURN(analysis, AnalyzeQuery(theta));
  std::vector<QueryAnalysis> queries;
  queries.push_back(std::move(analysis));

  Governor governor(limits, "theta automaton construction");
  const std::size_t max_states = limits.StatesOr(200'000);
  const std::size_t max_transitions = limits.TransitionsOr(2'000'000);
  // First governor failure; the product callback aborts by returning
  // false and the within-limits exit reports this ahead of the cap
  // diagnosis.
  Status interrupt = OkStatus();

  std::set<std::string> idb = program.IdbPredicates();
  ThetaAutomaton automaton{Nfta(0, alphabet.arities), {}};
  Nfta nfta(0, alphabet.arities);
  StateInterner interner;
  auto intern = [&](const Atom& atom,
                    const std::optional<AchievedPair>& pair) -> int {
    std::uint32_t atom_id = interner.InternAtom(atom);
    auto [id, inserted] = interner.InternState(atom_id, pair);
    if (inserted) {
      DATALOG_CHECK_EQ(static_cast<std::size_t>(id),
                       automaton.states.size());
      automaton.states.push_back({atom, pair});
      nfta.AddState();
    }
    return static_cast<int>(id);
  };

  // The per-symbol view (rendered label plus its EDB/IDB body split) is
  // invariant across fixpoint rounds — materialize it once up front
  // instead of re-rendering and re-splitting every pass. Label() caches
  // behind a stable unique_ptr slot, so the references stay valid.
  struct LabelView {
    const Rule* label = nullptr;
    std::vector<const Atom*> edb_atoms;
    std::vector<Atom> child_goals;
  };
  std::vector<LabelView> views(alphabet.num_labels());
  for (std::size_t symbol = 0; symbol < alphabet.num_labels(); ++symbol) {
    LabelView& view = views[symbol];
    view.label = &alphabet.Label(symbol);
    for (const Atom& atom : view.label->body()) {
      if (idb.count(atom.predicate()) > 0) {
        view.child_goals.push_back(atom);
      } else {
        view.edb_atoms.push_back(&atom);
      }
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    interrupt = governor.Poll();
    if (!interrupt.ok()) return interrupt;
    for (std::size_t symbol = 0; symbol < alphabet.num_labels(); ++symbol) {
      const Rule& label = *views[symbol].label;
      const std::vector<const Atom*>& edb_atoms = views[symbol].edb_atoms;
      const std::vector<Atom>& child_goals = views[symbol].child_goals;
      // Options per child: all discovered states for the child atom.
      std::vector<const std::vector<int>*> options;
      bool feasible = true;
      for (const Atom& child : child_goals) {
        std::uint32_t atom_id = 0;
        if (!interner.HasAtom(child, &atom_id)) {
          feasible = false;
          break;
        }
        options.push_back(interner.StatesForAtom(atom_id));
      }
      if (!feasible) continue;
      std::vector<std::size_t> sizes;
      for (const std::vector<int>* option : options) {
        sizes.push_back(option->size());
      }
      bool within_limits = ForEachProduct(sizes, [&](const std::vector<
                                                     std::size_t>& choice) {
        interrupt = governor.ChargeSteps(1);
        if (!interrupt.ok()) return false;
        std::vector<int> child_ids;
        std::vector<AchievedSet> child_sets(child_goals.size());
        std::vector<const AchievedSet*> set_ptrs(child_goals.size());
        bool all_children_empty = true;
        for (std::size_t j = 0; j < child_goals.size(); ++j) {
          int id = (*options[j])[choice[j]];
          child_ids.push_back(id);
          if (automaton.states[id].pair.has_value()) {
            child_sets[j].push_back(*automaton.states[id].pair);
            all_children_empty = false;
          }
          set_ptrs[j] = &child_sets[j];
        }
        AchievedSet parents;
        CombineAtNode(queries, label, edb_atoms, child_goals, set_ptrs,
                      &parents);
        auto add_transition = [&](const std::optional<AchievedPair>& pair) {
          int parent = intern(label.head(), pair);
          if (automaton.states.size() > max_states) return false;
          if (interner.InternTransition(symbol, child_ids, parent)) {
            nfta.AddTransition(static_cast<int>(symbol), child_ids, parent);
            changed = true;
          }
          return interner.num_transitions() <= max_transitions;
        };
        for (const AchievedPair& pair : parents) {
          if (!add_transition(pair)) return false;
        }
        if (all_children_empty) {
          // The "absorbed nothing" run continues.
          if (!add_transition(std::nullopt)) return false;
        }
        return true;
      });
      if (!within_limits) {
        if (!interrupt.ok()) return interrupt;
        return Status(ResourceExhaustedError(
            StrCat("theta automaton exceeded limits (states=",
                   automaton.states.size(), ", transitions=",
                   interner.num_transitions(), ")")));
      }
    }
  }
  // Final states: root acceptance per Theorem 5.8.
  for (std::size_t s = 0; s < automaton.states.size(); ++s) {
    const ThetaAutomaton::State& state = automaton.states[s];
    if (state.atom.predicate() != goal) continue;
    AchievedSet singleton;
    if (state.pair.has_value()) singleton.push_back(*state.pair);
    if (RootAcceptsQuery(queries[0], state.atom, singleton)) {
      nfta.SetFinal(static_cast<int>(s));
    }
  }
  automaton.nfta = std::move(nfta);
  return automaton;
}

StatusOr<ExplicitContainmentResult> DecideContainmentViaExplicitAutomata(
    const Program& program, const std::string& goal, const UnionOfCqs& theta,
    const ExecutionLimits& limits) {
  PtreesAutomaton ptrees;
  DATALOG_ASSIGN_OR_RETURN(ptrees, BuildPtreesAutomaton(program, goal,
                                                        limits));
  ExplicitContainmentResult result;
  result.ptrees_states = ptrees.nfta.num_states();
  result.alphabet_size = ptrees.alphabet.num_labels();

  std::optional<Nfta> union_automaton;
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    DATALOG_ASSIGN_OR_RETURN(
        ThetaAutomaton theta_automaton,
        BuildThetaAutomaton(program, goal, disjunct, ptrees.alphabet,
                            limits));
    result.theta_states += theta_automaton.nfta.num_states();
    if (union_automaton.has_value()) {
      union_automaton =
          Nfta::Union(*union_automaton, theta_automaton.nfta);
    } else {
      union_automaton = std::move(theta_automaton.nfta);
    }
  }
  if (!union_automaton.has_value()) {
    // Empty union: contained iff the proof-tree language is empty.
    result.contained = ptrees.nfta.IsEmpty();
    if (!result.contained) {
      result.counterexample =
          LabeledTreeToProofTree(ptrees.alphabet, *ptrees.nfta.WitnessTree());
    }
    return result;
  }
  Nfta::ContainmentOptions contains_options;
  contains_options.limits = limits;
  Nfta::ContainmentResult containment;
  DATALOG_ASSIGN_OR_RETURN(
      containment,
      Nfta::Contains(ptrees.nfta, *union_automaton, contains_options));
  result.contained = containment.contained;
  if (!containment.contained) {
    result.counterexample =
        LabeledTreeToProofTree(ptrees.alphabet, containment.counterexample);
  }
  return result;
}

}  // namespace datalog
