#include "src/containment/theta_automaton.h"

#include <set>

#include "src/containment/query_analysis.h"
#include "src/util/iteration.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

std::string StateKey(const Atom& atom,
                     const std::optional<AchievedPair>& pair) {
  if (!pair.has_value()) return StrCat(atom.ToString(), " | -");
  return StrCat(atom.ToString(), " | ", pair->ToString());
}

}  // namespace

StatusOr<ThetaAutomaton> BuildThetaAutomaton(
    const Program& program, const std::string& goal,
    const ConjunctiveQuery& theta, const ProgramAlphabet& alphabet,
    const ThetaAutomatonLimits& limits) {
  StatusOr<QueryAnalysis> analysis = AnalyzeQuery(theta);
  if (!analysis.ok()) return analysis.status();
  std::vector<QueryAnalysis> queries;
  queries.push_back(std::move(analysis).value());

  std::set<std::string> idb = program.IdbPredicates();
  ThetaAutomaton automaton{Nfta(0, alphabet.arities), {}, {}};
  Nfta nfta(0, alphabet.arities);
  // Discovered state ids per atom string, for child enumeration.
  std::map<std::string, std::vector<int>> by_atom;
  auto intern = [&](const Atom& atom,
                    const std::optional<AchievedPair>& pair) -> int {
    std::string key = StateKey(atom, pair);
    auto [it, inserted] =
        automaton.state_ids.emplace(key, static_cast<int>(
                                             automaton.states.size()));
    if (inserted) {
      automaton.states.push_back({atom, pair});
      by_atom[atom.ToString()].push_back(it->second);
      nfta.AddState();
    }
    return it->second;
  };

  std::set<std::string> transition_keys;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t symbol = 0; symbol < alphabet.labels.size(); ++symbol) {
      const Rule& label = alphabet.labels[symbol];
      std::vector<const Atom*> edb_atoms;
      std::vector<Atom> child_goals;
      for (std::size_t i = 0; i < label.body().size(); ++i) {
        if (idb.count(label.body()[i].predicate()) > 0) {
          child_goals.push_back(label.body()[i]);
        } else {
          edb_atoms.push_back(&label.body()[i]);
        }
      }
      // Options per child: all discovered states for the child atom.
      std::vector<const std::vector<int>*> options;
      bool feasible = true;
      for (const Atom& child : child_goals) {
        auto it = by_atom.find(child.ToString());
        if (it == by_atom.end()) {
          feasible = false;
          break;
        }
        options.push_back(&it->second);
      }
      if (!feasible) continue;
      std::vector<std::size_t> sizes;
      for (const std::vector<int>* option : options) {
        sizes.push_back(option->size());
      }
      bool within_limits = ForEachProduct(sizes, [&](const std::vector<
                                                     std::size_t>& choice) {
        std::vector<int> child_ids;
        std::vector<AchievedSet> child_sets(child_goals.size());
        std::vector<const AchievedSet*> set_ptrs(child_goals.size());
        bool all_children_empty = true;
        for (std::size_t j = 0; j < child_goals.size(); ++j) {
          int id = (*options[j])[choice[j]];
          child_ids.push_back(id);
          if (automaton.states[id].pair.has_value()) {
            child_sets[j].push_back(*automaton.states[id].pair);
            all_children_empty = false;
          }
          set_ptrs[j] = &child_sets[j];
        }
        AchievedSet parents;
        CombineAtNode(queries, label, edb_atoms, child_goals, set_ptrs,
                      &parents);
        auto add_transition = [&](const std::optional<AchievedPair>& pair) {
          int parent = intern(label.head(), pair);
          if (automaton.states.size() > limits.max_states) return false;
          std::string key = StrCat(symbol, "|", StrJoin(child_ids, ","),
                                   "->", parent);
          if (transition_keys.insert(key).second) {
            nfta.AddTransition(static_cast<int>(symbol), child_ids, parent);
            changed = true;
          }
          return transition_keys.size() <= limits.max_transitions;
        };
        for (const AchievedPair& pair : parents) {
          if (!add_transition(pair)) return false;
        }
        if (all_children_empty) {
          // The "absorbed nothing" run continues.
          if (!add_transition(std::nullopt)) return false;
        }
        return true;
      });
      if (!within_limits) {
        return Status(ResourceExhaustedError(
            StrCat("theta automaton exceeded limits (states=",
                   automaton.states.size(), ", transitions=",
                   transition_keys.size(), ")")));
      }
    }
  }
  // Final states: root acceptance per Theorem 5.8.
  for (std::size_t s = 0; s < automaton.states.size(); ++s) {
    const ThetaAutomaton::State& state = automaton.states[s];
    if (state.atom.predicate() != goal) continue;
    AchievedSet singleton;
    if (state.pair.has_value()) singleton.push_back(*state.pair);
    if (RootAcceptsQuery(queries[0], state.atom, singleton)) {
      nfta.SetFinal(static_cast<int>(s));
    }
  }
  automaton.nfta = std::move(nfta);
  return automaton;
}

StatusOr<ExplicitContainmentResult> DecideContainmentViaExplicitAutomata(
    const Program& program, const std::string& goal, const UnionOfCqs& theta,
    const ThetaAutomatonLimits& limits) {
  StatusOr<PtreesAutomaton> ptrees = BuildPtreesAutomaton(program, goal);
  if (!ptrees.ok()) return ptrees.status();
  ExplicitContainmentResult result;
  result.ptrees_states = ptrees->nfta.num_states();
  result.alphabet_size = ptrees->alphabet.labels.size();

  std::optional<Nfta> union_automaton;
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    StatusOr<ThetaAutomaton> theta_automaton = BuildThetaAutomaton(
        program, goal, disjunct, ptrees->alphabet, limits);
    if (!theta_automaton.ok()) return theta_automaton.status();
    result.theta_states += theta_automaton->nfta.num_states();
    if (union_automaton.has_value()) {
      union_automaton =
          Nfta::Union(*union_automaton, theta_automaton->nfta);
    } else {
      union_automaton = theta_automaton->nfta;
    }
  }
  if (!union_automaton.has_value()) {
    // Empty union: contained iff the proof-tree language is empty.
    result.contained = ptrees->nfta.IsEmpty();
    if (!result.contained) {
      result.counterexample =
          LabeledTreeToProofTree(ptrees->alphabet, *ptrees->nfta.WitnessTree());
    }
    return result;
  }
  StatusOr<Nfta::ContainmentResult> containment =
      Nfta::Contains(ptrees->nfta, *union_automaton);
  if (!containment.ok()) return containment.status();
  result.contained = containment->contained;
  if (!containment->contained) {
    result.counterexample =
        LabeledTreeToProofTree(ptrees->alphabet, containment->counterexample);
  }
  return result;
}

}  // namespace datalog
