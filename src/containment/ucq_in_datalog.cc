#include "src/containment/ucq_in_datalog.h"

#include "src/cq/canonical_db.h"
#include "src/engine/database.h"
#include "src/engine/eval.h"
#include "src/ir/ir.h"

namespace datalog {
namespace {

// The shared tail of both freeze arms: record the goal tuple's constants
// in the auxiliary domain relation (every frozen variable is part of the
// canonical instance's domain even when it appears only in the head, so
// the active domain is right for unsafe rules), evaluate, and test the
// frozen head tuple.
StatusOr<bool> FrozenGoalDerived(const Program& program,
                                 const std::string& goal, Database* db,
                                 const Tuple& goal_tuple, EvalStats* stats) {
  PredicateId domain = db->InternPredicate("__domain", 1);
  for (int id : goal_tuple) db->AddTupleById(domain, {id});
  StatusOr<Relation> result =
      EvaluateGoal(program, goal, *db, EvalOptions(), stats);
  if (!result.ok()) return result.status();
  return result->Contains(goal_tuple);
}

// The Term-level ablation arm: frozen "@v" Atoms through AddFactAtom
// (one dictionary hash per argument occurrence).
StatusOr<bool> IsCqContainedString(const ConjunctiveQuery& theta,
                                   const Program& program,
                                   const std::string& goal,
                                   EvalStats* stats) {
  CanonicalDatabase frozen = FreezeCq(theta);
  Database db;
  for (const Atom& fact : frozen.facts) {
    Status s = db.AddFactAtom(fact);
    if (!s.ok()) return s;
  }
  Tuple goal_tuple;
  goal_tuple.reserve(frozen.goal_tuple.size());
  for (const Term& t : frozen.goal_tuple) {
    goal_tuple.push_back(db.dictionary().Intern(t.name()));
  }
  return FrozenGoalDerived(program, goal, &db, goal_tuple, stats);
}

StatusOr<bool> IsDisjunctContainedIr(const ir::ProgramIr& theta_ir,
                                     std::size_t index,
                                     const Program& program,
                                     const std::string& goal,
                                     EvalStats* stats) {
  Database db;
  Tuple goal_tuple = FreezeDisjunctIntoDatabase(theta_ir, index, &db);
  return FrozenGoalDerived(program, goal, &db, goal_tuple, stats);
}

}  // namespace

StatusOr<bool> IsCqContainedInDatalog(const ConjunctiveQuery& theta,
                                      const Program& program,
                                      const std::string& goal,
                                      EvalStats* stats,
                                      const CanonicalDbOptions& options) {
  if (!options.use_ir) return IsCqContainedString(theta, program, goal, stats);
  // A bare CQ has no carrier to cache on; intern just this disjunct
  // (no union copy, no full FromUnion pass). Drivers that loop many CQs
  // should batch them into a UnionOfCqs and use the union-level call.
  ir::ProgramIr single;
  single.AddDisjunct(theta);
  return IsDisjunctContainedIr(single, 0, program, goal, stats);
}

StatusOr<bool> IsUcqContainedInDatalog(const UnionOfCqs& theta,
                                       const Program& program,
                                       const std::string& goal,
                                       EvalStats* stats,
                                       const CanonicalDbOptions& options,
                                       std::size_t* failing_disjunct) {
  std::shared_ptr<ir::ProgramIr> theta_ir;
  if (options.use_ir) theta_ir = ir::CarriedIr(theta);
  for (std::size_t i = 0; i < theta.disjuncts().size(); ++i) {
    StatusOr<bool> contained =
        options.use_ir
            ? IsDisjunctContainedIr(*theta_ir, i, program, goal, stats)
            : IsCqContainedString(theta.disjuncts()[i], program, goal,
                                  stats);
    if (!contained.ok()) return contained;
    if (!*contained) {
      if (failing_disjunct != nullptr) *failing_disjunct = i;
      return false;
    }
  }
  return true;
}

}  // namespace datalog
