#include "src/containment/ucq_in_datalog.h"

#include "src/cq/canonical_db.h"
#include "src/engine/database.h"
#include "src/engine/eval.h"

namespace datalog {

StatusOr<bool> IsCqContainedInDatalog(const ConjunctiveQuery& theta,
                                      const Program& program,
                                      const std::string& goal,
                                      EvalStats* stats) {
  CanonicalDatabase frozen = FreezeCq(theta);
  Database db;
  for (const Atom& fact : frozen.facts) {
    Status s = db.AddFactAtom(fact);
    if (!s.ok()) return s;
  }
  // Every frozen variable is part of the canonical instance's domain, even
  // when it appears only in the head; record it in an auxiliary relation
  // so the active domain is right for unsafe rules.
  for (const Term& t : frozen.goal_tuple) {
    db.AddFact("__domain", {t.name()});
  }
  StatusOr<Relation> result =
      EvaluateGoal(program, goal, db, EvalOptions(), stats);
  if (!result.ok()) return result.status();
  Tuple goal_tuple;
  goal_tuple.reserve(frozen.goal_tuple.size());
  for (const Term& t : frozen.goal_tuple) {
    int id = db.dictionary().Lookup(t.name());
    if (id < 0) return false;  // constant unseen anywhere: cannot be derived
    goal_tuple.push_back(id);
  }
  return result->Contains(goal_tuple);
}

StatusOr<bool> IsUcqContainedInDatalog(const UnionOfCqs& theta,
                                       const Program& program,
                                       const std::string& goal,
                                       EvalStats* stats) {
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    StatusOr<bool> contained =
        IsCqContainedInDatalog(disjunct, program, goal, stats);
    if (!contained.ok()) return contained;
    if (!*contained) return false;
  }
  return true;
}

}  // namespace datalog
