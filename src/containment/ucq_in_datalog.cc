#include "src/containment/ucq_in_datalog.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "src/analysis/reachability.h"
#include "src/cq/canonical_db.h"
#include "src/engine/database.h"
#include "src/engine/eval.h"
#include "src/ir/ir.h"
#include "src/util/thread_pool.h"

namespace datalog {
namespace {

// The shared tail of both freeze arms: record the goal tuple's constants
// in the auxiliary domain relation (every frozen variable is part of the
// canonical instance's domain even when it appears only in the head, so
// the active domain is right for unsafe rules), evaluate, and test the
// frozen head tuple.
StatusOr<bool> FrozenGoalDerived(const Program& program,
                                 const std::string& goal, Database* db,
                                 const Tuple& goal_tuple, EvalStats* stats,
                                 const EvalOptions& eval,
                                 CanonicalDbWitness* witness) {
  if (witness != nullptr) {
    // Snapshot before evaluation and before the auxiliary __domain
    // relation: exactly the frozen facts the verdict is about.
    witness->facts = db->AllFactAtoms();
    std::vector<Term> goal_args;
    goal_args.reserve(goal_tuple.size());
    for (int id : goal_tuple) {
      goal_args.push_back(Term::Constant(db->dictionary().NameOf(id)));
    }
    witness->goal_atom = Atom(goal, std::move(goal_args));
  }
  PredicateId domain = db->InternPredicate("__domain", 1);
  for (int id : goal_tuple) db->AddTupleById(domain, {id});
  StatusOr<Relation> result = EvaluateGoal(program, goal, *db, eval, stats);
  if (!result.ok()) return result.status();
  return result->Contains(goal_tuple);
}

// The Term-level ablation arm: frozen "@v" Atoms through AddFactAtom
// (one dictionary hash per argument occurrence).
StatusOr<bool> IsCqContainedString(const ConjunctiveQuery& theta,
                                   const Program& program,
                                   const std::string& goal, EvalStats* stats,
                                   const EvalOptions& eval,
                                   CanonicalDbWitness* witness) {
  CanonicalDatabase frozen = FreezeCq(theta);
  Database db;
  for (const Atom& fact : frozen.facts) {
    Status s = db.AddFactAtom(fact);
    if (!s.ok()) return s;
  }
  Tuple goal_tuple;
  goal_tuple.reserve(frozen.goal_tuple.size());
  for (const Term& t : frozen.goal_tuple) {
    goal_tuple.push_back(db.dictionary().Intern(t.name()));
  }
  return FrozenGoalDerived(program, goal, &db, goal_tuple, stats, eval,
                           witness);
}

StatusOr<bool> IsDisjunctContainedIr(const ir::ProgramIr& theta_ir,
                                     std::size_t index,
                                     const Program& program,
                                     const std::string& goal,
                                     EvalStats* stats,
                                     const EvalOptions& eval,
                                     CanonicalDbWitness* witness) {
  Database db;
  Tuple goal_tuple = FreezeDisjunctIntoDatabase(theta_ir, index, &db);
  return FrozenGoalDerived(program, goal, &db, goal_tuple, stats, eval,
                           witness);
}

// One disjunct check against an already-carried union IR (or the string
// arm), with the given engine options.
StatusOr<bool> CheckDisjunct(const UnionOfCqs& theta,
                             const ir::ProgramIr* theta_ir,
                             std::size_t disjunct, const Program& program,
                             const std::string& goal, EvalStats* stats,
                             const EvalOptions& eval,
                             CanonicalDbWitness* witness = nullptr) {
  if (theta_ir != nullptr) {
    return IsDisjunctContainedIr(*theta_ir, disjunct, program, goal, stats,
                                 eval, witness);
  }
  return IsCqContainedString(theta.disjuncts()[disjunct], program, goal,
                             stats, eval, witness);
}

}  // namespace

StatusOr<bool> IsCqContainedInDatalog(const ConjunctiveQuery& theta,
                                      const Program& program,
                                      const std::string& goal,
                                      EvalStats* stats,
                                      const CanonicalDbOptions& options) {
  std::optional<Program> pruned;
  if (options.prune_unreachable) pruned = PruneForEvaluation(program, goal);
  const Program& prog = pruned.has_value() ? *pruned : program;
  if (!options.use_ir) {
    return IsCqContainedString(theta, prog, goal, stats, options.eval,
                               options.witness);
  }
  // A bare CQ has no carrier to cache on; intern just this disjunct
  // (no union copy, no full FromUnion pass). Drivers that loop many CQs
  // should batch them into a UnionOfCqs and check disjuncts through
  // IsUcqDisjunctContainedInDatalog (or the union-level call), which
  // reuses the union's carried IR across the whole loop.
  ir::ProgramIr single;
  single.AddDisjunct(theta);
  return IsDisjunctContainedIr(single, 0, prog, goal, stats,
                               options.eval, options.witness);
}

StatusOr<bool> IsUcqDisjunctContainedInDatalog(
    const UnionOfCqs& theta, std::size_t disjunct, const Program& program,
    const std::string& goal, EvalStats* stats,
    const CanonicalDbOptions& options) {
  std::optional<Program> pruned;
  if (options.prune_unreachable) pruned = PruneForEvaluation(program, goal);
  const Program& prog = pruned.has_value() ? *pruned : program;
  std::shared_ptr<ir::ProgramIr> theta_ir;
  if (options.use_ir) theta_ir = ir::CarriedIr(theta);
  return CheckDisjunct(theta, theta_ir.get(), disjunct, prog, goal,
                       stats, options.eval, options.witness);
}

StatusOr<bool> IsUcqContainedInDatalog(const UnionOfCqs& theta,
                                       const Program& program,
                                       const std::string& goal,
                                       EvalStats* stats,
                                       const CanonicalDbOptions& options,
                                       std::size_t* failing_disjunct) {
  // Prune once, up front: both the sequential loop and the fan-out below
  // evaluate the same (possibly pruned) program per disjunct.
  std::optional<Program> pruned;
  if (options.prune_unreachable) pruned = PruneForEvaluation(program, goal);
  const Program& prog = pruned.has_value() ? *pruned : program;
  std::shared_ptr<ir::ProgramIr> theta_ir;
  if (options.use_ir) theta_ir = ir::CarriedIr(theta);
  const std::size_t n = theta.disjuncts().size();
  const std::size_t threads = std::min(ResolvedEvalThreads(options.eval), n);

  if (threads > 1) {
    // Disjunct fan-out: every canonical-database evaluation is
    // independent, so they run concurrently over the shared immutable
    // carried IR and program. Each task evaluates with a serial engine
    // (the two parallelism levels do not nest) into its own stats; the
    // verdict, the failing disjunct, and the accumulated stats are then
    // derived in disjunct order, so they match the sequential loop's
    // regardless of scheduling.
    EvalOptions task_eval = options.eval;
    task_eval.num_threads = 1;
    std::vector<StatusOr<bool>> results(n, false);
    std::vector<EvalStats> task_stats(n);
    // Use the caller's pool when one is supplied; otherwise spin up a
    // call-local pool. The results are index-owned either way, so the
    // pool's width only affects scheduling, never the verdict.
    std::optional<ThreadPool> local_pool;
    if (options.pool == nullptr) local_pool.emplace(threads);
    ThreadPool& pool =
        options.pool != nullptr ? *options.pool : *local_pool;
    pool.ParallelFor(n, [&](std::size_t i) {
      results[i] = CheckDisjunct(theta, theta_ir.get(), i, prog, goal,
                                 stats != nullptr ? &task_stats[i] : nullptr,
                                 task_eval);
    });
    for (std::size_t i = 0; i < n; ++i) {
      // Stats fold up to and including the first failing or erroring
      // disjunct — where the sequential loop stops evaluating.
      if (stats != nullptr) stats->Accumulate(task_stats[i]);
      if (!results[i].ok()) return results[i];
      if (!*results[i]) {
        if (failing_disjunct != nullptr) *failing_disjunct = i;
        return false;
      }
    }
    return true;
  }

  for (std::size_t i = 0; i < n; ++i) {
    StatusOr<bool> contained = CheckDisjunct(theta, theta_ir.get(), i,
                                             prog, goal, stats,
                                             options.eval);
    if (!contained.ok()) return contained;
    if (!*contained) {
      if (failing_disjunct != nullptr) *failing_disjunct = i;
      return false;
    }
  }
  return true;
}

}  // namespace datalog
