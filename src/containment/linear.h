// Containment for linear programs via WORD automata — the parenthetical
// track of Theorem 5.12 (EXPSPACE instead of 2EXPTIME).
//
// When every rule has at most one IDB subgoal, proof trees are paths, so
// ptrees(Q,Π) and the strongly-covered trees are regular *word* languages
// over the rule-instance alphabet: a word lists the labels from the root
// down to the leaf. A^ptrees becomes an NFA over IDB-atom states; A^θ
// becomes an NFA over states (goal atom, pending atom set β, pinned
// images m) that absorbs θ's atoms greedily down the path; containment is
// then NFA containment (PSPACE in the automata, Proposition 4.3), decided
// by the on-the-fly subset construction with antichain pruning.
#ifndef DATALOG_EQ_SRC_CONTAINMENT_LINEAR_H_
#define DATALOG_EQ_SRC_CONTAINMENT_LINEAR_H_

#include <optional>
#include <string>

#include "src/automata/nfa.h"
#include "src/containment/ptrees_automaton.h"
#include "src/cq/cq.h"
#include "src/trees/expansion_tree.h"
#include "src/util/governor.h"
#include "src/util/status.h"

namespace datalog {

struct LinearContainmentOptions {
  bool antichain = true;
  /// The governed bounds (src/util/governor.h): deadline, CancelToken,
  /// fault injection, plus the construction caps — `limits.max_states`
  /// (0 resolves to 500k) for each theta word automaton and
  /// `limits.max_labels` (0 resolves to 2M) for the alphabet, the
  /// pre-governor defaults. The same limits govern the alphabet
  /// enumeration, the word-automata worklists, and the final NFA
  /// containment check.
  ExecutionLimits limits;
  /// Build the word automata from the alphabet's interned int rows
  /// (states keyed in a VarKeyTable, absorption on the IR overload of
  /// EnumerateForwardAbsorptions — no Terms or rendered strings move).
  /// The string arm is kept as the ablation baseline; both arms build
  /// identical automata and results (tests/decider_intern_test.cc).
  bool use_ir = true;
  /// Drop rules not backward-reachable from the goal before the
  /// linearity check and the word-automata constructions
  /// (src/analysis/reachability.h): unreachable rules label no
  /// goal-rooted path, so the verdict and counterexample are unchanged
  /// while the alphabet and state spaces shrink. Also admits programs
  /// whose *unreachable* part is nonlinear. Ablation switch.
  bool prune_unreachable = true;
};

struct LinearContainmentResult {
  bool contained = true;
  /// A counterexample path proof tree when not contained.
  std::optional<ExpansionTree> counterexample;
  std::size_t alphabet_size = 0;
  std::size_t ptrees_states = 0;
  std::size_t theta_states = 0;
  /// (state, subset) pairs explored by the NFA containment check.
  std::size_t pairs_explored = 0;
};

/// Decides Q_Π ⊆ Θ for a linear-in-IDB program (every rule has at most one
/// IDB subgoal); InvalidArgument otherwise.
StatusOr<LinearContainmentResult> DecideLinearDatalogInUcq(
    const Program& program, const std::string& goal, const UnionOfCqs& theta,
    const LinearContainmentOptions& options = LinearContainmentOptions());

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_LINEAR_H_
