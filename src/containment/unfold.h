// Unfolding nonrecursive Datalog programs into unions of conjunctive
// queries (paper §2.1: a nonrecursive program has finitely many
// expansions; §6: the rewriting can blow up exponentially, which is why
// containment in nonrecursive programs is a triple-exponential problem).
#ifndef DATALOG_EQ_SRC_CONTAINMENT_UNFOLD_H_
#define DATALOG_EQ_SRC_CONTAINMENT_UNFOLD_H_

#include <cstdint>
#include <string>

#include "src/ast/rule.h"
#include "src/cq/cq.h"
#include "src/util/status.h"

namespace datalog {

struct UnfoldOptions {
  /// Abort with ResourceExhausted when the union grows beyond this.
  std::size_t max_disjuncts = 1'000'000;
  /// Abort when the total number of body atoms across disjuncts exceeds
  /// this.
  std::size_t max_total_atoms = 10'000'000;
  /// Minimize each disjunct and drop redundant disjuncts as they are
  /// produced (slower, smaller output).
  bool minimize = false;
  /// Substrate for the minimization's homomorphism searches: the shared
  /// interned IR (default) or the string baseline (ablation; identical
  /// output either way).
  bool use_ir = true;
};

/// Rewrites the nonrecursive `program` as a union of conjunctive queries
/// over the EDB predicates, equivalent to the goal predicate. Fails with
/// InvalidArgument on recursive programs.
StatusOr<UnionOfCqs> UnfoldNonrecursive(
    const Program& program, const std::string& goal,
    const UnfoldOptions& options = UnfoldOptions());

/// Size of the unfolding without materializing it (saturating at
/// UINT64_MAX): number of disjuncts and the largest disjunct's body atom
/// count. Used to reproduce the succinctness results of Examples 6.1/6.6.
struct UnfoldSizeEstimate {
  std::uint64_t disjuncts = 0;
  std::uint64_t max_disjunct_atoms = 0;
};
StatusOr<UnfoldSizeEstimate> EstimateUnfoldSize(const Program& program,
                                                const std::string& goal);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_UNFOLD_H_
