// On-the-fly decision procedure for containment of a recursive Datalog
// program in a union of conjunctive queries (Theorem 5.12).
//
// Conceptually this runs the emptiness test of
//   A^ptrees_{Q,Π}  ∩  complement( ∪_i A^θi_{Q,Π} )
// without materializing the doubly-exponential automata: a bottom-up least
// fixpoint discovers pairs (goal atom over var(Π), achievable set), where
// the achievable set — the set of (disjunct, β, pinned-images) triples
// some proof subtree with that root goal can strongly absorb — is exactly
// one state of the determinized ∪A^θi. Goal atoms are explored up to
// variable renaming (canonical instances; see instances.h) and child
// states are re-embedded through var(Π) permutations, which is complete
// because the semantics is renaming-equivariant.
//
// Π is contained in Θ iff every reachable root state accepts
// (Theorem 5.8); a reachable non-accepting root state yields a concrete
// counterexample proof tree.
//
// Options: `antichain` keeps only ⊆-minimal achievable sets per goal
// (acceptance is ⊆-upward-closed and the combine step is monotone, so this
// is sound and complete); disabling it gives the exact subset
// construction, used for cross-validation.
#ifndef DATALOG_EQ_SRC_CONTAINMENT_DECIDER_H_
#define DATALOG_EQ_SRC_CONTAINMENT_DECIDER_H_

#include <memory>
#include <optional>
#include <string>

#include "src/ast/rule.h"
#include "src/containment/absorb.h"
#include "src/cq/cq.h"
#include "src/trees/expansion_tree.h"
#include "src/util/governor.h"
#include "src/util/status.h"

namespace datalog {

class ThreadPool;
struct ContainmentStats;

struct ContainmentOptions {
  /// Keep only ⊆-minimal achievable sets per goal.
  bool antichain = true;
  /// Build counterexample proof trees (small cost; disable for benches).
  bool track_witness = true;
  /// Memoize on the interned dense-id substrate: canonical goal atoms and
  /// rule instances become dense integer ids, the goal store becomes a
  /// vector index, and the combination memo becomes flat integer rows in
  /// an open-addressing table. Disabling falls back to the string-keyed
  /// memoization (ablation switch; decisions are identical either way —
  /// see tests/decider_intern_test.cc). Consulted only when use_ir is
  /// off; the IR path always runs on the interned substrate.
  bool intern_memo = true;
  /// Run the achieved-set machinery on the shared interned IR
  /// (src/ir/ir.h): pinned images are dense ir::TermIds, homomorphism and
  /// consistency checks are integer compares, and renamed child achieved
  /// sets are memoized per (instance, child position, state serial)
  /// across the combination product. Mirrors intern_memo as an ablation
  /// switch: disabling falls back to the Term/string achieved-set
  /// representation (then intern_memo picks the memo substrate).
  /// Decisions are byte-identical either way.
  bool use_ir = true;
  /// Represent each state's achieved set additionally as an exact wide
  /// bitset over interned achieved-pair ids (src/util/bitset.h), and run
  /// the antichain/dedup maintenance through a per-goal AntichainStore
  /// instead of pairwise merge scans over every retained state. Consulted
  /// only when use_ir is on; the string path always runs the
  /// Bloom-signature + sorted-vector scans. Ablation switch in the
  /// intern_memo/use_ir mold: decisions, witnesses, and state serials are
  /// byte-identical either way (tests/decider_bitset_test.cc).
  bool use_bitsets = true;
  /// Skip rules that are not backward-reachable from the goal predicate
  /// (src/analysis/reachability.h): such a rule can head no subtree of a
  /// goal-rooted proof tree, so the verdict AND the counterexample
  /// witness are byte-identical with this off — only the per-round rule
  /// sweep shrinks (state serials and discovery counters differ, which is
  /// the point). Ablation switch; ContainmentStats::rules_pruned reports
  /// the rules skipped.
  bool prune_unreachable = true;
  /// The governed bounds (src/util/governor.h): deadline, CancelToken,
  /// fault injection, step budget (one step = one processed rule
  /// instance), and the state cap (`limits.max_states`, resolving 0 to
  /// 1M — the pre-governor default; beyond it the run aborts with
  /// ResourceExhausted). The absorption fixpoint polls the governor at
  /// every round start, every instance, and every 1024 combination-
  /// product iterations — all deterministic points, so the seeded
  /// FaultInjector fires reproducibly.
  ExecutionLimits limits;
  /// When set, receives the run's statistics on EVERY exit — including
  /// interruption (cancelled / deadline / state cap), where the
  /// StatusOr return carries no ContainmentDecision. The stats are
  /// consistent as of the interruption point (rounds counts the round
  /// being processed), making a bounded run's partial progress
  /// observable instead of vanishing into a bare error.
  ContainmentStats* partial_stats = nullptr;
  /// On a contained verdict, export the converged fixpoint table — every
  /// discovered goal atom with the achievable sets retained for it — into
  /// ContainmentDecision::trace, decoded back to Terms over var(Π). The
  /// table is an independently checkable witness of containment: it is
  /// closed under the bottom-up combination step and every root state
  /// accepts (src/corpus/verify.h replays exactly that invariant).
  /// Requires the interned substrate (use_ir or intern_memo); the
  /// string-keyed ablation arm reports InvalidArgument.
  bool export_trace = false;
};

struct ContainmentStats {
  std::size_t goals_discovered = 0;
  std::size_t states_discovered = 0;
  std::size_t combine_calls = 0;
  /// Combinations skipped because their (instance, child serials) memo row
  /// was already present.
  std::size_t memo_hits = 0;
  /// Canonical rule instances materialized into the cross-round cache
  /// (interned path only; 0 on the string-keyed path).
  std::size_t instances_cached = 0;
  /// Pairwise achieved-set subset tests run by antichain/dedup
  /// maintenance, and how many were refuted by the 64-bit Bloom signature
  /// alone (no merge scan). With the exact-bitset path active
  /// (use_bitsets, the default) no Bloom signatures are computed at all —
  /// subset_sig_rejects is reported 0 and subset_checks counts the
  /// AntichainStore's popcount-plausible candidate pairs instead.
  std::size_t subset_checks = 0;
  std::size_t subset_sig_rejects = 0;
  /// Retained states evicted because a newly discovered achieved set
  /// dominated them (antichain maintenance; both representations).
  std::size_t antichain_prunes = 0;
  /// 64-bit words examined by the bitset path's word-parallel
  /// subset/equality kernels (0 when use_bitsets is off).
  std::size_t subset_word_ops = 0;
  /// Renamed child achieved sets served from the per-(instance, child,
  /// serial) memo instead of being recomputed (IR path only; the rename
  /// work used to be re-paid for every combination in the product).
  std::size_t rename_memo_hits = 0;
  /// Integer pinned-image comparisons performed by the IR combination and
  /// root-acceptance steps (each one replaces a Term/string compare on
  /// the baseline path; 0 when use_ir is off).
  std::size_t pinned_compares = 0;
  /// Rules skipped by goal-directed pruning (prune_unreachable): rules of
  /// Π whose head predicate is not backward-reachable from the goal. 0
  /// when the option is off or every rule is reachable.
  std::size_t rules_pruned = 0;
  /// Full AST→IR interning passes this Decide call paid for the program.
  /// 0 when the program's carried ProgramIr (ir::CarriedIr) was already
  /// valid — i.e. on every Decide after the first against the same
  /// unmutated Program or reused checker.
  std::size_t program_ir_builds = 0;
  int rounds = 0;
};

struct ContainmentDecision {
  bool contained = true;
  /// When not contained: a proof tree of the goal predicate into which no
  /// disjunct maps strongly (a counterexample expansion), present when
  /// track_witness was set.
  std::optional<ExpansionTree> counterexample;
  /// When contained and export_trace was set: the converged fixpoint
  /// table, one entry per discovered goal atom (dense-goal-id order).
  AbsorptionTrace trace;
  ContainmentStats stats;
};

/// Reusable decider context for repeated containment questions about one
/// (program, goal) pair. The canonical rule instances of Π and the
/// interned goal-atom dictionary are independent of Θ, so drivers that
/// decide many candidate Θs against the same program — the boundedness
/// depth search, recursive/nonrecursive equivalence — build one checker
/// and re-pay neither the instance enumeration nor the goal interning per
/// candidate. A checker is not thread-safe; Decide calls must be
/// sequential.
class ContainmentChecker {
 public:
  ContainmentChecker(Program program, std::string goal);
  ~ContainmentChecker();
  ContainmentChecker(ContainmentChecker&&) noexcept;
  ContainmentChecker& operator=(ContainmentChecker&&) noexcept;

  const Program& program() const;
  const std::string& goal() const;

  /// Decides Q_Π ⊆ Θ; `theta` must outlive the call, not the checker.
  StatusOr<ContainmentDecision> Decide(
      const UnionOfCqs& theta,
      const ContainmentOptions& options = ContainmentOptions());

  /// A worker pool owned by the checker, for drivers that loop
  /// canonical-database containment checks around it (the equivalence
  /// pipeline's backward direction): pass it via
  /// CanonicalDbOptions::pool so the per-call pool spawn inside
  /// IsUcqContainedInDatalog is paid once per checker instead of once
  /// per call. Lazily constructed on first request and reused while the
  /// requested parallelism is unchanged; returns nullptr for `threads`
  /// <= 1 (no fan-out, so no pool). The pool lives as long as the
  /// checker; like Decide, calls are not thread-safe.
  ThreadPool* SharedEvalPool(std::size_t threads);

 private:
  friend class DeciderRun;
  // The one-shot wrapper borrows the caller's program for the duration of
  // the call instead of copying it into an owning checker.
  friend StatusOr<ContainmentDecision> DecideDatalogInUcq(
      const Program& program, const std::string& goal,
      const UnionOfCqs& theta, const ContainmentOptions& options);
  struct Context;
  std::unique_ptr<Context> context_;
};

/// Decides Q_Π ⊆ Θ for the goal predicate `goal` of `program`.
StatusOr<ContainmentDecision> DecideDatalogInUcq(
    const Program& program, const std::string& goal, const UnionOfCqs& theta,
    const ContainmentOptions& options = ContainmentOptions());

/// Convenience wrapper for a single conjunctive query.
StatusOr<ContainmentDecision> DecideDatalogInCq(
    const Program& program, const std::string& goal,
    const ConjunctiveQuery& theta,
    const ContainmentOptions& options = ContainmentOptions());

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CONTAINMENT_DECIDER_H_
