#include "src/containment/ptrees_automaton.h"

#include <functional>
#include <set>
#include <unordered_map>

#include "src/analysis/reachability.h"
#include "src/ast/analysis.h"
#include "src/containment/instances.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// One program rule encoded once onto the alphabet's dictionaries: atoms
// carry the predicate dictionary id plus int arguments (rule-variable
// slot in VariableNames() order, or ~constant_id). Instances are then
// stamped out of the template at integer cost — no substitution maps, no
// rendered strings (the decider's RuleTemplate scheme).
struct AlphabetRuleTemplate {
  struct AtomTpl {
    std::int32_t predicate = 0;
    bool idb = false;
    // args >= 0: rule-variable slot; args < 0: constant ~dictionary_id.
    std::vector<std::int32_t> args;
  };
  AtomTpl head;
  std::vector<AtomTpl> body;
  std::vector<std::size_t> idb_positions;
};

AlphabetRuleTemplate BuildAlphabetTemplate(
    const Rule& rule, const std::set<std::string>& idb,
    ir::NameDictionary* predicates, ir::NameDictionary* constants) {
  AlphabetRuleTemplate tpl;
  std::vector<std::string> vars = rule.VariableNames();
  std::unordered_map<std::string, std::int32_t> slots;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    slots.emplace(vars[i], static_cast<std::int32_t>(i));
  }
  auto encode_atom = [&](const Atom& atom) {
    AlphabetRuleTemplate::AtomTpl enc;
    enc.predicate =
        static_cast<std::int32_t>(predicates->Intern(atom.predicate()));
    enc.idb = idb.count(atom.predicate()) > 0;
    enc.args.reserve(atom.arity());
    for (const Term& t : atom.args()) {
      if (t.is_variable()) {
        enc.args.push_back(slots.at(t.name()));
      } else {
        enc.args.push_back(
            ~static_cast<std::int32_t>(constants->Intern(t.name())));
      }
    }
    return enc;
  };
  tpl.head = encode_atom(rule.head());
  tpl.body.reserve(rule.body().size());
  for (std::size_t i = 0; i < rule.body().size(); ++i) {
    tpl.body.push_back(encode_atom(rule.body()[i]));
    if (tpl.body.back().idb) tpl.idb_positions.push_back(i);
  }
  return tpl;
}

// Appends one atom of a label row: [pred, arity, enc(arg)...]. The arity
// makes the concatenated row self-delimiting, so two distinct instances
// can never stamp equal rows.
void AppendAtomRow(const AlphabetRuleTemplate::AtomTpl& atom,
                   const std::vector<std::size_t>& choice,
                   std::vector<int>* row) {
  row->push_back(atom.predicate);
  row->push_back(static_cast<int>(atom.args.size()));
  for (std::int32_t arg : atom.args) {
    row->push_back(arg >= 0 ? -(static_cast<int>(choice[arg]) + 1)
                            : static_cast<int>(~arg));
  }
}

// The interned-arm alphabet construction: enumerate the |proof_vars|^k
// assignments of each rule by choice vector (the same depth-first order
// ForEachInstanceOver visits), stamp the label row from the template, and
// only materialize Terms for rows the VarKeyTable has not seen.
StatusOr<ProgramAlphabet> BuildProgramAlphabetIr(
    const Program& program, const ExecutionLimits& limits) {
  Governor governor(limits, "alphabet enumeration");
  const std::size_t max_labels = limits.LabelsOr(2'000'000);
  Status interrupt = OkStatus();
  ProgramAlphabet alphabet;
  alphabet.interned = true;
  alphabet.proof_vars = ProofVariables(program);
  std::set<std::string> idb = program.IdbPredicates();
  auto encode_ir_atom = [&](const AlphabetRuleTemplate::AtomTpl& atom,
                            const std::vector<std::size_t>& choice) {
    ir::TermAtom enc;
    enc.predicate = atom.predicate;
    enc.args.reserve(atom.args.size());
    for (std::int32_t arg : atom.args) {
      enc.args.push_back(
          arg >= 0
              ? ir::TermId::Variable(static_cast<std::uint32_t>(choice[arg]))
              : ir::TermId::Constant(static_cast<std::uint32_t>(~arg)));
    }
    return enc;
  };

  std::vector<int> row;
  bool overflow = false;
  for (std::size_t rule_index = 0; rule_index < program.rules().size();
       ++rule_index) {
    const Rule& rule = program.rules()[rule_index];
    AlphabetRuleTemplate tpl = BuildAlphabetTemplate(
        rule, idb, &alphabet.predicates, &alphabet.constants);
    std::size_t num_vars = rule.VariableNames().size();
    std::vector<std::size_t> choice(num_vars, 0);
    std::function<bool(std::size_t)> recurse =
        [&](std::size_t index) -> bool {
      if (index < num_vars) {
        for (std::size_t c = 0; c < alphabet.proof_vars.size(); ++c) {
          choice[index] = c;
          if (!recurse(index + 1)) return false;
        }
        return true;
      }
      interrupt = governor.ChargeSteps(1);
      if (!interrupt.ok()) return false;
      if (alphabet.num_labels() >= max_labels) {
        overflow = true;
        return false;
      }
      row.clear();
      AppendAtomRow(tpl.head, choice, &row);
      for (const AlphabetRuleTemplate::AtomTpl& atom : tpl.body) {
        AppendAtomRow(atom, choice, &row);
      }
      auto [symbol, inserted] = alphabet.label_keys.Intern(row.data(),
                                                           row.size());
      if (!inserted) return true;  // duplicate instance
      DATALOG_CHECK_EQ(static_cast<std::size_t>(symbol),
                       alphabet.num_labels());
      // No Term-level label is materialized here: the interned arm keeps
      // only the IR encoding, and ProgramAlphabet::Label decodes a Rule
      // through the dictionaries on first demand.
      ProgramAlphabet::LabelIr label_ir;
      label_ir.head_pred = tpl.head.predicate;
      label_ir.head_args = encode_ir_atom(tpl.head, choice).args;
      for (const AlphabetRuleTemplate::AtomTpl& atom : tpl.body) {
        if (atom.idb) {
          label_ir.idb_atoms.push_back(encode_ir_atom(atom, choice));
        } else {
          label_ir.edb_atoms.push_back(encode_ir_atom(atom, choice));
        }
      }
      alphabet.arities.push_back(static_cast<int>(tpl.idb_positions.size()));
      alphabet.label_idb_positions.push_back(tpl.idb_positions);
      alphabet.label_rule_index.push_back(rule_index);
      alphabet.label_ir.push_back(std::move(label_ir));
      return true;
    };
    if (!recurse(0)) {
      if (!interrupt.ok()) return interrupt;
      if (overflow) {
        return Status(ResourceExhaustedError(
            StrCat("alphabet exceeded ", max_labels, " labels")));
      }
    }
  }
  return alphabet;
}

// The rendered-string ablation arm (the pre-IR construction, verbatim).
StatusOr<ProgramAlphabet> BuildProgramAlphabetString(
    const Program& program, const ExecutionLimits& limits) {
  Governor governor(limits, "alphabet enumeration");
  const std::size_t max_labels = limits.LabelsOr(2'000'000);
  Status interrupt = OkStatus();
  ProgramAlphabet alphabet;
  alphabet.proof_vars = ProofVariables(program);
  std::set<std::string> idb = program.IdbPredicates();
  bool overflow = false;
  for (std::size_t rule_index = 0; rule_index < program.rules().size();
       ++rule_index) {
    const Rule& rule = program.rules()[rule_index];
    bool completed = ForEachInstanceOver(
        rule, alphabet.proof_vars, [&](const Rule& instance) {
          interrupt = governor.ChargeSteps(1);
          if (!interrupt.ok()) return false;
          if (alphabet.eager_labels.size() >= max_labels) {
            overflow = true;
            return false;
          }
          auto [it, inserted] = alphabet.label_ids.emplace(
              instance.ToString(),
              static_cast<int>(alphabet.eager_labels.size()));
          if (!inserted) return true;  // duplicate instance
          std::vector<std::size_t> idb_positions;
          for (std::size_t i = 0; i < instance.body().size(); ++i) {
            if (idb.count(instance.body()[i].predicate()) > 0) {
              idb_positions.push_back(i);
            }
          }
          alphabet.arities.push_back(static_cast<int>(idb_positions.size()));
          alphabet.label_idb_positions.push_back(std::move(idb_positions));
          alphabet.eager_labels.push_back(instance);
          alphabet.label_rule_index.push_back(rule_index);
          return true;
        });
    if (!completed) {
      if (!interrupt.ok()) return interrupt;
      if (overflow) {
        return Status(ResourceExhaustedError(
            StrCat("alphabet exceeded ", max_labels, " labels")));
      }
    }
  }
  return alphabet;
}

// Encodes a Term-level atom as a row over the alphabet's dictionaries
// (lookup only — nothing is interned); false if the atom uses a
// predicate/constant the alphabet never saw or a non-proof variable.
bool EncodeAtomRow(const ProgramAlphabet& alphabet, const Atom& atom,
                   bool with_arity, std::vector<int>* row) {
  std::uint32_t pred = alphabet.predicates.Find(atom.predicate());
  if (pred == ir::NameDictionary::kNotFound) return false;
  row->push_back(static_cast<int>(pred));
  if (with_arity) row->push_back(static_cast<int>(atom.arity()));
  for (const Term& t : atom.args()) {
    if (t.is_variable()) {
      if (!IsProofVariableName(t.name())) return false;
      std::size_t k = ProofVariableIndex(t.name());
      if (k >= alphabet.proof_vars.size()) return false;
      row->push_back(-(static_cast<int>(k) + 1));
    } else {
      std::uint32_t c = alphabet.constants.Find(t.name());
      if (c == ir::NameDictionary::kNotFound) return false;
      row->push_back(static_cast<int>(c));
    }
  }
  return true;
}

}  // namespace

Atom ProgramAlphabet::DecodeAtom(const ir::TermAtom& atom) const {
  std::vector<Term> args;
  args.reserve(atom.args.size());
  for (ir::TermId t : atom.args) {
    args.push_back(t.is_variable() ? Term::Variable(proof_vars[t.index()])
                                   : Term::Constant(constants.name(
                                         t.index())));
  }
  return Atom(predicates.name(static_cast<std::uint32_t>(atom.predicate)),
              std::move(args));
}

const Rule& ProgramAlphabet::Label(std::size_t symbol) const {
  if (!interned) return eager_labels[symbol];
  if (label_cache_.size() < num_labels()) label_cache_.resize(num_labels());
  std::unique_ptr<Rule>& slot = label_cache_[symbol];
  if (slot == nullptr) {
    // Rebuild the body in original order by interleaving the EDB and IDB
    // encodings: label_idb_positions records where the IDB atoms sat.
    const LabelIr& enc = label_ir[symbol];
    const std::vector<std::size_t>& idb_pos = label_idb_positions[symbol];
    std::size_t body_size = enc.edb_atoms.size() + enc.idb_atoms.size();
    std::vector<Atom> body;
    body.reserve(body_size);
    std::size_t next_edb = 0;
    std::size_t next_idb = 0;
    for (std::size_t pos = 0; pos < body_size; ++pos) {
      bool is_idb = next_idb < idb_pos.size() && idb_pos[next_idb] == pos;
      body.push_back(DecodeAtom(is_idb ? enc.idb_atoms[next_idb++]
                                       : enc.edb_atoms[next_edb++]));
    }
    ir::TermAtom head;
    head.predicate = enc.head_pred;
    head.args = enc.head_args;
    slot = std::make_unique<Rule>(DecodeAtom(head), std::move(body));
    ++decoded_labels_;
  }
  return *slot;
}

int ProgramAlphabet::SymbolOf(const Rule& instance) const {
  if (!interned) {
    auto it = label_ids.find(instance.ToString());
    return it == label_ids.end() ? -1 : it->second;
  }
  std::vector<int> row;
  if (!EncodeAtomRow(*this, instance.head(), /*with_arity=*/true, &row)) {
    return -1;
  }
  for (const Atom& atom : instance.body()) {
    if (!EncodeAtomRow(*this, atom, /*with_arity=*/true, &row)) return -1;
  }
  std::uint32_t symbol = label_keys.Find(row.data(), row.size());
  return symbol == VarKeyTable::kNotFound ? -1 : static_cast<int>(symbol);
}

StatusOr<ProgramAlphabet> BuildProgramAlphabet(const Program& program,
                                               const ExecutionLimits& limits,
                                               bool use_ir) {
  return use_ir ? BuildProgramAlphabetIr(program, limits)
                : BuildProgramAlphabetString(program, limits);
}

int PtreesAutomaton::StateOf(const Atom& atom) const {
  if (!alphabet.interned) {
    auto it = atom_states.find(atom.ToString());
    return it == atom_states.end() ? -1 : it->second;
  }
  std::vector<int> row;
  if (!EncodeAtomRow(alphabet, atom, /*with_arity=*/false, &row)) return -1;
  std::uint32_t state = state_keys.Find(row.data(), row.size());
  return state == VarKeyTable::kNotFound ? -1 : static_cast<int>(state);
}

const Atom& PtreesAutomaton::StateAtom(std::size_t state) const {
  if (!alphabet.interned) return state_atoms[state];
  if (state_cache_.size() < state_keys.size()) {
    state_cache_.resize(state_keys.size());
  }
  std::unique_ptr<Atom>& slot = state_cache_[state];
  if (slot == nullptr) {
    // A state row is [pred, enc(arg)...] over the alphabet dictionaries
    // (proof variable $k as -(k+1), constants as dictionary ids).
    const int* row = state_keys.KeyData(state);
    const std::size_t length = state_keys.KeyLength(state);
    std::vector<Term> args;
    args.reserve(length - 1);
    for (std::size_t i = 1; i < length; ++i) {
      args.push_back(row[i] < 0
                         ? Term::Variable(alphabet.proof_vars[-row[i] - 1])
                         : Term::Constant(alphabet.constants.name(
                               static_cast<std::uint32_t>(row[i]))));
    }
    slot = std::make_unique<Atom>(
        alphabet.predicates.name(static_cast<std::uint32_t>(row[0])),
        std::move(args));
    ++decoded_state_atoms_;
  }
  return *slot;
}

StatusOr<PtreesAutomaton> BuildPtreesAutomaton(const Program& program,
                                               const std::string& goal,
                                               const ExecutionLimits& limits,
                                               bool use_ir,
                                               bool prune_unreachable) {
  // Goal-directed pruning: an unreachable rule's instances could label no
  // node of a goal-rooted run, so dropping them changes no accepted tree
  // — only the alphabet size. (The alphabet copies the rules, so the
  // pruned program can be call-local.)
  std::optional<Program> pruned;
  if (prune_unreachable) pruned = PruneUnreachableRules(program, goal);
  const Program& prog = pruned.has_value() ? *pruned : program;
  PtreesAutomaton automaton;
  DATALOG_ASSIGN_OR_RETURN(automaton.alphabet,
                           BuildProgramAlphabet(prog, limits, use_ir));
  // States: every IDB atom occurring as a label head or IDB body atom.
  Nfta nfta(0, automaton.alphabet.arities);
  if (automaton.alphabet.interned) {
    // Interned arm: states are [pred, enc(arg)...] rows over the
    // alphabet's dictionaries; the VarKeyTable index is the state id.
    std::vector<int> row;
    // No Term-level state atom is materialized here: the key row IS the
    // state identity, and StateAtom() decodes a row on demand for the
    // few callers that want to render one.
    auto state_of = [&](const ir::TermAtom& encoded) -> int {
      row.clear();
      row.push_back(encoded.predicate);
      for (ir::TermId t : encoded.args) row.push_back(ir::EncodeRowTerm(t));
      auto [id, inserted] =
          automaton.state_keys.Intern(row.data(), row.size());
      if (inserted) nfta.AddState();
      return static_cast<int>(id);
    };
    std::uint32_t goal_pred = automaton.alphabet.predicates.Find(goal);
    for (std::size_t symbol = 0;
         symbol < automaton.alphabet.num_labels(); ++symbol) {
      const ProgramAlphabet::LabelIr& label_ir =
          automaton.alphabet.label_ir[symbol];
      std::vector<int> children;
      children.reserve(label_ir.idb_atoms.size());
      for (std::size_t j = 0; j < label_ir.idb_atoms.size(); ++j) {
        children.push_back(state_of(label_ir.idb_atoms[j]));
      }
      ir::TermAtom head;
      head.predicate = label_ir.head_pred;
      head.args = label_ir.head_args;
      int head_state = state_of(head);
      nfta.AddTransition(static_cast<int>(symbol), std::move(children),
                         head_state);
    }
    // Final states: all goal-predicate atoms (a state row's first int is
    // its predicate id), mirroring the string arm exactly — including
    // goal atoms that only ever occur as children.
    for (std::size_t s = 0; s < automaton.state_keys.size(); ++s) {
      if (goal_pred != ir::NameDictionary::kNotFound &&
          static_cast<std::uint32_t>(automaton.state_keys.KeyData(s)[0]) ==
              goal_pred) {
        nfta.SetFinal(static_cast<int>(s));
      }
    }
  } else {
    auto state_of = [&automaton, &nfta](const Atom& atom) {
      auto [it, inserted] = automaton.atom_states.emplace(
          atom.ToString(), static_cast<int>(automaton.state_atoms.size()));
      if (inserted) {
        automaton.state_atoms.push_back(atom);
        nfta.AddState();
      }
      return it->second;
    };
    for (std::size_t symbol = 0;
         symbol < automaton.alphabet.num_labels(); ++symbol) {
      const Rule& label = automaton.alphabet.eager_labels[symbol];
      std::vector<int> children;
      for (std::size_t pos : automaton.alphabet.label_idb_positions[symbol]) {
        children.push_back(state_of(label.body()[pos]));
      }
      int head_state = state_of(label.head());
      nfta.AddTransition(static_cast<int>(symbol), std::move(children),
                         head_state);
    }
    // Final states (the paper's start states, read top-down): all
    // goal-predicate atoms.
    for (std::size_t s = 0; s < automaton.state_atoms.size(); ++s) {
      if (automaton.state_atoms[s].predicate() == goal) {
        nfta.SetFinal(static_cast<int>(s));
      }
    }
  }
  automaton.nfta = std::move(nfta);
  return automaton;
}

std::optional<LabeledTree> ProofTreeToLabeledTree(
    const ProgramAlphabet& alphabet, const ExpansionTree& tree) {
  std::function<std::optional<LabeledTree>(const ExpansionNode&)> encode =
      [&](const ExpansionNode& node) -> std::optional<LabeledTree> {
    int symbol = alphabet.SymbolOf(node.rule);
    if (symbol < 0) return std::nullopt;
    LabeledTree encoded;
    encoded.symbol = symbol;
    for (const ExpansionNode& child : node.children) {
      std::optional<LabeledTree> encoded_child = encode(child);
      if (!encoded_child.has_value()) return std::nullopt;
      encoded.children.push_back(std::move(*encoded_child));
    }
    return encoded;
  };
  return encode(tree.root());
}

ExpansionTree LabeledTreeToProofTree(const ProgramAlphabet& alphabet,
                                     const LabeledTree& tree) {
  std::function<ExpansionNode(const LabeledTree&)> decode =
      [&](const LabeledTree& node) {
        DATALOG_CHECK_LT(static_cast<std::size_t>(node.symbol),
                         alphabet.num_labels());
        ExpansionNode decoded;
        decoded.rule = alphabet.Label(node.symbol);
        decoded.goal = decoded.rule.head();
        decoded.idb_positions = alphabet.label_idb_positions[node.symbol];
        for (const LabeledTree& child : node.children) {
          decoded.children.push_back(decode(child));
        }
        return decoded;
      };
  return ExpansionTree(decode(tree));
}

}  // namespace datalog
