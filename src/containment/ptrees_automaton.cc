#include "src/containment/ptrees_automaton.h"

#include <set>

#include "src/ast/analysis.h"
#include "src/containment/instances.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {

int ProgramAlphabet::SymbolOf(const Rule& instance) const {
  auto it = label_ids.find(instance.ToString());
  return it == label_ids.end() ? -1 : it->second;
}

StatusOr<ProgramAlphabet> BuildProgramAlphabet(const Program& program,
                                               std::size_t max_labels) {
  ProgramAlphabet alphabet;
  alphabet.proof_vars = ProofVariables(program);
  std::set<std::string> idb = program.IdbPredicates();
  bool overflow = false;
  for (std::size_t rule_index = 0; rule_index < program.rules().size();
       ++rule_index) {
    const Rule& rule = program.rules()[rule_index];
    bool completed = ForEachInstanceOver(
        rule, alphabet.proof_vars, [&](const Rule& instance) {
          if (alphabet.labels.size() >= max_labels) {
            overflow = true;
            return false;
          }
          auto [it, inserted] = alphabet.label_ids.emplace(
              instance.ToString(), static_cast<int>(alphabet.labels.size()));
          if (!inserted) return true;  // duplicate instance
          std::vector<std::size_t> idb_positions;
          for (std::size_t i = 0; i < instance.body().size(); ++i) {
            if (idb.count(instance.body()[i].predicate()) > 0) {
              idb_positions.push_back(i);
            }
          }
          alphabet.arities.push_back(static_cast<int>(idb_positions.size()));
          alphabet.label_idb_positions.push_back(std::move(idb_positions));
          alphabet.labels.push_back(instance);
          alphabet.label_rule_index.push_back(rule_index);
          return true;
        });
    if (!completed && overflow) {
      return Status(ResourceExhaustedError(
          StrCat("alphabet exceeded ", max_labels, " labels")));
    }
  }
  return alphabet;
}

int PtreesAutomaton::StateOf(const Atom& atom) const {
  auto it = atom_states.find(atom.ToString());
  return it == atom_states.end() ? -1 : it->second;
}

StatusOr<PtreesAutomaton> BuildPtreesAutomaton(const Program& program,
                                               const std::string& goal,
                                               std::size_t max_labels) {
  StatusOr<ProgramAlphabet> alphabet =
      BuildProgramAlphabet(program, max_labels);
  if (!alphabet.ok()) return alphabet.status();
  PtreesAutomaton automaton{std::move(alphabet).value(),
                            Nfta(0, {}),
                            {},
                            {}};
  // States: every IDB atom occurring as a label head or IDB body atom.
  Nfta nfta(0, automaton.alphabet.arities);
  auto state_of = [&automaton, &nfta](const Atom& atom) {
    auto [it, inserted] = automaton.atom_states.emplace(
        atom.ToString(), static_cast<int>(automaton.state_atoms.size()));
    if (inserted) {
      automaton.state_atoms.push_back(atom);
      nfta.AddState();
    }
    return it->second;
  };
  for (std::size_t symbol = 0; symbol < automaton.alphabet.labels.size();
       ++symbol) {
    const Rule& label = automaton.alphabet.labels[symbol];
    std::vector<int> children;
    for (std::size_t pos : automaton.alphabet.label_idb_positions[symbol]) {
      children.push_back(state_of(label.body()[pos]));
    }
    int head_state = state_of(label.head());
    nfta.AddTransition(static_cast<int>(symbol), std::move(children),
                       head_state);
  }
  // Final states (the paper's start states, read top-down): all
  // goal-predicate atoms.
  for (std::size_t s = 0; s < automaton.state_atoms.size(); ++s) {
    if (automaton.state_atoms[s].predicate() == goal) {
      nfta.SetFinal(static_cast<int>(s));
    }
  }
  automaton.nfta = std::move(nfta);
  return automaton;
}

std::optional<LabeledTree> ProofTreeToLabeledTree(
    const ProgramAlphabet& alphabet, const ExpansionTree& tree) {
  std::function<std::optional<LabeledTree>(const ExpansionNode&)> encode =
      [&](const ExpansionNode& node) -> std::optional<LabeledTree> {
    int symbol = alphabet.SymbolOf(node.rule);
    if (symbol < 0) return std::nullopt;
    LabeledTree encoded;
    encoded.symbol = symbol;
    for (const ExpansionNode& child : node.children) {
      std::optional<LabeledTree> encoded_child = encode(child);
      if (!encoded_child.has_value()) return std::nullopt;
      encoded.children.push_back(std::move(*encoded_child));
    }
    return encoded;
  };
  return encode(tree.root());
}

ExpansionTree LabeledTreeToProofTree(const ProgramAlphabet& alphabet,
                                     const LabeledTree& tree) {
  std::function<ExpansionNode(const LabeledTree&)> decode =
      [&](const LabeledTree& node) {
        DATALOG_CHECK_LT(static_cast<std::size_t>(node.symbol),
                         alphabet.labels.size());
        ExpansionNode decoded;
        decoded.rule = alphabet.labels[node.symbol];
        decoded.goal = decoded.rule.head();
        decoded.idb_positions = alphabet.label_idb_positions[node.symbol];
        for (const LabeledTree& child : node.children) {
          decoded.children.push_back(decode(child));
        }
        return decoded;
      };
  return ExpansionTree(decode(tree));
}

}  // namespace datalog
