// Conjunctive queries and unions of conjunctive queries (paper §2.1).
//
// A conjunctive query θ(x1,...,xk) = ∃y1..ym (a1 ∧ ... ∧ an) is represented
// by its head argument vector (the distinguished terms; repeated variables
// and constants are allowed, generalizing the paper per Remark 5.14) and
// its body atoms. A CQ with no body atoms is `true` restricted to the head
// binding pattern (paper Example 6.2).
#ifndef DATALOG_EQ_SRC_CQ_CQ_H_
#define DATALOG_EQ_SRC_CQ_CQ_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ast/rule.h"
#include "src/ast/term.h"
#include "src/util/build_once.h"

namespace datalog {

class UnionOfCqs;

namespace ir {
/// Returns the interned IR carried by `ucq` (the union analogue of the
/// Program overload declared in src/ast/rule.h; defined in src/ir/ir.cc,
/// documented in src/ir/ir.h).
std::shared_ptr<ProgramIr> CarriedIr(const UnionOfCqs& ucq);
}  // namespace ir

class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::vector<Term> head_args, std::vector<Atom> body)
      : head_args_(std::move(head_args)), body_(std::move(body)) {}

  const std::vector<Term>& head_args() const { return head_args_; }
  const std::vector<Atom>& body() const { return body_; }
  std::size_t arity() const { return head_args_.size(); }

  bool operator==(const ConjunctiveQuery& other) const {
    return head_args_ == other.head_args_ && body_ == other.body_;
  }

  /// Distinct variables occurring anywhere (head first), in
  /// first-occurrence order.
  std::vector<std::string> VariableNames() const;

  /// Distinct variables occurring in the head, in occurrence order.
  std::vector<std::string> DistinguishedVariableNames() const;

  /// Renders e.g. `(X, Y) :- e(X, Z), e(Z, Y)`.
  std::string ToString() const;

 private:
  std::vector<Term> head_args_;
  std::vector<Atom> body_;
};

std::ostream& operator<<(std::ostream& os, const ConjunctiveQuery& cq);

/// A finite union of conjunctive queries, all of the same arity.
class UnionOfCqs {
 public:
  UnionOfCqs() = default;
  explicit UnionOfCqs(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  void Add(ConjunctiveQuery cq) {
    carried_ir_.Reset();  // mutation invalidates the carried IR
    disjuncts_.push_back(std::move(cq));
  }
  bool empty() const { return disjuncts_.empty(); }
  std::size_t size() const { return disjuncts_.size(); }

  /// True if a carried IR is currently attached (see ir::CarriedIr).
  bool has_carried_ir() const { return carried_ir_.built(); }

  std::string ToString() const;

 private:
  friend std::shared_ptr<ir::ProgramIr> ir::CarriedIr(const UnionOfCqs&);

  std::vector<ConjunctiveQuery> disjuncts_;
  // Lazily-built interned IR (see ir::CarriedIr in src/ir/ir.h); a
  // build-once slot safe against concurrent first accesses, shared by
  // copies, reset by Add.
  mutable BuildOnceSlot<ir::ProgramIr> carried_ir_;
};

std::ostream& operator<<(std::ostream& os, const UnionOfCqs& ucq);

/// Views a rule as a CQ: head arguments become the distinguished terms and
/// the rule body becomes the CQ body. (Meaningful when the body is
/// EDB-only; callers unfolding programs guarantee that.)
ConjunctiveQuery CqFromRule(const Rule& rule);

/// Renders a CQ back as a rule with the given head predicate.
Rule RuleFromCq(const std::string& head_predicate, const ConjunctiveQuery& cq);

/// Applies a substitution to head and body.
ConjunctiveQuery ApplySubstitution(const Substitution& subst,
                                   const ConjunctiveQuery& cq);

/// Renames all variables canonically ("V0", "V1", ... in first-occurrence
/// order, head first). Two CQs equal up to variable renaming canonicalize
/// to equal objects if their atom orders align; combine with
/// SortedBodyCanonicalForm for order-insensitivity in tests.
ConjunctiveQuery CanonicalizeVariables(const ConjunctiveQuery& cq);

/// Canonical form whose body is sorted after canonical variable renaming;
/// iterates renaming and sorting to a fixpoint, giving a practical (not
/// perfect) syntactic normal form for deduplication.
ConjunctiveQuery SortedBodyCanonicalForm(const ConjunctiveQuery& cq);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CQ_CQ_H_
