// Conjunctive-query minimization: computing the core of a CQ by folding
// redundant body atoms away. A classic application of containment mappings
// (Theorem 2.2); used by the equivalence pipeline to keep unfolded UCQs
// small.
#ifndef DATALOG_EQ_SRC_CQ_MINIMIZE_H_
#define DATALOG_EQ_SRC_CQ_MINIMIZE_H_

#include "src/cq/containment.h"
#include "src/cq/cq.h"

namespace datalog {

/// Returns an equivalent CQ with a minimal body (the core, unique up to
/// renaming): greedily removes body atoms a such that the query maps into
/// itself-minus-a by a containment mapping. `options` selects the
/// homomorphism-search substrate (IR by default; results are identical
/// either way).
ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& cq,
                            const CqMappingOptions& options =
                                CqMappingOptions());

/// Minimizes every disjunct and removes redundant disjuncts.
UnionOfCqs MinimizeUcq(const UnionOfCqs& ucq,
                       const CqMappingOptions& options = CqMappingOptions());

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CQ_MINIMIZE_H_
