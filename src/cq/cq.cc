#include "src/cq/cq.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/strings.h"

namespace datalog {

std::vector<std::string> ConjunctiveQuery::VariableNames() const {
  std::vector<std::string> distinct;
  std::unordered_set<std::string> seen;
  for (const Term& t : head_args_) {
    if (t.is_variable() && seen.insert(t.name()).second) {
      distinct.push_back(t.name());
    }
  }
  for (const Atom& atom : body_) {
    for (const Term& t : atom.args()) {
      if (t.is_variable() && seen.insert(t.name()).second) {
        distinct.push_back(t.name());
      }
    }
  }
  return distinct;
}

std::vector<std::string> ConjunctiveQuery::DistinguishedVariableNames() const {
  std::vector<std::string> distinct;
  std::unordered_set<std::string> seen;
  for (const Term& t : head_args_) {
    if (t.is_variable() && seen.insert(t.name()).second) {
      distinct.push_back(t.name());
    }
  }
  return distinct;
}

std::string ConjunctiveQuery::ToString() const {
  std::string head = StrCat(
      "(",
      StrJoin(head_args_, ", ",
              [](std::ostream& os, const Term& t) { os << t; }),
      ")");
  if (body_.empty()) return StrCat(head, " :- true");
  return StrCat(head, " :- ",
                StrJoin(body_, ", ", [](std::ostream& os, const Atom& a) {
                  os << a.ToString();
                }));
}

std::ostream& operator<<(std::ostream& os, const ConjunctiveQuery& cq) {
  return os << cq.ToString();
}

std::string UnionOfCqs::ToString() const {
  return StrJoin(disjuncts_, "\n | ",
                 [](std::ostream& os, const ConjunctiveQuery& cq) {
                   os << cq.ToString();
                 });
}

std::ostream& operator<<(std::ostream& os, const UnionOfCqs& ucq) {
  return os << ucq.ToString();
}

ConjunctiveQuery CqFromRule(const Rule& rule) {
  return ConjunctiveQuery(rule.head().args(), rule.body());
}

Rule RuleFromCq(const std::string& head_predicate,
                const ConjunctiveQuery& cq) {
  return Rule(Atom(head_predicate, cq.head_args()), cq.body());
}

ConjunctiveQuery ApplySubstitution(const Substitution& subst,
                                   const ConjunctiveQuery& cq) {
  std::vector<Term> head;
  head.reserve(cq.head_args().size());
  for (const Term& t : cq.head_args()) {
    head.push_back(ApplySubstitution(subst, t));
  }
  std::vector<Atom> body;
  body.reserve(cq.body().size());
  for (const Atom& a : cq.body()) {
    body.push_back(ApplySubstitution(subst, a));
  }
  return ConjunctiveQuery(std::move(head), std::move(body));
}

ConjunctiveQuery CanonicalizeVariables(const ConjunctiveQuery& cq) {
  Substitution subst;
  std::size_t next = 0;
  for (const std::string& v : cq.VariableNames()) {
    subst.emplace(v, Term::Variable(StrCat("V", next++)));
  }
  return ApplySubstitution(subst, cq);
}

ConjunctiveQuery SortedBodyCanonicalForm(const ConjunctiveQuery& cq) {
  ConjunctiveQuery current = CanonicalizeVariables(cq);
  // Sorting the body can change first-occurrence order, so iterate
  // rename+sort until stable (bounded by a small constant in practice; cap
  // the iteration count defensively).
  for (int iteration = 0; iteration < 16; ++iteration) {
    std::vector<Atom> body = current.body();
    std::sort(body.begin(), body.end());
    ConjunctiveQuery sorted(current.head_args(), std::move(body));
    ConjunctiveQuery renamed = CanonicalizeVariables(sorted);
    if (renamed == current) break;
    current = std::move(renamed);
  }
  return current;
}

}  // namespace datalog
