#include "src/cq/containment.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/ir/ir.h"
#include "src/util/logging.h"

namespace datalog {
namespace {

// Backtracking search state for a containment mapping from psi to theta.
class MappingSearch {
 public:
  MappingSearch(const ConjunctiveQuery& psi, const ConjunctiveQuery& theta)
      : psi_(psi), theta_(theta) {}

  std::optional<Substitution> Run() {
    if (psi_.arity() != theta_.arity()) return std::nullopt;
    // Seed the mapping from the head argument vectors: h must send psi's
    // i-th head term to theta's i-th head term.
    for (std::size_t i = 0; i < psi_.arity(); ++i) {
      if (!UnifyTerm(psi_.head_args()[i], theta_.head_args()[i])) {
        return std::nullopt;
      }
    }
    mapped_.assign(psi_.body().size(), false);
    // Candidate targets per psi atom: theta atoms sharing predicate and
    // arity (an upper bound on how many ways the atom can map).
    candidates_.assign(psi_.body().size(), 0);
    for (std::size_t i = 0; i < psi_.body().size(); ++i) {
      const Atom& from = psi_.body()[i];
      for (const Atom& to : theta_.body()) {
        if (from.predicate() == to.predicate() &&
            from.arity() == to.arity()) {
          ++candidates_[i];
        }
      }
    }
    if (!Search(psi_.body().size())) return std::nullopt;
    return binding_;
  }

 private:
  // Tries to extend the mapping with psi-term -> theta-term.
  bool UnifyTerm(const Term& from, const Term& to) {
    if (from.is_constant()) {
      // Constants map to themselves (Remark 5.14).
      return to.is_constant() && to.name() == from.name();
    }
    auto it = binding_.find(from.name());
    if (it != binding_.end()) return it->second == to;
    binding_.emplace(from.name(), to);
    trail_.push_back(from.name());
    return true;
  }

  std::size_t TrailMark() const { return trail_.size(); }

  void UndoTo(std::size_t mark) {
    while (trail_.size() > mark) {
      binding_.erase(trail_.back());
      trail_.pop_back();
    }
  }

  bool UnifyAtom(const Atom& from, const Atom& to) {
    if (from.predicate() != to.predicate() || from.arity() != to.arity()) {
      return false;
    }
    std::size_t mark = TrailMark();
    for (std::size_t i = 0; i < from.arity(); ++i) {
      if (!UnifyTerm(from.args()[i], to.args()[i])) {
        UndoTo(mark);
        return false;
      }
    }
    return true;
  }

  // Picks the unmapped psi atom with the most already-bound variables
  // (most-constrained-first), breaking ties toward fewer candidate
  // targets (theta atoms with matching predicate and arity).
  std::size_t PickNextAtom() const {
    std::size_t best = psi_.body().size();
    int best_bound = -1;
    int best_candidates = 0;
    for (std::size_t i = 0; i < psi_.body().size(); ++i) {
      if (mapped_[i]) continue;
      int bound = 0;
      for (const Term& t : psi_.body()[i].args()) {
        if (t.is_constant() || binding_.count(t.name()) > 0) ++bound;
      }
      if (bound > best_bound ||
          (bound == best_bound && candidates_[i] < best_candidates)) {
        best_bound = bound;
        best_candidates = candidates_[i];
        best = i;
      }
    }
    return best;
  }

  bool Search(std::size_t remaining) {
    if (remaining == 0) return true;
    std::size_t index = PickNextAtom();
    DATALOG_CHECK_LT(index, psi_.body().size());
    mapped_[index] = true;
    const Atom& from = psi_.body()[index];
    for (const Atom& to : theta_.body()) {
      std::size_t mark = TrailMark();
      if (UnifyAtom(from, to)) {
        if (Search(remaining - 1)) return true;
        UndoTo(mark);
      }
    }
    mapped_[index] = false;
    return false;
  }

  const ConjunctiveQuery& psi_;
  const ConjunctiveQuery& theta_;
  Substitution binding_;
  std::vector<std::string> trail_;
  std::vector<bool> mapped_;
  std::vector<int> candidates_;
};

// The IR rendering of MappingSearch: both queries are interned onto
// shared predicate/constant dictionaries in one pass (psi variables and
// theta variables each get a frame-local dense numbering), the working
// binding is a dense IrSubstitution, and every unification is a branch
// plus an integer compare. Candidate and atom orders match MappingSearch
// exactly, so the first mapping found — and therefore the returned
// Substitution — is identical to the string path's.
class IrMappingSearch {
 public:
  IrMappingSearch(const ConjunctiveQuery& psi, const ConjunctiveQuery& theta)
      : psi_(psi), theta_(theta) {}

  std::optional<Substitution> Run() {
    if (psi_.arity() != theta_.arity()) return std::nullopt;
    Build();
    for (std::size_t i = 0; i < psi_head_.size(); ++i) {
      if (!UnifyTerm(psi_head_[i], theta_head_[i])) return std::nullopt;
    }
    mapped_.assign(psi_body_.size(), false);
    candidates_.assign(psi_body_.size(), 0);
    for (std::size_t i = 0; i < psi_body_.size(); ++i) {
      for (const ir::TermAtom& to : theta_body_) {
        if (psi_body_[i].predicate == to.predicate &&
            psi_body_[i].args.size() == to.args.size()) {
          ++candidates_[i];
        }
      }
    }
    if (!Search(psi_body_.size())) return std::nullopt;
    // Decode the dense binding back into the AST substitution.
    Substitution result;
    for (std::uint32_t v = 0; v < binding_.image.size(); ++v) {
      ir::TermId image = binding_.image[v];
      if (!image.valid()) continue;
      result.emplace(psi_vars_.name(v),
                     image.is_variable()
                         ? Term::Variable(theta_vars_.name(image.index()))
                         : Term::Constant(constants_.name(image.index())));
    }
    return result;
  }

 private:
  void Build() {
    auto encode_source = [&](const Term& t) -> std::int32_t {
      if (t.is_variable()) {
        return static_cast<std::int32_t>(psi_vars_.Intern(t.name()));
      }
      return ~static_cast<std::int32_t>(constants_.Intern(t.name()));
    };
    auto encode_target = [&](const Term& t) -> ir::TermId {
      if (t.is_variable()) {
        return ir::TermId::Variable(theta_vars_.Intern(t.name()));
      }
      return ir::TermId::Constant(constants_.Intern(t.name()));
    };
    for (const Term& t : psi_.head_args()) {
      psi_head_.push_back(encode_source(t));
    }
    for (const Atom& atom : psi_.body()) {
      ir::PatternAtom enc;
      enc.predicate =
          static_cast<std::int32_t>(predicates_.Intern(atom.predicate()));
      for (const Term& t : atom.args()) enc.args.push_back(encode_source(t));
      psi_body_.push_back(std::move(enc));
    }
    for (const Term& t : theta_.head_args()) {
      theta_head_.push_back(encode_target(t));
    }
    for (const Atom& atom : theta_.body()) {
      ir::TermAtom enc;
      enc.predicate =
          static_cast<std::int32_t>(predicates_.Intern(atom.predicate()));
      for (const Term& t : atom.args()) enc.args.push_back(encode_target(t));
      theta_body_.push_back(std::move(enc));
    }
    binding_ = ir::DenseBinding(psi_vars_.size());
  }

  bool UnifyTerm(std::int32_t from, ir::TermId to) {
    if (from < 0) {
      // Constants map to themselves (Remark 5.14).
      return to == ir::TermId::Constant(static_cast<std::uint32_t>(~from));
    }
    return binding_.Bind(from, to, &trail_, nullptr);
  }

  std::size_t TrailMark() const { return trail_.size(); }

  void UndoTo(std::size_t mark) { binding_.Undo(&trail_, mark); }

  bool UnifyAtom(const ir::PatternAtom& from, const ir::TermAtom& to) {
    if (from.predicate != to.predicate ||
        from.args.size() != to.args.size()) {
      return false;
    }
    std::size_t mark = TrailMark();
    for (std::size_t i = 0; i < from.args.size(); ++i) {
      if (!UnifyTerm(from.args[i], to.args[i])) {
        UndoTo(mark);
        return false;
      }
    }
    return true;
  }

  // Same most-constrained-first heuristic and tie-breaks as
  // MappingSearch::PickNextAtom (the orders must match for the two
  // substrates to find the same first mapping).
  std::size_t PickNextAtom() const {
    std::size_t best = psi_body_.size();
    int best_bound = -1;
    int best_candidates = 0;
    for (std::size_t i = 0; i < psi_body_.size(); ++i) {
      if (mapped_[i]) continue;
      int bound = 0;
      for (std::int32_t arg : psi_body_[i].args) {
        if (arg < 0 || binding_.image[arg].valid()) ++bound;
      }
      if (bound > best_bound ||
          (bound == best_bound && candidates_[i] < best_candidates)) {
        best_bound = bound;
        best_candidates = candidates_[i];
        best = i;
      }
    }
    return best;
  }

  bool Search(std::size_t remaining) {
    if (remaining == 0) return true;
    std::size_t index = PickNextAtom();
    DATALOG_CHECK_LT(index, psi_body_.size());
    mapped_[index] = true;
    const ir::PatternAtom& from = psi_body_[index];
    for (const ir::TermAtom& to : theta_body_) {
      std::size_t mark = TrailMark();
      if (UnifyAtom(from, to)) {
        if (Search(remaining - 1)) return true;
        UndoTo(mark);
      }
    }
    mapped_[index] = false;
    return false;
  }

  const ConjunctiveQuery& psi_;
  const ConjunctiveQuery& theta_;
  ir::NameDictionary predicates_;
  ir::NameDictionary constants_;
  ir::NameDictionary psi_vars_;
  ir::NameDictionary theta_vars_;
  std::vector<std::int32_t> psi_head_;
  std::vector<ir::PatternAtom> psi_body_;
  std::vector<ir::TermId> theta_head_;
  std::vector<ir::TermAtom> theta_body_;
  ir::DenseBinding binding_{0};
  std::vector<std::int32_t> trail_;
  std::vector<bool> mapped_;
  std::vector<int> candidates_;
};

}  // namespace

std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& psi, const ConjunctiveQuery& theta,
    const CqMappingOptions& options) {
  if (options.use_ir) {
    IrMappingSearch search(psi, theta);
    return search.Run();
  }
  MappingSearch search(psi, theta);
  return search.Run();
}

bool IsCqContained(const ConjunctiveQuery& theta, const ConjunctiveQuery& psi,
                   const CqMappingOptions& options) {
  return FindContainmentMapping(psi, theta, options).has_value();
}

bool IsUcqContained(const UnionOfCqs& phi, const UnionOfCqs& psi,
                    const CqMappingOptions& options) {
  for (const ConjunctiveQuery& disjunct : phi.disjuncts()) {
    bool contained = false;
    for (const ConjunctiveQuery& target : psi.disjuncts()) {
      if (IsCqContained(disjunct, target, options)) {
        contained = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return true;
}

bool IsUcqEquivalent(const UnionOfCqs& phi, const UnionOfCqs& psi,
                     const CqMappingOptions& options) {
  return IsUcqContained(phi, psi, options) && IsUcqContained(psi, phi, options);
}

UnionOfCqs RemoveRedundantDisjuncts(const UnionOfCqs& ucq,
                                    const CqMappingOptions& options) {
  std::vector<ConjunctiveQuery> kept;
  for (const ConjunctiveQuery& candidate : ucq.disjuncts()) {
    bool redundant = false;
    for (const ConjunctiveQuery& existing : kept) {
      if (IsCqContained(candidate, existing, options)) {
        redundant = true;
        break;
      }
    }
    if (redundant) continue;
    // Drop previously kept disjuncts subsumed by the new one.
    std::vector<ConjunctiveQuery> next;
    for (ConjunctiveQuery& existing : kept) {
      if (!IsCqContained(existing, candidate, options)) {
        next.push_back(std::move(existing));
      }
    }
    next.push_back(candidate);
    kept = std::move(next);
  }
  return UnionOfCqs(std::move(kept));
}

}  // namespace datalog
