#include "src/cq/containment.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/util/logging.h"

namespace datalog {
namespace {

// Backtracking search state for a containment mapping from psi to theta.
class MappingSearch {
 public:
  MappingSearch(const ConjunctiveQuery& psi, const ConjunctiveQuery& theta)
      : psi_(psi), theta_(theta) {}

  std::optional<Substitution> Run() {
    if (psi_.arity() != theta_.arity()) return std::nullopt;
    // Seed the mapping from the head argument vectors: h must send psi's
    // i-th head term to theta's i-th head term.
    for (std::size_t i = 0; i < psi_.arity(); ++i) {
      if (!UnifyTerm(psi_.head_args()[i], theta_.head_args()[i])) {
        return std::nullopt;
      }
    }
    mapped_.assign(psi_.body().size(), false);
    // Candidate targets per psi atom: theta atoms sharing predicate and
    // arity (an upper bound on how many ways the atom can map).
    candidates_.assign(psi_.body().size(), 0);
    for (std::size_t i = 0; i < psi_.body().size(); ++i) {
      const Atom& from = psi_.body()[i];
      for (const Atom& to : theta_.body()) {
        if (from.predicate() == to.predicate() &&
            from.arity() == to.arity()) {
          ++candidates_[i];
        }
      }
    }
    if (!Search(psi_.body().size())) return std::nullopt;
    return binding_;
  }

 private:
  // Tries to extend the mapping with psi-term -> theta-term.
  bool UnifyTerm(const Term& from, const Term& to) {
    if (from.is_constant()) {
      // Constants map to themselves (Remark 5.14).
      return to.is_constant() && to.name() == from.name();
    }
    auto it = binding_.find(from.name());
    if (it != binding_.end()) return it->second == to;
    binding_.emplace(from.name(), to);
    trail_.push_back(from.name());
    return true;
  }

  std::size_t TrailMark() const { return trail_.size(); }

  void UndoTo(std::size_t mark) {
    while (trail_.size() > mark) {
      binding_.erase(trail_.back());
      trail_.pop_back();
    }
  }

  bool UnifyAtom(const Atom& from, const Atom& to) {
    if (from.predicate() != to.predicate() || from.arity() != to.arity()) {
      return false;
    }
    std::size_t mark = TrailMark();
    for (std::size_t i = 0; i < from.arity(); ++i) {
      if (!UnifyTerm(from.args()[i], to.args()[i])) {
        UndoTo(mark);
        return false;
      }
    }
    return true;
  }

  // Picks the unmapped psi atom with the most already-bound variables
  // (most-constrained-first), breaking ties toward fewer candidate
  // targets (theta atoms with matching predicate and arity).
  std::size_t PickNextAtom() const {
    std::size_t best = psi_.body().size();
    int best_bound = -1;
    int best_candidates = 0;
    for (std::size_t i = 0; i < psi_.body().size(); ++i) {
      if (mapped_[i]) continue;
      int bound = 0;
      for (const Term& t : psi_.body()[i].args()) {
        if (t.is_constant() || binding_.count(t.name()) > 0) ++bound;
      }
      if (bound > best_bound ||
          (bound == best_bound && candidates_[i] < best_candidates)) {
        best_bound = bound;
        best_candidates = candidates_[i];
        best = i;
      }
    }
    return best;
  }

  bool Search(std::size_t remaining) {
    if (remaining == 0) return true;
    std::size_t index = PickNextAtom();
    DATALOG_CHECK_LT(index, psi_.body().size());
    mapped_[index] = true;
    const Atom& from = psi_.body()[index];
    for (const Atom& to : theta_.body()) {
      std::size_t mark = TrailMark();
      if (UnifyAtom(from, to)) {
        if (Search(remaining - 1)) return true;
        UndoTo(mark);
      }
    }
    mapped_[index] = false;
    return false;
  }

  const ConjunctiveQuery& psi_;
  const ConjunctiveQuery& theta_;
  Substitution binding_;
  std::vector<std::string> trail_;
  std::vector<bool> mapped_;
  std::vector<int> candidates_;
};

}  // namespace

std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& psi, const ConjunctiveQuery& theta) {
  MappingSearch search(psi, theta);
  return search.Run();
}

bool IsCqContained(const ConjunctiveQuery& theta,
                   const ConjunctiveQuery& psi) {
  return FindContainmentMapping(psi, theta).has_value();
}

bool IsUcqContained(const UnionOfCqs& phi, const UnionOfCqs& psi) {
  for (const ConjunctiveQuery& disjunct : phi.disjuncts()) {
    bool contained = false;
    for (const ConjunctiveQuery& target : psi.disjuncts()) {
      if (IsCqContained(disjunct, target)) {
        contained = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return true;
}

bool IsUcqEquivalent(const UnionOfCqs& phi, const UnionOfCqs& psi) {
  return IsUcqContained(phi, psi) && IsUcqContained(psi, phi);
}

UnionOfCqs RemoveRedundantDisjuncts(const UnionOfCqs& ucq) {
  std::vector<ConjunctiveQuery> kept;
  for (const ConjunctiveQuery& candidate : ucq.disjuncts()) {
    bool redundant = false;
    for (const ConjunctiveQuery& existing : kept) {
      if (IsCqContained(candidate, existing)) {
        redundant = true;
        break;
      }
    }
    if (redundant) continue;
    // Drop previously kept disjuncts subsumed by the new one.
    std::vector<ConjunctiveQuery> next;
    for (ConjunctiveQuery& existing : kept) {
      if (!IsCqContained(existing, candidate)) {
        next.push_back(std::move(existing));
      }
    }
    next.push_back(candidate);
    kept = std::move(next);
  }
  return UnionOfCqs(std::move(kept));
}

}  // namespace datalog
