#include "src/cq/canonical_db.h"

#include "src/util/strings.h"

namespace datalog {

std::string FrozenConstantName(const std::string& name) {
  return StrCat("@", name);
}

CanonicalDatabase FreezeCq(const ConjunctiveQuery& cq) {
  Substitution freeze;
  for (const std::string& v : cq.VariableNames()) {
    freeze.emplace(v, Term::Constant(FrozenConstantName(v)));
  }
  CanonicalDatabase db;
  db.facts.reserve(cq.body().size());
  for (const Atom& atom : cq.body()) {
    db.facts.push_back(ApplySubstitution(freeze, atom));
  }
  db.goal_tuple.reserve(cq.head_args().size());
  for (const Term& t : cq.head_args()) {
    db.goal_tuple.push_back(ApplySubstitution(freeze, t));
  }
  return db;
}

}  // namespace datalog
