#include "src/cq/canonical_db.h"

#include "src/util/strings.h"

namespace datalog {

std::string FrozenConstantName(const std::string& name) {
  return StrCat("@", name);
}

CanonicalDatabase FreezeCq(const ConjunctiveQuery& cq) {
  Substitution freeze;
  for (const std::string& v : cq.VariableNames()) {
    freeze.emplace(v, Term::Constant(FrozenConstantName(v)));
  }
  CanonicalDatabase db;
  db.facts.reserve(cq.body().size());
  for (const Atom& atom : cq.body()) {
    db.facts.push_back(ApplySubstitution(freeze, atom));
  }
  db.goal_tuple.reserve(cq.head_args().size());
  for (const Term& t : cq.head_args()) {
    db.goal_tuple.push_back(ApplySubstitution(freeze, t));
  }
  return db;
}

Tuple FreezeDisjunctIntoDatabase(const ir::ProgramIr& ir, std::size_t index,
                                 Database* db) {
  const ir::DisjunctSpan& disjunct = ir.disjunct(index);
  // IR id -> engine id memos, filled on first occurrence so every name
  // is hashed into the engine dictionaries exactly once and the id
  // assignment order matches the per-occurrence Term arm.
  std::vector<PredicateId> predicate_ids(ir.predicates().size(),
                                         kNoPredicate);
  std::vector<int> constant_ids(ir.constants().size(), -1);
  std::vector<int> variable_ids(ir.variables().size(), -1);
  auto engine_id = [&](ir::TermId term) {
    if (term.is_variable()) {
      int& id = variable_ids[term.index()];
      if (id < 0) {
        id = db->dictionary().Intern(
            FrozenConstantName(ir.variables().name(term.index())));
      }
      return id;
    }
    int& id = constant_ids[term.index()];
    if (id < 0) id = db->dictionary().Intern(ir.constants().name(term.index()));
    return id;
  };
  Tuple tuple;
  for (std::uint32_t a = disjunct.body_begin; a < disjunct.body_end; ++a) {
    const ir::AtomSpan& atom = ir.atom(a);
    PredicateId& predicate = predicate_ids[atom.predicate];
    if (predicate == kNoPredicate) {
      predicate = db->InternPredicate(ir.predicates().name(atom.predicate),
                                      atom.arity());
    }
    const ir::TermId* args = ir.args(atom);
    tuple.clear();
    tuple.reserve(atom.arity());
    for (std::uint32_t i = 0; i < atom.arity(); ++i) {
      tuple.push_back(engine_id(args[i]));
    }
    db->AddTupleById(predicate, tuple);
  }
  Tuple goal;
  goal.reserve(disjunct.head_args_end - disjunct.head_args_begin);
  const ir::TermId* head = ir.term_range(disjunct.head_args_begin);
  for (std::uint32_t i = 0;
       i < disjunct.head_args_end - disjunct.head_args_begin; ++i) {
    goal.push_back(engine_id(head[i]));
  }
  return goal;
}

}  // namespace datalog
