#include "src/cq/minimize.h"

#include <vector>

#include "src/cq/containment.h"

namespace datalog {

ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& cq,
                            const CqMappingOptions& options) {
  std::vector<Atom> body = cq.body();
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < body.size(); ++i) {
      std::vector<Atom> without;
      without.reserve(body.size() - 1);
      for (std::size_t j = 0; j < body.size(); ++j) {
        if (j != i) without.push_back(body[j]);
      }
      ConjunctiveQuery candidate(cq.head_args(), without);
      ConjunctiveQuery current(cq.head_args(), body);
      // `candidate` has a subset of atoms, so current ⊆ candidate holds
      // trivially; they are equivalent iff candidate ⊆ current, i.e. iff
      // there is a containment mapping from current to candidate.
      if (FindContainmentMapping(current, candidate, options).has_value()) {
        body = std::move(without);
        changed = true;
        break;
      }
    }
  }
  return ConjunctiveQuery(cq.head_args(), std::move(body));
}

UnionOfCqs MinimizeUcq(const UnionOfCqs& ucq,
                       const CqMappingOptions& options) {
  UnionOfCqs minimized;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    minimized.Add(MinimizeCq(cq, options));
  }
  return RemoveRedundantDisjuncts(minimized, options);
}

}  // namespace datalog
