// Conjunctive-query containment via containment mappings
// (paper Definition 2.1, Theorems 2.2 and 2.3), generalized to allow
// constants (Remark 5.14) and head argument vectors with repeated
// variables or constants.
//
// Direction convention, matching the paper: a containment mapping *from ψ
// to θ* witnesses θ ⊆ ψ.
#ifndef DATALOG_EQ_SRC_CQ_CONTAINMENT_H_
#define DATALOG_EQ_SRC_CQ_CONTAINMENT_H_

#include <optional>

#include "src/cq/cq.h"

namespace datalog {

/// Ablation switch for the homomorphism search substrate.
struct CqMappingOptions {
  /// Run the search on the shared interned IR (src/ir/ir.h): variables
  /// become dense frame-local ids, constants shared dictionary ids, the
  /// working substitution a dense vector of ir::TermIds, and every
  /// unification an integer compare. The string-based search is kept as
  /// the ablation baseline; both substrates explore candidates in the
  /// same order and return identical mappings (tests/cq_containment_test
  /// and tests/decider_intern_test differential suites).
  bool use_ir = true;
};

/// Searches for a containment mapping from `psi` to `theta`: a renaming h
/// of psi's variables such that h(psi.head_args) == theta.head_args
/// pointwise and every h-image of a psi body atom occurs among theta's
/// body atoms. Returns the mapping (variable name -> term of theta) or
/// nullopt. Queries must have equal arity.
std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& psi, const ConjunctiveQuery& theta,
    const CqMappingOptions& options = CqMappingOptions());

/// θ ⊆ ψ (Theorem 2.2): true iff a containment mapping from psi to theta
/// exists.
bool IsCqContained(const ConjunctiveQuery& theta, const ConjunctiveQuery& psi,
                   const CqMappingOptions& options = CqMappingOptions());

/// Φ ⊆ Ψ for unions (Sagiv–Yannakakis, Theorem 2.3): every disjunct of phi
/// must be contained in some disjunct of psi.
bool IsUcqContained(const UnionOfCqs& phi, const UnionOfCqs& psi,
                    const CqMappingOptions& options = CqMappingOptions());

/// Φ ≡ Ψ.
bool IsUcqEquivalent(const UnionOfCqs& phi, const UnionOfCqs& psi,
                     const CqMappingOptions& options = CqMappingOptions());

/// Removes disjuncts contained in another disjunct (keeps a minimal
/// equivalent union; among mutually equivalent disjuncts the first is
/// kept).
UnionOfCqs RemoveRedundantDisjuncts(
    const UnionOfCqs& ucq,
    const CqMappingOptions& options = CqMappingOptions());

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CQ_CONTAINMENT_H_
