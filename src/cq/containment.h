// Conjunctive-query containment via containment mappings
// (paper Definition 2.1, Theorems 2.2 and 2.3), generalized to allow
// constants (Remark 5.14) and head argument vectors with repeated
// variables or constants.
//
// Direction convention, matching the paper: a containment mapping *from ψ
// to θ* witnesses θ ⊆ ψ.
#ifndef DATALOG_EQ_SRC_CQ_CONTAINMENT_H_
#define DATALOG_EQ_SRC_CQ_CONTAINMENT_H_

#include <optional>

#include "src/cq/cq.h"

namespace datalog {

/// Searches for a containment mapping from `psi` to `theta`: a renaming h
/// of psi's variables such that h(psi.head_args) == theta.head_args
/// pointwise and every h-image of a psi body atom occurs among theta's
/// body atoms. Returns the mapping (variable name -> term of theta) or
/// nullopt. Queries must have equal arity.
std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& psi, const ConjunctiveQuery& theta);

/// θ ⊆ ψ (Theorem 2.2): true iff a containment mapping from psi to theta
/// exists.
bool IsCqContained(const ConjunctiveQuery& theta, const ConjunctiveQuery& psi);

/// Φ ⊆ Ψ for unions (Sagiv–Yannakakis, Theorem 2.3): every disjunct of phi
/// must be contained in some disjunct of psi.
bool IsUcqContained(const UnionOfCqs& phi, const UnionOfCqs& psi);

/// Φ ≡ Ψ.
bool IsUcqEquivalent(const UnionOfCqs& phi, const UnionOfCqs& psi);

/// Removes disjuncts contained in another disjunct (keeps a minimal
/// equivalent union; among mutually equivalent disjuncts the first is
/// kept).
UnionOfCqs RemoveRedundantDisjuncts(const UnionOfCqs& ucq);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CQ_CONTAINMENT_H_
