// Canonical ("frozen") databases of conjunctive queries, the classic tool
// for deciding containment of a CQ in a Datalog program [CK86]: freeze the
// CQ's variables into fresh constants, evaluate the program on the frozen
// body, and test whether the frozen head tuple is derived.
#ifndef DATALOG_EQ_SRC_CQ_CANONICAL_DB_H_
#define DATALOG_EQ_SRC_CQ_CANONICAL_DB_H_

#include <string>
#include <vector>

#include "src/cq/cq.h"

namespace datalog {

struct CanonicalDatabase {
  /// The frozen body atoms: all arguments are constants.
  std::vector<Atom> facts;
  /// The frozen head argument tuple (constants).
  std::vector<Term> goal_tuple;
};

/// Freezes `cq`, mapping each variable v to the fresh constant "@v". The
/// '@' prefix cannot be produced by the parser, so frozen constants never
/// collide with constants already present in the query.
CanonicalDatabase FreezeCq(const ConjunctiveQuery& cq);

/// The frozen-constant spelling for variable `name`.
std::string FrozenConstantName(const std::string& name);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CQ_CANONICAL_DB_H_
