// Canonical ("frozen") databases of conjunctive queries, the classic tool
// for deciding containment of a CQ in a Datalog program [CK86]: freeze the
// CQ's variables into fresh constants, evaluate the program on the frozen
// body, and test whether the frozen head tuple is derived.
//
// Two renderings of the freeze are provided:
//
// * FreezeCq — the Term-level arm: builds frozen Atoms ("@v" constants)
//   that the caller feeds through Database::AddFactAtom, paying a string
//   hash per argument occurrence. Kept as the ablation baseline.
// * FreezeDisjunctIntoDatabase — the IR arm (default in
//   src/containment/ucq_in_datalog.cc): a dictionary handoff from a
//   ProgramIr straight into the engine's dictionary encoding. Each
//   distinct predicate/constant/variable name crosses the string boundary
//   once (memoized id→id), every further occurrence is an integer copy,
//   and facts land as already-encoded tuples — no string round-trip on
//   the hot path. Both arms produce identical databases, fact for fact
//   and id for id (tests/canonical_db_test.cc).
#ifndef DATALOG_EQ_SRC_CQ_CANONICAL_DB_H_
#define DATALOG_EQ_SRC_CQ_CANONICAL_DB_H_

#include <string>
#include <vector>

#include "src/cq/cq.h"
#include "src/engine/database.h"
#include "src/ir/ir.h"

namespace datalog {

struct CanonicalDatabase {
  /// The frozen body atoms: all arguments are constants.
  std::vector<Atom> facts;
  /// The frozen head argument tuple (constants).
  std::vector<Term> goal_tuple;
};

/// Freezes `cq`, mapping each variable v to the fresh constant "@v". The
/// '@' prefix cannot be produced by the parser, so frozen constants never
/// collide with constants already present in the query.
CanonicalDatabase FreezeCq(const ConjunctiveQuery& cq);

/// The frozen-constant spelling for variable `name`.
std::string FrozenConstantName(const std::string& name);

/// Freezes disjunct `index` of `ir` (typically a union's carried IR; see
/// ir::CarriedIr) directly into `db`'s dictionary encoding and inserts
/// the frozen body facts. Returns the frozen head tuple as constant ids
/// of `db`'s dictionary — head-only variables are interned here but no
/// fact is added for them (the caller records them in its active-domain
/// relation, mirroring the Term-level arm).
///
/// Names are interned into `db` lazily in first-occurrence order — the
/// exact order the FreezeCq + AddFactAtom arm produces — so the two arms
/// assign identical ids and the downstream verdicts are byte-identical.
Tuple FreezeDisjunctIntoDatabase(const ir::ProgramIr& ir, std::size_t index,
                                 Database* db);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CQ_CANONICAL_DB_H_
