#include "src/engine/eval.h"

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// A body atom compiled against the dictionary: each argument is either a
// constant id (>= 0 in `constant`) or a variable slot (index into the
// binding array, in `variable`).
struct CompiledAtom {
  std::string predicate;
  std::size_t arity;
  std::vector<int> constant;  // -1 when the position holds a variable
  std::vector<int> variable;  // -1 when the position holds a constant
};

struct CompiledRule {
  std::string head_predicate;
  std::vector<int> head_constant;  // parallel to head args, -1 for variables
  std::vector<int> head_variable;
  std::vector<CompiledAtom> body;
  std::size_t num_variables = 0;
  // Variable slots appearing in the head but in no body atom (unsafe).
  std::vector<int> unbound_head_variables;
};

constexpr int kUnbound = -1;

class RuleCompiler {
 public:
  explicit RuleCompiler(ConstantDictionary* dictionary)
      : dictionary_(dictionary) {}

  CompiledRule Compile(const Rule& rule) {
    CompiledRule compiled;
    slots_.clear();
    compiled.head_predicate = rule.head().predicate();
    std::vector<bool> in_body;
    for (const Atom& atom : rule.body()) {
      compiled.body.push_back(CompileAtom(atom));
    }
    std::size_t body_variables = slots_.size();
    CompileHead(rule.head(), &compiled);
    compiled.num_variables = slots_.size();
    for (int v : compiled.head_variable) {
      if (v >= 0 && static_cast<std::size_t>(v) >= body_variables) {
        compiled.unbound_head_variables.push_back(v);
      }
    }
    return compiled;
  }

 private:
  int SlotFor(const std::string& variable) {
    auto [it, inserted] =
        slots_.emplace(variable, static_cast<int>(slots_.size()));
    return it->second;
  }

  CompiledAtom CompileAtom(const Atom& atom) {
    CompiledAtom compiled;
    compiled.predicate = atom.predicate();
    compiled.arity = atom.arity();
    for (const Term& t : atom.args()) {
      if (t.is_constant()) {
        compiled.constant.push_back(dictionary_->Intern(t.name()));
        compiled.variable.push_back(-1);
      } else {
        compiled.constant.push_back(-1);
        compiled.variable.push_back(SlotFor(t.name()));
      }
    }
    return compiled;
  }

  void CompileHead(const Atom& head, CompiledRule* compiled) {
    for (const Term& t : head.args()) {
      if (t.is_constant()) {
        compiled->head_constant.push_back(dictionary_->Intern(t.name()));
        compiled->head_variable.push_back(-1);
      } else {
        compiled->head_constant.push_back(-1);
        compiled->head_variable.push_back(SlotFor(t.name()));
      }
    }
  }

  ConstantDictionary* dictionary_;
  std::unordered_map<std::string, int> slots_;
};

// Evaluates rule bodies against a database, with one body atom optionally
// restricted to a delta relation (semi-naive evaluation).
class Evaluator {
 public:
  Evaluator(const Program& program, const Database& edb,
            const EvalOptions& options, EvalStats* stats)
      : options_(options), stats_(stats), db_(edb) {
    RuleCompiler compiler(&db_.dictionary());
    for (const Rule& rule : program.rules()) {
      rules_.push_back(compiler.Compile(rule));
    }
    active_domain_ = db_.ActiveDomain();
    // Constants mentioned only in the program are part of the domain too.
    for (const CompiledRule& rule : rules_) {
      for (int c : rule.head_constant) {
        if (c >= 0) InsertDomain(c);
      }
      for (const CompiledAtom& atom : rule.body) {
        for (int c : atom.constant) {
          if (c >= 0) InsertDomain(c);
        }
      }
    }
  }

  StatusOr<Database> Run() {
    if (options_.semi_naive) {
      Status s = RunSemiNaive();
      if (!s.ok()) return s;
    } else {
      Status s = RunNaive();
      if (!s.ok()) return s;
    }
    return std::move(db_);
  }

 private:
  void InsertDomain(int id) {
    for (int existing : active_domain_) {
      if (existing == id) return;
    }
    active_domain_.push_back(id);
  }

  // Matches body atoms [index..] given the current binding; on a complete
  // match, emits head tuples (enumerating the active domain for unsafe
  // head variables). `delta_atom` designates the atom that must match the
  // delta relation, or -1 for none.
  bool MatchBody(const CompiledRule& rule, std::size_t index, int delta_atom,
                 const std::map<std::string, Relation>& delta,
                 std::vector<int>* binding, Relation* out) {
    if (index == rule.body.size()) {
      return EmitHead(rule, 0, binding, out);
    }
    const CompiledAtom& atom = rule.body[index];
    const Relation* relation;
    if (static_cast<int>(index) == delta_atom) {
      auto it = delta.find(atom.predicate);
      if (it == delta.end()) return true;  // empty delta: no matches
      relation = &it->second;
    } else {
      relation = &db_.GetRelation(atom.predicate, atom.arity);
    }
    for (const Tuple& tuple : relation->tuples()) {
      if (stats_ != nullptr) ++stats_->join_probes;
      // Try to unify the atom with the tuple under the current binding.
      std::vector<int> undo;
      bool ok = true;
      for (std::size_t i = 0; i < atom.arity; ++i) {
        if (atom.constant[i] >= 0) {
          if (atom.constant[i] != tuple[i]) {
            ok = false;
            break;
          }
          continue;
        }
        int slot = atom.variable[i];
        if ((*binding)[slot] == kUnbound) {
          (*binding)[slot] = tuple[i];
          undo.push_back(slot);
        } else if ((*binding)[slot] != tuple[i]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        if (!MatchBody(rule, index + 1, delta_atom, delta, binding, out)) {
          return false;
        }
      }
      for (int slot : undo) (*binding)[slot] = kUnbound;
    }
    return true;
  }

  // Emits head tuples, enumerating active-domain values for unbound head
  // variables starting at position `unbound_index` in
  // rule.unbound_head_variables. Returns false when the fact limit is hit.
  bool EmitHead(const CompiledRule& rule, std::size_t unbound_index,
                std::vector<int>* binding, Relation* out) {
    if (unbound_index < rule.unbound_head_variables.size()) {
      int slot = rule.unbound_head_variables[unbound_index];
      if ((*binding)[slot] != kUnbound) {
        return EmitHead(rule, unbound_index + 1, binding, out);
      }
      for (int value : active_domain_) {
        (*binding)[slot] = value;
        if (!EmitHead(rule, unbound_index + 1, binding, out)) {
          (*binding)[slot] = kUnbound;
          return false;
        }
      }
      (*binding)[slot] = kUnbound;
      return true;
    }
    Tuple head(rule.head_constant.size());
    for (std::size_t i = 0; i < head.size(); ++i) {
      if (rule.head_constant[i] >= 0) {
        head[i] = rule.head_constant[i];
      } else {
        int value = (*binding)[rule.head_variable[i]];
        DATALOG_CHECK_NE(value, kUnbound);
        head[i] = value;
      }
    }
    out->Insert(std::move(head));
    ++emitted_;
    return emitted_ <= options_.max_derived_facts;
  }

  // Evaluates `rule` and inserts newly derived facts into `new_facts`,
  // considering only matches that use `delta` at `delta_atom` (or all
  // matches when delta_atom == -1).
  Status EvaluateRule(const CompiledRule& rule, int delta_atom,
                      const std::map<std::string, Relation>& delta,
                      std::map<std::string, Relation>* new_facts) {
    Relation derived(rule.head_constant.size());
    std::vector<int> binding(rule.num_variables, kUnbound);
    if (!MatchBody(rule, 0, delta_atom, delta, &binding, &derived)) {
      return ResourceExhaustedError(
          StrCat("evaluation exceeded ", options_.max_derived_facts,
                 " derived facts"));
    }
    const Relation& existing =
        db_.GetRelation(rule.head_predicate, derived.arity());
    for (const Tuple& tuple : derived.tuples()) {
      if (existing.Contains(tuple)) continue;
      auto it = new_facts->find(rule.head_predicate);
      if (it == new_facts->end()) {
        it = new_facts->emplace(rule.head_predicate, Relation(derived.arity()))
                 .first;
      }
      it->second.Insert(tuple);
    }
    return OkStatus();
  }

  Status ApplyNewFacts(const std::map<std::string, Relation>& new_facts) {
    for (const auto& [predicate, relation] : new_facts) {
      for (const Tuple& tuple : relation.tuples()) {
        db_.AddTuple(predicate, tuple);
        if (stats_ != nullptr) ++stats_->facts_derived;
      }
    }
    return OkStatus();
  }

  Status RunNaive() {
    const std::map<std::string, Relation> no_delta;
    while (true) {
      if (stats_ != nullptr) ++stats_->iterations;
      std::map<std::string, Relation> new_facts;
      for (const CompiledRule& rule : rules_) {
        Status s = EvaluateRule(rule, -1, no_delta, &new_facts);
        if (!s.ok()) return s;
      }
      if (new_facts.empty()) return OkStatus();
      Status s = ApplyNewFacts(new_facts);
      if (!s.ok()) return s;
    }
  }

  Status RunSemiNaive() {
    // Round 0: full naive pass to seed the deltas.
    const std::map<std::string, Relation> no_delta;
    std::map<std::string, Relation> delta;
    if (stats_ != nullptr) ++stats_->iterations;
    for (const CompiledRule& rule : rules_) {
      Status s = EvaluateRule(rule, -1, no_delta, &delta);
      if (!s.ok()) return s;
    }
    Status s = ApplyNewFacts(delta);
    if (!s.ok()) return s;

    while (!delta.empty()) {
      if (stats_ != nullptr) ++stats_->iterations;
      std::map<std::string, Relation> next_delta;
      for (const CompiledRule& rule : rules_) {
        for (std::size_t i = 0; i < rule.body.size(); ++i) {
          if (delta.count(rule.body[i].predicate) == 0) continue;
          Status rs = EvaluateRule(rule, static_cast<int>(i), delta,
                                   &next_delta);
          if (!rs.ok()) return rs;
        }
      }
      s = ApplyNewFacts(next_delta);
      if (!s.ok()) return s;
      delta = std::move(next_delta);
    }
    return OkStatus();
  }

  const EvalOptions& options_;
  EvalStats* stats_;
  Database db_;
  std::vector<CompiledRule> rules_;
  std::vector<int> active_domain_;
  std::size_t emitted_ = 0;
};

}  // namespace

StatusOr<Database> EvaluateProgram(const Program& program, const Database& edb,
                                   const EvalOptions& options,
                                   EvalStats* stats) {
  Evaluator evaluator(program, edb, options, stats);
  return evaluator.Run();
}

StatusOr<Relation> EvaluateGoal(const Program& program,
                                const std::string& goal_predicate,
                                const Database& edb,
                                const EvalOptions& options, EvalStats* stats) {
  StatusOr<Database> result = EvaluateProgram(program, edb, options, stats);
  if (!result.ok()) return result.status();
  std::size_t arity = program.PredicateArity(goal_predicate);
  return result->GetRelation(goal_predicate, arity);
}

StatusOr<Relation> EvaluateUcq(const UnionOfCqs& ucq, const Database& edb) {
  DATALOG_CHECK(!ucq.empty()) << "cannot evaluate an empty union";
  const std::string goal = "__ucq_goal";
  Program program;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    program.AddRule(RuleFromCq(goal, cq));
  }
  return EvaluateGoal(program, goal, edb);
}

}  // namespace datalog
