#include "src/engine/eval.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/analysis/stratify.h"
#include "src/engine/index.h"
#include "src/util/hash.h"
#include "src/util/logging.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace datalog {
namespace {

// A body atom compiled against the dictionaries: the predicate is a dense
// id, and each argument is either a constant id (>= 0 in `constant`) or a
// variable slot (index into the binding array, in `variable`).
struct CompiledAtom {
  PredicateId predicate;
  std::size_t arity;
  std::vector<int> constant;  // -1 when the position holds a variable
  std::vector<int> variable;  // -1 when the position holds a constant
};

// One position of a join plan: which body atom runs at this step, and the
// column patterns its index probe uses. `key_mask` marks columns holding
// constants or variables bound by earlier steps (static per plan: the
// set of bound variables at each step depends only on the order).
// `distinct_mask` marks columns binding new variables that stay relevant
// downstream (used later in the plan, emitted by the head, or repeated
// within the atom); columns outside both masks bind dead variables, and
// `project` says some exist — rows then collapse to one representative
// per (key, distinct) projection inside the index (a projection pushed
// into the join). `index` is resolved when the plan is built and caught
// up on every use (cached plans refresh it before each stamp).
struct JoinStep {
  std::size_t atom = 0;
  std::uint32_t key_mask = 0;
  std::uint32_t distinct_mask = 0;
  bool project = false;
  const ColumnIndex* index = nullptr;
};

// A compiled join plan cached for one (rule, delta position), plus the
// size watermark of every participating relation at build time. The
// plan stays valid while no participating relation has more than
// doubled past its watermark — cardinality estimates from before such
// growth are still within 2x, and the 2x threshold makes rebuilds
// logarithmic in a relation's final size (plans_rebuilt stays flat
// while plans_cached grows round over round).
struct CachedPlan {
  bool valid = false;
  std::vector<JoinStep> steps;
  std::vector<std::pair<PredicateId, std::size_t>> watermarks;
};

struct CompiledRule {
  PredicateId head_predicate;
  std::vector<int> head_constant;  // parallel to head args, -1 for variables
  std::vector<int> head_variable;
  std::vector<CompiledAtom> body;
  std::size_t num_variables = 0;
  // Variable slots appearing in the head but in no body atom (unsafe).
  std::vector<int> unbound_head_variables;
  // Slots appearing anywhere in the head (constants excluded).
  std::vector<char> in_head;
  // Plan cache, one slot per delta position: plans[0] is the full
  // (no-delta) plan, plans[i + 1] the plan with body atom i as the
  // delta. Only used with EvalOptions::cost_based (see PlanFor).
  std::vector<CachedPlan> plans;
};

constexpr int kUnbound = -1;

// Staging shards per parallel round when EvalOptions::num_shards is 0.
// Fixed (not derived from the thread count) so the merged row order —
// and therefore the whole result database — is identical for every
// parallel thread count; see "Parallel evaluation" in docs/engine.md.
constexpr std::size_t kDefaultShards = 64;

class RuleCompiler {
 public:
  explicit RuleCompiler(Database* db) : db_(db) {}

  CompiledRule Compile(const Rule& rule) {
    CompiledRule compiled;
    slots_.clear();
    compiled.head_predicate =
        db_->InternPredicate(rule.head().predicate(), rule.head().arity());
    for (const Atom& atom : rule.body()) {
      compiled.body.push_back(CompileAtom(atom));
    }
    std::size_t body_variables = slots_.size();
    CompileHead(rule.head(), &compiled);
    compiled.num_variables = slots_.size();
    for (int v : compiled.head_variable) {
      if (v >= 0 && static_cast<std::size_t>(v) >= body_variables) {
        compiled.unbound_head_variables.push_back(v);
      }
    }
    compiled.in_head.assign(compiled.num_variables, 0);
    for (int v : compiled.head_variable) {
      if (v >= 0) compiled.in_head[v] = 1;
    }
    compiled.plans.resize(compiled.body.size() + 1);
    return compiled;
  }

 private:
  int SlotFor(const std::string& variable) {
    auto [it, inserted] =
        slots_.emplace(variable, static_cast<int>(slots_.size()));
    return it->second;
  }

  CompiledAtom CompileAtom(const Atom& atom) {
    CompiledAtom compiled;
    compiled.predicate = db_->InternPredicate(atom.predicate(), atom.arity());
    compiled.arity = atom.arity();
    for (const Term& t : atom.args()) {
      if (t.is_constant()) {
        compiled.constant.push_back(db_->dictionary().Intern(t.name()));
        compiled.variable.push_back(-1);
      } else {
        compiled.constant.push_back(-1);
        compiled.variable.push_back(SlotFor(t.name()));
      }
    }
    return compiled;
  }

  void CompileHead(const Atom& head, CompiledRule* compiled) {
    for (const Term& t : head.args()) {
      if (t.is_constant()) {
        compiled->head_constant.push_back(db_->dictionary().Intern(t.name()));
        compiled->head_variable.push_back(-1);
      } else {
        compiled->head_constant.push_back(-1);
        compiled->head_variable.push_back(SlotFor(t.name()));
      }
    }
  }

  Database* db_;
  std::unordered_map<std::string, int> slots_;
};

// The semi-naive delta, represented as a watermark per relation: the
// database's relations are append-only, so "the facts derived in the
// previous round" are exactly the rows with index >= lo. Deltas share
// storage and column indexes with the full relations — a delta probe is
// a full-index probe restricted to the bucket suffix at or past the
// watermark.
struct DeltaWindow {
  explicit DeltaWindow(std::size_t num_predicates) : lo(num_predicates, 0) {}
  std::vector<std::size_t> lo;
};

// Per-task matching state plus the emit sink. The serial engine owns one
// (facts go straight into the database — chaotic iteration); a parallel
// round owns one per task, with derived tuples staged into per-shard
// buffers instead of inserted. Everything a match touches and writes
// lives here, so concurrent tasks share only the frozen database and
// its indexes, read-only.
struct MatchContext {
  // Reusable per-plan-depth probe keys and binding-undo logs, the head
  // construction buffer, and the variable binding — keeps the hot path
  // allocation-free.
  std::vector<Tuple> key;
  std::vector<std::vector<int>> undo;
  Tuple head;
  std::vector<int> binding;
  // Parallel staging: flat [predicate, args...] rows per shard; unused
  // (and empty) in serial mode.
  bool staging = false;
  std::size_t num_shards = 0;
  std::vector<std::vector<int>> shard_rows;
  // Head tuples emitted (duplicates included); matching aborts once it
  // exceeds the budget. The serial context accumulates across the whole
  // run (the pre-parallel behavior); a task context is reset per round
  // with the remaining global budget.
  std::size_t emitted = 0;
  std::size_t emit_budget = 0;
  // Set by a failed governor poll (cancellation, deadline, injected
  // fault) mid-match; a false MatchBody return with this non-OK means
  // "interrupted", not "budget hit". Checked by the serial EvaluateRule
  // and the parallel round's post-fan-out fold, both in deterministic
  // order.
  Status abort_status;
  // Local stats mirrors, folded into EvalStats in a deterministic order
  // (task order) after the work completes.
  std::size_t join_probes = 0;
  std::size_t index_probes = 0;
  std::size_t tuples_staged = 0;
};

// Evaluates rule bodies against a database, with one body atom optionally
// restricted to the delta window (semi-naive evaluation). Joins probe
// per-relation hash column indexes and follow a greedy runtime join
// order; both behaviors degrade to full scans in textual order when the
// corresponding EvalOptions switches are off.
//
// With num_threads == 1 (the default), derived facts are inserted into
// the database immediately (chaotic iteration reaches the same least
// fixpoint as stratified rounds, and saves a staging copy of every
// fact); rows gained mid-round simply fall into the next round's window.
// With more threads, rounds are staged: rules fan out across a worker
// pool against the frozen pre-round database, and a sharded merge phase
// dedups and appends the staged tuples (RunParallel below).
class Evaluator {
 public:
  Evaluator(const Program& program, const Database& edb,
            const EvalOptions& options, EvalStats* stats)
      : options_(options),
        stats_(stats),
        db_(edb),
        governor_(options_.limits, "engine fixpoint") {
    max_facts_ = options_.limits.FactsOr(50'000'000);
    RuleCompiler compiler(&db_);
    for (const Rule& rule : program.rules()) {
      rules_.push_back(compiler.Compile(rule));
    }
    // Rule groups, in evaluation order. With stratification on, the SCC
    // strata of the dependence graph (dependencies first); otherwise one
    // group holding every rule — the unstratified fixpoint.
    if (options_.use_strata) {
      rule_groups_ = StratifyProgram(program).strata;
    } else if (!rules_.empty()) {
      rule_groups_.emplace_back();
      for (std::size_t r = 0; r < rules_.size(); ++r) {
        rule_groups_.back().push_back(r);
      }
    }
    active_domain_ = db_.ActiveDomain();
    domain_set_.insert(active_domain_.begin(), active_domain_.end());
    // Constants mentioned only in the program are part of the domain too.
    for (const CompiledRule& rule : rules_) {
      for (int c : rule.head_constant) {
        if (c >= 0) InsertDomain(c);
      }
      for (const CompiledAtom& atom : rule.body) {
        for (int c : atom.constant) {
          if (c >= 0) InsertDomain(c);
        }
      }
    }
    // All predicates are interned by now; id space is frozen.
    indexes_.resize(db_.predicates().size());
    for (const CompiledRule& rule : rules_) {
      max_body_ = std::max(max_body_, rule.body.size());
    }
    serial_ctx_.key.resize(max_body_);
    serial_ctx_.undo.resize(max_body_);
    serial_ctx_.emit_budget = max_facts_;
  }

  StatusOr<Database> Run() {
    std::size_t threads = ResolvedEvalThreads(options_);
    // One pool for the whole run; each stratum fans its rounds out on it.
    std::optional<ThreadPool> pool;
    if (threads > 1 && !rule_groups_.empty()) pool.emplace(threads);
    Status s = OkStatus();
    for (const std::vector<std::size_t>& group : rule_groups_) {
      if (stats_ != nullptr) ++stats_->strata;
      if (pool.has_value()) {
        s = RunParallel(*pool, group);
      } else {
        s = options_.semi_naive ? RunSemiNaive(group) : RunNaive(group);
      }
      if (!s.ok()) break;
    }
    if (stats_ != nullptr) {
      stats_->join_probes += serial_ctx_.join_probes;
      stats_->index_probes += serial_ctx_.index_probes;
      stats_->index_builds += counters_.index_builds;
      stats_->tuples_indexed += counters_.tuples_indexed;
    }
    if (!s.ok()) return s;
    return std::move(db_);
  }

 private:
  void InsertDomain(int id) {
    if (domain_set_.insert(id).second) active_domain_.push_back(id);
  }

  // Estimated candidate rows if `atom` runs next with the columns in
  // `key_mask` bound: the per-key selectivity of a warm index with that
  // key pattern — current rows over the index's distinct-key estimate —
  // restricted to the delta window for the delta atom. Falls back to
  // the relation size (window size for the delta atom) when nothing is
  // bound, the atom is unindexable, or every matching index is cold.
  // Purely a read: consulting stats never builds or catches up an
  // index.
  std::size_t EstimateCost(const CompiledAtom& atom, std::uint32_t key_mask,
                           bool is_delta, const DeltaWindow* delta) const {
    const Relation& relation = db_.RelationOf(atom.predicate);
    const std::size_t size = relation.GrowthWatermark();
    std::size_t rows = size;
    if (is_delta) {
      rows = size - std::min(size, delta->lo[atom.predicate]);
    }
    if (key_mask == 0 || !options_.use_index || atom.arity == 0 ||
        atom.arity >= 32) {
      return rows;
    }
    const ColumnIndex* index =
        indexes_[atom.predicate].FindForKeyMask(key_mask);
    if (index == nullptr) return rows;
    ColumnIndexStats stats = index->stats();
    if (stats.num_buckets == 0) return rows;
    // num_buckets is the distinct-key estimate; dividing the *current*
    // row count (not rows_bucketed) extrapolates a stale index's
    // selectivity to rows it has not absorbed yet.
    return std::max<std::size_t>(1, rows / stats.num_buckets);
  }

  // Orders each rule body at runtime (sizes and bucket statistics are
  // only known then). Cost-based (the default): repeatedly pick the
  // unplaced atom with the smallest EstimateCost given the variables
  // bound so far, breaking ties toward more bound argument positions,
  // then toward the delta atom (its window only shrinks), then toward
  // textual order — all deterministic. Greedy (cost_based off): most
  // bound argument positions first, ties toward the smaller relation,
  // with the delta atom winning exact ties. With reordering off,
  // textual order is kept. Either way, each step's column patterns are
  // derived afterwards and its index is resolved (and caught up) up
  // front.
  void PlanJoin(const CompiledRule& rule, int delta_atom,
                const DeltaWindow* delta, std::vector<JoinStep>* out) {
    const std::size_t n = rule.body.size();
    std::vector<JoinStep>& plan = *out;
    plan.assign(n, JoinStep());
    std::vector<char>& bound = bound_scratch_;
    bound.assign(rule.num_variables, 0);
    if (!options_.reorder_joins) {
      for (std::size_t i = 0; i < n; ++i) plan[i].atom = i;
    } else if (options_.cost_based) {
      std::vector<char>& placed = placed_scratch_;
      placed.assign(n, 0);
      for (std::size_t step = 0; step < n; ++step) {
        std::size_t best = n;
        std::size_t best_est = 0;
        std::size_t best_bound = 0;
        bool best_is_delta = false;
        for (std::size_t i = 0; i < n; ++i) {
          if (placed[i]) continue;
          const CompiledAtom& atom = rule.body[i];
          std::uint32_t key_mask = 0;
          std::size_t bound_args = 0;
          for (std::size_t pos = 0; pos < atom.arity; ++pos) {
            if (atom.constant[pos] >= 0 || bound[atom.variable[pos]]) {
              if (pos < 32) key_mask |= 1u << pos;
              ++bound_args;
            }
          }
          const bool is_delta = static_cast<int>(i) == delta_atom;
          std::size_t est = EstimateCost(atom, key_mask, is_delta, delta);
          if (best == n || est < best_est ||
              (est == best_est &&
               (bound_args > best_bound ||
                (bound_args == best_bound && is_delta && !best_is_delta)))) {
            best = i;
            best_est = est;
            best_bound = bound_args;
            best_is_delta = is_delta;
          }
        }
        placed[best] = 1;
        plan[step].atom = best;
        if (stats_ != nullptr) stats_->est_cost_total += best_est;
        for (int v : rule.body[best].variable) {
          if (v >= 0) bound[v] = 1;
        }
      }
      bound.assign(rule.num_variables, 0);
    } else {
      std::vector<char>& placed = placed_scratch_;
      placed.assign(n, 0);
      for (std::size_t step = 0; step < n; ++step) {
        std::size_t best = n;
        std::size_t best_bound = 0;
        std::size_t best_size = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (placed[i]) continue;
          const CompiledAtom& atom = rule.body[i];
          std::size_t bound_args = 0;
          for (std::size_t pos = 0; pos < atom.arity; ++pos) {
            if (atom.constant[pos] >= 0 || bound[atom.variable[pos]]) {
              ++bound_args;
            }
          }
          std::size_t size = db_.RelationOf(atom.predicate).size();
          // The delta atom wins ties: its window only shrinks, and
          // scanning it early keeps the growing full relation out of
          // the index entirely.
          std::size_t weight = 2 * size;
          if (static_cast<int>(i) == delta_atom) {
            size -= std::min(size, delta->lo[atom.predicate]);
            weight = 2 * size - 1;
          }
          if (best == n || bound_args > best_bound ||
              (bound_args == best_bound && weight < best_size)) {
            best = i;
            best_bound = bound_args;
            best_size = weight;
          }
        }
        placed[best] = 1;
        plan[step].atom = best;
        for (int v : rule.body[best].variable) {
          if (v >= 0) bound[v] = 1;
        }
      }
      bound.assign(rule.num_variables, 0);
    }

    // Column patterns per step. A new variable is live (distinct-mask)
    // if a later step, the head, or another column of the same atom
    // still needs it; otherwise its column is dead and candidate rows
    // can collapse to representatives.
    std::vector<char>& needed_later = needed_later_scratch_;
    std::vector<char>& occurrences = occurrences_scratch_;
    for (std::size_t step = 0; step < n; ++step) {
      JoinStep& js = plan[step];
      const CompiledAtom& atom = rule.body[js.atom];
      if (atom.arity == 0 || atom.arity >= 32) {
        // Unindexable atom: it still binds its variables, which later
        // steps must treat as live/key (else projection would collapse
        // rows that are not interchangeable).
        for (int v : atom.variable) {
          if (v >= 0) bound[v] = 1;
        }
        continue;
      }
      needed_later.assign(rule.num_variables, 0);
      for (std::size_t later = step + 1; later < n; ++later) {
        for (int v : rule.body[plan[later].atom].variable) {
          if (v >= 0) needed_later[v] = 1;
        }
      }
      occurrences.assign(rule.num_variables, 0);
      for (int v : atom.variable) {
        if (v >= 0 && occurrences[v] < 2) ++occurrences[v];
      }
      for (std::size_t pos = 0; pos < atom.arity; ++pos) {
        int v = atom.variable[pos];
        if (atom.constant[pos] >= 0 || bound[v]) {
          js.key_mask |= 1u << pos;
        } else if (rule.in_head[v] || needed_later[v] ||
                   occurrences[v] > 1) {
          js.distinct_mask |= 1u << pos;
        } else {
          js.project = true;
        }
      }
      if (options_.use_index && (js.key_mask != 0 || js.project)) {
        js.index = &indexes_[atom.predicate].Get(
            db_.RelationOf(atom.predicate), js.key_mask, js.distinct_mask,
            &counters_);
      }
      for (int v : atom.variable) {
        if (v >= 0) bound[v] = 1;
      }
    }
  }

  // Unifies `atom` with a row's column values under the current binding;
  // returns false on mismatch (with any partial bindings recorded on
  // `undo`).
  bool UnifyTuple(const CompiledAtom& atom, const int* tuple,
                  std::vector<int>* binding, std::vector<int>* undo,
                  MatchContext* ctx) {
    ++ctx->join_probes;
    for (std::size_t i = 0; i < atom.arity; ++i) {
      if (atom.constant[i] >= 0) {
        if (atom.constant[i] != tuple[i]) return false;
        continue;
      }
      int slot = atom.variable[i];
      if ((*binding)[slot] == kUnbound) {
        (*binding)[slot] = tuple[i];
        undo->push_back(slot);
      } else if ((*binding)[slot] != tuple[i]) {
        return false;
      }
    }
    return true;
  }

  // Matches plan steps [pos..] given the current binding; on a complete
  // match, emits head tuples (enumerating the active domain for unsafe
  // head variables). `delta_atom` designates the body position that must
  // match the delta window, or -1 for none. Returns false when the
  // emit budget is hit.
  bool MatchBody(const CompiledRule& rule, const std::vector<JoinStep>& plan,
                 std::size_t pos, int delta_atom, const DeltaWindow* delta,
                 MatchContext* ctx) {
    if (pos == plan.size()) {
      return EmitHead(rule, 0, ctx);
    }
    const JoinStep& step = plan[pos];
    const CompiledAtom& atom = rule.body[step.atom];
    const bool is_delta = static_cast<int>(step.atom) == delta_atom;
    const Relation& relation = db_.RelationOf(atom.predicate);
    const std::size_t first_row = is_delta ? delta->lo[atom.predicate] : 0;

    std::vector<int>& binding = ctx->binding;
    std::vector<int>& undo = ctx->undo[pos];
    if (step.index != nullptr) {
      Tuple& key = ctx->key[pos];
      key.clear();
      for (std::size_t i = 0; i < atom.arity; ++i) {
        if ((step.key_mask & (1u << i)) == 0) continue;
        key.push_back(atom.constant[i] >= 0 ? atom.constant[i]
                                            : binding[atom.variable[i]]);
      }
      ++ctx->index_probes;
      ColumnIndex::BucketView bucket = step.index->Probe(key);
      if (bucket.empty()) return true;  // no candidate rows
      // Bucket row indexes ascend, so a delta probe skips ahead to the
      // watermark (chunks below it are stepped over unread; hub buckets
      // binary-search their chunk directory).
      ColumnIndex::BucketView::Iterator it = bucket.begin();
      if (first_row != 0) {
        it.SkipBelow(static_cast<std::uint32_t>(first_row));
      }
      for (; !it.done(); it.Next()) {
        undo.clear();
        if (UnifyTuple(atom, relation.RowData(it.row()), &binding, &undo,
                       ctx)) {
          if (!MatchBody(rule, plan, pos + 1, delta_atom, delta, ctx)) {
            return false;
          }
        }
        for (int slot : undo) binding[slot] = kUnbound;
      }
      return true;
    }
    // Index-free scan: in serial mode relations may gain rows mid-round
    // (facts are inserted as they are derived, and the arena may
    // reallocate), so the row pointer is re-read each iteration and the
    // size re-checked. In parallel rounds the database is frozen, which
    // only makes this loop's bound constant.
    for (std::size_t row = first_row; row < relation.size(); ++row) {
      undo.clear();
      if (UnifyTuple(atom, relation.RowData(row), &binding, &undo, ctx)) {
        if (!MatchBody(rule, plan, pos + 1, delta_atom, delta, ctx)) {
          return false;
        }
      }
      for (int slot : undo) binding[slot] = kUnbound;
    }
    return true;
  }

  // Emits head tuples — straight into the database in serial mode
  // (duplicates suppressed by the relation's hash set), or staged into
  // the context's shard buffer in parallel rounds — enumerating
  // active-domain values for unbound head variables starting at position
  // `unbound_index` in rule.unbound_head_variables. Returns false when
  // the emit budget is hit.
  bool EmitHead(const CompiledRule& rule, std::size_t unbound_index,
                MatchContext* ctx) {
    if (unbound_index < rule.unbound_head_variables.size()) {
      int slot = rule.unbound_head_variables[unbound_index];
      if (ctx->binding[slot] != kUnbound) {
        return EmitHead(rule, unbound_index + 1, ctx);
      }
      for (int value : active_domain_) {
        ctx->binding[slot] = value;
        if (!EmitHead(rule, unbound_index + 1, ctx)) {
          ctx->binding[slot] = kUnbound;
          return false;
        }
      }
      ctx->binding[slot] = kUnbound;
      return true;
    }
    Tuple& head = ctx->head;
    head.resize(rule.head_constant.size());
    for (std::size_t i = 0; i < head.size(); ++i) {
      if (rule.head_constant[i] >= 0) {
        head[i] = rule.head_constant[i];
      } else {
        int value = ctx->binding[rule.head_variable[i]];
        DATALOG_CHECK_NE(value, kUnbound);
        head[i] = value;
      }
    }
    ++ctx->emitted;
    if (ctx->staging) {
      // The shard is a function of the tuple alone, so every staged
      // copy of one fact lands in the same shard and the merge phase
      // needs no cross-shard coordination.
      std::size_t h = HashIntSpan(head.data(), head.size());
      HashCombine(&h, rule.head_predicate);
      std::vector<int>& buf = ctx->shard_rows[h % ctx->num_shards];
      buf.push_back(rule.head_predicate);
      buf.insert(buf.end(), head.begin(), head.end());
      ++ctx->tuples_staged;
    } else if (db_.MutableRelationOf(rule.head_predicate)->Insert(head)) {
      ++derived_total_;  // copy happened only for this new fact
      if (stats_ != nullptr) ++stats_->facts_derived;
    }
    // Governed poll every 1024 emissions — after the emission is fully
    // recorded, so an interrupted run's counters are consistent. The
    // poll sequence is deterministic (emission counts are a function of
    // the frozen inputs), frequent enough that cancellation lands
    // mid-rule, and cheap enough to not show on profiles.
    if ((ctx->emitted & 1023u) == 0) {
      Status s = governor_.ChargeSteps(1024);
      if (!s.ok()) {
        ctx->abort_status = std::move(s);
        return false;
      }
    }
    return ctx->emitted <= ctx->emit_budget;
  }

  // True when any of the plan's participating relations has more than
  // doubled past the watermark recorded at build time (or went from
  // empty to nonempty) — the point at which the plan's cardinality
  // estimates stop being credible.
  bool PlanStale(const CachedPlan& cached) const {
    for (const auto& [predicate, rows] : cached.watermarks) {
      std::size_t now = db_.RelationOf(predicate).GrowthWatermark();
      if (rows == 0 ? now != 0 : now > 2 * rows) return true;
    }
    return false;
  }

  // Re-resolves a cached plan's index pointers, catching each index up
  // with the rows appended since the last stamp. The ColumnIndex
  // references themselves are stable (node-based map), but their
  // buckets must absorb the new rows before the plan probes them.
  void RefreshIndexes(const CompiledRule& rule,
                      std::vector<JoinStep>* steps) {
    for (JoinStep& step : *steps) {
      if (step.index == nullptr) continue;
      const CompiledAtom& atom = rule.body[step.atom];
      step.index = &indexes_[atom.predicate].Get(
          db_.RelationOf(atom.predicate), step.key_mask, step.distinct_mask,
          &counters_);
    }
  }

  // The join plan for (rule, delta_atom): with cost_based on, the
  // cached plan while it is fresh (indexes caught up, plans_cached
  // counted), else a rebuild into the cache slot with the
  // participating relations' watermarks re-recorded. With cost_based
  // off — the ablation baseline — every call re-plans into `scratch`,
  // byte-for-byte the pre-planner behavior. Only called from the
  // serial planning phase (the serial engine, or pre-fan-out in
  // RunParallel), so cache mutation and stats updates are single-
  // threaded, and parallel runs see plans identical to a serial
  // planner's.
  const std::vector<JoinStep>& PlanFor(CompiledRule& rule, int delta_atom,
                                       const DeltaWindow* delta,
                                       std::vector<JoinStep>* scratch) {
    if (!options_.cost_based) {
      PlanJoin(rule, delta_atom, delta, scratch);
      return *scratch;
    }
    CachedPlan& cached = rule.plans[static_cast<std::size_t>(delta_atom + 1)];
    if (cached.valid && !PlanStale(cached)) {
      RefreshIndexes(rule, &cached.steps);
      if (stats_ != nullptr) ++stats_->plans_cached;
      return cached.steps;
    }
    PlanJoin(rule, delta_atom, delta, &cached.steps);
    cached.watermarks.clear();
    for (const CompiledAtom& atom : rule.body) {
      cached.watermarks.emplace_back(
          atom.predicate, db_.RelationOf(atom.predicate).GrowthWatermark());
    }
    cached.valid = true;
    if (stats_ != nullptr) ++stats_->plans_rebuilt;
    return cached.steps;
  }

  // Evaluates `rule`, considering only matches that use the delta window
  // at `delta_atom` (or all matches when delta_atom == -1). Derived
  // facts land in the database immediately. Serial mode only.
  Status EvaluateRule(CompiledRule& rule, int delta_atom,
                      const DeltaWindow* delta) {
    // Serial poll point: once per rule evaluation, so cancellation and
    // deadline are observed even when rules emit fewer than 1024 facts
    // (the in-match poll in EmitHead covers the long tails).
    Status s = governor_.Poll();
    if (!s.ok()) return s;
    const std::vector<JoinStep>& plan =
        PlanFor(rule, delta_atom, delta, &plan_scratch_);
    serial_ctx_.binding.assign(rule.num_variables, kUnbound);
    if (!MatchBody(rule, plan, 0, delta_atom, delta, &serial_ctx_)) {
      if (!serial_ctx_.abort_status.ok()) return serial_ctx_.abort_status;
      return ResourceExhaustedError(StrCat("evaluation exceeded ",
                                           max_facts_, " derived facts"));
    }
    return OkStatus();
  }

  // Per-round bookkeeping shared by every run mode: a round over `group`
  // also records the rules outside it that an unstratified round would
  // have considered (EvalStats::rounds_saved).
  void CountRound(const std::vector<std::size_t>& group) {
    if (stats_ == nullptr) return;
    ++stats_->iterations;
    stats_->rounds_saved += rules_.size() - group.size();
  }

  Status RunNaive(const std::vector<std::size_t>& group) {
    std::size_t before = derived_total_;
    while (true) {
      CountRound(group);
      for (std::size_t r : group) {
        Status s = EvaluateRule(rules_[r], -1, nullptr);
        if (!s.ok()) return s;
      }
      if (derived_total_ == before) return OkStatus();
      before = derived_total_;
    }
  }

  Status RunSemiNaive(const std::vector<std::size_t>& group) {
    const std::size_t num_predicates = db_.predicates().size();
    DeltaWindow delta(num_predicates);
    // Round 0: full naive pass over the group (facts of earlier strata
    // are already in the relations); the watermarks start at the
    // pre-group sizes, so round 1's windows are exactly the facts
    // derived here.
    Snapshot(&delta);
    CountRound(group);
    std::size_t before = derived_total_;
    for (std::size_t r : group) {
      Status s = EvaluateRule(rules_[r], -1, nullptr);
      if (!s.ok()) return s;
    }

    while (derived_total_ != before) {
      before = derived_total_;
      CountRound(group);
      DeltaWindow next(num_predicates);
      Snapshot(&next);
      for (std::size_t r : group) {
        CompiledRule& rule = rules_[r];
        for (std::size_t i = 0; i < rule.body.size(); ++i) {
          PredicateId id = rule.body[i].predicate;
          if (delta.lo[id] >= db_.RelationOf(id).size()) continue;
          Status s = EvaluateRule(rule, static_cast<int>(i), &delta);
          if (!s.ok()) return s;
        }
      }
      delta = std::move(next);
    }
    return OkStatus();
  }

  // The staged parallel fixpoint. Each round: (1) build the task list —
  // one task per rule (full rounds) or per (rule, delta position)
  // (semi-naive rounds); (2) plan every task serially, which resolves
  // and catches up every column index the round will probe; (3) fan the
  // tasks out across the pool — the database is frozen, workers only
  // read, and each task stages derived tuples into its own per-shard
  // buffers; (4) merge — shards dedup in parallel (each against its own
  // open-addressing table plus read-only probes of the frozen
  // relations), then survivors append serially in (shard, task) order.
  //
  // Determinism: task lists, plans, and each task's staged output are
  // functions of the frozen pre-round database only; outputs are
  // indexed by task id (never thread id); the merge folds them in a
  // fixed order. So the result — including row order — is identical
  // run-to-run for any thread count, and the fixpoint equals the serial
  // engine's as a set of tuples (stratified and chaotic semi-naive
  // iteration reach the same least fixpoint).
  Status RunParallel(ThreadPool& pool,
                     const std::vector<std::size_t>& group) {
    const std::size_t num_predicates = db_.predicates().size();
    num_shards_ = options_.num_shards > 0
                      ? static_cast<std::size_t>(options_.num_shards)
                      : kDefaultShards;

    struct RoundTask {
      std::size_t rule;
      int delta_atom;
    };
    std::vector<RoundTask> tasks;
    // Per-task plan pointers: with cost_based on, tasks point at their
    // (rule, delta position) cache slots — distinct per task, since a
    // round's tasks are distinct (rule, delta) pairs, and stable while
    // the workers run (no planning happens after fan-out). With it off,
    // each task plans into its own storage slot.
    std::vector<const std::vector<JoinStep>*> plans;
    std::vector<std::vector<JoinStep>> plan_storage;
    std::vector<MatchContext> contexts;
    std::vector<std::vector<int>> shard_out(num_shards_);
    std::vector<std::size_t> shard_collisions(num_shards_, 0);

    DeltaWindow delta(num_predicates);
    bool full_round = true;  // round 0, and every round of naive mode
    while (true) {
      tasks.clear();
      if (full_round || !options_.semi_naive) {
        for (std::size_t r : group) {
          tasks.push_back({r, -1});
        }
      } else {
        for (std::size_t r : group) {
          const CompiledRule& rule = rules_[r];
          for (std::size_t i = 0; i < rule.body.size(); ++i) {
            PredicateId id = rule.body[i].predicate;
            if (delta.lo[id] >= db_.RelationOf(id).size()) continue;
            tasks.push_back({r, static_cast<int>(i)});
          }
        }
      }
      if (tasks.empty()) return OkStatus();
      // Round-boundary poll (serial, pre-fan-out): a staged round never
      // starts past the deadline or after cancellation.
      Status round_status = governor_.Poll();
      if (!round_status.ok()) return round_status;
      CountRound(group);
      if (stats_ != nullptr) ++stats_->rounds_parallel;
      const DeltaWindow* window = full_round ? nullptr : &delta;

      plans.resize(tasks.size());
      plan_storage.resize(tasks.size());
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        plans[t] = &PlanFor(rules_[tasks[t].rule], tasks[t].delta_atom,
                            window, &plan_storage[t]);
      }

      // Next round's watermarks are this round's pre-merge sizes: the
      // merged survivors below become exactly the next delta windows.
      DeltaWindow next(num_predicates);
      Snapshot(&next);

      if (contexts.size() < tasks.size()) contexts.resize(tasks.size());
      const std::size_t budget =
          max_facts_ - std::min(max_facts_, emitted_total_);
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        PrepareTaskContext(&contexts[t], budget);
      }

      pool.ParallelFor(tasks.size(), [&](std::size_t t) {
        const RoundTask& task = tasks[t];
        const CompiledRule& rule = rules_[task.rule];
        MatchContext& ctx = contexts[t];
        // Task-boundary poll: every worker observes cancellation (or an
        // injected fault) no later than its next task, and an already
        // cancelled round skips its remaining tasks cheaply. The result
        // lands in the per-task context, folded in task order below —
        // never a data race, never thread-order-dependent stats.
        ctx.abort_status = governor_.Poll();
        if (!ctx.abort_status.ok()) return;
        ctx.binding.assign(rule.num_variables, kUnbound);
        // A false return means the task exceeded the whole remaining
        // emit budget on its own (or a mid-match poll failed — see
        // ctx.abort_status); the deterministic check below turns that
        // into the right error.
        MatchBody(rule, *plans[t], 0, task.delta_atom, window, &ctx);
      });

      // Fold per-task counters in task order (scheduling-independent) —
      // unconditionally, so an interrupted round still reports every
      // task's accumulated work before the error returns.
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        const MatchContext& ctx = contexts[t];
        emitted_total_ += ctx.emitted;
        if (stats_ != nullptr) {
          stats_->join_probes += ctx.join_probes;
          stats_->index_probes += ctx.index_probes;
          stats_->tuples_staged += ctx.tuples_staged;
        }
      }
      // Interruption check in task order, after the stat fold: the
      // round's staged tuples are dropped (the result database is
      // discarded on error), stats stay consistent.
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        if (!contexts[t].abort_status.ok()) {
          return contexts[t].abort_status;
        }
      }
      if (emitted_total_ > max_facts_) {
        return ResourceExhaustedError(StrCat("evaluation exceeded ",
                                             max_facts_, " derived facts"));
      }

      // Merge phase 1 (parallel): per-shard dedup. A tuple's shard is a
      // function of the tuple, so no two shards see the same fact and
      // no locks are needed; the frozen relations are probed read-only.
      pool.ParallelFor(num_shards_, [&](std::size_t s) {
        MergeShard(contexts, tasks.size(), s, &shard_out[s],
                   &shard_collisions[s]);
      });

      // Merge phase 2 (serial): append survivors in (shard, task,
      // derivation) order — deterministic for any thread count.
      std::size_t new_facts = 0;
      for (std::size_t s = 0; s < num_shards_; ++s) {
        if (stats_ != nullptr) {
          stats_->merge_collisions += shard_collisions[s];
        }
        const std::vector<int>& rows = shard_out[s];
        for (std::size_t i = 0; i < rows.size();) {
          Relation* relation = db_.MutableRelationOf(rows[i]);
          if (relation->InsertRow(rows.data() + i + 1)) ++new_facts;
          i += 1 + relation->arity();
        }
      }
      derived_total_ += new_facts;
      if (stats_ != nullptr) stats_->facts_derived += new_facts;
      if (new_facts == 0) return OkStatus();
      if (options_.semi_naive) {
        delta = std::move(next);
        full_round = false;
      }
    }
  }

  void PrepareTaskContext(MatchContext* ctx, std::size_t budget) {
    if (ctx->key.size() < max_body_) {
      ctx->key.resize(max_body_);
      ctx->undo.resize(max_body_);
    }
    ctx->staging = true;
    ctx->num_shards = num_shards_;
    ctx->shard_rows.resize(num_shards_);
    for (std::vector<int>& rows : ctx->shard_rows) rows.clear();
    ctx->emitted = 0;
    ctx->emit_budget = budget;
    ctx->abort_status = OkStatus();
    ctx->join_probes = 0;
    ctx->index_probes = 0;
    ctx->tuples_staged = 0;
  }

  // Dedups one shard's staged rows: against the frozen relations
  // (tuples already present before the round) and against a per-shard
  // table (tuples staged more than once within the round, including by
  // different tasks). Tasks fold in task order, so the survivor order
  // is deterministic.
  void MergeShard(const std::vector<MatchContext>& contexts,
                  std::size_t num_tasks, std::size_t shard,
                  std::vector<int>* out, std::size_t* collisions) const {
    out->clear();
    *collisions = 0;
    VarKeyTable seen;  // keys are whole [predicate, args...] rows
    for (std::size_t t = 0; t < num_tasks; ++t) {
      const std::vector<int>& rows = contexts[t].shard_rows[shard];
      for (std::size_t i = 0; i < rows.size();) {
        const Relation& relation = db_.RelationOf(rows[i]);
        const std::size_t width = 1 + relation.arity();
        if (relation.ContainsRow(rows.data() + i + 1) ||
            !seen.Intern(rows.data() + i, width).second) {
          ++*collisions;
        } else {
          out->insert(out->end(), rows.begin() + i, rows.begin() + i + width);
        }
        i += width;
      }
    }
  }

  // Records current relation sizes as the next round's delta watermarks.
  void Snapshot(DeltaWindow* delta) const {
    for (std::size_t id = 0; id < delta->lo.size(); ++id) {
      delta->lo[id] = db_.RelationOf(static_cast<PredicateId>(id)).size();
    }
  }

  const EvalOptions& options_;
  EvalStats* stats_;
  Database db_;
  std::vector<CompiledRule> rules_;
  // Evaluation-ordered rule groups: SCC strata (use_strata) or one group
  // of every rule. Empty only for an empty program.
  std::vector<std::vector<std::size_t>> rule_groups_;
  std::vector<int> active_domain_;
  std::unordered_set<int> domain_set_;
  // Lazily-built column indexes over db_'s relations, parallel to
  // predicate ids. Delta probes share these (bucket suffix filtering).
  // In parallel mode all builds and catch-ups happen in the serial
  // planning step, before fan-out.
  std::vector<RelationIndex> indexes_;
  IndexCounters counters_;
  std::size_t max_body_ = 0;
  // The serial engine's match state; parallel rounds use per-task
  // contexts instead (RunParallel).
  MatchContext serial_ctx_;
  // Per-rule planning scratch (serial planning only, both modes).
  std::vector<JoinStep> plan_scratch_;
  std::vector<char> bound_scratch_;
  std::vector<char> placed_scratch_;
  std::vector<char> needed_later_scratch_;
  std::vector<char> occurrences_scratch_;
  // Total emissions across parallel rounds (the serial path tracks this
  // in serial_ctx_.emitted).
  std::size_t emitted_total_ = 0;
  std::size_t derived_total_ = 0;
  std::size_t num_shards_ = 0;
  // The governed bounds: polls at rule/task/round boundaries and every
  // 1024 emissions (see EvalOptions::limits).
  Governor governor_;
  // options_.limits.max_facts with 0 resolved to the engine default.
  std::size_t max_facts_ = 0;
};

}  // namespace

std::size_t ResolvedEvalThreads(const EvalOptions& options) {
  if (options.num_threads == 0) return ThreadPool::HardwareConcurrency();
  return static_cast<std::size_t>(std::max(1, options.num_threads));
}

StatusOr<Database> EvaluateProgram(const Program& program, const Database& edb,
                                   const EvalOptions& options,
                                   EvalStats* stats) {
  Evaluator evaluator(program, edb, options, stats);
  return evaluator.Run();
}

StatusOr<Relation> EvaluateGoal(const Program& program,
                                const std::string& goal_predicate,
                                const Database& edb,
                                const EvalOptions& options, EvalStats* stats) {
  StatusOr<Database> result = EvaluateProgram(program, edb, options, stats);
  if (!result.ok()) return result.status();
  std::size_t arity = program.PredicateArity(goal_predicate);
  PredicateId id = result->predicates().Lookup(goal_predicate);
  if (id == kNoPredicate) return Relation(arity);
  // The goal relation is moved out, not copied: the rest of the result
  // database is discarded anyway.
  return std::move(*result->MutableRelationOf(id));
}

StatusOr<Relation> EvaluateUcq(const UnionOfCqs& ucq, const Database& edb) {
  DATALOG_CHECK(!ucq.empty()) << "cannot evaluate an empty union";
  const std::string goal = "__ucq_goal";
  Program program;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    program.AddRule(RuleFromCq(goal, cq));
  }
  return EvaluateGoal(program, goal, edb);
}

}  // namespace datalog
