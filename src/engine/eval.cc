#include "src/engine/eval.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/engine/index.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// A body atom compiled against the dictionaries: the predicate is a dense
// id, and each argument is either a constant id (>= 0 in `constant`) or a
// variable slot (index into the binding array, in `variable`).
struct CompiledAtom {
  PredicateId predicate;
  std::size_t arity;
  std::vector<int> constant;  // -1 when the position holds a variable
  std::vector<int> variable;  // -1 when the position holds a constant
};

struct CompiledRule {
  PredicateId head_predicate;
  std::vector<int> head_constant;  // parallel to head args, -1 for variables
  std::vector<int> head_variable;
  std::vector<CompiledAtom> body;
  std::size_t num_variables = 0;
  // Variable slots appearing in the head but in no body atom (unsafe).
  std::vector<int> unbound_head_variables;
  // Slots appearing anywhere in the head (constants excluded).
  std::vector<char> in_head;
};

constexpr int kUnbound = -1;

class RuleCompiler {
 public:
  explicit RuleCompiler(Database* db) : db_(db) {}

  CompiledRule Compile(const Rule& rule) {
    CompiledRule compiled;
    slots_.clear();
    compiled.head_predicate =
        db_->InternPredicate(rule.head().predicate(), rule.head().arity());
    for (const Atom& atom : rule.body()) {
      compiled.body.push_back(CompileAtom(atom));
    }
    std::size_t body_variables = slots_.size();
    CompileHead(rule.head(), &compiled);
    compiled.num_variables = slots_.size();
    for (int v : compiled.head_variable) {
      if (v >= 0 && static_cast<std::size_t>(v) >= body_variables) {
        compiled.unbound_head_variables.push_back(v);
      }
    }
    compiled.in_head.assign(compiled.num_variables, 0);
    for (int v : compiled.head_variable) {
      if (v >= 0) compiled.in_head[v] = 1;
    }
    return compiled;
  }

 private:
  int SlotFor(const std::string& variable) {
    auto [it, inserted] =
        slots_.emplace(variable, static_cast<int>(slots_.size()));
    return it->second;
  }

  CompiledAtom CompileAtom(const Atom& atom) {
    CompiledAtom compiled;
    compiled.predicate = db_->InternPredicate(atom.predicate(), atom.arity());
    compiled.arity = atom.arity();
    for (const Term& t : atom.args()) {
      if (t.is_constant()) {
        compiled.constant.push_back(db_->dictionary().Intern(t.name()));
        compiled.variable.push_back(-1);
      } else {
        compiled.constant.push_back(-1);
        compiled.variable.push_back(SlotFor(t.name()));
      }
    }
    return compiled;
  }

  void CompileHead(const Atom& head, CompiledRule* compiled) {
    for (const Term& t : head.args()) {
      if (t.is_constant()) {
        compiled->head_constant.push_back(db_->dictionary().Intern(t.name()));
        compiled->head_variable.push_back(-1);
      } else {
        compiled->head_constant.push_back(-1);
        compiled->head_variable.push_back(SlotFor(t.name()));
      }
    }
  }

  Database* db_;
  std::unordered_map<std::string, int> slots_;
};

// One position of a join plan: which body atom runs at this step, and the
// column patterns its index probe uses. `key_mask` marks columns holding
// constants or variables bound by earlier steps (static per plan: the
// set of bound variables at each step depends only on the order).
// `distinct_mask` marks columns binding new variables that stay relevant
// downstream (used later in the plan, emitted by the head, or repeated
// within the atom); columns outside both masks bind dead variables, and
// `project` says some exist — rows then collapse to one representative
// per (key, distinct) projection inside the index (a projection pushed
// into the join). `index` is resolved once per rule evaluation.
struct JoinStep {
  std::size_t atom = 0;
  std::uint32_t key_mask = 0;
  std::uint32_t distinct_mask = 0;
  bool project = false;
  const ColumnIndex* index = nullptr;
};

// The semi-naive delta, represented as a watermark per relation: the
// database's relations are append-only, so "the facts derived in the
// previous round" are exactly the rows with index >= lo. Deltas share
// storage and column indexes with the full relations — a delta probe is
// a full-index probe restricted to the bucket suffix at or past the
// watermark.
struct DeltaWindow {
  explicit DeltaWindow(std::size_t num_predicates) : lo(num_predicates, 0) {}
  std::vector<std::size_t> lo;
};

// Evaluates rule bodies against a database, with one body atom optionally
// restricted to the delta window (semi-naive evaluation). Joins probe
// per-relation hash column indexes and follow a greedy runtime join
// order; both behaviors degrade to full scans in textual order when the
// corresponding EvalOptions switches are off. Derived facts are inserted
// into the database immediately (chaotic iteration reaches the same
// least fixpoint as stratified rounds, and saves a staging copy of every
// fact); rows gained mid-round simply fall into the next round's window.
class Evaluator {
 public:
  Evaluator(const Program& program, const Database& edb,
            const EvalOptions& options, EvalStats* stats)
      : options_(options), stats_(stats), db_(edb) {
    RuleCompiler compiler(&db_);
    for (const Rule& rule : program.rules()) {
      rules_.push_back(compiler.Compile(rule));
    }
    active_domain_ = db_.ActiveDomain();
    domain_set_.insert(active_domain_.begin(), active_domain_.end());
    // Constants mentioned only in the program are part of the domain too.
    for (const CompiledRule& rule : rules_) {
      for (int c : rule.head_constant) {
        if (c >= 0) InsertDomain(c);
      }
      for (const CompiledAtom& atom : rule.body) {
        for (int c : atom.constant) {
          if (c >= 0) InsertDomain(c);
        }
      }
    }
    // All predicates are interned by now; id space is frozen.
    indexes_.resize(db_.predicates().size());
    std::size_t max_body = 0;
    for (const CompiledRule& rule : rules_) {
      max_body = std::max(max_body, rule.body.size());
    }
    key_scratch_.resize(max_body);
    undo_scratch_.resize(max_body);
  }

  StatusOr<Database> Run() {
    Status s = options_.semi_naive ? RunSemiNaive() : RunNaive();
    if (stats_ != nullptr) {
      stats_->index_builds += counters_.index_builds;
      stats_->tuples_indexed += counters_.tuples_indexed;
    }
    if (!s.ok()) return s;
    return std::move(db_);
  }

 private:
  void InsertDomain(int id) {
    if (domain_set_.insert(id).second) active_domain_.push_back(id);
  }

  // Greedy runtime join order: repeatedly pick the unplaced body atom
  // with the most already-determined argument positions (constants plus
  // variables bound by earlier steps), breaking ties toward the smaller
  // relation — the delta atom uses the delta window's size, which
  // shrinks as the fixpoint converges. With reordering off, textual
  // order is kept. Either way, each step's column patterns are derived
  // afterwards and its index is resolved (and caught up) up front.
  void PlanJoin(const CompiledRule& rule, int delta_atom,
                const DeltaWindow* delta, std::vector<JoinStep>* out) {
    const std::size_t n = rule.body.size();
    std::vector<JoinStep>& plan = *out;
    plan.assign(n, JoinStep());
    std::vector<char>& bound = bound_scratch_;
    bound.assign(rule.num_variables, 0);
    if (!options_.reorder_joins) {
      for (std::size_t i = 0; i < n; ++i) plan[i].atom = i;
    } else {
      std::vector<char>& placed = placed_scratch_;
      placed.assign(n, 0);
      for (std::size_t step = 0; step < n; ++step) {
        std::size_t best = n;
        std::size_t best_bound = 0;
        std::size_t best_size = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (placed[i]) continue;
          const CompiledAtom& atom = rule.body[i];
          std::size_t bound_args = 0;
          for (std::size_t pos = 0; pos < atom.arity; ++pos) {
            if (atom.constant[pos] >= 0 || bound[atom.variable[pos]]) {
              ++bound_args;
            }
          }
          std::size_t size = db_.RelationOf(atom.predicate).size();
          // The delta atom wins ties: its window only shrinks, and
          // scanning it early keeps the growing full relation out of
          // the index entirely.
          std::size_t weight = 2 * size;
          if (static_cast<int>(i) == delta_atom) {
            size -= std::min(size, delta->lo[atom.predicate]);
            weight = 2 * size - 1;
          }
          if (best == n || bound_args > best_bound ||
              (bound_args == best_bound && weight < best_size)) {
            best = i;
            best_bound = bound_args;
            best_size = weight;
          }
        }
        placed[best] = 1;
        plan[step].atom = best;
        for (int v : rule.body[best].variable) {
          if (v >= 0) bound[v] = 1;
        }
      }
      bound.assign(rule.num_variables, 0);
    }

    // Column patterns per step. A new variable is live (distinct-mask)
    // if a later step, the head, or another column of the same atom
    // still needs it; otherwise its column is dead and candidate rows
    // can collapse to representatives.
    std::vector<char>& needed_later = needed_later_scratch_;
    std::vector<char>& occurrences = occurrences_scratch_;
    for (std::size_t step = 0; step < n; ++step) {
      JoinStep& js = plan[step];
      const CompiledAtom& atom = rule.body[js.atom];
      if (atom.arity == 0 || atom.arity >= 32) {
        // Unindexable atom: it still binds its variables, which later
        // steps must treat as live/key (else projection would collapse
        // rows that are not interchangeable).
        for (int v : atom.variable) {
          if (v >= 0) bound[v] = 1;
        }
        continue;
      }
      needed_later.assign(rule.num_variables, 0);
      for (std::size_t later = step + 1; later < n; ++later) {
        for (int v : rule.body[plan[later].atom].variable) {
          if (v >= 0) needed_later[v] = 1;
        }
      }
      occurrences.assign(rule.num_variables, 0);
      for (int v : atom.variable) {
        if (v >= 0 && occurrences[v] < 2) ++occurrences[v];
      }
      for (std::size_t pos = 0; pos < atom.arity; ++pos) {
        int v = atom.variable[pos];
        if (atom.constant[pos] >= 0 || bound[v]) {
          js.key_mask |= 1u << pos;
        } else if (rule.in_head[v] || needed_later[v] ||
                   occurrences[v] > 1) {
          js.distinct_mask |= 1u << pos;
        } else {
          js.project = true;
        }
      }
      if (options_.use_index && (js.key_mask != 0 || js.project)) {
        js.index = &indexes_[atom.predicate].Get(
            db_.RelationOf(atom.predicate), js.key_mask, js.distinct_mask,
            &counters_);
      }
      for (int v : atom.variable) {
        if (v >= 0) bound[v] = 1;
      }
    }
  }

  // Unifies `atom` with a row's column values under the current binding;
  // returns false on mismatch (with any partial bindings recorded on
  // `undo`).
  bool UnifyTuple(const CompiledAtom& atom, const int* tuple,
                  std::vector<int>* binding, std::vector<int>* undo) {
    if (stats_ != nullptr) ++stats_->join_probes;
    for (std::size_t i = 0; i < atom.arity; ++i) {
      if (atom.constant[i] >= 0) {
        if (atom.constant[i] != tuple[i]) return false;
        continue;
      }
      int slot = atom.variable[i];
      if ((*binding)[slot] == kUnbound) {
        (*binding)[slot] = tuple[i];
        undo->push_back(slot);
      } else if ((*binding)[slot] != tuple[i]) {
        return false;
      }
    }
    return true;
  }

  // Matches plan steps [pos..] given the current binding; on a complete
  // match, emits head tuples (enumerating the active domain for unsafe
  // head variables). `delta_atom` designates the body position that must
  // match the delta window, or -1 for none. Returns false when the
  // derived-fact limit is hit.
  bool MatchBody(const CompiledRule& rule, const std::vector<JoinStep>& plan,
                 std::size_t pos, int delta_atom, const DeltaWindow* delta,
                 std::vector<int>* binding) {
    if (pos == plan.size()) {
      return EmitHead(rule, 0, binding);
    }
    const JoinStep& step = plan[pos];
    const CompiledAtom& atom = rule.body[step.atom];
    const bool is_delta = static_cast<int>(step.atom) == delta_atom;
    const Relation& relation = db_.RelationOf(atom.predicate);
    const std::size_t first_row = is_delta ? delta->lo[atom.predicate] : 0;

    std::vector<int>& undo = undo_scratch_[pos];
    if (step.index != nullptr) {
      Tuple& key = key_scratch_[pos];
      key.clear();
      for (std::size_t i = 0; i < atom.arity; ++i) {
        if ((step.key_mask & (1u << i)) == 0) continue;
        key.push_back(atom.constant[i] >= 0 ? atom.constant[i]
                                            : (*binding)[atom.variable[i]]);
      }
      if (stats_ != nullptr) ++stats_->index_probes;
      ColumnIndex::BucketView bucket = step.index->Probe(key);
      if (bucket.empty()) return true;  // no candidate rows
      // Bucket row indexes ascend, so a delta probe skips ahead to the
      // watermark (whole chunks below it are stepped over unread).
      ColumnIndex::BucketView::Iterator it = bucket.begin();
      if (first_row != 0) {
        it.SkipBelow(static_cast<std::uint32_t>(first_row));
      }
      for (; !it.done(); it.Next()) {
        undo.clear();
        if (UnifyTuple(atom, relation.RowData(it.row()), binding, &undo)) {
          if (!MatchBody(rule, plan, pos + 1, delta_atom, delta, binding)) {
            return false;
          }
        }
        for (int slot : undo) (*binding)[slot] = kUnbound;
      }
      return true;
    }
    // Index-free scan: relations may gain rows mid-round (facts are
    // inserted as they are derived, and the arena may reallocate), so
    // the row pointer is re-read each iteration and the size re-checked.
    for (std::size_t row = first_row; row < relation.size(); ++row) {
      undo.clear();
      if (UnifyTuple(atom, relation.RowData(row), binding, &undo)) {
        if (!MatchBody(rule, plan, pos + 1, delta_atom, delta, binding)) {
          return false;
        }
      }
      for (int slot : undo) (*binding)[slot] = kUnbound;
    }
    return true;
  }

  // Emits head tuples straight into the database (duplicates are
  // suppressed by the relation's hash set), enumerating active-domain
  // values for unbound head variables starting at position
  // `unbound_index` in rule.unbound_head_variables. Returns false when
  // the fact limit is hit.
  bool EmitHead(const CompiledRule& rule, std::size_t unbound_index,
                std::vector<int>* binding) {
    if (unbound_index < rule.unbound_head_variables.size()) {
      int slot = rule.unbound_head_variables[unbound_index];
      if ((*binding)[slot] != kUnbound) {
        return EmitHead(rule, unbound_index + 1, binding);
      }
      for (int value : active_domain_) {
        (*binding)[slot] = value;
        if (!EmitHead(rule, unbound_index + 1, binding)) {
          (*binding)[slot] = kUnbound;
          return false;
        }
      }
      (*binding)[slot] = kUnbound;
      return true;
    }
    Tuple& head = head_scratch_;
    head.resize(rule.head_constant.size());
    for (std::size_t i = 0; i < head.size(); ++i) {
      if (rule.head_constant[i] >= 0) {
        head[i] = rule.head_constant[i];
      } else {
        int value = (*binding)[rule.head_variable[i]];
        DATALOG_CHECK_NE(value, kUnbound);
        head[i] = value;
      }
    }
    ++emitted_;
    if (db_.MutableRelationOf(rule.head_predicate)->Insert(head)) {
      ++derived_total_;  // copy happened only for this new fact
      if (stats_ != nullptr) ++stats_->facts_derived;
    }
    return emitted_ <= options_.max_derived_facts;
  }

  // Evaluates `rule`, considering only matches that use the delta window
  // at `delta_atom` (or all matches when delta_atom == -1). Derived
  // facts land in the database immediately.
  Status EvaluateRule(const CompiledRule& rule, int delta_atom,
                      const DeltaWindow* delta) {
    std::vector<JoinStep>& plan = plan_scratch_;
    PlanJoin(rule, delta_atom, delta, &plan);
    std::vector<int>& binding = binding_scratch_;
    binding.assign(rule.num_variables, kUnbound);
    if (!MatchBody(rule, plan, 0, delta_atom, delta, &binding)) {
      return ResourceExhaustedError(
          StrCat("evaluation exceeded ", options_.max_derived_facts,
                 " derived facts"));
    }
    return OkStatus();
  }

  Status RunNaive() {
    std::size_t before = derived_total_;
    while (true) {
      if (stats_ != nullptr) ++stats_->iterations;
      for (const CompiledRule& rule : rules_) {
        Status s = EvaluateRule(rule, -1, nullptr);
        if (!s.ok()) return s;
      }
      if (derived_total_ == before) return OkStatus();
      before = derived_total_;
    }
  }

  Status RunSemiNaive() {
    const std::size_t num_predicates = db_.predicates().size();
    DeltaWindow delta(num_predicates);
    // Round 0: full naive pass; the watermarks start at the EDB sizes,
    // so round 1's windows are exactly the facts derived here.
    Snapshot(&delta);
    if (stats_ != nullptr) ++stats_->iterations;
    std::size_t before = derived_total_;
    for (const CompiledRule& rule : rules_) {
      Status s = EvaluateRule(rule, -1, nullptr);
      if (!s.ok()) return s;
    }

    while (derived_total_ != before) {
      before = derived_total_;
      if (stats_ != nullptr) ++stats_->iterations;
      DeltaWindow next(num_predicates);
      Snapshot(&next);
      for (const CompiledRule& rule : rules_) {
        for (std::size_t i = 0; i < rule.body.size(); ++i) {
          PredicateId id = rule.body[i].predicate;
          if (delta.lo[id] >= db_.RelationOf(id).size()) continue;
          Status s = EvaluateRule(rule, static_cast<int>(i), &delta);
          if (!s.ok()) return s;
        }
      }
      delta = std::move(next);
    }
    return OkStatus();
  }

  // Records current relation sizes as the next round's delta watermarks.
  void Snapshot(DeltaWindow* delta) const {
    for (std::size_t id = 0; id < delta->lo.size(); ++id) {
      delta->lo[id] = db_.RelationOf(static_cast<PredicateId>(id)).size();
    }
  }

  const EvalOptions& options_;
  EvalStats* stats_;
  Database db_;
  std::vector<CompiledRule> rules_;
  std::vector<int> active_domain_;
  std::unordered_set<int> domain_set_;
  // Lazily-built column indexes over db_'s relations, parallel to
  // predicate ids. Delta probes share these (bucket suffix filtering).
  std::vector<RelationIndex> indexes_;
  IndexCounters counters_;
  // Reusable per-plan-depth probe keys and binding-undo logs, the head
  // construction buffer, and per-rule planning scratch — keeps the hot
  // path allocation-free.
  std::vector<Tuple> key_scratch_;
  std::vector<std::vector<int>> undo_scratch_;
  Tuple head_scratch_;
  std::vector<JoinStep> plan_scratch_;
  std::vector<int> binding_scratch_;
  std::vector<char> bound_scratch_;
  std::vector<char> placed_scratch_;
  std::vector<char> needed_later_scratch_;
  std::vector<char> occurrences_scratch_;
  std::size_t emitted_ = 0;
  std::size_t derived_total_ = 0;
};

}  // namespace

StatusOr<Database> EvaluateProgram(const Program& program, const Database& edb,
                                   const EvalOptions& options,
                                   EvalStats* stats) {
  Evaluator evaluator(program, edb, options, stats);
  return evaluator.Run();
}

StatusOr<Relation> EvaluateGoal(const Program& program,
                                const std::string& goal_predicate,
                                const Database& edb,
                                const EvalOptions& options, EvalStats* stats) {
  StatusOr<Database> result = EvaluateProgram(program, edb, options, stats);
  if (!result.ok()) return result.status();
  std::size_t arity = program.PredicateArity(goal_predicate);
  PredicateId id = result->predicates().Lookup(goal_predicate);
  if (id == kNoPredicate) return Relation(arity);
  // The goal relation is moved out, not copied: the rest of the result
  // database is discarded anyway.
  return std::move(*result->MutableRelationOf(id));
}

StatusOr<Relation> EvaluateUcq(const UnionOfCqs& ucq, const Database& edb) {
  DATALOG_CHECK(!ucq.empty()) << "cannot evaluate an empty union";
  const std::string goal = "__ucq_goal";
  Program program;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    program.AddRule(RuleFromCq(goal, cq));
  }
  return EvaluateGoal(program, goal, edb);
}

}  // namespace datalog
