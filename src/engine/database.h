// Dictionary-encoded relational storage: tuples of integer-encoded
// constants grouped into named relations. This is the substrate on which
// Datalog programs are evaluated (paper §2.1's Q_Π(D)).
#ifndef DATALOG_EQ_SRC_ENGINE_DATABASE_H_
#define DATALOG_EQ_SRC_ENGINE_DATABASE_H_

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/ast/term.h"
#include "src/util/hash.h"
#include "src/util/status.h"

namespace datalog {

using Tuple = std::vector<int>;
using TupleSet = std::unordered_set<Tuple, VectorHash<int>>;

/// Bidirectional mapping between constant spellings and dense integer ids.
class ConstantDictionary {
 public:
  /// Returns the id of `name`, interning it if new.
  int Intern(const std::string& name);
  /// Returns the id of `name` or -1 if unknown.
  int Lookup(const std::string& name) const;
  const std::string& NameOf(int id) const;
  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> names_;
};

/// A set of same-arity tuples.
class Relation {
 public:
  Relation() : arity_(0) {}
  explicit Relation(std::size_t arity) : arity_(arity) {}

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `tuple`; returns true if it was new.
  bool Insert(Tuple tuple);
  bool Contains(const Tuple& tuple) const { return tuples_.count(tuple) > 0; }
  const TupleSet& tuples() const { return tuples_; }

  /// Tuples in sorted order, for deterministic display and comparison.
  std::vector<Tuple> SortedTuples() const;

  bool operator==(const Relation& other) const {
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }

 private:
  std::size_t arity_;
  TupleSet tuples_;
};

/// A database: relations by predicate name plus the shared constant
/// dictionary and the active domain.
class Database {
 public:
  ConstantDictionary& dictionary() { return dictionary_; }
  const ConstantDictionary& dictionary() const { return dictionary_; }

  /// Adds a fact with constant spelling arguments.
  void AddFact(const std::string& predicate,
               const std::vector<std::string>& constants);

  /// Adds a ground atom. Returns InvalidArgumentError if any argument is a
  /// variable.
  Status AddFactAtom(const Atom& atom);

  /// Adds an already-encoded tuple.
  void AddTuple(const std::string& predicate, Tuple tuple);

  bool HasRelation(const std::string& predicate) const {
    return relations_.count(predicate) > 0;
  }
  /// The relation for `predicate`; an empty relation of arity `arity` if
  /// absent.
  const Relation& GetRelation(const std::string& predicate,
                              std::size_t arity) const;

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  /// All constant ids appearing in any tuple (the active domain), sorted.
  std::vector<int> ActiveDomain() const;

  /// Total number of facts across relations.
  std::size_t TotalFacts() const;

  /// Decodes a tuple back to constant spellings.
  std::vector<std::string> DecodeTuple(const Tuple& tuple) const;

  std::string ToString() const;

 private:
  ConstantDictionary dictionary_;
  std::map<std::string, Relation> relations_;
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ENGINE_DATABASE_H_
