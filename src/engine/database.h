// Dictionary-encoded relational storage: tuples of integer-encoded
// constants grouped into relations addressed by dense predicate ids.
// This is the substrate on which Datalog programs are evaluated (paper
// §2.1's Q_Π(D)). Both constants and predicate names are interned, so
// the evaluation hot path never touches strings: a relation lookup is a
// vector index, a tuple is a vector of ints.
#ifndef DATALOG_EQ_SRC_ENGINE_DATABASE_H_
#define DATALOG_EQ_SRC_ENGINE_DATABASE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/ast/term.h"
#include "src/util/flat_table.h"
#include "src/util/hash.h"
#include "src/util/status.h"

namespace datalog {

using Tuple = std::vector<int>;
using TupleSet = std::unordered_set<Tuple, VectorHash<int>>;

/// Dense integer id of an interned predicate name (index into the
/// database's PredicateDictionary and relation vector).
using PredicateId = int;

constexpr PredicateId kNoPredicate = -1;

/// Bidirectional mapping between constant spellings and dense integer ids.
class ConstantDictionary {
 public:
  /// Returns the id of `name`, interning it if new.
  int Intern(const std::string& name);
  /// Returns the id of `name` or -1 if unknown.
  int Lookup(const std::string& name) const;
  const std::string& NameOf(int id) const;
  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> names_;
};

/// Bidirectional mapping between predicate names and dense PredicateIds,
/// with the arity recorded per predicate (mirrors ConstantDictionary).
class PredicateDictionary {
 public:
  /// Returns the id of `name`, interning it if new. A predicate keeps the
  /// arity it was first interned with; re-interning with a different arity
  /// is a fatal error.
  PredicateId Intern(const std::string& name, std::size_t arity);
  /// Returns the id of `name` or kNoPredicate if unknown.
  PredicateId Lookup(const std::string& name) const;
  const std::string& NameOf(PredicateId id) const;
  std::size_t ArityOf(PredicateId id) const;
  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, PredicateId> ids_;
  std::vector<std::string> names_;
  std::vector<std::size_t> arities_;
};

/// A set of same-arity tuples, stored flat in a FlatKeyTable of width
/// arity: row i occupies the int range [i*arity, (i+1)*arity) of one
/// contiguous arena (cache-friendly scans, zero per-tuple allocations)
/// with open-addressing dedup. Relations only grow, so row indexes are
/// stable forever — column indexes (src/engine/index.h) and semi-naive
/// delta watermarks reference rows by index.
class Relation {
 public:
  Relation() : arity_(0), rows_(0) {}
  explicit Relation(std::size_t arity) : arity_(arity), rows_(arity) {}

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.size() == 0; }

  /// Growth watermark: the row count, read by the join planner to decide
  /// whether a cached plan's cardinality estimates are still credible.
  /// Relations are append-only, so two equal watermarks bracket an
  /// unchanged relation; a distinct name keeps planner call sites
  /// self-describing.
  std::size_t GrowthWatermark() const { return rows_.size(); }

  /// Inserts `tuple`; returns true if it was new.
  bool Insert(const Tuple& tuple);
  bool Contains(const Tuple& tuple) const;
  /// Raw-pointer variants over arity() contiguous ints — the parallel
  /// merge phase dedups and appends staged rows without materializing
  /// Tuples. ContainsRow is a read-only probe, safe to call from many
  /// threads as long as no Insert runs concurrently.
  bool InsertRow(const int* data) { return rows_.Intern(data).second; }
  bool ContainsRow(const int* data) const {
    return rows_.Find(data) != FlatKeyTable::kNotFound;
  }
  /// The i-th row's column values (arity() ints). The pointer is
  /// invalidated by the next Insert; the row index never is.
  const int* RowData(std::size_t row) const { return rows_.KeyData(row); }
  /// Reconstructs the i-th row as a Tuple.
  Tuple RowTuple(std::size_t row) const {
    return Tuple(RowData(row), RowData(row) + arity_);
  }
  /// Materializes the tuple set (compatibility view for tests/display;
  /// evaluation iterates rows by index instead).
  TupleSet tuples() const;

  /// Tuples in sorted order, for deterministic display and comparison.
  std::vector<Tuple> SortedTuples() const;

  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

 private:
  std::size_t arity_;
  FlatKeyTable rows_;  // the key arena is the row store
};

/// A database: relations indexed by dense PredicateId plus the shared
/// constant and predicate dictionaries.
class Database {
 public:
  ConstantDictionary& dictionary() { return dictionary_; }
  const ConstantDictionary& dictionary() const { return dictionary_; }

  const PredicateDictionary& predicates() const { return predicates_; }

  /// Interns `predicate`, creating its (empty) relation if new, and
  /// returns its dense id.
  PredicateId InternPredicate(const std::string& predicate,
                              std::size_t arity);

  /// The relation for an interned predicate id.
  const Relation& RelationOf(PredicateId id) const;
  Relation* MutableRelationOf(PredicateId id);

  /// Inserts an already-encoded tuple; returns true if it was new.
  bool AddTupleById(PredicateId id, Tuple tuple);

  /// Adds a fact with constant spelling arguments.
  void AddFact(const std::string& predicate,
               const std::vector<std::string>& constants);

  /// Adds a ground atom. Returns InvalidArgumentError if any argument is a
  /// variable.
  Status AddFactAtom(const Atom& atom);

  /// Adds an already-encoded tuple.
  void AddTuple(const std::string& predicate, Tuple tuple);

  bool HasRelation(const std::string& predicate) const {
    PredicateId id = predicates_.Lookup(predicate);
    return id != kNoPredicate && !relations_[id].empty();
  }
  /// The relation for `predicate`; an empty relation of arity `arity` if
  /// absent.
  const Relation& GetRelation(const std::string& predicate,
                              std::size_t arity) const;

  /// All constant ids appearing in any tuple (the active domain), sorted.
  std::vector<int> ActiveDomain() const;

  /// Decodes every stored tuple back to a ground Atom, in (predicate id,
  /// row index) order — deterministic for a deterministically built
  /// database. Reflects the database at call time: called before
  /// evaluation it lists exactly the loaded facts (how the canonical-db
  /// witness export uses it), called after it includes derived facts.
  std::vector<Atom> AllFactAtoms() const;

  /// Total number of facts across relations.
  std::size_t TotalFacts() const;

  /// Decodes a tuple back to constant spellings.
  std::vector<std::string> DecodeTuple(const Tuple& tuple) const;

  std::string ToString() const;

 private:
  ConstantDictionary dictionary_;
  PredicateDictionary predicates_;
  std::vector<Relation> relations_;  // parallel to predicates_
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ENGINE_DATABASE_H_
