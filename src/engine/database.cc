#include "src/engine/database.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {

int ConstantDictionary::Intern(const std::string& name) {
  auto [it, inserted] = ids_.emplace(name, static_cast<int>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

int ConstantDictionary::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? -1 : it->second;
}

const std::string& ConstantDictionary::NameOf(int id) const {
  DATALOG_CHECK_GE(id, 0);
  DATALOG_CHECK_LT(static_cast<std::size_t>(id), names_.size());
  return names_[id];
}

PredicateId PredicateDictionary::Intern(const std::string& name,
                                        std::size_t arity) {
  auto [it, inserted] =
      ids_.emplace(name, static_cast<PredicateId>(names_.size()));
  if (inserted) {
    names_.push_back(name);
    arities_.push_back(arity);
  } else {
    DATALOG_CHECK_EQ(arities_[it->second], arity)
        << "predicate " << name << " arity mismatch";
  }
  return it->second;
}

PredicateId PredicateDictionary::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kNoPredicate : it->second;
}

const std::string& PredicateDictionary::NameOf(PredicateId id) const {
  DATALOG_CHECK_GE(id, 0);
  DATALOG_CHECK_LT(static_cast<std::size_t>(id), names_.size());
  return names_[id];
}

std::size_t PredicateDictionary::ArityOf(PredicateId id) const {
  DATALOG_CHECK_GE(id, 0);
  DATALOG_CHECK_LT(static_cast<std::size_t>(id), arities_.size());
  return arities_[id];
}

bool Relation::Insert(const Tuple& tuple) {
  DATALOG_CHECK_EQ(tuple.size(), arity_);
  return rows_.Intern(tuple.data()).second;
}

bool Relation::Contains(const Tuple& tuple) const {
  DATALOG_CHECK_EQ(tuple.size(), arity_);
  return rows_.Find(tuple.data()) != FlatKeyTable::kNotFound;
}

TupleSet Relation::tuples() const {
  TupleSet set;
  set.reserve(size());
  for (std::size_t row = 0; row < size(); ++row) set.insert(RowTuple(row));
  return set;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> sorted;
  sorted.reserve(size());
  for (std::size_t row = 0; row < size(); ++row) {
    sorted.push_back(RowTuple(row));
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

bool Relation::operator==(const Relation& other) const {
  if (arity_ != other.arity_ || size() != other.size()) return false;
  for (std::size_t row = 0; row < size(); ++row) {
    if (other.rows_.Find(RowData(row)) == FlatKeyTable::kNotFound) {
      return false;
    }
  }
  return true;
}

PredicateId Database::InternPredicate(const std::string& predicate,
                                      std::size_t arity) {
  PredicateId id = predicates_.Intern(predicate, arity);
  if (static_cast<std::size_t>(id) == relations_.size()) {
    relations_.emplace_back(arity);
  }
  return id;
}

const Relation& Database::RelationOf(PredicateId id) const {
  DATALOG_CHECK_GE(id, 0);
  DATALOG_CHECK_LT(static_cast<std::size_t>(id), relations_.size());
  return relations_[id];
}

Relation* Database::MutableRelationOf(PredicateId id) {
  DATALOG_CHECK_GE(id, 0);
  DATALOG_CHECK_LT(static_cast<std::size_t>(id), relations_.size());
  return &relations_[id];
}

bool Database::AddTupleById(PredicateId id, Tuple tuple) {
  return MutableRelationOf(id)->Insert(std::move(tuple));
}

void Database::AddFact(const std::string& predicate,
                       const std::vector<std::string>& constants) {
  Tuple tuple;
  tuple.reserve(constants.size());
  for (const std::string& c : constants) tuple.push_back(dictionary_.Intern(c));
  AddTuple(predicate, std::move(tuple));
}

Status Database::AddFactAtom(const Atom& atom) {
  std::vector<std::string> constants;
  constants.reserve(atom.arity());
  for (const Term& t : atom.args()) {
    if (!t.is_constant()) {
      return InvalidArgumentError(
          StrCat("non-ground fact atom: ", atom.ToString()));
    }
    constants.push_back(t.name());
  }
  AddFact(atom.predicate(), constants);
  return OkStatus();
}

void Database::AddTuple(const std::string& predicate, Tuple tuple) {
  PredicateId id = InternPredicate(predicate, tuple.size());
  AddTupleById(id, std::move(tuple));
}

const Relation& Database::GetRelation(const std::string& predicate,
                                      std::size_t arity) const {
  PredicateId id = predicates_.Lookup(predicate);
  if (id != kNoPredicate) {
    DATALOG_CHECK_EQ(predicates_.ArityOf(id), arity)
        << "predicate " << predicate << " arity mismatch";
    return relations_[id];
  }
  // Shared empty relations, one per small arity.
  DATALOG_CHECK_LT(arity, std::size_t{16});
  static const std::vector<Relation>* empty_relations = [] {
    auto* relations = new std::vector<Relation>;
    for (std::size_t a = 0; a < 16; ++a) relations->emplace_back(a);
    return relations;
  }();
  return (*empty_relations)[arity];
}

std::vector<int> Database::ActiveDomain() const {
  std::unordered_set<int> domain;
  for (const Relation& relation : relations_) {
    for (std::size_t row = 0; row < relation.size(); ++row) {
      const int* data = relation.RowData(row);
      domain.insert(data, data + relation.arity());
    }
  }
  std::vector<int> sorted(domain.begin(), domain.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::vector<Atom> Database::AllFactAtoms() const {
  std::vector<Atom> atoms;
  for (std::size_t id = 0; id < relations_.size(); ++id) {
    const Relation& relation = relations_[id];
    const std::string& predicate =
        predicates_.NameOf(static_cast<PredicateId>(id));
    for (std::size_t row = 0; row < relation.size(); ++row) {
      const int* data = relation.RowData(row);
      std::vector<Term> args;
      args.reserve(relation.arity());
      for (std::size_t k = 0; k < relation.arity(); ++k) {
        args.push_back(Term::Constant(dictionary_.NameOf(data[k])));
      }
      atoms.push_back(Atom(predicate, std::move(args)));
    }
  }
  return atoms;
}

std::size_t Database::TotalFacts() const {
  std::size_t total = 0;
  for (const Relation& relation : relations_) total += relation.size();
  return total;
}

std::vector<std::string> Database::DecodeTuple(const Tuple& tuple) const {
  std::vector<std::string> decoded;
  decoded.reserve(tuple.size());
  for (int id : tuple) decoded.push_back(dictionary_.NameOf(id));
  return decoded;
}

std::string Database::ToString() const {
  // Render relations alphabetically for a stable, id-independent listing.
  std::vector<PredicateId> order(relations_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<PredicateId>(i);
  }
  std::sort(order.begin(), order.end(), [this](PredicateId a, PredicateId b) {
    return predicates_.NameOf(a) < predicates_.NameOf(b);
  });
  std::string out;
  for (PredicateId id : order) {
    for (const Tuple& tuple : relations_[id].SortedTuples()) {
      out += StrCat(predicates_.NameOf(id), "(",
                    StrJoin(DecodeTuple(tuple), ", "), ").\n");
    }
  }
  return out;
}

}  // namespace datalog
