#include "src/engine/database.h"

#include <algorithm>
#include <set>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {

int ConstantDictionary::Intern(const std::string& name) {
  auto [it, inserted] = ids_.emplace(name, static_cast<int>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

int ConstantDictionary::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? -1 : it->second;
}

const std::string& ConstantDictionary::NameOf(int id) const {
  DATALOG_CHECK_GE(id, 0);
  DATALOG_CHECK_LT(static_cast<std::size_t>(id), names_.size());
  return names_[id];
}

bool Relation::Insert(Tuple tuple) {
  DATALOG_CHECK_EQ(tuple.size(), arity_);
  return tuples_.insert(std::move(tuple)).second;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> sorted(tuples_.begin(), tuples_.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void Database::AddFact(const std::string& predicate,
                       const std::vector<std::string>& constants) {
  Tuple tuple;
  tuple.reserve(constants.size());
  for (const std::string& c : constants) tuple.push_back(dictionary_.Intern(c));
  AddTuple(predicate, std::move(tuple));
}

Status Database::AddFactAtom(const Atom& atom) {
  std::vector<std::string> constants;
  constants.reserve(atom.arity());
  for (const Term& t : atom.args()) {
    if (!t.is_constant()) {
      return InvalidArgumentError(
          StrCat("non-ground fact atom: ", atom.ToString()));
    }
    constants.push_back(t.name());
  }
  AddFact(atom.predicate(), constants);
  return OkStatus();
}

void Database::AddTuple(const std::string& predicate, Tuple tuple) {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) {
    it = relations_.emplace(predicate, Relation(tuple.size())).first;
  }
  it->second.Insert(std::move(tuple));
}

const Relation& Database::GetRelation(const std::string& predicate,
                                      std::size_t arity) const {
  static const Relation* empty_relations = new Relation[16];
  auto it = relations_.find(predicate);
  if (it != relations_.end()) {
    DATALOG_CHECK_EQ(it->second.arity(), arity)
        << "predicate " << predicate << " arity mismatch";
    return it->second;
  }
  DATALOG_CHECK_LT(arity, std::size_t{16});
  // Shared empty relations, one per small arity.
  static bool initialized = [] {
    for (std::size_t a = 0; a < 16; ++a) {
      const_cast<Relation&>(empty_relations[a]) = Relation(a);
    }
    return true;
  }();
  (void)initialized;
  return empty_relations[arity];
}

std::vector<int> Database::ActiveDomain() const {
  std::set<int> domain;
  for (const auto& [name, relation] : relations_) {
    for (const Tuple& tuple : relation.tuples()) {
      domain.insert(tuple.begin(), tuple.end());
    }
  }
  return std::vector<int>(domain.begin(), domain.end());
}

std::size_t Database::TotalFacts() const {
  std::size_t total = 0;
  for (const auto& [name, relation] : relations_) total += relation.size();
  return total;
}

std::vector<std::string> Database::DecodeTuple(const Tuple& tuple) const {
  std::vector<std::string> decoded;
  decoded.reserve(tuple.size());
  for (int id : tuple) decoded.push_back(dictionary_.NameOf(id));
  return decoded;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, relation] : relations_) {
    for (const Tuple& tuple : relation.SortedTuples()) {
      out += StrCat(name, "(", StrJoin(DecodeTuple(tuple), ", "), ").\n");
    }
  }
  return out;
}

}  // namespace datalog
