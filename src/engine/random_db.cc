#include "src/engine/random_db.h"

#include <random>

#include "src/util/strings.h"

namespace datalog {

Database RandomDatabase(const std::map<std::string, std::size_t>& signature,
                        const RandomDbOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> pick(0, options.domain_size - 1);
  Database db;
  // Intern the whole domain so the active domain is stable even if some
  // constant never appears in a tuple.
  for (int i = 0; i < options.domain_size; ++i) {
    db.dictionary().Intern(StrCat("c", i));
  }
  for (const auto& [predicate, arity] : signature) {
    for (int t = 0; t < options.tuples_per_relation; ++t) {
      Tuple tuple(arity);
      for (std::size_t i = 0; i < arity; ++i) tuple[i] = pick(rng);
      db.AddTuple(predicate, std::move(tuple));
    }
  }
  return db;
}

Database RandomDatabaseFor(const Program& program,
                           const RandomDbOptions& options) {
  std::map<std::string, std::size_t> signature;
  for (const std::string& predicate : program.EdbPredicates()) {
    signature[predicate] = program.PredicateArity(predicate);
  }
  return RandomDatabase(signature, options);
}

}  // namespace datalog
