// Hash column indexes over relations: given a pattern of bound columns
// (a bitmask) and their values, return exactly the rows that agree,
// instead of scanning the whole relation. An index can additionally
// carry a *distinct* mask: columns whose variables are still live
// downstream of the probing atom. Rows that agree on key and distinct
// columns are interchangeable for the rest of the join, so each bucket
// keeps one representative per distinct-projection — a projection pushed
// into the index (when the key and distinct masks cover every column,
// this degenerates to a plain equality index; with an empty distinct
// mask it is a semi-join existence bucket).
//
// Indexes are built lazily the first time the evaluator probes a
// (relation, key-mask, distinct-mask) triple and are brought up to date
// incrementally: relations are append-only, so an index only needs to
// absorb the rows added since it last looked (equivalent to
// invalidate-on-insert, without the rebuild). Like Relation, all hash
// structures are flat open-addressing tables over int arenas — the
// probe path chases no list nodes.
#ifndef DATALOG_EQ_SRC_ENGINE_INDEX_H_
#define DATALOG_EQ_SRC_ENGINE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/engine/database.h"
#include "src/util/flat_table.h"

namespace datalog {

/// Index maintenance counters, folded into EvalStats by the evaluator.
struct IndexCounters {
  /// Number of distinct (relation, column-pattern) indexes constructed.
  std::size_t index_builds = 0;
  /// Total rows absorbed into index buckets (builds plus catch-ups).
  std::size_t tuples_indexed = 0;
};

/// A hash index over one relation for one pattern of bound columns. Maps
/// the projection of a row onto the pattern's columns to the list of row
/// indexes (into the relation's row order) with that projection. With a
/// nonzero `distinct_mask`, buckets are thinned to one representative
/// per projection onto the key+distinct columns.
class ColumnIndex {
 public:
  ColumnIndex(std::size_t arity, std::uint32_t key_mask,
              std::uint32_t distinct_mask);

  std::uint32_t key_mask() const { return key_mask_; }
  std::uint32_t distinct_mask() const { return distinct_mask_; }
  bool projecting() const { return projecting_; }

  /// Absorbs rows [consumed(), relation.size()) into the buckets.
  void Update(const Relation& relation, IndexCounters* counters);

  /// Number of rows already absorbed.
  std::size_t consumed() const { return consumed_; }

  /// Row indexes whose key columns equal `key` (the bound values listed
  /// in ascending column order), or nullptr when no row matches.
  const std::vector<std::uint32_t>* Probe(const Tuple& key) const {
    std::uint32_t index = keys_.Find(key.data());
    return index == FlatKeyTable::kNotFound ? nullptr : &buckets_[index];
  }

 private:
  std::uint32_t key_mask_;
  std::uint32_t distinct_mask_;
  bool projecting_;
  std::vector<int> key_columns_;       // columns in key_mask, ascending
  std::vector<int> distinct_columns_;  // columns in key|distinct, ascending
  std::size_t consumed_ = 0;
  FlatKeyTable keys_;
  std::vector<std::vector<std::uint32_t>> buckets_;  // parallel to keys_
  // Projections (onto distinct_columns_) already represented in a bucket.
  FlatKeyTable seen_;
  Tuple scratch_;  // reusable projection buffer for Update
};

/// The lazily-built set of column indexes for one relation, one per
/// probed (key-mask, distinct-mask) pattern.
class RelationIndex {
 public:
  /// The up-to-date index for the given masks over `relation`, building
  /// or catching it up as needed. The returned reference is valid until
  /// the next Clear.
  const ColumnIndex& Get(const Relation& relation, std::uint32_t key_mask,
                         std::uint32_t distinct_mask,
                         IndexCounters* counters);

  void Clear() { by_pattern_.clear(); }

 private:
  std::unordered_map<std::uint64_t, ColumnIndex> by_pattern_;
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ENGINE_INDEX_H_
