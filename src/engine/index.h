// Hash column indexes over relations: given a pattern of bound columns
// (a bitmask) and their values, return exactly the rows that agree,
// instead of scanning the whole relation. An index can additionally
// carry a *distinct* mask: columns whose variables are still live
// downstream of the probing atom. Rows that agree on key and distinct
// columns are interchangeable for the rest of the join, so each bucket
// keeps one representative per distinct-projection — a projection pushed
// into the index (when the key and distinct masks cover every column,
// this degenerates to a plain equality index; with an empty distinct
// mask it is a semi-join existence bucket).
//
// Indexes are built lazily the first time the evaluator probes a
// (relation, key-mask, distinct-mask) triple and are brought up to date
// incrementally: relations are append-only, so an index only needs to
// absorb the rows added since it last looked (equivalent to
// invalidate-on-insert, without the rebuild). Like Relation, all hash
// structures are flat open-addressing tables over int arenas — the
// probe path chases no list nodes.
#ifndef DATALOG_EQ_SRC_ENGINE_INDEX_H_
#define DATALOG_EQ_SRC_ENGINE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/engine/database.h"
#include "src/util/flat_table.h"

namespace datalog {

/// Index maintenance counters, folded into EvalStats by the evaluator.
struct IndexCounters {
  /// Number of distinct (relation, column-pattern) indexes constructed.
  std::size_t index_builds = 0;
  /// Total rows absorbed into index buckets (builds plus catch-ups).
  std::size_t tuples_indexed = 0;
};

/// Bucket-distribution summary of one ColumnIndex, maintained
/// incrementally by Update (no bucket walk to read). The cost-based join
/// planner scores candidate probes with these: the expected candidate
/// rows of a probe with this index's bound columns is the average bucket
/// size, and num_buckets doubles as a distinct-values estimate of the
/// key projection (it is the key table's size).
struct ColumnIndexStats {
  /// Distinct key projections seen — the number of buckets.
  std::size_t num_buckets = 0;
  /// Rows represented in buckets (after projection thinning, so at most
  /// rows_consumed).
  std::size_t rows_bucketed = 0;
  /// Relation rows absorbed so far (the index's consumed watermark).
  std::size_t rows_consumed = 0;
  /// Size of the largest bucket — the worst-case probe fan-out.
  std::size_t max_bucket = 0;

  /// Expected candidate rows of an equality probe (0 for an empty
  /// index).
  std::size_t AvgBucket() const {
    return num_buckets == 0 ? 0 : rows_bucketed / num_buckets;
  }
};

/// Flat bucket storage shared by every bucket of one index: row indexes
/// live in fixed-width chunks inside a single arena, and a per-bucket
/// offsets directory (head chunk, tail chunk, total rows) threads each
/// bucket's chunks together — the VarKeyTable layout idiom (one arena +
/// an offsets directory) adapted to buckets that keep growing after
/// later buckets have started. Replaces the vector-of-vectors bucket
/// lists: no per-bucket heap allocation, and small buckets (the common
/// case) are one chunk touched right next to their neighbours.
class BucketArena {
 public:
  static constexpr std::uint32_t kNull = 0xffffffffu;
  /// Rows per chunk: with the header words this keeps a chunk one cache
  /// line, so iterating a large bucket chases one pointer per 14 rows
  /// while a single-row bucket still costs only one line.
  static constexpr std::size_t kChunkRows = 14;
  /// Buckets with more than this many chunks materialize a chunk-id
  /// directory so delta seeks (SkipBelow) binary-search instead of
  /// walking chunk headers linearly. The common small bucket never pays
  /// the directory's per-bucket allocation; a hub bucket pays it once,
  /// at the append that crosses the threshold.
  static constexpr std::size_t kDirThresholdChunks = 4;

  struct Chunk {
    std::uint32_t next = kNull;
    std::uint32_t count = 0;
    std::uint32_t rows[kChunkRows];
  };

  /// Directory entry of one bucket.
  struct Bucket {
    std::uint32_t head = kNull;
    std::uint32_t tail = kNull;
    std::uint32_t size = 0;
    std::uint32_t dir = kNull;  // index into the chunk-id directories
  };

  /// Appends an empty bucket to the directory; returns its id (dense,
  /// in creation order — callers align bucket ids with key-table ids).
  std::uint32_t NewBucket() {
    buckets_.emplace_back();
    return static_cast<std::uint32_t>(buckets_.size() - 1);
  }

  /// Appends `row` to `bucket`. Rows must be appended in ascending
  /// order per bucket (relation row order), which iteration relies on.
  void Append(std::uint32_t bucket, std::uint32_t row) {
    Bucket& b = buckets_[bucket];
    if (b.tail == kNull || chunks_[b.tail].count == kChunkRows) {
      std::uint32_t fresh = static_cast<std::uint32_t>(chunks_.size());
      chunks_.emplace_back();
      if (b.tail == kNull) {
        b.head = fresh;
      } else {
        chunks_[b.tail].next = fresh;
      }
      b.tail = fresh;
      RecordChunk(&b, fresh);
    }
    Chunk& chunk = chunks_[b.tail];
    chunk.rows[chunk.count++] = row;
    ++b.size;
  }

  const Bucket& bucket(std::uint32_t id) const { return buckets_[id]; }
  const Chunk& chunk(std::uint32_t id) const { return chunks_[id]; }
  /// The bucket's chunk ids in chain order, or nullptr while it is below
  /// the directory threshold.
  const std::vector<std::uint32_t>* directory(const Bucket& b) const {
    return b.dir == kNull ? nullptr : &dirs_[b.dir];
  }

 private:
  // Tracks a freshly chained chunk in the bucket's directory,
  // materializing the directory (one walk over the existing chain) at
  // the append that crosses the threshold. Non-tail chunks are always
  // full, so the pre-append chunk count is exactly size / kChunkRows.
  void RecordChunk(Bucket* b, std::uint32_t fresh) {
    if (b->dir != kNull) {
      dirs_[b->dir].push_back(fresh);
      return;
    }
    if (b->size / kChunkRows + 1 <= kDirThresholdChunks) return;
    std::vector<std::uint32_t> ids;
    ids.reserve(b->size / kChunkRows + 1);
    for (std::uint32_t c = b->head; c != kNull; c = chunks_[c].next) {
      ids.push_back(c);
    }
    b->dir = static_cast<std::uint32_t>(dirs_.size());
    dirs_.push_back(std::move(ids));
  }

  std::vector<Bucket> buckets_;  // the offsets directory
  std::vector<Chunk> chunks_;    // the arena
  // Chunk-id directories of hub buckets (bucket.dir indexes this).
  std::vector<std::vector<std::uint32_t>> dirs_;
};

/// A hash index over one relation for one pattern of bound columns. Maps
/// the projection of a row onto the pattern's columns to the list of row
/// indexes (into the relation's row order) with that projection. With a
/// nonzero `distinct_mask`, buckets are thinned to one representative
/// per projection onto the key+distinct columns.
class ColumnIndex {
 public:
  /// A probe result: iterates the bucket's row indexes in ascending
  /// order, optionally skipping rows below a watermark (the semi-naive
  /// delta probe). Valid until the owning index's next Update.
  class BucketView {
   public:
    BucketView() = default;
    BucketView(const BucketArena* arena, const BucketArena::Bucket* bucket)
        : arena_(arena), bucket_(bucket) {}

    bool empty() const { return bucket_ == nullptr || bucket_->size == 0; }
    std::size_t size() const { return bucket_ == nullptr ? 0 : bucket_->size; }

    class Iterator {
     public:
      Iterator() = default;
      Iterator(const BucketArena* arena, std::uint32_t chunk,
               const std::vector<std::uint32_t>* dir = nullptr)
          : arena_(arena), chunk_(chunk), dir_(dir) {}

      bool done() const { return chunk_ == BucketArena::kNull; }
      std::uint32_t row() const {
        return arena_->chunk(chunk_).rows[offset_];
      }
      void Next() {
        const BucketArena::Chunk& c = arena_->chunk(chunk_);
        if (++offset_ >= c.count) {
          chunk_ = c.next;
          offset_ = 0;
        }
      }
      /// Advances to the first row >= `watermark`; rows ascend per
      /// bucket, so whole chunks whose last row is below the watermark
      /// are stepped over without touching their entries. A hub bucket
      /// past the directory threshold binary-searches its chunk-id
      /// directory instead of walking chunk headers linearly — the
      /// log-time seek the old contiguous bucket vectors allowed. The
      /// directory seek is position-free, so it only applies to an
      /// iterator still at the bucket's start (the delta-probe pattern);
      /// an already-advanced iterator falls back to the linear walk,
      /// which never moves backwards.
      void SkipBelow(std::uint32_t watermark) {
        if (dir_ != nullptr && offset_ == 0 && chunk_ == (*dir_)[0]) {
          const std::vector<std::uint32_t>& dir = *dir_;
          std::size_t lo = 0;
          std::size_t hi = dir.size();
          while (lo < hi) {  // first chunk whose last row >= watermark
            std::size_t mid = lo + (hi - lo) / 2;
            const BucketArena::Chunk& c = arena_->chunk(dir[mid]);
            if (c.rows[c.count - 1] < watermark) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          if (lo == dir.size()) {
            chunk_ = BucketArena::kNull;
            return;
          }
          chunk_ = dir[lo];
        }
        while (chunk_ != BucketArena::kNull) {
          const BucketArena::Chunk& c = arena_->chunk(chunk_);
          if (c.rows[c.count - 1] < watermark) {
            chunk_ = c.next;
            offset_ = 0;
            continue;
          }
          while (offset_ < c.count && c.rows[offset_] < watermark) {
            ++offset_;
          }
          return;
        }
      }

     private:
      const BucketArena* arena_ = nullptr;
      std::uint32_t chunk_ = BucketArena::kNull;
      std::uint32_t offset_ = 0;
      const std::vector<std::uint32_t>* dir_ = nullptr;
    };

    Iterator begin() const {
      if (empty()) return Iterator();
      return Iterator(arena_, bucket_->head, arena_->directory(*bucket_));
    }

   private:
    const BucketArena* arena_ = nullptr;
    const BucketArena::Bucket* bucket_ = nullptr;
  };

  ColumnIndex(std::size_t arity, std::uint32_t key_mask,
              std::uint32_t distinct_mask);

  std::uint32_t key_mask() const { return key_mask_; }
  std::uint32_t distinct_mask() const { return distinct_mask_; }
  bool projecting() const { return projecting_; }

  /// Absorbs rows [consumed(), relation.size()) into the buckets.
  void Update(const Relation& relation, IndexCounters* counters);

  /// Number of rows already absorbed.
  std::size_t consumed() const { return consumed_; }

  /// Bucket-distribution summary, maintained incrementally by Update —
  /// reading it never walks a bucket.
  ColumnIndexStats stats() const {
    ColumnIndexStats s;
    s.num_buckets = keys_.size();
    s.rows_bucketed = rows_bucketed_;
    s.rows_consumed = consumed_;
    s.max_bucket = max_bucket_;
    return s;
  }

  /// Row indexes whose key columns equal `key` (the bound values listed
  /// in ascending column order); empty when no row matches.
  BucketView Probe(const Tuple& key) const {
    std::uint32_t index = keys_.Find(key.data());
    if (index == FlatKeyTable::kNotFound) return BucketView();
    return BucketView(&arena_, &arena_.bucket(index));
  }

 private:
  std::uint32_t key_mask_;
  std::uint32_t distinct_mask_;
  bool projecting_;
  std::vector<int> key_columns_;       // columns in key_mask, ascending
  std::vector<int> distinct_columns_;  // columns in key|distinct, ascending
  std::size_t consumed_ = 0;
  std::size_t rows_bucketed_ = 0;  // rows appended across all buckets
  std::size_t max_bucket_ = 0;     // size of the fattest bucket
  FlatKeyTable keys_;
  BucketArena arena_;  // bucket id == key id in keys_
  // Projections (onto distinct_columns_) already represented in a bucket.
  FlatKeyTable seen_;
  Tuple scratch_;  // reusable projection buffer for Update
};

/// The lazily-built set of column indexes for one relation, one per
/// probed (key-mask, distinct-mask) pattern.
class RelationIndex {
 public:
  /// The up-to-date index for the given masks over `relation`, building
  /// or catching it up as needed. The returned reference is valid until
  /// the next Clear.
  const ColumnIndex& Get(const Relation& relation, std::uint32_t key_mask,
                         std::uint32_t distinct_mask,
                         IndexCounters* counters);

  /// The already-built index with the given key mask whose stats best
  /// describe the relation, or nullptr when every such index is cold
  /// (never built). Purely a read — never builds or catches up an
  /// index, so the planner can consult it without perturbing
  /// index_builds/tuples_indexed. The pick is deterministic (most rows
  /// bucketed, ties to the smallest distinct mask) rather than map
  /// iteration order.
  const ColumnIndex* FindForKeyMask(std::uint32_t key_mask) const;

  void Clear() { by_pattern_.clear(); }

 private:
  std::unordered_map<std::uint64_t, ColumnIndex> by_pattern_;
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ENGINE_INDEX_H_
