// Bottom-up Datalog evaluation: naive and semi-naive fixpoint computation
// of Q_Π(D) (paper §2.1). Unsafe rules (head variables not bound by the
// body, e.g. `dist0(x, x) :- .` from Example 6.2) are evaluated with
// active-domain semantics: unbound variables range over the active domain
// of the input database.
//
// The engine works entirely over dense integer ids (constants and
// predicates are interned), probes hash column indexes instead of
// scanning relations (src/engine/index.h), and reorders each rule body
// at runtime — by default with a cost model over the indexes' bucket
// statistics, with compiled plans cached per (rule, delta position);
// the greedy (bound variables, relation size) planner survives as the
// ablation baseline. The index, reordering, and cost-based legs can be
// switched off independently for ablation benchmarks.
#ifndef DATALOG_EQ_SRC_ENGINE_EVAL_H_
#define DATALOG_EQ_SRC_ENGINE_EVAL_H_

#include "src/ast/rule.h"
#include "src/cq/cq.h"
#include "src/engine/database.h"
#include "src/util/governor.h"

namespace datalog {

struct EvalOptions {
  /// Use semi-naive (delta-driven) iteration instead of naive re-derivation.
  bool semi_naive = true;
  /// Probe lazily-built hash column indexes instead of scanning every
  /// tuple of every body relation (ablation switch).
  bool use_index = true;
  /// Greedily reorder body atoms per evaluation by (bound variables,
  /// relation size) instead of using textual order (ablation switch).
  bool reorder_joins = true;
  /// Cost-based planning: order body atoms by estimated candidate
  /// cardinality from ColumnIndex bucket statistics (falling back to
  /// relation size while an index is cold) instead of the greedy
  /// (bound-count, size) rule, and cache the compiled plan per
  /// (rule, delta position), keyed on the size watermarks of the
  /// participating relations, so steady-state rounds stamp cached plans
  /// instead of re-planning. Off reproduces the greedy planner verbatim
  /// — re-planned on every rule evaluation, no cache (ablation switch;
  /// the fixpoint is identical either way, as a tuple set). Ordering
  /// only applies when reorder_joins is on; caching applies regardless.
  bool cost_based = true;
  /// Worker threads for the fixpoint. 1 (default) is the serial engine —
  /// bit-for-bit the pre-parallel code path, with chaotic in-round
  /// insertion. 0 resolves to the hardware concurrency. Any value > 1
  /// switches to staged parallel rounds: rules fan out across a worker
  /// pool against the frozen pre-round database, derived tuples are
  /// staged into per-task shard buffers, and a sharded merge dedups and
  /// appends them. The fixpoint (every relation, as a tuple set) is
  /// identical to the serial engine's for every other option
  /// combination, and identical run-to-run for any fixed thread count
  /// (see docs/engine.md, "Parallel evaluation").
  int num_threads = 1;
  /// Staging shards for parallel rounds; 0 picks the default (a fixed
  /// count, so parallel results do not depend on the thread count).
  /// Ignored when num_threads resolves to 1.
  int num_shards = 0;
  /// Run the fixpoint per SCC-stratum of the dependence graph
  /// (src/analysis/stratify.h), dependencies first: each lower stratum is
  /// computed to fixpoint once, and only the current component's rules
  /// iterate. The least fixpoint — every relation, as a tuple set — is
  /// identical with this off (ablation switch); row order within a
  /// relation may differ. Composes with naive/semi-naive and with the
  /// parallel staged rounds (each stratum runs its own staged rounds on
  /// the shared pool). EvalStats::strata counts the rule groups executed
  /// and EvalStats::rounds_saved the avoided rule-round evaluations.
  bool use_strata = true;
  /// The governed bounds (src/util/governor.h): deadline, CancelToken,
  /// fault injection, and the derived-fact cap (`limits.max_facts`,
  /// resolving 0 to 50M — the pre-governor `max_derived_facts` default).
  /// Both fixpoints poll the governor at deterministic boundaries: the
  /// serial engine before every rule evaluation and every 1024 emissions,
  /// the parallel engine additionally at round starts and task starts —
  /// so a cancelled run stops within one bounded unit of work and still
  /// reports consistent EvalStats (counters are folded in task order
  /// before the error returns).
  ExecutionLimits limits;
};

struct EvalStats {
  /// Number of fixpoint rounds until no new facts appear.
  int iterations = 0;
  /// Number of distinct IDB facts derived.
  std::size_t facts_derived = 0;
  /// Number of candidate tuples examined while matching rule bodies (a
  /// work proxy; with indexes on, only index-bucket candidates count).
  std::size_t join_probes = 0;
  /// Number of hash lookups into column indexes.
  std::size_t index_probes = 0;
  /// Number of distinct (relation, column-pattern) indexes built.
  std::size_t index_builds = 0;
  /// Total rows absorbed into index buckets (builds plus catch-ups).
  std::size_t tuples_indexed = 0;
  /// Fixpoint rounds executed as staged parallel rounds (0 on the
  /// serial path).
  int rounds_parallel = 0;
  /// Tuples staged into shard buffers by parallel-round tasks
  /// (duplicates included; the merge phase dedups them).
  std::size_t tuples_staged = 0;
  /// Staged tuples dropped by the merge phase as duplicates — already
  /// in the relation before the round, or staged more than once within
  /// it.
  std::size_t merge_collisions = 0;
  /// Rule groups executed by the fixpoint: the number of (nonempty) SCC
  /// strata with use_strata on, else 1 per evaluation.
  int strata = 0;
  /// Rule-round evaluations avoided by stratification: for every round,
  /// the rules outside the current stratum that an unstratified round
  /// would have considered. 0 when use_strata is off or the program is a
  /// single stratum.
  std::size_t rounds_saved = 0;
  /// Rule evaluations that stamped a cached join plan instead of
  /// re-planning (cost_based only).
  std::size_t plans_cached = 0;
  /// Join plans built: first-time plans plus rebuilds after a
  /// participating relation outgrew its recorded watermark (cost_based
  /// only). Flat per round once the fixpoint's relation sizes settle.
  std::size_t plans_rebuilt = 0;
  /// Sum of the cost model's estimated candidate cardinality over every
  /// placed plan step (cost_based with reorder_joins only; cached
  /// stamps do not re-count). A cross-check that the model's estimates
  /// track join_probes in shape.
  std::size_t est_cost_total = 0;

  /// Folds `other`'s counters into this one (drivers that evaluate many
  /// databases — e.g. per-disjunct canonical-database checks — fold
  /// per-evaluation stats in a deterministic order).
  void Accumulate(const EvalStats& other) {
    iterations += other.iterations;
    facts_derived += other.facts_derived;
    join_probes += other.join_probes;
    index_probes += other.index_probes;
    index_builds += other.index_builds;
    tuples_indexed += other.tuples_indexed;
    rounds_parallel += other.rounds_parallel;
    tuples_staged += other.tuples_staged;
    merge_collisions += other.merge_collisions;
    strata += other.strata;
    rounds_saved += other.rounds_saved;
    plans_cached += other.plans_cached;
    plans_rebuilt += other.plans_rebuilt;
    est_cost_total += other.est_cost_total;
  }
};

/// The worker count EvalOptions::num_threads resolves to: 0 means the
/// hardware concurrency, anything below 1 clamps to 1. The one place
/// the resolution rule lives — the engine's fixpoint and the
/// canonical-database disjunct fan-out both consult it.
std::size_t ResolvedEvalThreads(const EvalOptions& options);

/// Evaluates `program` over `edb` and returns a database containing both
/// the input facts and all derived IDB facts. The input database's
/// dictionary is extended with any constants appearing in the program.
StatusOr<Database> EvaluateProgram(const Program& program, const Database& edb,
                                   const EvalOptions& options = {},
                                   EvalStats* stats = nullptr);

/// Evaluates Q_Π(D): the relation of the goal predicate after evaluation.
StatusOr<Relation> EvaluateGoal(const Program& program,
                                const std::string& goal_predicate,
                                const Database& edb,
                                const EvalOptions& options = {},
                                EvalStats* stats = nullptr);

/// Evaluates a union of conjunctive queries directly over `edb` (no
/// recursion involved), returning the set of satisfying head tuples.
StatusOr<Relation> EvaluateUcq(const UnionOfCqs& ucq, const Database& edb);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ENGINE_EVAL_H_
