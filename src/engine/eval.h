// Bottom-up Datalog evaluation: naive and semi-naive fixpoint computation
// of Q_Π(D) (paper §2.1). Unsafe rules (head variables not bound by the
// body, e.g. `dist0(x, x) :- .` from Example 6.2) are evaluated with
// active-domain semantics: unbound variables range over the active domain
// of the input database.
#ifndef DATALOG_EQ_SRC_ENGINE_EVAL_H_
#define DATALOG_EQ_SRC_ENGINE_EVAL_H_

#include "src/ast/rule.h"
#include "src/cq/cq.h"
#include "src/engine/database.h"

namespace datalog {

struct EvalOptions {
  /// Use semi-naive (delta-driven) iteration instead of naive re-derivation.
  bool semi_naive = true;
  /// Abort with ResourceExhausted if more than this many facts are derived.
  std::size_t max_derived_facts = 50'000'000;
};

struct EvalStats {
  /// Number of fixpoint rounds until no new facts appear.
  int iterations = 0;
  /// Number of distinct IDB facts derived.
  std::size_t facts_derived = 0;
  /// Number of rule-body match attempts (join probe count), a work proxy.
  std::size_t join_probes = 0;
};

/// Evaluates `program` over `edb` and returns a database containing both
/// the input facts and all derived IDB facts. The input database's
/// dictionary is extended with any constants appearing in the program.
StatusOr<Database> EvaluateProgram(const Program& program, const Database& edb,
                                   const EvalOptions& options = {},
                                   EvalStats* stats = nullptr);

/// Evaluates Q_Π(D): the relation of the goal predicate after evaluation.
StatusOr<Relation> EvaluateGoal(const Program& program,
                                const std::string& goal_predicate,
                                const Database& edb,
                                const EvalOptions& options = {},
                                EvalStats* stats = nullptr);

/// Evaluates a union of conjunctive queries directly over `edb` (no
/// recursion involved), returning the set of satisfying head tuples.
StatusOr<Relation> EvaluateUcq(const UnionOfCqs& ucq, const Database& edb);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ENGINE_EVAL_H_
