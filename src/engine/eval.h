// Bottom-up Datalog evaluation: naive and semi-naive fixpoint computation
// of Q_Π(D) (paper §2.1). Unsafe rules (head variables not bound by the
// body, e.g. `dist0(x, x) :- .` from Example 6.2) are evaluated with
// active-domain semantics: unbound variables range over the active domain
// of the input database.
//
// The engine works entirely over dense integer ids (constants and
// predicates are interned), probes hash column indexes instead of
// scanning relations (src/engine/index.h), and greedily reorders each
// rule body at runtime by (bound variables, relation size) — including
// the delta atom in semi-naive rounds. The index and reordering legs can
// be switched off independently for ablation benchmarks.
#ifndef DATALOG_EQ_SRC_ENGINE_EVAL_H_
#define DATALOG_EQ_SRC_ENGINE_EVAL_H_

#include "src/ast/rule.h"
#include "src/cq/cq.h"
#include "src/engine/database.h"

namespace datalog {

struct EvalOptions {
  /// Use semi-naive (delta-driven) iteration instead of naive re-derivation.
  bool semi_naive = true;
  /// Probe lazily-built hash column indexes instead of scanning every
  /// tuple of every body relation (ablation switch).
  bool use_index = true;
  /// Greedily reorder body atoms per evaluation by (bound variables,
  /// relation size) instead of using textual order (ablation switch).
  bool reorder_joins = true;
  /// Abort with ResourceExhausted if more than this many facts are derived.
  std::size_t max_derived_facts = 50'000'000;
};

struct EvalStats {
  /// Number of fixpoint rounds until no new facts appear.
  int iterations = 0;
  /// Number of distinct IDB facts derived.
  std::size_t facts_derived = 0;
  /// Number of candidate tuples examined while matching rule bodies (a
  /// work proxy; with indexes on, only index-bucket candidates count).
  std::size_t join_probes = 0;
  /// Number of hash lookups into column indexes.
  std::size_t index_probes = 0;
  /// Number of distinct (relation, column-pattern) indexes built.
  std::size_t index_builds = 0;
  /// Total rows absorbed into index buckets (builds plus catch-ups).
  std::size_t tuples_indexed = 0;
};

/// Evaluates `program` over `edb` and returns a database containing both
/// the input facts and all derived IDB facts. The input database's
/// dictionary is extended with any constants appearing in the program.
StatusOr<Database> EvaluateProgram(const Program& program, const Database& edb,
                                   const EvalOptions& options = {},
                                   EvalStats* stats = nullptr);

/// Evaluates Q_Π(D): the relation of the goal predicate after evaluation.
StatusOr<Relation> EvaluateGoal(const Program& program,
                                const std::string& goal_predicate,
                                const Database& edb,
                                const EvalOptions& options = {},
                                EvalStats* stats = nullptr);

/// Evaluates a union of conjunctive queries directly over `edb` (no
/// recursion involved), returning the set of satisfying head tuples.
StatusOr<Relation> EvaluateUcq(const UnionOfCqs& ucq, const Database& edb);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ENGINE_EVAL_H_
