// Seeded random database generation for differential testing: equivalence
// claims are spot-checked by evaluating both sides on many random
// databases.
#ifndef DATALOG_EQ_SRC_ENGINE_RANDOM_DB_H_
#define DATALOG_EQ_SRC_ENGINE_RANDOM_DB_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/ast/rule.h"
#include "src/engine/database.h"

namespace datalog {

struct RandomDbOptions {
  /// Number of distinct constants ("c0".."c{n-1}").
  int domain_size = 4;
  /// Expected number of tuples per relation (sampled with replacement).
  int tuples_per_relation = 6;
  std::uint64_t seed = 1;
};

/// Generates a random database over the given EDB signature
/// (predicate -> arity).
Database RandomDatabase(const std::map<std::string, std::size_t>& signature,
                        const RandomDbOptions& options);

/// Convenience: random database over the EDB predicates of `program`.
Database RandomDatabaseFor(const Program& program,
                           const RandomDbOptions& options);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ENGINE_RANDOM_DB_H_
