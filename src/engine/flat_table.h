// An open-addressing hash table interning fixed-width int keys into
// dense indexes 0..size()-1, stored flat (one contiguous arena, linear
// probing, power-of-two capacity, load factor <= 1/2). This is the one
// probing scheme behind the engine's hot-path hash structures: Relation
// uses it as its row store (the key arena IS the row arena), and the
// column indexes (src/engine/index.h) use it for bucket keys and
// projection dedup.
#ifndef DATALOG_EQ_SRC_ENGINE_FLAT_TABLE_H_
#define DATALOG_EQ_SRC_ENGINE_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace datalog {

class FlatKeyTable {
 public:
  explicit FlatKeyTable(std::size_t width) : width_(width) {}

  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  std::size_t width() const { return width_; }
  std::size_t size() const { return size_; }
  /// The interned key at `index` (width() ints, contiguous). The
  /// pointer is invalidated by the next Intern; the index never is.
  const int* KeyData(std::size_t index) const {
    return arena_.data() + index * width_;
  }

  /// Interns `key` (width() ints); returns its dense index and whether
  /// it was new.
  std::pair<std::uint32_t, bool> Intern(const int* key);
  /// Returns the dense index of `key`, or kNotFound.
  std::uint32_t Find(const int* key) const;

 private:
  std::size_t Hash(const int* key) const;
  bool KeyEquals(std::size_t index, const int* key) const;
  void Grow();

  std::size_t width_;
  std::size_t size_ = 0;
  std::vector<int> arena_;  // size_ * width_ ints, keys back to back
  std::vector<std::uint32_t> slots_;  // key index + 1; 0 means empty
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ENGINE_FLAT_TABLE_H_
