#include "src/engine/index.h"

#include "src/util/logging.h"

namespace datalog {
namespace {

std::vector<int> MaskColumns(std::size_t arity, std::uint32_t mask) {
  std::vector<int> columns;
  for (std::size_t c = 0; c < arity; ++c) {
    if (mask & (1u << c)) columns.push_back(static_cast<int>(c));
  }
  return columns;
}

void Project(const int* row, const std::vector<int>& columns, Tuple* out) {
  out->clear();
  for (int c : columns) out->push_back(row[c]);
}

}  // namespace

ColumnIndex::ColumnIndex(std::size_t arity, std::uint32_t key_mask,
                         std::uint32_t distinct_mask)
    : key_mask_(key_mask),
      distinct_mask_(distinct_mask),
      // A row is redundant iff another row agrees on key and distinct
      // columns; with every column covered no two distinct rows can
      // agree, so the dedup pass would be pure overhead.
      projecting_((key_mask | distinct_mask) !=
                  (arity >= 32 ? ~0u : (1u << arity) - 1u)),
      key_columns_(MaskColumns(arity, key_mask)),
      distinct_columns_(MaskColumns(arity, key_mask | distinct_mask)),
      keys_(key_columns_.size()),
      seen_(projecting_ ? distinct_columns_.size() : 0) {
  DATALOG_CHECK_LT(arity, std::size_t{32});
}

void ColumnIndex::Update(const Relation& relation, IndexCounters* counters) {
  for (; consumed_ < relation.size(); ++consumed_) {
    const int* row = relation.RowData(consumed_);
    if (projecting_) {
      Project(row, distinct_columns_, &scratch_);
      if (!seen_.Intern(scratch_.data()).second) {
        continue;  // an interchangeable representative is already bucketed
      }
    }
    Project(row, key_columns_, &scratch_);
    auto [key_index, inserted] = keys_.Intern(scratch_.data());
    if (inserted) arena_.NewBucket();
    arena_.Append(key_index, static_cast<std::uint32_t>(consumed_));
    ++rows_bucketed_;
    std::size_t bucket_size = arena_.bucket(key_index).size;
    if (bucket_size > max_bucket_) max_bucket_ = bucket_size;
    if (counters != nullptr) ++counters->tuples_indexed;
  }
}

const ColumnIndex& RelationIndex::Get(const Relation& relation,
                                      std::uint32_t key_mask,
                                      std::uint32_t distinct_mask,
                                      IndexCounters* counters) {
  std::uint64_t pattern =
      (static_cast<std::uint64_t>(key_mask) << 32) | distinct_mask;
  auto it = by_pattern_.find(pattern);
  if (it == by_pattern_.end()) {
    it = by_pattern_
             .emplace(pattern,
                      ColumnIndex(relation.arity(), key_mask, distinct_mask))
             .first;
    if (counters != nullptr) ++counters->index_builds;
  }
  it->second.Update(relation, counters);
  return it->second;
}

const ColumnIndex* RelationIndex::FindForKeyMask(
    std::uint32_t key_mask) const {
  const ColumnIndex* best = nullptr;
  for (const auto& [pattern, index] : by_pattern_) {
    if (static_cast<std::uint32_t>(pattern >> 32) != key_mask) continue;
    if (best == nullptr ||
        index.stats().rows_bucketed > best->stats().rows_bucketed ||
        (index.stats().rows_bucketed == best->stats().rows_bucketed &&
         index.distinct_mask() < best->distinct_mask())) {
      best = &index;
    }
  }
  return best;
}

}  // namespace datalog
