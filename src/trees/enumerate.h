// Bounded enumeration of unfolding expansion trees and proof trees.
//
// Used as a (semi-decision) test oracle: enumerating all trees up to a
// depth bound lets tests cross-check the automata-theoretic machinery tree
// by tree, and refute containment claims by exhibiting expansions.
#ifndef DATALOG_EQ_SRC_TREES_ENUMERATE_H_
#define DATALOG_EQ_SRC_TREES_ENUMERATE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/trees/expansion_tree.h"

namespace datalog {

struct EnumerateOptions {
  /// Maximum tree depth (a leaf-only tree has depth 1).
  std::size_t max_depth = 3;
  /// Stop after yielding this many trees.
  std::size_t max_trees = 1'000'000;
};

/// Calls `visit` for every unfolding expansion tree of `program` for goal
/// predicate `goal` with depth at most options.max_depth. Fresh variables
/// are named "_u0", "_u1", ... Returns false if enumeration was cut short
/// (visit returned false or max_trees hit); true if the bounded space was
/// exhausted.
bool EnumerateUnfoldingTrees(
    const Program& program, const std::string& goal,
    const EnumerateOptions& options,
    const std::function<bool(const ExpansionTree&)>& visit);

/// Calls `visit` for every proof tree of `program` for goal predicate
/// `goal` with depth at most options.max_depth: root goals range over all
/// atoms of the goal predicate with variables in var(Π) (sized at least
/// `min_vars`), and body-only variables of each rule instance range over
/// all of var(Π). Exponential; intended for tiny programs in tests.
bool EnumerateProofTrees(
    const Program& program, const std::string& goal,
    const EnumerateOptions& options,
    const std::function<bool(const ExpansionTree&)>& visit,
    std::size_t min_vars = 0);

/// The expansions of the program up to the depth bound, as CQs
/// (Proposition 2.6 truncated at depth max_depth): the union of TreeToCq
/// over unfolding trees. Deduplicated syntactically via
/// SortedBodyCanonicalForm.
UnionOfCqs BoundedExpansions(const Program& program, const std::string& goal,
                             const EnumerateOptions& options);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_TREES_ENUMERATE_H_
