#include "src/trees/connectivity.h"

#include <unordered_set>

#include "src/util/strings.h"

namespace datalog {
namespace {

void Flatten(const ExpansionNode& node, std::size_t parent,
             std::vector<const ExpansionNode*>* nodes,
             std::vector<std::size_t>* parents) {
  std::size_t id = nodes->size();
  nodes->push_back(&node);
  parents->push_back(parent);
  for (const ExpansionNode& child : node.children) {
    Flatten(child, id, nodes, parents);
  }
}

}  // namespace

TreeConnectivity::TreeConnectivity(const ExpansionTree& tree)
    : union_find_(0) {
  Flatten(tree.root(), 0, &nodes_, &parents_);
  // Link rule: (x, v) ~ (parent(x), v) iff v occurs in the goal of x.
  for (std::size_t id = 1; id < nodes_.size(); ++id) {
    std::unordered_set<std::string> goal_vars;
    for (const Term& t : nodes_[id]->goal.args()) {
      if (t.is_variable()) goal_vars.insert(t.name());
    }
    for (const std::string& v : goal_vars) {
      union_find_.Union(Index(id, v), Index(parents_[id], v));
    }
  }
}

std::size_t TreeConnectivity::Index(std::size_t node_id,
                                    const std::string& var) {
  auto [it, inserted] = indices_.emplace(std::make_pair(node_id, var),
                                         union_find_.size());
  if (inserted) union_find_.Add();
  return it->second;
}

std::size_t TreeConnectivity::ClassOf(std::size_t node_id,
                                      const std::string& var) {
  return union_find_.Find(Index(node_id, var));
}

bool TreeConnectivity::Connected(std::size_t node1, std::size_t node2,
                                 const std::string& var) {
  return ClassOf(node1, var) == ClassOf(node2, var);
}

bool TreeConnectivity::IsDistinguishedOccurrence(std::size_t node_id,
                                                 const std::string& var) {
  bool in_root_goal = false;
  for (const Term& t : nodes_[0]->goal.args()) {
    if (t.is_variable() && t.name() == var) in_root_goal = true;
  }
  if (!in_root_goal) return false;
  return Connected(node_id, 0, var);
}

ExpansionNode TreeConnectivity::RenameNode(std::size_t node_id) {
  const ExpansionNode& original = *nodes_[node_id];
  Substitution rename;
  for (const std::string& v : original.rule.VariableNames()) {
    rename.emplace(v, Term::Variable(StrCat("_c", ClassOf(node_id, v))));
  }
  ExpansionNode renamed;
  renamed.rule = ApplySubstitution(rename, original.rule);
  renamed.goal = renamed.rule.head();
  renamed.idb_positions = original.idb_positions;
  // Children follow this node contiguously in preorder; walk them by
  // scanning for nodes whose parent is node_id, in order.
  for (std::size_t id = node_id + 1; id < nodes_.size(); ++id) {
    if (parents_[id] == node_id) renamed.children.push_back(RenameNode(id));
  }
  return renamed;
}

ExpansionTree TreeConnectivity::RenameByClass() {
  return ExpansionTree(RenameNode(0));
}

}  // namespace datalog
