#include "src/trees/enumerate.h"

#include <set>
#include <unordered_set>

#include "src/ast/analysis.h"
#include "src/util/iteration.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// Matches `pattern` (the rule head) against `target` (the goal atom),
// extending `subst`; false on clash.
bool MatchHead(const Atom& pattern, const Atom& target, Substitution* subst) {
  if (pattern.predicate() != target.predicate() ||
      pattern.arity() != target.arity()) {
    return false;
  }
  for (std::size_t i = 0; i < pattern.arity(); ++i) {
    const Term& p = pattern.args()[i];
    const Term& t = target.args()[i];
    if (p.is_constant()) {
      if (p != t) return false;
      continue;
    }
    auto [it, inserted] = subst->emplace(p.name(), t);
    if (!inserted && it->second != t) return false;
  }
  return true;
}

class TreeEnumerator {
 public:
  TreeEnumerator(const Program& program, const EnumerateOptions& options,
                 bool proof_mode, std::size_t min_vars)
      : program_(program),
        options_(options),
        proof_mode_(proof_mode),
        idb_(program.IdbPredicates()) {
    if (proof_mode_) {
      for (const std::string& name : ProofVariables(program, min_vars)) {
        proof_vars_.push_back(Term::Variable(name));
      }
    }
  }

  bool Run(const std::string& goal,
           const std::function<bool(const ExpansionTree&)>& visit) {
    std::vector<Atom> roots = RootAtoms(goal);
    for (const Atom& root : roots) {
      bool keep_going = ExpandGoal(
          root, options_.max_depth, [&](ExpansionNode node) {
            if (yielded_ >= options_.max_trees) return false;
            ++yielded_;
            ExpansionTree tree(std::move(node));
            return visit(tree);
          });
      if (!keep_going) return false;
    }
    return true;
  }

 private:
  std::vector<Atom> RootAtoms(const std::string& goal) {
    std::vector<Atom> roots;
    std::set<Atom> seen;
    if (proof_mode_) {
      // All goal-predicate atoms over var(Π).
      std::size_t arity = program_.PredicateArity(goal);
      std::vector<std::size_t> sizes(arity, proof_vars_.size());
      ForEachProduct(sizes, [&](const std::vector<std::size_t>& choice) {
        std::vector<Term> args;
        args.reserve(arity);
        for (std::size_t c : choice) args.push_back(proof_vars_[c]);
        Atom atom(goal, std::move(args));
        if (seen.insert(atom).second) roots.push_back(atom);
        return true;
      });
    } else {
      // Heads of rules for the goal predicate (Definition 2.4(a)).
      for (const Rule& rule : program_.rules()) {
        if (rule.head().predicate() == goal && seen.insert(rule.head()).second) {
          roots.push_back(rule.head());
        }
      }
    }
    return roots;
  }

  // Enumerates all subtrees for `goal` with depth at most `depth`,
  // passing each to `sink`. Returns false iff some sink call returned
  // false (abort).
  bool ExpandGoal(const Atom& goal, std::size_t depth,
                  const std::function<bool(ExpansionNode)>& sink) {
    if (depth == 0) return true;
    for (const Rule& rule : program_.rules()) {
      Substitution head_subst;
      if (!MatchHead(rule.head(), goal, &head_subst)) continue;
      // Variables of the rule not bound by the head.
      std::vector<std::string> free_vars;
      for (const std::string& v : rule.VariableNames()) {
        if (head_subst.count(v) == 0) free_vars.push_back(v);
      }
      bool keep_going = true;
      auto try_instance = [&](const Substitution& full_subst) {
        Rule instance = ApplySubstitution(full_subst, rule);
        std::vector<std::size_t> idb_positions;
        std::vector<Atom> child_goals;
        for (std::size_t i = 0; i < instance.body().size(); ++i) {
          if (idb_.count(instance.body()[i].predicate()) > 0) {
            idb_positions.push_back(i);
            child_goals.push_back(instance.body()[i]);
          }
        }
        if (!child_goals.empty() && depth == 1) return true;  // too deep
        std::vector<ExpansionNode> children;
        return ExpandChildren(child_goals, 0, depth - 1, &children, [&]() {
          ExpansionNode node;
          node.goal = goal;
          node.rule = instance;
          node.idb_positions = idb_positions;
          node.children = children;
          return sink(std::move(node));
        });
      };
      if (proof_mode_) {
        std::vector<std::size_t> sizes(free_vars.size(), proof_vars_.size());
        keep_going = ForEachProduct(
            sizes, [&](const std::vector<std::size_t>& choice) {
              Substitution full = head_subst;
              for (std::size_t i = 0; i < free_vars.size(); ++i) {
                full.emplace(free_vars[i], proof_vars_[choice[i]]);
              }
              return try_instance(full);
            });
      } else {
        Substitution full = head_subst;
        for (const std::string& v : free_vars) {
          full.emplace(v, Term::Variable(StrCat("_u", fresh_counter_++)));
        }
        keep_going = try_instance(full);
      }
      if (!keep_going) return false;
    }
    return true;
  }

  // Builds all forests for `goals[index..]` into `*acc`, invoking `done`
  // for each complete forest.
  bool ExpandChildren(const std::vector<Atom>& goals, std::size_t index,
                      std::size_t depth, std::vector<ExpansionNode>* acc,
                      const std::function<bool()>& done) {
    if (index == goals.size()) return done();
    return ExpandGoal(goals[index], depth, [&](ExpansionNode node) {
      acc->push_back(std::move(node));
      bool keep_going = ExpandChildren(goals, index + 1, depth, acc, done);
      acc->pop_back();
      return keep_going;
    });
  }

  const Program& program_;
  const EnumerateOptions& options_;
  const bool proof_mode_;
  std::set<std::string> idb_;
  std::vector<Term> proof_vars_;
  std::size_t yielded_ = 0;
  std::size_t fresh_counter_ = 0;
};

}  // namespace

bool EnumerateUnfoldingTrees(
    const Program& program, const std::string& goal,
    const EnumerateOptions& options,
    const std::function<bool(const ExpansionTree&)>& visit) {
  TreeEnumerator enumerator(program, options, /*proof_mode=*/false,
                            /*min_vars=*/0);
  return enumerator.Run(goal, visit);
}

bool EnumerateProofTrees(const Program& program, const std::string& goal,
                         const EnumerateOptions& options,
                         const std::function<bool(const ExpansionTree&)>& visit,
                         std::size_t min_vars) {
  TreeEnumerator enumerator(program, options, /*proof_mode=*/true, min_vars);
  return enumerator.Run(goal, visit);
}

UnionOfCqs BoundedExpansions(const Program& program, const std::string& goal,
                             const EnumerateOptions& options) {
  UnionOfCqs expansions;
  std::unordered_set<std::string> seen;
  EnumerateUnfoldingTrees(program, goal, options,
                          [&](const ExpansionTree& tree) {
                            ConjunctiveQuery cq = TreeToCq(program, tree);
                            std::string key =
                                SortedBodyCanonicalForm(cq).ToString();
                            if (seen.insert(key).second) expansions.Add(cq);
                            return true;
                          });
  return expansions;
}

}  // namespace datalog
