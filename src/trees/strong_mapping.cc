#include "src/trees/strong_mapping.h"

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trees/connectivity.h"
#include "src/util/logging.h"

namespace datalog {
namespace {

// An EDB atom occurrence in the tree: which node's rule body it sits in.
struct TargetAtom {
  std::size_t node_id;
  const Atom* atom;
};

// Binding of a theta variable: the image term; when the image is a tree
// variable, also the connectivity class all occurrences must share.
struct Binding {
  Term term;
  std::size_t class_id = 0;
  bool has_class = false;
};

class StrongMappingSearch {
 public:
  StrongMappingSearch(const Program& program, const ExpansionTree& tree,
                      const ConjunctiveQuery& theta)
      : theta_(theta), connectivity_(tree) {
    std::set<std::string> idb = program.IdbPredicates();
    CollectTargets(tree.root(), idb, 0);
  }

  std::optional<Substitution> Run() {
    if (!SeedFromHead()) return std::nullopt;
    mapped_.assign(theta_.body().size(), false);
    if (!Search(theta_.body().size())) return std::nullopt;
    Substitution result;
    for (const auto& [name, binding] : bindings_) {
      result.emplace(name, binding.term);
    }
    return result;
  }

 private:
  // Flattens the EDB atoms of the tree in preorder, tagged with node ids
  // (node ids must agree with TreeConnectivity's preorder).
  std::size_t CollectTargets(const ExpansionNode& node,
                             const std::set<std::string>& idb,
                             std::size_t id) {
    for (const Atom& atom : node.rule.body()) {
      if (idb.count(atom.predicate()) == 0) {
        targets_.push_back({id, &atom});
      }
    }
    std::size_t next = id + 1;
    for (const ExpansionNode& child : node.children) {
      next = CollectTargets(child, idb, next);
    }
    return next;
  }

  // Seeds bindings from the head: theta's i-th head term must map to the
  // root goal's i-th argument, and variable images anchor to the root
  // occurrence's connectivity class (distinguished-occurrence condition).
  bool SeedFromHead() {
    const Atom& root_goal = connectivity_.node(0).goal;
    if (theta_.head_args().size() != root_goal.args().size()) return false;
    for (std::size_t i = 0; i < theta_.head_args().size(); ++i) {
      const Term& from = theta_.head_args()[i];
      const Term& to = root_goal.args()[i];
      if (from.is_constant()) {
        if (!(to.is_constant() && to.name() == from.name())) return false;
        continue;
      }
      Binding binding;
      binding.term = to;
      if (to.is_variable()) {
        binding.class_id = connectivity_.ClassOf(0, to.name());
        binding.has_class = true;
      }
      auto it = bindings_.find(from.name());
      if (it != bindings_.end()) {
        if (it->second.term != binding.term) return false;
        // Repeated head variable: classes agree because the term and node
        // (root) are the same.
      } else {
        bindings_.emplace(from.name(), binding);
      }
    }
    return true;
  }

  std::size_t TrailMark() const { return trail_.size(); }
  void UndoTo(std::size_t mark) {
    while (trail_.size() > mark) {
      bindings_.erase(trail_.back());
      trail_.pop_back();
    }
  }

  bool UnifyTerm(const Term& from, const Term& to, std::size_t node_id) {
    if (from.is_constant()) {
      return to.is_constant() && to.name() == from.name();
    }
    Binding candidate;
    candidate.term = to;
    if (to.is_variable()) {
      candidate.class_id = connectivity_.ClassOf(node_id, to.name());
      candidate.has_class = true;
    }
    auto it = bindings_.find(from.name());
    if (it != bindings_.end()) {
      const Binding& existing = it->second;
      if (existing.term != candidate.term) return false;
      // Strongness: occurrences of the same theta variable must land in
      // connected occurrences (same connectivity class).
      if (existing.has_class &&
          existing.class_id != candidate.class_id) {
        return false;
      }
      return true;
    }
    bindings_.emplace(from.name(), candidate);
    trail_.push_back(from.name());
    return true;
  }

  bool UnifyAtom(const Atom& from, const TargetAtom& target) {
    const Atom& to = *target.atom;
    if (from.predicate() != to.predicate() || from.arity() != to.arity()) {
      return false;
    }
    std::size_t mark = TrailMark();
    for (std::size_t i = 0; i < from.arity(); ++i) {
      if (!UnifyTerm(from.args()[i], to.args()[i], target.node_id)) {
        UndoTo(mark);
        return false;
      }
    }
    return true;
  }

  std::size_t PickNextAtom() const {
    std::size_t best = theta_.body().size();
    int best_bound = -1;
    for (std::size_t i = 0; i < theta_.body().size(); ++i) {
      if (mapped_[i]) continue;
      int bound = 0;
      for (const Term& t : theta_.body()[i].args()) {
        if (t.is_constant() || bindings_.count(t.name()) > 0) ++bound;
      }
      if (bound > best_bound) {
        best_bound = bound;
        best = i;
      }
    }
    return best;
  }

  bool Search(std::size_t remaining) {
    if (remaining == 0) return true;
    std::size_t index = PickNextAtom();
    DATALOG_CHECK_LT(index, theta_.body().size());
    mapped_[index] = true;
    const Atom& from = theta_.body()[index];
    for (const TargetAtom& target : targets_) {
      std::size_t mark = TrailMark();
      if (UnifyAtom(from, target)) {
        if (Search(remaining - 1)) return true;
        UndoTo(mark);
      }
    }
    mapped_[index] = false;
    return false;
  }

  const ConjunctiveQuery& theta_;
  TreeConnectivity connectivity_;
  std::vector<TargetAtom> targets_;
  std::unordered_map<std::string, Binding> bindings_;
  std::vector<std::string> trail_;
  std::vector<bool> mapped_;
};

}  // namespace

std::optional<Substitution> FindStrongContainmentMapping(
    const Program& program, const ExpansionTree& tree,
    const ConjunctiveQuery& theta) {
  StrongMappingSearch search(program, tree, theta);
  return search.Run();
}

bool HasStrongContainmentMapping(const Program& program,
                                 const ExpansionTree& tree,
                                 const ConjunctiveQuery& theta) {
  return FindStrongContainmentMapping(program, tree, theta).has_value();
}

bool AnyDisjunctMapsStrongly(const Program& program, const ExpansionTree& tree,
                             const UnionOfCqs& ucq) {
  for (const ConjunctiveQuery& theta : ucq.disjuncts()) {
    if (HasStrongContainmentMapping(program, tree, theta)) return true;
  }
  return false;
}

}  // namespace datalog
