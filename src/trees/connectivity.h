// Connectedness of variable occurrences in proof trees (paper
// Definition 5.2) and the class-renaming that turns a proof tree back into
// an expansion tree (the mapping Δ in the proof of Proposition 5.5).
//
// Occurrences of a variable v at nodes x1, x2 with lowest common ancestor
// x are connected iff every node on the simple path between x1 and x2,
// except possibly x, has v in its goal atom. Connectedness is an
// equivalence relation; occurrences within one node are always connected.
// This is computed with a union-find over (node, variable) pairs using the
// link rule: (x, v) ~ (parent(x), v) iff v occurs in the goal of x.
#ifndef DATALOG_EQ_SRC_TREES_CONNECTIVITY_H_
#define DATALOG_EQ_SRC_TREES_CONNECTIVITY_H_

#include <map>
#include <string>
#include <vector>

#include "src/trees/expansion_tree.h"
#include "src/util/union_find.h"

namespace datalog {

class TreeConnectivity {
 public:
  explicit TreeConnectivity(const ExpansionTree& tree);

  std::size_t num_nodes() const { return nodes_.size(); }
  /// Preorder node access; node 0 is the root.
  const ExpansionNode& node(std::size_t id) const { return *nodes_[id]; }
  /// Parent of node `id`; the root's parent is itself.
  std::size_t parent(std::size_t id) const { return parents_[id]; }

  /// The connectivity class of variable `var` at node `node_id`.
  /// Valid for any (node, var); classes exist even where the variable has
  /// no occurrence (they act as pass-through links).
  std::size_t ClassOf(std::size_t node_id, const std::string& var);

  /// True if occurrences of `var` at `node1` and `node2` are connected.
  bool Connected(std::size_t node1, std::size_t node2, const std::string& var);

  /// True if an occurrence of `var` at node `node_id` is a distinguished
  /// occurrence: connected to an occurrence of `var` in the root atom.
  bool IsDistinguishedOccurrence(std::size_t node_id, const std::string& var);

  /// Renames every variable occurrence to a name determined by its
  /// connectivity class ("_c<k>"); the result is an expansion tree whose
  /// CQ is equivalent to the proof tree's intended expansion
  /// (Proposition 5.5's renaming Δ).
  ExpansionTree RenameByClass();

 private:
  std::size_t Index(std::size_t node_id, const std::string& var);
  ExpansionNode RenameNode(std::size_t node_id);

  std::vector<const ExpansionNode*> nodes_;
  std::vector<std::size_t> parents_;
  std::map<std::pair<std::size_t, std::string>, std::size_t> indices_;
  UnionFind union_find_;
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_TREES_CONNECTIVITY_H_
