#include "src/trees/expansion_tree.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

void RenderNode(const ExpansionNode& node, int indent, std::string* out) {
  out->append(2 * indent, ' ');
  out->append(StrCat("(", node.goal.ToString(), "  |  ", node.rule.ToString(),
                     ")\n"));
  for (const ExpansionNode& child : node.children) {
    RenderNode(child, indent + 1, out);
  }
}

// Tries to match `pattern` (with variables) against `target` term-by-term,
// extending `subst`; returns false on clash.
bool MatchAtom(const Atom& pattern, const Atom& target, Substitution* subst) {
  if (pattern.predicate() != target.predicate() ||
      pattern.arity() != target.arity()) {
    return false;
  }
  for (std::size_t i = 0; i < pattern.arity(); ++i) {
    const Term& p = pattern.args()[i];
    const Term& t = target.args()[i];
    if (p.is_constant()) {
      if (p != t) return false;
      continue;
    }
    auto [it, inserted] = subst->emplace(p.name(), t);
    if (!inserted && it->second != t) return false;
  }
  return true;
}

Status ValidateNode(const Program& program, const ExpansionNode& node,
                    const std::set<std::string>& idb) {
  if (node.rule.head() != node.goal) {
    return InvalidArgumentError(StrCat("node goal ", node.goal.ToString(),
                                       " differs from rule head ",
                                       node.rule.head().ToString()));
  }
  if (!std::any_of(program.rules().begin(), program.rules().end(),
                   [&node](const Rule& rule) {
                     return IsRuleInstance(rule, node.rule);
                   })) {
    return InvalidArgumentError(
        StrCat("rule is not an instance of any program rule: ",
               node.rule.ToString()));
  }
  // Children must align with the IDB atoms of the body.
  std::vector<std::size_t> expected_positions;
  for (std::size_t i = 0; i < node.rule.body().size(); ++i) {
    if (idb.count(node.rule.body()[i].predicate()) > 0) {
      expected_positions.push_back(i);
    }
  }
  if (expected_positions != node.idb_positions) {
    return InvalidArgumentError(
        StrCat("idb_positions mismatch at node ", node.goal.ToString()));
  }
  if (node.children.size() != expected_positions.size()) {
    return InvalidArgumentError(
        StrCat("node ", node.goal.ToString(), " has ", node.children.size(),
               " children but ", expected_positions.size(), " IDB subgoals"));
  }
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const Atom& subgoal = node.rule.body()[expected_positions[i]];
    if (node.children[i].goal != subgoal) {
      return InvalidArgumentError(
          StrCat("child goal ", node.children[i].goal.ToString(),
                 " does not match subgoal ", subgoal.ToString()));
    }
    Status s = ValidateNode(program, node.children[i], idb);
    if (!s.ok()) return s;
  }
  return OkStatus();
}

// Checks unfolding condition (b): variables in the body of node's rule
// either occur in the goal or occur in no node strictly above.
// `above_vars` holds all variable names in labels of strict ancestors.
Status ValidateUnfoldingNode(const ExpansionNode& node,
                             std::unordered_set<std::string>* above_vars) {
  std::unordered_set<std::string> goal_vars;
  for (const Term& t : node.goal.args()) {
    if (t.is_variable()) goal_vars.insert(t.name());
  }
  for (const Atom& atom : node.rule.body()) {
    for (const Term& t : atom.args()) {
      if (!t.is_variable()) continue;
      if (goal_vars.count(t.name()) > 0) continue;
      if (above_vars->count(t.name()) > 0) {
        return InvalidArgumentError(
            StrCat("variable ", t.name(), " in body of node ",
                   node.goal.ToString(),
                   " occurs above but not in the node's goal"));
      }
    }
  }
  // Extend above_vars with this node's label variables for the children.
  std::vector<std::string> added;
  auto add = [&](const Term& t) {
    if (t.is_variable() && above_vars->insert(t.name()).second) {
      added.push_back(t.name());
    }
  };
  for (const Term& t : node.goal.args()) add(t);
  for (const Atom& atom : node.rule.body()) {
    for (const Term& t : atom.args()) add(t);
  }
  for (const ExpansionNode& child : node.children) {
    Status s = ValidateUnfoldingNode(child, above_vars);
    if (!s.ok()) return s;
  }
  for (const std::string& name : added) above_vars->erase(name);
  return OkStatus();
}

void CollectTreeVariables(const ExpansionNode& node,
                          std::unordered_set<std::string>* vars) {
  for (const std::string& v : node.rule.VariableNames()) vars->insert(v);
  for (const ExpansionNode& child : node.children) {
    CollectTreeVariables(child, vars);
  }
}

void CollectEdbAtoms(const ExpansionNode& node,
                     const std::set<std::string>& idb,
                     std::vector<Atom>* atoms) {
  for (const Atom& atom : node.rule.body()) {
    if (idb.count(atom.predicate()) == 0) atoms->push_back(atom);
  }
  for (const ExpansionNode& child : node.children) {
    CollectEdbAtoms(child, idb, atoms);
  }
}

}  // namespace

std::size_t ExpansionNode::Size() const {
  std::size_t total = 1;
  for (const ExpansionNode& child : children) total += child.Size();
  return total;
}

std::size_t ExpansionNode::Depth() const {
  std::size_t deepest = 0;
  for (const ExpansionNode& child : children) {
    deepest = std::max(deepest, child.Depth());
  }
  return deepest + 1;
}

std::string ExpansionTree::ToString() const {
  std::string out;
  RenderNode(root_, 0, &out);
  return out;
}

bool IsRuleInstance(const Rule& rule, const Rule& instance) {
  if (rule.body().size() != instance.body().size()) return false;
  Substitution subst;
  if (!MatchAtom(rule.head(), instance.head(), &subst)) return false;
  for (std::size_t i = 0; i < rule.body().size(); ++i) {
    if (!MatchAtom(rule.body()[i], instance.body()[i], &subst)) return false;
  }
  return true;
}

Status ValidateExpansionTree(const Program& program,
                             const ExpansionTree& tree) {
  return ValidateNode(program, tree.root(), program.IdbPredicates());
}

Status ValidateUnfoldingTree(const Program& program,
                             const ExpansionTree& tree) {
  Status s = ValidateExpansionTree(program, tree);
  if (!s.ok()) return s;
  // Condition (a): the root atom is the head of a rule of the program.
  bool root_is_head = false;
  for (const Rule& rule : program.rules()) {
    if (rule.head() == tree.root().goal) root_is_head = true;
  }
  if (!root_is_head) {
    return InvalidArgumentError(
        StrCat("root atom ", tree.root().goal.ToString(),
               " is not the head of any program rule"));
  }
  std::unordered_set<std::string> above;
  return ValidateUnfoldingNode(tree.root(), &above);
}

Status ValidateProofTree(const Program& program, const ExpansionTree& tree,
                         std::size_t min_vars) {
  Status s = ValidateExpansionTree(program, tree);
  if (!s.ok()) return s;
  std::unordered_set<std::string> vars;
  CollectTreeVariables(tree.root(), &vars);
  std::vector<std::string> allowed = ProofVariables(program, min_vars);
  std::unordered_set<std::string> allowed_set(allowed.begin(), allowed.end());
  for (const std::string& v : vars) {
    if (allowed_set.count(v) == 0) {
      return InvalidArgumentError(
          StrCat("variable ", v, " is not in var(P) of size ",
                 allowed.size()));
    }
  }
  return OkStatus();
}

ConjunctiveQuery TreeToCq(const Program& program, const ExpansionTree& tree) {
  std::vector<Atom> body;
  CollectEdbAtoms(tree.root(), program.IdbPredicates(), &body);
  return ConjunctiveQuery(tree.root().goal.args(), std::move(body));
}

}  // namespace datalog
