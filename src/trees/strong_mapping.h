// Brute-force search for strong containment mappings from a conjunctive
// query into a proof tree (paper Definition 5.4). This is the reference
// oracle against which the automata constructions (Proposition 5.10) and
// the on-the-fly containment decider are cross-checked in tests.
//
// A strong containment mapping from θ to a proof tree τ is a containment
// mapping h from θ's atoms into the EDB atoms of τ's rule instances such
// that (a) distinguished occurrences of θ map to distinguished occurrences
// of τ, and (b) occurrences of the same θ-variable map to connected
// occurrences of the same τ-variable.
#ifndef DATALOG_EQ_SRC_TREES_STRONG_MAPPING_H_
#define DATALOG_EQ_SRC_TREES_STRONG_MAPPING_H_

#include <optional>

#include "src/cq/cq.h"
#include "src/trees/expansion_tree.h"

namespace datalog {

/// Searches for a strong containment mapping from `theta` to `tree` (a
/// proof tree of `program`). Returns the variable mapping on success.
std::optional<Substitution> FindStrongContainmentMapping(
    const Program& program, const ExpansionTree& tree,
    const ConjunctiveQuery& theta);

bool HasStrongContainmentMapping(const Program& program,
                                 const ExpansionTree& tree,
                                 const ConjunctiveQuery& theta);

/// True if some disjunct of `ucq` has a strong containment mapping into
/// `tree` (the per-tree acceptance condition of Theorem 5.8).
bool AnyDisjunctMapsStrongly(const Program& program, const ExpansionTree& tree,
                             const UnionOfCqs& ucq);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_TREES_STRONG_MAPPING_H_
