// Expansion trees (paper §2.3) and proof trees (paper §5.1).
//
// A node is labeled by a pair (goal atom α, rule instance ρ) where the head
// of ρ equals α; the node has one child per IDB atom in ρ's body, in body
// order. The conjunctive query of a tree is the conjunction of all EDB
// atoms of all rule instances, with the root atom's arguments as the
// distinguished terms. A proof tree is an expansion tree whose variables
// all come from var(Π) (see ProofVariables in src/ast/analysis.h).
#ifndef DATALOG_EQ_SRC_TREES_EXPANSION_TREE_H_
#define DATALOG_EQ_SRC_TREES_EXPANSION_TREE_H_

#include <string>
#include <vector>

#include "src/ast/analysis.h"
#include "src/ast/rule.h"
#include "src/cq/cq.h"
#include "src/util/status.h"

namespace datalog {

struct ExpansionNode {
  Atom goal;
  Rule rule;  // instance; rule.head() == goal
  /// Positions in rule.body() holding IDB atoms; children[i] expands
  /// rule.body()[idb_positions[i]].
  std::vector<std::size_t> idb_positions;
  std::vector<ExpansionNode> children;

  std::size_t Size() const;   // number of nodes
  std::size_t Depth() const;  // 1 for a leaf
};

class ExpansionTree {
 public:
  ExpansionTree() = default;
  explicit ExpansionTree(ExpansionNode root) : root_(std::move(root)) {}

  const ExpansionNode& root() const { return root_; }
  ExpansionNode& mutable_root() { return root_; }

  std::size_t Size() const { return root_.Size(); }
  std::size_t Depth() const { return root_.Depth(); }

  /// Indented multi-line rendering, for debugging and examples.
  std::string ToString() const;

 private:
  ExpansionNode root_;
};

/// Checks that `tree` is a well-formed expansion tree of `program`:
/// every node's rule is an instance of a program rule with head equal to
/// the node's goal, children align with the IDB atoms of the body, and
/// leaves have EDB-only bodies.
Status ValidateExpansionTree(const Program& program, const ExpansionTree& tree);

/// Additionally checks the unfolding condition (Definition 2.4): the root
/// atom is the head of a program rule, and each body variable of each node
/// either occurs in the node's goal or occurs in no node above.
Status ValidateUnfoldingTree(const Program& program, const ExpansionTree& tree);

/// Additionally checks that all variables are drawn from var(Π) of size
/// max(VarNum(program), min_vars) (a proof tree, §5.1).
Status ValidateProofTree(const Program& program, const ExpansionTree& tree,
                         std::size_t min_vars = 0);

/// The conjunctive query of the tree: all EDB atoms (relative to
/// `program`) of all rule instances in preorder, with the root goal's
/// arguments as head.
ConjunctiveQuery TreeToCq(const Program& program, const ExpansionTree& tree);

/// True if `instance` is an instance of `rule`: some substitution of
/// rule's variables yields `instance` (atom-for-atom, order preserved).
bool IsRuleInstance(const Rule& rule, const Rule& instance);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_TREES_EXPANSION_TREE_H_
