// Deterministic Turing machines and a space-bounded simulator.
//
// This is the substrate for the paper's lower-bound constructions (§5.3):
// the reduction encodes the computation of an exponential-space machine as
// a Datalog containment instance, and the simulator serves as the
// acceptance oracle the reduction is validated against on micro machines.
#ifndef DATALOG_EQ_SRC_TM_TM_H_
#define DATALOG_EQ_SRC_TM_TM_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace datalog {

enum class TmMove { kLeft, kRight, kStay };

struct TmTransition {
  std::string next_state;
  std::string write;
  TmMove move = TmMove::kStay;
};

struct TuringMachine {
  std::vector<std::string> states;
  std::vector<std::string> tape_symbols;  // must include `blank`
  std::string blank = "_";
  std::string initial_state;
  std::set<std::string> accepting_states;
  /// Partial transition function; an undefined (state, symbol) halts.
  std::map<std::pair<std::string, std::string>, TmTransition> delta;

  Status Validate() const;
};

enum class TmVerdict {
  kAccepts,      // reached an accepting state
  kHalts,        // halted in a non-accepting state (no transition)
  kOutOfSpace,   // tried to leave the tape segment
  kLoops,        // revisited a configuration: runs forever
};

/// Runs `tm` on the empty (all-blank) tape of `space_cells` cells with the
/// head starting at the leftmost cell. Exact: configurations are
/// deduplicated, so looping is detected rather than timed out; `max_steps`
/// is a safety net only.
TmVerdict SimulateOnEmptyTape(const TuringMachine& tm, int space_cells,
                              std::size_t max_steps = 1'000'000);

/// Convenience machines for tests and benchmarks.
TuringMachine ImmediatelyAcceptingMachine();
TuringMachine AcceptAfterOneStepMachine();
TuringMachine RunsOffTheTapeMachine();
TuringMachine LoopsInPlaceMachine();
/// Writes a mark, bounces to the right end, then accepts iff the mark is
/// still there when it bounces back (exercises multi-config computations).
TuringMachine BounceAndAcceptMachine();

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_TM_TM_H_
