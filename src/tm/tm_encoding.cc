#include "src/tm/tm_encoding.h"

#include <optional>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

// A tape-cell symbol: a plain tape symbol or a composite (state, symbol)
// pair marking the head position.
struct CellSymbol {
  bool composite = false;
  std::string state;   // composite only
  std::string symbol;  // the tape symbol

  std::string PredicateName() const {
    return composite ? StrCat("sym_", state, "_", symbol)
                     : StrCat("sym_", symbol);
  }
  bool operator==(const CellSymbol& other) const {
    return composite == other.composite && state == other.state &&
           symbol == other.symbol;
  }
};

// The successor value of a cell, or "stuck" (every next value is an
// error; used when the machine halts or would leave the tape).
struct Successor {
  bool stuck = true;
  CellSymbol value;
};

class EncodingBuilder {
 public:
  EncodingBuilder(const TuringMachine& tm, int n) : tm_(tm), n_(n) {
    for (const std::string& symbol : tm.tape_symbols) {
      symbols_.push_back({false, "", symbol});
    }
    for (const std::string& state : tm.states) {
      for (const std::string& symbol : tm.tape_symbols) {
        symbols_.push_back({true, state, symbol});
      }
    }
  }

  TmEncoding Build() {
    TmEncoding encoding;
    BuildRules(&encoding.program);
    BuildQueries(&encoding.queries);
    for (const CellSymbol& s : symbols_) {
      encoding.symbol_predicates.push_back(s.PredicateName());
    }
    return encoding;
  }

 private:
  // --- symbols and successor relations -------------------------------

  const TmTransition* Delta(const CellSymbol& s) const {
    if (!s.composite) return nullptr;
    auto it = tm_.delta.find({s.state, s.symbol});
    return it == tm_.delta.end() ? nullptr : &it->second;
  }

  // Middle-cell successor: the cell b with left neighbor a and right
  // neighbor c.
  Successor MiddleSuccessor(const CellSymbol& a, const CellSymbol& b,
                            const CellSymbol& c) const {
    if (b.composite) {
      const TmTransition* t = Delta(b);
      if (t == nullptr) return {};  // machine halts: stuck
      if (t->move == TmMove::kStay) {
        return {false, {true, t->next_state, t->write}};
      }
      return {false, {false, "", t->write}};
    }
    if (a.composite) {
      const TmTransition* t = Delta(a);
      if (t != nullptr && t->move == TmMove::kRight) {
        return {false, {true, t->next_state, b.symbol}};
      }
    }
    if (c.composite) {
      const TmTransition* t = Delta(c);
      if (t != nullptr && t->move == TmMove::kLeft) {
        return {false, {true, t->next_state, b.symbol}};
      }
    }
    return {false, b};
  }

  // Leftmost-cell successor (cell b, right neighbor c).
  Successor LeftSuccessor(const CellSymbol& b, const CellSymbol& c) const {
    if (b.composite) {
      const TmTransition* t = Delta(b);
      if (t == nullptr) return {};
      if (t->move == TmMove::kLeft) return {};  // falls off the tape
      if (t->move == TmMove::kStay) {
        return {false, {true, t->next_state, t->write}};
      }
      return {false, {false, "", t->write}};
    }
    if (c.composite) {
      const TmTransition* t = Delta(c);
      if (t != nullptr && t->move == TmMove::kLeft) {
        return {false, {true, t->next_state, b.symbol}};
      }
    }
    return {false, b};
  }

  // Rightmost-cell successor (cell b, left neighbor a).
  Successor RightSuccessor(const CellSymbol& a, const CellSymbol& b) const {
    if (b.composite) {
      const TmTransition* t = Delta(b);
      if (t == nullptr) return {};
      if (t->move == TmMove::kRight) return {};  // falls off the tape
      if (t->move == TmMove::kStay) {
        return {false, {true, t->next_state, t->write}};
      }
      return {false, {false, "", t->write}};
    }
    if (a.composite) {
      const TmTransition* t = Delta(a);
      if (t != nullptr && t->move == TmMove::kRight) {
        return {false, {true, t->next_state, b.symbol}};
      }
    }
    return {false, b};
  }

  // --- rules -----------------------------------------------------------

  static Term V(const std::string& name) { return Term::Variable(name); }

  std::string BitPred(int i) const { return StrCat("bit", i); }
  std::string APred(int i) const { return StrCat("a", i); }

  Atom AAtom(int i, Term third, Term fourth, Term z, Term z2, Term u,
             Term v) const {
    return Atom(APred(i), {V("X"), V("Y"), third, fourth, z, z2, u, v});
  }

  void BuildRules(Program* program) const {
    const std::vector<std::pair<Term, Term>> marker_pairs = {
        {V("X"), V("X")}, {V("X"), V("Y")}, {V("Y"), V("X")},
        {V("Y"), V("Y")}};
    // Address-bit rules (1 <= i <= n-1).
    for (int i = 1; i <= n_ - 1; ++i) {
      for (const auto& [ab, cb] : marker_pairs) {
        program->AddRule(Rule(
            Atom(BitPred(i), {V("X"), V("Y"), V("Z"), V("U"), V("V")}),
            {Atom(BitPred(i + 1), {V("X"), V("Y"), V("Z2"), V("U"), V("V")}),
             AAtom(i, ab, cb, V("Z"), V("Z2"), V("U"), V("V"))}));
      }
    }
    for (const CellSymbol& symbol : symbols_) {
      Atom symbol_atom(symbol.PredicateName(), {V("Z")});
      for (const auto& [ab, cb] : marker_pairs) {
        // Symbol rule: next position within the same configuration.
        program->AddRule(Rule(
            Atom(BitPred(n_), {V("X"), V("Y"), V("Z"), V("U"), V("V")}),
            {Atom(BitPred(1), {V("X"), V("Y"), V("Z2"), V("U"), V("V")}),
             AAtom(n_, ab, cb, V("Z"), V("Z2"), V("U"), V("V")),
             symbol_atom}));
        // Configuration-transition rule: u migrates to the v position of
        // the next configuration's persistent pair.
        program->AddRule(Rule(
            Atom(BitPred(n_), {V("X"), V("Y"), V("Z"), V("U"), V("V")}),
            {Atom(BitPred(1), {V("X"), V("Y"), V("Z2"), V("U2"), V("U")}),
             AAtom(n_, ab, cb, V("Z"), V("Z2"), V("U"), V("V")),
             symbol_atom}));
        // Acceptance rule: the expansion may end at an accepting symbol.
        if (symbol.composite &&
            tm_.accepting_states.count(symbol.state) > 0) {
          program->AddRule(Rule(
              Atom(BitPred(n_), {V("X"), V("Y"), V("Z"), V("U"), V("V")}),
              {AAtom(n_, ab, cb, V("Z"), V("Z2"), V("U"), V("V")),
               symbol_atom}));
        }
      }
    }
    // Start rule.
    program->AddRule(
        Rule(Atom("c", {}),
             {Atom(BitPred(1), {V("X"), V("Y"), V("Z"), V("U"), V("V")}),
              Atom("start", {V("Z")})}));
  }

  // --- queries ---------------------------------------------------------

  // Helper assembling one Boolean query. Variables named per call; `Dot()`
  // yields a fresh variable.
  struct QueryBuilder {
    std::vector<Atom> atoms;
    int dot_counter = 0;
    Term Dot() { return Term::Variable(StrCat("D", dot_counter++)); }
  };

  // Appends the chained block a_first..a_last with shared (u, v); third
  // and fourth args default to dots unless overridden via callbacks.
  // Returns the z variable of the a_n atom (where the symbol attaches).
  template <typename ThirdFn, typename FourthFn>
  Term AppendBlock(QueryBuilder* qb, const std::string& z_prefix, int z_base,
                   Term u, Term v, ThirdFn third, FourthFn fourth) const {
    Term symbol_z = V("unused");
    for (int i = 1; i <= n_; ++i) {
      Term z = V(StrCat(z_prefix, z_base + i - 1));
      Term z2 = V(StrCat(z_prefix, z_base + i));
      qb->atoms.push_back(AAtom(i, third(i, qb), fourth(i, qb), z, z2, u, v));
      if (i == n_) symbol_z = z;
    }
    return symbol_z;
  }

  void BuildQueries(UnionOfCqs* queries) const {
    auto add = [queries](QueryBuilder& qb) {
      queries->Add(ConjunctiveQuery({}, std::move(qb.atoms)));
    };
    auto dots3 = [](int, QueryBuilder* qb) { return qb->Dot(); };

    // (F1) The first address is not 0...0: bit i of the position anchored
    // at Start is 1.
    for (int i = 1; i <= n_; ++i) {
      QueryBuilder qb;
      qb.atoms.push_back(Atom("start", {V("Z1")}));
      for (int j = 1; j <= i; ++j) {
        Term third = (j == i) ? V("Y") : qb.Dot();
        qb.atoms.push_back(AAtom(j, third, qb.Dot(), V(StrCat("Z", j)),
                                 V(StrCat("Z", j + 1)), V("U"), V("V")));
      }
      add(qb);
    }

    // (F2a) A first carry bit is 0 (incrementing always carries in 1).
    {
      QueryBuilder qb;
      qb.atoms.push_back(AAtom(1, qb.Dot(), V("X"), qb.Dot(), qb.Dot(),
                               qb.Dot(), qb.Dot()));
      add(qb);
    }

    // (F2b) Carry-chain errors between address k (bit values) and address
    // k+1 (carry values): c_{i+1} must be a_i AND c_i.
    auto marker = [this](int bit) { return bit == 0 ? V("X") : V("Y"); };
    for (int i = 1; i <= n_ - 1; ++i) {
      // a_i=1 and c_i=1 but c_{i+1}=0.
      {
        QueryBuilder qb;
        // Chain from position with a_i at block k to positions i, i+1 of
        // block k+1: n+2 atoms a_i, a_{i+1}, ..., a_n, a_1, ..., a_{i+1}.
        int z = 0;
        auto chain = [&](int index, Term third, Term fourth) {
          qb.atoms.push_back(AAtom(index, third, fourth, V(StrCat("Z", z)),
                                   V(StrCat("Z", z + 1)), qb.Dot(),
                                   qb.Dot()));
          ++z;
        };
        chain(i, marker(1), qb.Dot());
        for (int j = i + 1; j <= n_; ++j) chain(j, qb.Dot(), qb.Dot());
        for (int j = 1; j < i; ++j) chain(j, qb.Dot(), qb.Dot());
        chain(i, qb.Dot(), marker(1));
        chain(i + 1, qb.Dot(), marker(0));
        add(qb);
      }
      // a_i=0 but c_{i+1}=1.
      {
        QueryBuilder qb;
        int z = 0;
        auto chain = [&](int index, Term third, Term fourth) {
          qb.atoms.push_back(AAtom(index, third, fourth, V(StrCat("Z", z)),
                                   V(StrCat("Z", z + 1)), qb.Dot(),
                                   qb.Dot()));
          ++z;
        };
        chain(i, marker(0), qb.Dot());
        for (int j = i + 1; j <= n_; ++j) chain(j, qb.Dot(), qb.Dot());
        for (int j = 1; j <= i; ++j) chain(j, qb.Dot(), qb.Dot());
        chain(i + 1, qb.Dot(), marker(1));
        add(qb);
      }
      // c_i=0 but c_{i+1}=1 (local to one address block).
      {
        QueryBuilder qb;
        qb.atoms.push_back(AAtom(i, qb.Dot(), marker(0), V("Z1"), V("Z2"),
                                 qb.Dot(), qb.Dot()));
        qb.atoms.push_back(AAtom(i + 1, qb.Dot(), marker(1), V("Z2"),
                                 V("Z3"), qb.Dot(), qb.Dot()));
        add(qb);
      }
    }

    // (F2c) Address-increment errors: b_i != a_i XOR c_i, where a_i sits
    // at address k and (b_i, c_i) at address k+1, n positions later.
    for (int i = 1; i <= n_; ++i) {
      for (int a = 0; a <= 1; ++a) {
        for (int c = 0; c <= 1; ++c) {
          int wrong_b = 1 - (a ^ c);
          QueryBuilder qb;
          int z = 0;
          auto chain = [&](int index, Term third, Term fourth) {
            qb.atoms.push_back(AAtom(index, third, fourth, V(StrCat("Z", z)),
                                     V(StrCat("Z", z + 1)), qb.Dot(),
                                     qb.Dot()));
            ++z;
          };
          chain(i, marker(a), qb.Dot());
          for (int j = i + 1; j <= n_; ++j) chain(j, qb.Dot(), qb.Dot());
          for (int j = 1; j < i; ++j) chain(j, qb.Dot(), qb.Dot());
          chain(i, marker(wrong_b), marker(c));
          add(qb);
        }
      }
    }

    // (F3-1) The configuration changes although address bit i is 0.
    for (int i = 1; i <= n_; ++i) {
      QueryBuilder qb;
      int z = 0;
      for (int j = i; j <= n_; ++j) {
        Term third = (j == i) ? V("X") : qb.Dot();
        qb.atoms.push_back(AAtom(j, third, qb.Dot(), V(StrCat("Z", z)),
                                 V(StrCat("Z", z + 1)), V("U"), V("V")));
        ++z;
      }
      qb.atoms.push_back(AAtom(1, qb.Dot(), qb.Dot(), V(StrCat("Z", z)),
                               V(StrCat("Z", z + 1)), V("U2"), V("U")));
      add(qb);
    }
    // (F3-2) The configuration does not change although the address is
    // all ones.
    {
      QueryBuilder qb;
      int z = 0;
      for (int j = 1; j <= n_; ++j) {
        qb.atoms.push_back(AAtom(j, V("Y"), qb.Dot(), V(StrCat("Z", z)),
                                 V(StrCat("Z", z + 1)), V("U"), V("V")));
        ++z;
      }
      qb.atoms.push_back(AAtom(1, qb.Dot(), qb.Dot(), V(StrCat("Z", z)),
                               V(StrCat("Z", z + 1)), V("U"), V("V")));
      add(qb);
    }

    // (F4) Initial configuration errors.
    CellSymbol initial_head{true, tm_.initial_state, tm_.blank};
    CellSymbol blank{false, "", tm_.blank};
    for (const CellSymbol& symbol : symbols_) {
      if (symbol == initial_head) continue;
      // First cell of the first configuration is not (initial, blank).
      QueryBuilder qb;
      qb.atoms.push_back(Atom("start", {V("Z0")}));
      Term symbol_z = AppendBlock(&qb, "Z", 0, V("U"), V("V"), dots3, dots3);
      qb.atoms.push_back(Atom(symbol.PredicateName(), {symbol_z}));
      add(qb);
    }
    for (const CellSymbol& symbol : symbols_) {
      if (symbol == blank) continue;
      // A non-first cell (bit i is 1) of the first configuration is not
      // blank.
      for (int i = 1; i <= n_; ++i) {
        QueryBuilder qb;
        qb.atoms.push_back(Atom("start", {V("Z0")}));
        qb.atoms.push_back(
            AAtom(1, qb.Dot(), qb.Dot(), V("Z0"), qb.Dot(), V("U"), V("V")));
        Term symbol_z = V("unused");
        for (int j = i; j <= n_; ++j) {
          Term third = (j == i) ? V("Y") : qb.Dot();
          Term z = V(StrCat("W", j));
          Term z2 = V(StrCat("W", j + 1));
          qb.atoms.push_back(AAtom(j, third, qb.Dot(), z, z2, V("U"), V("V")));
          if (j == n_) symbol_z = z;
        }
        qb.atoms.push_back(Atom(symbol.PredicateName(), {symbol_z}));
        add(qb);
      }
    }

    // (F5) Transition errors against R_M, R^l_M, R^r_M.
    auto all_zero = [](int, QueryBuilder*) { return V("X"); };
    auto all_one = [](int, QueryBuilder*) { return V("Y"); };
    auto shared_s = [](int i, QueryBuilder*) { return V(StrCat("S", i)); };

    // Middle cells (three consecutive positions in one configuration; the
    // corresponding position of the successor configuration).
    for (const CellSymbol& a : symbols_) {
      for (const CellSymbol& b : symbols_) {
        for (const CellSymbol& c : symbols_) {
          Successor successor = MiddleSuccessor(a, b, c);
          for (const CellSymbol& d : symbols_) {
            if (!successor.stuck && d == successor.value) continue;
            QueryBuilder qb;
            Term za = AppendBlock(&qb, "Z", 0, V("U"), V("V"), dots3, dots3);
            Term zb = AppendBlock(&qb, "Z", n_, V("U"), V("V"), shared_s,
                                  dots3);
            Term zc =
                AppendBlock(&qb, "Z", 2 * n_, V("U"), V("V"), dots3, dots3);
            Term zd =
                AppendBlock(&qb, "W", 0, V("U2"), V("U"), shared_s, dots3);
            qb.atoms.push_back(Atom(a.PredicateName(), {za}));
            qb.atoms.push_back(Atom(b.PredicateName(), {zb}));
            qb.atoms.push_back(Atom(c.PredicateName(), {zc}));
            qb.atoms.push_back(Atom(d.PredicateName(), {zd}));
            add(qb);
          }
        }
      }
    }
    // Leftmost cell (address all zeros).
    for (const CellSymbol& b : symbols_) {
      for (const CellSymbol& c : symbols_) {
        Successor successor = LeftSuccessor(b, c);
        for (const CellSymbol& d : symbols_) {
          if (!successor.stuck && d == successor.value) continue;
          QueryBuilder qb;
          Term zb = AppendBlock(&qb, "Z", 0, V("U"), V("V"), all_zero, dots3);
          Term zc = AppendBlock(&qb, "Z", n_, V("U"), V("V"), dots3, dots3);
          Term zd = AppendBlock(&qb, "W", 0, V("U2"), V("U"), all_zero,
                                dots3);
          qb.atoms.push_back(Atom(b.PredicateName(), {zb}));
          qb.atoms.push_back(Atom(c.PredicateName(), {zc}));
          qb.atoms.push_back(Atom(d.PredicateName(), {zd}));
          add(qb);
        }
      }
    }
    // Rightmost cell (address all ones).
    for (const CellSymbol& a : symbols_) {
      for (const CellSymbol& b : symbols_) {
        Successor successor = RightSuccessor(a, b);
        for (const CellSymbol& d : symbols_) {
          if (!successor.stuck && d == successor.value) continue;
          QueryBuilder qb;
          Term za = AppendBlock(&qb, "Z", 0, V("U"), V("V"), dots3, dots3);
          Term zb = AppendBlock(&qb, "Z", n_, V("U"), V("V"), all_one, dots3);
          Term zd = AppendBlock(&qb, "W", 0, V("U2"), V("U"), all_one, dots3);
          qb.atoms.push_back(Atom(a.PredicateName(), {za}));
          qb.atoms.push_back(Atom(b.PredicateName(), {zb}));
          qb.atoms.push_back(Atom(d.PredicateName(), {zd}));
          add(qb);
        }
      }
    }
  }

  const TuringMachine& tm_;
  const int n_;
  std::vector<CellSymbol> symbols_;
};

}  // namespace

StatusOr<TmEncoding> EncodeLinearTmContainment(const TuringMachine& tm,
                                               int n) {
  if (n < 1) return Status(InvalidArgumentError("need n >= 1 address bits"));
  Status valid = tm.Validate();
  if (!valid.ok()) return valid;
  EncodingBuilder builder(tm, n);
  return builder.Build();
}

}  // namespace datalog
