// The lower-bound reduction of §5.3: encoding the computation of a
// space-2^n Turing machine as a containment instance (Π, Θ) with
//   Π ⊆ Θ   iff   M does NOT accept the empty tape in space 2^n.
//
// The unfolding expansions of the linear program Π spell out sequences of
// n-bit addressed tape cells grouped into configurations; the union Θ
// collects one Boolean conjunctive query per possible encoding error
// (bad address counter, bad configuration boundary, bad initial
// configuration, or a local transition violating M's successor relations
// R_M / R^l_M / R^r_M). An expansion that avoids every error query is a
// faithful accepting computation, so containment fails exactly when M
// accepts. See DESIGN.md (experiment E7) for the validation protocol.
#ifndef DATALOG_EQ_SRC_TM_TM_ENCODING_H_
#define DATALOG_EQ_SRC_TM_TM_ENCODING_H_

#include <string>
#include <vector>

#include "src/ast/rule.h"
#include "src/cq/cq.h"
#include "src/tm/tm.h"
#include "src/util/status.h"

namespace datalog {

struct TmEncoding {
  Program program;
  UnionOfCqs queries;
  std::string goal = "c";
  /// Tape/composite symbols in index order, as EDB predicate names
  /// ("sym_<plain>" / "sym_<state>_<symbol>").
  std::vector<std::string> symbol_predicates;
};

/// Builds the §5.3 instance for deterministic `tm` with n address bits
/// (configurations of length 2^n).
StatusOr<TmEncoding> EncodeLinearTmContainment(const TuringMachine& tm,
                                               int n);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_TM_TM_ENCODING_H_
