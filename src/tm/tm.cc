#include "src/tm/tm.h"

#include <algorithm>

#include "src/util/strings.h"

namespace datalog {

Status TuringMachine::Validate() const {
  auto has_state = [this](const std::string& s) {
    return std::find(states.begin(), states.end(), s) != states.end();
  };
  auto has_symbol = [this](const std::string& s) {
    return std::find(tape_symbols.begin(), tape_symbols.end(), s) !=
           tape_symbols.end();
  };
  if (!has_state(initial_state)) {
    return InvalidArgumentError("initial state not in state set");
  }
  if (!has_symbol(blank)) {
    return InvalidArgumentError("blank symbol not in tape alphabet");
  }
  for (const std::string& s : accepting_states) {
    if (!has_state(s)) {
      return InvalidArgumentError(StrCat("accepting state ", s, " unknown"));
    }
  }
  for (const auto& [key, transition] : delta) {
    if (!has_state(key.first) || !has_symbol(key.second) ||
        !has_state(transition.next_state) || !has_symbol(transition.write)) {
      return InvalidArgumentError("transition references unknown state or "
                                  "symbol");
    }
  }
  return OkStatus();
}

TmVerdict SimulateOnEmptyTape(const TuringMachine& tm, int space_cells,
                              std::size_t max_steps) {
  std::vector<std::string> tape(space_cells, tm.blank);
  std::string state = tm.initial_state;
  int head = 0;
  std::set<std::string> seen;
  for (std::size_t step = 0; step < max_steps; ++step) {
    if (tm.accepting_states.count(state) > 0) return TmVerdict::kAccepts;
    std::string config = StrCat(state, "#", head, "#", StrJoin(tape, ","));
    if (!seen.insert(config).second) return TmVerdict::kLoops;
    auto it = tm.delta.find({state, tape[head]});
    if (it == tm.delta.end()) return TmVerdict::kHalts;
    const TmTransition& transition = it->second;
    tape[head] = transition.write;
    state = transition.next_state;
    switch (transition.move) {
      case TmMove::kLeft:
        if (--head < 0) return TmVerdict::kOutOfSpace;
        break;
      case TmMove::kRight:
        if (++head >= space_cells) return TmVerdict::kOutOfSpace;
        break;
      case TmMove::kStay:
        break;
    }
  }
  return TmVerdict::kLoops;  // safety net: treat as non-accepting
}

TuringMachine ImmediatelyAcceptingMachine() {
  TuringMachine tm;
  tm.states = {"qa"};
  tm.tape_symbols = {"_"};
  tm.initial_state = "qa";
  tm.accepting_states = {"qa"};
  return tm;
}

TuringMachine AcceptAfterOneStepMachine() {
  TuringMachine tm;
  tm.states = {"q0", "qa"};
  tm.tape_symbols = {"_", "m"};
  tm.initial_state = "q0";
  tm.accepting_states = {"qa"};
  tm.delta[{"q0", "_"}] = {"qa", "m", TmMove::kStay};
  return tm;
}

TuringMachine RunsOffTheTapeMachine() {
  TuringMachine tm;
  tm.states = {"q0"};
  tm.tape_symbols = {"_"};
  tm.initial_state = "q0";
  tm.delta[{"q0", "_"}] = {"q0", "_", TmMove::kRight};
  return tm;
}

TuringMachine LoopsInPlaceMachine() {
  TuringMachine tm;
  tm.states = {"q0"};
  tm.tape_symbols = {"_"};
  tm.initial_state = "q0";
  tm.delta[{"q0", "_"}] = {"q0", "_", TmMove::kStay};
  return tm;
}

TuringMachine BounceAndAcceptMachine() {
  // q0: mark cell 0, move right (state qr). qr: on blank keep moving
  // right... on a 2-cell tape: qr at cell 1 writes nothing and turns
  // around (state ql). ql: back at the mark: accept.
  TuringMachine tm;
  tm.states = {"q0", "qr", "ql", "qa"};
  tm.tape_symbols = {"_", "m"};
  tm.initial_state = "q0";
  tm.accepting_states = {"qa"};
  tm.delta[{"q0", "_"}] = {"qr", "m", TmMove::kRight};
  tm.delta[{"qr", "_"}] = {"ql", "_", TmMove::kLeft};
  tm.delta[{"ql", "m"}] = {"qa", "m", TmMove::kStay};
  return tm;
}

}  // namespace datalog
