#include "src/ir/ir.h"

#include <atomic>

#include "src/util/logging.h"

namespace datalog {
namespace ir {
namespace {

// See ProgramIrBuildCount(); atomic because parallel drivers may build
// distinct programs' IRs concurrently — the tests that diff the counter
// only ever do so around single-threaded sections, so relaxed ordering
// is enough.
std::atomic<std::size_t> g_program_ir_builds{0};

}  // namespace

ProgramIr ProgramIr::FromProgram(const Program& program) {
  g_program_ir_builds.fetch_add(1, std::memory_order_relaxed);
  ProgramIr out;
  for (const Rule& rule : program.rules()) out.AddRule(rule);
  return out;
}

ProgramIr ProgramIr::FromUnion(const UnionOfCqs& ucq) {
  g_program_ir_builds.fetch_add(1, std::memory_order_relaxed);
  ProgramIr out;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) out.AddDisjunct(cq);
  return out;
}

std::shared_ptr<ProgramIr> CarriedIr(const Program& program) {
  return program.carried_ir_.GetOrBuild([&] {
    return std::make_shared<ProgramIr>(ProgramIr::FromProgram(program));
  });
}

std::shared_ptr<ProgramIr> CarriedIr(const UnionOfCqs& ucq) {
  return ucq.carried_ir_.GetOrBuild([&] {
    return std::make_shared<ProgramIr>(ProgramIr::FromUnion(ucq));
  });
}

std::size_t ProgramIrBuildCount() {
  return g_program_ir_builds.load(std::memory_order_relaxed);
}

TermId ProgramIr::InternTerm(const Term& term) {
  if (term.is_variable()) {
    return TermId::Variable(variables_.Intern(term.name()));
  }
  return TermId::Constant(constants_.Intern(term.name()));
}

std::uint32_t ProgramIr::InternAtom(const Atom& atom) {
  AtomSpan span;
  span.predicate = predicates_.Intern(atom.predicate());
  span.args_begin = static_cast<std::uint32_t>(terms_.size());
  for (const Term& t : atom.args()) terms_.push_back(InternTerm(t));
  span.args_end = static_cast<std::uint32_t>(terms_.size());
  std::uint32_t index = static_cast<std::uint32_t>(atoms_.size());
  atoms_.push_back(span);
  return index;
}

std::uint32_t ProgramIr::AddRule(const Rule& rule) {
  RuleSpan span;
  span.head_atom = InternAtom(rule.head());
  span.body_begin = static_cast<std::uint32_t>(atoms_.size());
  for (const Atom& atom : rule.body()) InternAtom(atom);
  span.body_end = static_cast<std::uint32_t>(atoms_.size());
  std::uint32_t index = static_cast<std::uint32_t>(rules_.size());
  rules_.push_back(span);
  return index;
}

std::uint32_t ProgramIr::AddDisjunct(const ConjunctiveQuery& cq) {
  DisjunctSpan span;
  span.head_args_begin = static_cast<std::uint32_t>(terms_.size());
  for (const Term& t : cq.head_args()) terms_.push_back(InternTerm(t));
  span.head_args_end = static_cast<std::uint32_t>(terms_.size());
  span.body_begin = static_cast<std::uint32_t>(atoms_.size());
  for (const Atom& atom : cq.body()) InternAtom(atom);
  span.body_end = static_cast<std::uint32_t>(atoms_.size());
  std::uint32_t index = static_cast<std::uint32_t>(disjuncts_.size());
  disjuncts_.push_back(span);
  return index;
}

Term ProgramIr::DecodeTerm(TermId id) const {
  DATALOG_CHECK(id.valid());
  if (id.is_variable()) return Term::Variable(variables_.name(id.index()));
  return Term::Constant(constants_.name(id.index()));
}

Atom ProgramIr::DecodeAtom(std::uint32_t atom_index) const {
  const AtomSpan& span = atoms_[atom_index];
  std::vector<Term> args;
  args.reserve(span.arity());
  for (std::uint32_t i = span.args_begin; i < span.args_end; ++i) {
    args.push_back(DecodeTerm(terms_[i]));
  }
  return Atom(predicates_.name(span.predicate), std::move(args));
}

Rule ProgramIr::DecodeRule(std::uint32_t rule_index) const {
  const RuleSpan& span = rules_[rule_index];
  std::vector<Atom> body;
  body.reserve(span.body_end - span.body_begin);
  for (std::uint32_t a = span.body_begin; a < span.body_end; ++a) {
    body.push_back(DecodeAtom(a));
  }
  return Rule(DecodeAtom(span.head_atom), std::move(body));
}

ConjunctiveQuery ProgramIr::DecodeDisjunct(
    std::uint32_t disjunct_index) const {
  const DisjunctSpan& span = disjuncts_[disjunct_index];
  std::vector<Term> head_args;
  head_args.reserve(span.head_args_end - span.head_args_begin);
  for (std::uint32_t i = span.head_args_begin; i < span.head_args_end; ++i) {
    head_args.push_back(DecodeTerm(terms_[i]));
  }
  std::vector<Atom> body;
  body.reserve(span.body_end - span.body_begin);
  for (std::uint32_t a = span.body_begin; a < span.body_end; ++a) {
    body.push_back(DecodeAtom(a));
  }
  return ConjunctiveQuery(std::move(head_args), std::move(body));
}

Program ProgramIr::ToProgram() const {
  Program program;
  for (std::uint32_t r = 0; r < rules_.size(); ++r) {
    program.AddRule(DecodeRule(r));
  }
  return program;
}

UnionOfCqs ProgramIr::ToUnion() const {
  UnionOfCqs ucq;
  for (std::uint32_t d = 0; d < disjuncts_.size(); ++d) {
    ucq.Add(DecodeDisjunct(d));
  }
  return ucq;
}

}  // namespace ir
}  // namespace datalog
