// Shared interned program IR: the dense-id encoding of terms, atoms,
// rules, and disjuncts that the CQ and containment layers run on.
//
// The AST types (src/ast/term.h) carry a std::string per term, so every
// homomorphism or consistency check downstream of the parser pays string
// hashes and compares. This module interns each syntactic object once and
// hands the hot paths plain integers:
//
//   * TermId — a tagged 32-bit id. Constants live in a program-wide
//     dictionary (the same dictionary-encoding scheme the evaluation
//     engine uses for its relations); variables are *frame-local* indexes
//     (a program's variable table, a rule instance's canonical classes, a
//     query's variable numbering), because every algorithm here compares
//     variables only within one frame.
//   * Atoms — flat (PredicateId, TermId...) spans into one term arena.
//   * Rules / disjuncts — index ranges over the atom table.
//
// Every dictionary is bidirectional, so parsing, printing, and witness
// construction can round-trip between names and ids losslessly (see
// tests/ir_test.cc and docs/ir.md for the round-trip contract).
#ifndef DATALOG_EQ_SRC_IR_IR_H_
#define DATALOG_EQ_SRC_IR_IR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/rule.h"
#include "src/ast/term.h"
#include "src/cq/cq.h"

namespace datalog {
namespace ir {

/// A dense, tagged term id: one bit distinguishes variables from
/// constants, the remaining 31 bits are the index into the owning frame
/// (variables) or dictionary (constants). Trivially copyable; equality,
/// ordering, and hashing are single integer operations.
class TermId {
 public:
  TermId() : raw_(kInvalidRaw) {}

  static TermId Variable(std::uint32_t index) {
    return TermId((index << 1) | 1u);
  }
  static TermId Constant(std::uint32_t index) { return TermId(index << 1); }
  static TermId FromRaw(std::uint32_t raw) { return TermId(raw); }

  bool valid() const { return raw_ != kInvalidRaw; }
  bool is_variable() const { return valid() && (raw_ & 1u) != 0; }
  bool is_constant() const { return valid() && (raw_ & 1u) == 0; }
  std::uint32_t index() const { return raw_ >> 1; }
  std::uint32_t raw() const { return raw_; }

  bool operator==(TermId other) const { return raw_ == other.raw_; }
  bool operator!=(TermId other) const { return raw_ != other.raw_; }
  /// Constants order before variables of the same index; the order is
  /// arbitrary but total and stable, which is all the sorted achieved-set
  /// containers require.
  bool operator<(TermId other) const { return raw_ < other.raw_; }

 private:
  static constexpr std::uint32_t kInvalidRaw = 0xffffffffu;
  explicit TermId(std::uint32_t raw) : raw_(raw) {}
  std::uint32_t raw_;
};

/// A bidirectional name <-> dense id dictionary for one namespace
/// (constants, predicates, or one frame's variables). Ids are assigned in
/// interning order starting at 0.
class NameDictionary {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  std::uint32_t Intern(const std::string& name) {
    auto [it, inserted] =
        ids_.emplace(name, static_cast<std::uint32_t>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }
  std::uint32_t Find(const std::string& name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? kNotFound : it->second;
  }
  const std::string& name(std::uint32_t id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
};

/// A dense substitution: variable id -> image term, with invalid TermId
/// meaning "unbound". Replaces the AST's
/// unordered_map<std::string, Term> on the interned paths.
using IrSubstitution = std::vector<TermId>;

/// Applies `subst` to `term`: a bound variable is replaced, anything else
/// is returned unchanged.
inline TermId ApplyIrSubstitution(const IrSubstitution& subst, TermId term) {
  if (!term.is_variable() || term.index() >= subst.size()) return term;
  TermId image = subst[term.index()];
  return image.valid() ? image : term;
}

/// The shared int encoding of an instance-frame TermId inside interned
/// integer rows (the decider's goal rows, the alphabet's label/state
/// rows, the word-automaton state rows): proof variable $k encodes as
/// -(k+1), constants as their non-negative dictionary ids. Every
/// VarKeyTable row producer must use this one definition — the encodings
/// must stay byte-identical across layers for cross-layer lookups
/// (SymbolOf/StateOf) to keep resolving.
inline int EncodeRowTerm(TermId term) {
  return term.is_variable() ? -(static_cast<int>(term.index()) + 1)
                            : static_cast<int>(term.index());
}

/// The two sides of every homomorphism/unification step on the IR, and
/// the shared argument-encoding convention (one place, so the decider's
/// combination step, the query analysis, and the CQ mapping search
/// cannot drift apart):
///
///   * PatternAtom — the "from" side. Arguments are int32: `arg >= 0`
///     is a frame-local variable id to be bound, `arg < 0` is the
///     constant with dictionary id `~arg`.
///   * TermAtom — the "to" side. Arguments are TermIds of the target
///     frame (variables or constants), matched by integer compare.
struct PatternAtom {
  std::int32_t predicate = 0;
  std::vector<std::int32_t> args;
};

struct TermAtom {
  std::int32_t predicate = 0;
  std::vector<TermId> args;
};

/// A dense working binding of pattern variables to TermId images with an
/// undo trail: the IR replacement for the map-backed unification state.
/// `compare_count`, when non-null, is incremented once per consistency
/// check against an existing binding (the decider surfaces this as
/// ContainmentStats::pinned_compares).
struct DenseBinding {
  IrSubstitution image;

  explicit DenseBinding(std::size_t num_vars) : image(num_vars) {}

  bool Bind(std::int32_t var, TermId term, std::vector<std::int32_t>* trail,
            std::size_t* compare_count) {
    if (image[var].valid()) {
      if (compare_count != nullptr) ++*compare_count;
      return image[var] == term;
    }
    image[var] = term;
    trail->push_back(var);
    return true;
  }
  void Undo(std::vector<std::int32_t>* trail, std::size_t mark) {
    while (trail->size() > mark) {
      image[trail->back()] = TermId();
      trail->pop_back();
    }
  }
};

/// An atom as a flat span: predicate id plus an argument range in the
/// owning ProgramIr's term arena.
struct AtomSpan {
  std::uint32_t predicate = 0;
  std::uint32_t args_begin = 0;
  std::uint32_t args_end = 0;

  std::uint32_t arity() const { return args_end - args_begin; }
};

/// A rule as index ranges: the head atom's index and the body's atom
/// index range [body_begin, body_end) in the owning ProgramIr's atom
/// table.
struct RuleSpan {
  std::uint32_t head_atom = 0;
  std::uint32_t body_begin = 0;
  std::uint32_t body_end = 0;
};

/// A disjunct (conjunctive query) as index ranges: the head argument
/// range in the term arena and the body atom range in the atom table.
struct DisjunctSpan {
  std::uint32_t head_args_begin = 0;
  std::uint32_t head_args_end = 0;
  std::uint32_t body_begin = 0;
  std::uint32_t body_end = 0;
};

/// The interned form of a program and/or a union of conjunctive queries:
/// dictionaries for predicates, constants, and variables, a flat TermId
/// arena, an atom table of (predicate, args) spans, and rules/disjuncts
/// as index ranges. Built from the AST in one pass; decodes back to the
/// AST losslessly (same names, same order).
///
/// Variable ids here index the program-wide variable dictionary. Layers
/// that work frame-locally (the decider's canonical instances, the CQ
/// homomorphism search) allocate their own variable numbering and use
/// only the predicate/constant dictionaries, which are global by
/// construction.
class ProgramIr {
 public:
  ProgramIr() = default;

  /// Interns `program` in one pass over its rules.
  static ProgramIr FromProgram(const Program& program);
  /// Interns a union of CQs (sharing no program; head args + bodies).
  static ProgramIr FromUnion(const UnionOfCqs& ucq);

  // --- incremental building (used by FromProgram/FromUnion and by
  // --- layers that fold extra structures into an existing IR) ----------
  TermId InternTerm(const Term& term);
  std::uint32_t InternAtom(const Atom& atom);  // appends; returns atom index
  std::uint32_t AddRule(const Rule& rule);
  std::uint32_t AddDisjunct(const ConjunctiveQuery& cq);

  // --- dictionaries ----------------------------------------------------
  NameDictionary& predicates() { return predicates_; }
  NameDictionary& constants() { return constants_; }
  NameDictionary& variables() { return variables_; }
  const NameDictionary& predicates() const { return predicates_; }
  const NameDictionary& constants() const { return constants_; }
  const NameDictionary& variables() const { return variables_; }

  // --- flat views ------------------------------------------------------
  std::size_t num_atoms() const { return atoms_.size(); }
  std::size_t num_rules() const { return rules_.size(); }
  std::size_t num_disjuncts() const { return disjuncts_.size(); }
  const AtomSpan& atom(std::size_t index) const { return atoms_[index]; }
  const RuleSpan& rule(std::size_t index) const { return rules_[index]; }
  const DisjunctSpan& disjunct(std::size_t index) const {
    return disjuncts_[index];
  }
  /// The argument TermIds of `span`, contiguous in the term arena. The
  /// pointer is invalidated by the next Intern/Add call; indexes never
  /// are.
  const TermId* args(const AtomSpan& span) const {
    return terms_.data() + span.args_begin;
  }
  const TermId* term_range(std::uint32_t begin) const {
    return terms_.data() + begin;
  }

  // --- decoding back to the AST (bidirectional mapping) ----------------
  Term DecodeTerm(TermId id) const;
  Atom DecodeAtom(std::uint32_t atom_index) const;
  Rule DecodeRule(std::uint32_t rule_index) const;
  ConjunctiveQuery DecodeDisjunct(std::uint32_t disjunct_index) const;
  Program ToProgram() const;
  UnionOfCqs ToUnion() const;

 private:
  NameDictionary predicates_;
  NameDictionary constants_;
  NameDictionary variables_;
  std::vector<TermId> terms_;  // the term arena: all argument lists
  std::vector<AtomSpan> atoms_;
  std::vector<RuleSpan> rules_;
  std::vector<DisjunctSpan> disjuncts_;
};

// --- the carried IR -----------------------------------------------------
//
// Program and UnionOfCqs carry their ProgramIr alongside: a lazily-built
// shared cache slot, attached by the accessors below on first use and
// dropped by any mutation (Program::AddRule / UnionOfCqs::Add). Repeated
// Decide / minimize / unfold drivers on the same object therefore pay the
// AST→IR interning pass once, not per call
// (ContainmentStats::program_ir_builds tracks the passes a Decide paid).
//
// The slot is build-once (a std::once_flag inside util/build_once.h):
// any number of threads may call CarriedIr on the same const carrier
// concurrently — exactly one builds, everyone gets the same pointer.
// That makes the returned object shared *immutable* state, with
// copy-on-fold semantics for holders that need to extend it: a holder
// that wants to intern additional names into the dictionaries (the
// decider folds each Θ's predicates and constants in) must take its own
// ProgramIr copy and fold into that (see ContainmentChecker::Context) —
// folding into the shared object would race with concurrent readers.
// Copies of the carrier share the cache (their rules are equal at copy
// time); mutating a carrier still requires external synchronization,
// like any C++ object.

/// The carried IR of `program`, built with ProgramIr::FromProgram and
/// attached on first use. Safe to call concurrently on a shared const
/// Program.
std::shared_ptr<ProgramIr> CarriedIr(const Program& program);

/// The carried IR of `ucq`, built with ProgramIr::FromUnion and attached
/// on first use. Safe to call concurrently on a shared const UnionOfCqs.
std::shared_ptr<ProgramIr> CarriedIr(const UnionOfCqs& ucq);

/// Process-wide count of full AST→IR interning passes (FromProgram /
/// FromUnion calls). The carried-IR cache exists to hold this flat
/// across repeated Decide/minimize/unfold calls; tests pin that by
/// diffing the counter (around single-threaded sections — the counter
/// itself is atomic).
std::size_t ProgramIrBuildCount();

}  // namespace ir
}  // namespace datalog

#endif  // DATALOG_EQ_SRC_IR_IR_H_
