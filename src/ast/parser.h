// Text parser for Datalog programs.
//
// Grammar (Prolog-like):
//   program  := clause*
//   clause   := atom ( ":-" atoms? )? "."
//   atoms    := atom ("," atom)*
//   atom     := IDENT ( "(" terms? ")" )?      -- bare IDENT is 0-ary
//   terms    := term ("," term)*
//   term     := VARIABLE | CONSTANT
//   VARIABLE := [A-Z_][A-Za-z0-9_]*
//   CONSTANT := [a-z][A-Za-z0-9_]* | [0-9]+ | "quoted string"
// Comments run from '%' or '//' to end of line.
//
// `p(X) :- .` is accepted as an explicit empty body (equivalent to the fact
// `p(X).`, the paper's Example 6.2 convention).
#ifndef DATALOG_EQ_SRC_AST_PARSER_H_
#define DATALOG_EQ_SRC_AST_PARSER_H_

#include <string_view>

#include "src/ast/rule.h"
#include "src/util/status.h"

namespace datalog {

struct ParseOptions {
  /// Run the structural lint (src/analysis/diagnostics.h) on the parsed
  /// program and fail with the formatted error diagnostics when any
  /// error-severity lint fires (arity-mismatch; an empty program is a
  /// parse error regardless). Lint warnings never fail a parse. Opt out
  /// for deliberately malformed inputs — the datalog_lint CLI parses raw
  /// so it can diagnose arity-broken programs itself, and tests exercise
  /// invalid programs the same way. With lint off the program is NOT
  /// validated at all (Program::Validate is the lint's subset).
  bool lint = true;
};

/// Parses a full program. Returns InvalidArgumentError with line/column
/// information on malformed input, and (by default) with formatted lint
/// diagnostics when the parsed program fails the structural lint.
StatusOr<Program> ParseProgram(std::string_view text);
StatusOr<Program> ParseProgram(std::string_view text,
                               const ParseOptions& options);

/// Parses a single atom, e.g. "p(X, a)".
StatusOr<Atom> ParseAtom(std::string_view text);

/// Parses a single rule (with trailing '.'), e.g. "p(X) :- e(X, Y).".
StatusOr<Rule> ParseRule(std::string_view text);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_AST_PARSER_H_
