#include "src/ast/analysis.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {

int DependenceGraph::NodeId(const std::string& predicate) const {
  auto it = predicate_ids.find(predicate);
  DATALOG_CHECK(it != predicate_ids.end()) << "unknown predicate " << predicate;
  return it->second;
}

bool DependenceGraph::MutuallyRecursive(const std::string& p,
                                        const std::string& q) const {
  int pid = NodeId(p);
  int qid = NodeId(q);
  if (sccs.component[pid] != sccs.component[qid]) return false;
  if (pid != qid) return true;
  // Same predicate: recursive only if its SCC is nontrivial or it has a
  // self-loop.
  return IsRecursivePredicate(p);
}

bool DependenceGraph::IsRecursivePredicate(const std::string& p) const {
  int pid = NodeId(p);
  if (sccs.component_members[sccs.component[pid]].size() > 1) return true;
  // Singleton component: recursive iff there is a self-loop.
  for (int v : adjacency[pid]) {
    if (v == pid) return true;
  }
  return false;
}

DependenceGraph BuildDependenceGraph(const Program& program) {
  DependenceGraph graph;
  for (const std::string& p : program.AllPredicates()) {
    graph.predicate_ids[p] = static_cast<int>(graph.predicates.size());
    graph.predicates.push_back(p);
  }
  graph.adjacency.assign(graph.predicates.size(), {});
  std::set<std::pair<int, int>> seen;
  for (const Rule& rule : program.rules()) {
    int head = graph.predicate_ids[rule.head().predicate()];
    for (const Atom& atom : rule.body()) {
      int body = graph.predicate_ids[atom.predicate()];
      if (seen.insert({body, head}).second) {
        graph.adjacency[body].push_back(head);
      }
    }
  }
  graph.sccs =
      StronglyConnectedComponents(graph.predicates.size(), graph.adjacency);
  return graph;
}

bool IsRecursive(const Program& program) {
  DependenceGraph graph = BuildDependenceGraph(program);
  for (const std::string& p : graph.predicates) {
    if (graph.IsRecursivePredicate(p)) return true;
  }
  return false;
}

bool IsLinear(const Program& program) {
  DependenceGraph graph = BuildDependenceGraph(program);
  for (const Rule& rule : program.rules()) {
    int recursive_subgoals = 0;
    for (const Atom& atom : rule.body()) {
      if (graph.MutuallyRecursive(rule.head().predicate(), atom.predicate())) {
        ++recursive_subgoals;
      }
    }
    if (recursive_subgoals > 1) return false;
  }
  return true;
}

bool IsLinearInIdb(const Program& program) {
  std::set<std::string> idb = program.IdbPredicates();
  for (const Rule& rule : program.rules()) {
    int idb_subgoals = 0;
    for (const Atom& atom : rule.body()) {
      if (idb.count(atom.predicate()) > 0) ++idb_subgoals;
    }
    if (idb_subgoals > 1) return false;
  }
  return true;
}

std::size_t VarNumOfRule(const Program& program, const Rule& rule) {
  std::set<std::string> idb = program.IdbPredicates();
  std::unordered_set<std::string> vars;
  auto collect = [&vars](const Atom& atom) {
    for (const Term& t : atom.args()) {
      if (t.is_variable()) vars.insert(t.name());
    }
  };
  collect(rule.head());  // The head is always an IDB atom.
  for (const Atom& atom : rule.body()) {
    if (idb.count(atom.predicate()) > 0) collect(atom);
  }
  return vars.size();
}

std::size_t TotalVarsOfRule(const Rule& rule) {
  return rule.VariableNames().size();
}

std::size_t VarNum(const Program& program) {
  std::size_t max_rule = 1;
  for (const Rule& rule : program.rules()) {
    max_rule = std::max(max_rule, TotalVarsOfRule(rule));
  }
  return 2 * max_rule;
}

std::string ProofVariableName(std::size_t i) { return StrCat("$", i); }

bool IsProofVariableName(const std::string& name) {
  return !name.empty() && name[0] == '$';
}

std::size_t ProofVariableIndex(const std::string& name) {
  DATALOG_CHECK(IsProofVariableName(name));
  return static_cast<std::size_t>(std::stoul(name.substr(1)));
}

std::vector<std::string> ProofVariables(const Program& program,
                                        std::size_t minimum) {
  std::size_t k = std::max(VarNum(program), minimum);
  std::vector<std::string> vars;
  vars.reserve(k);
  for (std::size_t i = 0; i < k; ++i) vars.push_back(ProofVariableName(i));
  return vars;
}

std::vector<std::string> TopologicalPredicateOrder(const Program& program) {
  DATALOG_CHECK(IsNonrecursive(program))
      << "TopologicalPredicateOrder requires a nonrecursive program";
  DependenceGraph graph = BuildDependenceGraph(program);
  // Tarjan numbers components in reverse topological order of the digraph
  // whose edges run Q -> P ("P depends on Q"), so an edge from Q to P has
  // component[Q] >= component[P]. Listing components in decreasing id order
  // therefore yields dependencies before dependents. Components are
  // singletons since the program is nonrecursive.
  std::vector<std::string> order;
  for (int c = graph.sccs.num_components - 1; c >= 0; --c) {
    for (int node : graph.sccs.component_members[c]) {
      order.push_back(graph.predicates[node]);
    }
  }
  return order;
}

}  // namespace datalog
