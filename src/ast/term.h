// Terms and atoms: the basic syntactic objects of Datalog (paper §2.1).
//
// A term is a variable or a constant. An atom is a predicate symbol applied
// to a vector of terms, e.g. `buys(X, Y)`. The paper's core development is
// constant-free; constants are supported throughout per Remark 5.14.
#ifndef DATALOG_EQ_SRC_AST_TERM_H_
#define DATALOG_EQ_SRC_AST_TERM_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/hash.h"

namespace datalog {

enum class TermKind { kVariable, kConstant };

/// A variable or constant. Variables and constants live in separate
/// namespaces: Variable("x") != Constant("x").
class Term {
 public:
  Term() : kind_(TermKind::kVariable) {}
  Term(TermKind kind, std::string name) : kind_(kind), name_(std::move(name)) {}

  static Term Variable(std::string name) {
    return Term(TermKind::kVariable, std::move(name));
  }
  static Term Constant(std::string name) {
    return Term(TermKind::kConstant, std::move(name));
  }

  TermKind kind() const { return kind_; }
  bool is_variable() const { return kind_ == TermKind::kVariable; }
  bool is_constant() const { return kind_ == TermKind::kConstant; }
  const std::string& name() const { return name_; }

  bool operator==(const Term& other) const {
    return kind_ == other.kind_ && name_ == other.name_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
  bool operator<(const Term& other) const {
    if (kind_ != other.kind_) return kind_ < other.kind_;
    return name_ < other.name_;
  }

  /// Renders the term; constants are prefixed with nothing (their spelling
  /// distinguishes them in parsed programs), so this is for display only.
  std::string ToString() const;

 private:
  TermKind kind_;
  std::string name_;
};

std::ostream& operator<<(std::ostream& os, const Term& term);

struct TermHash {
  std::size_t operator()(const Term& t) const {
    std::size_t seed = static_cast<std::size_t>(t.kind());
    HashCombine(&seed, t.name());
    return seed;
  }
};

/// A substitution maps variable names to terms. Constants are never
/// remapped.
using Substitution = std::unordered_map<std::string, Term>;

/// Applies `subst` to `term`: a variable in the substitution's domain is
/// replaced, anything else is returned unchanged.
Term ApplySubstitution(const Substitution& subst, const Term& term);

/// An atomic formula `predicate(args...)`.
class Atom {
 public:
  Atom() = default;
  Atom(std::string predicate, std::vector<Term> args)
      : predicate_(std::move(predicate)), args_(std::move(args)) {}

  const std::string& predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  std::size_t arity() const { return args_.size(); }

  bool operator==(const Atom& other) const {
    return predicate_ == other.predicate_ && args_ == other.args_;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }
  bool operator<(const Atom& other) const {
    if (predicate_ != other.predicate_) return predicate_ < other.predicate_;
    return args_ < other.args_;
  }

  /// Renders e.g. `p(X, a)`; 0-ary atoms render as the bare predicate name.
  std::string ToString() const;

  /// Appends the names of variables occurring in this atom to `out`,
  /// in order of occurrence, without deduplication.
  void AppendVariables(std::vector<std::string>* out) const;

  /// The distinct variable names of this atom, in first-occurrence order.
  std::vector<std::string> VariableNames() const;

 private:
  std::string predicate_;
  std::vector<Term> args_;
};

std::ostream& operator<<(std::ostream& os, const Atom& atom);

struct AtomHash {
  std::size_t operator()(const Atom& a) const {
    std::size_t seed = 0;
    HashCombine(&seed, a.predicate());
    TermHash term_hash;
    for (const Term& t : a.args()) HashCombine(&seed, term_hash(t));
    return seed;
  }
};

/// Applies `subst` to every argument of `atom`.
Atom ApplySubstitution(const Substitution& subst, const Atom& atom);

/// Collects the distinct variable names occurring in `atoms`, in
/// first-occurrence order.
std::vector<std::string> CollectVariables(const std::vector<Atom>& atoms);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_AST_TERM_H_
