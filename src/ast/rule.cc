#include "src/ast/rule.h"

#include <unordered_map>
#include <unordered_set>

#include "src/util/strings.h"

namespace datalog {

std::string Rule::ToString() const {
  if (body_.empty()) return StrCat(head_.ToString(), ".");
  return StrCat(head_.ToString(), " :- ",
                StrJoin(body_, ", ",
                        [](std::ostream& os, const Atom& a) {
                          os << a.ToString();
                        }),
                ".");
}

std::vector<std::string> Rule::VariableNames() const {
  std::vector<Atom> all;
  all.reserve(body_.size() + 1);
  all.push_back(head_);
  for (const Atom& a : body_) all.push_back(a);
  return CollectVariables(all);
}

std::ostream& operator<<(std::ostream& os, const Rule& rule) {
  return os << rule.ToString();
}

Rule ApplySubstitution(const Substitution& subst, const Rule& rule) {
  std::vector<Atom> body;
  body.reserve(rule.body().size());
  for (const Atom& a : rule.body()) {
    body.push_back(ApplySubstitution(subst, a));
  }
  return Rule(ApplySubstitution(subst, rule.head()), std::move(body));
}

std::set<std::string> Program::IdbPredicates() const {
  std::set<std::string> idb;
  for (const Rule& rule : rules_) idb.insert(rule.head().predicate());
  return idb;
}

std::set<std::string> Program::EdbPredicates() const {
  std::set<std::string> idb = IdbPredicates();
  std::set<std::string> edb;
  for (const Rule& rule : rules_) {
    for (const Atom& atom : rule.body()) {
      if (idb.count(atom.predicate()) == 0) edb.insert(atom.predicate());
    }
  }
  return edb;
}

std::set<std::string> Program::AllPredicates() const {
  std::set<std::string> all = IdbPredicates();
  for (const Rule& rule : rules_) {
    for (const Atom& atom : rule.body()) all.insert(atom.predicate());
  }
  return all;
}

bool Program::IsIdb(const std::string& predicate) const {
  for (const Rule& rule : rules_) {
    if (rule.head().predicate() == predicate) return true;
  }
  return false;
}

std::size_t Program::PredicateArity(const std::string& predicate) const {
  for (const Rule& rule : rules_) {
    if (rule.head().predicate() == predicate) return rule.head().arity();
    for (const Atom& atom : rule.body()) {
      if (atom.predicate() == predicate) return atom.arity();
    }
  }
  DATALOG_CHECK(false) << "unknown predicate: " << predicate;
  return 0;
}

std::vector<std::size_t> Program::RulesFor(const std::string& predicate) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].head().predicate() == predicate) indices.push_back(i);
  }
  return indices;
}

Status Program::Validate() const {
  if (rules_.empty()) {
    return InvalidArgumentError("program has no rules");
  }
  std::unordered_map<std::string, std::size_t> arity;
  auto check = [&arity](const Atom& atom) -> Status {
    auto [it, inserted] = arity.emplace(atom.predicate(), atom.arity());
    if (!inserted && it->second != atom.arity()) {
      return InvalidArgumentError(
          StrCat("predicate ", atom.predicate(), " used with arities ",
                 it->second, " and ", atom.arity()));
    }
    return OkStatus();
  };
  for (const Rule& rule : rules_) {
    Status s = check(rule.head());
    if (!s.ok()) return s;
    for (const Atom& atom : rule.body()) {
      s = check(atom);
      if (!s.ok()) return s;
    }
  }
  return OkStatus();
}

std::string Program::ToString() const {
  return StrJoin(rules_, "\n",
                 [](std::ostream& os, const Rule& r) { os << r.ToString(); });
}

std::ostream& operator<<(std::ostream& os, const Program& program) {
  return os << program.ToString();
}

}  // namespace datalog
