#include "src/ast/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

enum class TokenKind {
  kIdentifier,  // lowercase-leading: predicate or constant
  kVariable,    // uppercase/underscore-leading
  kNumber,
  kString,  // quoted constant
  kLeftParen,
  kRightParen,
  kComma,
  kImplies,  // :-
  kPeriod,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
  int column;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      int line = line_;
      int column = column_;
      char c = text_[pos_];
      if (c == '(') {
        tokens.push_back({TokenKind::kLeftParen, "(", line, column});
        Advance();
      } else if (c == ')') {
        tokens.push_back({TokenKind::kRightParen, ")", line, column});
        Advance();
      } else if (c == ',') {
        tokens.push_back({TokenKind::kComma, ",", line, column});
        Advance();
      } else if (c == '.') {
        tokens.push_back({TokenKind::kPeriod, ".", line, column});
        Advance();
      } else if (c == ':') {
        Advance();
        if (pos_ >= text_.size() || text_[pos_] != '-') {
          return Error(line, column, "expected '-' after ':'");
        }
        Advance();
        tokens.push_back({TokenKind::kImplies, ":-", line, column});
      } else if (c == '"') {
        Advance();
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          if (text_[pos_] == '\n') {
            return Error(line, column, "unterminated string constant");
          }
          value.push_back(text_[pos_]);
          Advance();
        }
        if (pos_ >= text_.size()) {
          return Error(line, column, "unterminated string constant");
        }
        Advance();  // closing quote
        tokens.push_back({TokenKind::kString, std::move(value), line, column});
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string value;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          value.push_back(text_[pos_]);
          Advance();
        }
        tokens.push_back({TokenKind::kNumber, std::move(value), line, column});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string value;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          value.push_back(text_[pos_]);
          Advance();
        }
        TokenKind kind = (std::isupper(static_cast<unsigned char>(c)) ||
                          c == '_')
                             ? TokenKind::kVariable
                             : TokenKind::kIdentifier;
        tokens.push_back({kind, std::move(value), line, column});
      } else {
        return Error(line, column,
                     StrCat("unexpected character '", std::string(1, c), "'"));
      }
    }
    tokens.push_back({TokenKind::kEnd, "", line_, column_});
    return tokens;
  }

 private:
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Status Error(int line, int column, std::string message) {
    return InvalidArgumentError(
        StrCat("parse error at ", line, ":", column, ": ", message));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Program> ParseProgram(bool lint) {
    std::vector<Rule> rules;
    while (Peek().kind != TokenKind::kEnd) {
      StatusOr<Rule> rule = ParseOneRule();
      if (!rule.ok()) return rule.status();
      rules.push_back(std::move(rule).value());
    }
    if (rules.empty()) {
      return Status(InvalidArgumentError("empty program"));
    }
    Program program(std::move(rules));
    if (lint) {
      // The structural lint subsumes Program::Validate (its
      // arity-mismatch check is Validate's consistency requirement);
      // only error-severity diagnostics fail the parse.
      std::vector<Diagnostic> diagnostics = LintProgram(program);
      if (HasLintErrors(diagnostics)) {
        std::string message = "program failed lint:\n";
        for (const Diagnostic& d : diagnostics) {
          if (d.severity != DiagnosticSeverity::kError) continue;
          message += FormatDiagnostic(d);
          message += '\n';
        }
        return Status(InvalidArgumentError(message));
      }
    }
    return program;
  }

  StatusOr<Rule> ParseOneRule() {
    StatusOr<Atom> head = ParseOneAtom();
    if (!head.ok()) return head.status();
    std::vector<Atom> body;
    if (Peek().kind == TokenKind::kImplies) {
      Next();
      // Allow an explicit empty body: `p(X) :- .`
      while (Peek().kind != TokenKind::kPeriod) {
        StatusOr<Atom> atom = ParseOneAtom();
        if (!atom.ok()) return atom.status();
        body.push_back(std::move(atom).value());
        if (Peek().kind == TokenKind::kComma) {
          Next();
        } else {
          break;
        }
      }
    }
    if (Peek().kind != TokenKind::kPeriod) {
      return Status(ErrorAt(Peek(), "expected '.' at end of rule"));
    }
    Next();
    return Rule(std::move(head).value(), std::move(body));
  }

  StatusOr<Atom> ParseOneAtom() {
    const Token& name = Peek();
    if (name.kind != TokenKind::kIdentifier) {
      return Status(
          ErrorAt(name, StrCat("expected predicate name, got '", name.text,
                               "'")));
    }
    std::string predicate = name.text;
    Next();
    std::vector<Term> args;
    if (Peek().kind == TokenKind::kLeftParen) {
      Next();
      if (Peek().kind != TokenKind::kRightParen) {
        while (true) {
          StatusOr<Term> term = ParseTerm();
          if (!term.ok()) return term.status();
          args.push_back(std::move(term).value());
          if (Peek().kind == TokenKind::kComma) {
            Next();
            continue;
          }
          break;
        }
      }
      if (Peek().kind != TokenKind::kRightParen) {
        return Status(ErrorAt(Peek(), "expected ')'"));
      }
      Next();
    }
    return Atom(std::move(predicate), std::move(args));
  }

  StatusOr<Term> ParseTerm() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kVariable: {
        Term t = Term::Variable(token.text);
        Next();
        return t;
      }
      case TokenKind::kIdentifier:
      case TokenKind::kNumber:
      case TokenKind::kString: {
        Term t = Term::Constant(token.text);
        Next();
        return t;
      }
      default:
        return Status(
            ErrorAt(token, StrCat("expected term, got '", token.text, "'")));
    }
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Status ExpectEnd() {
    if (!AtEnd()) {
      return ErrorAt(Peek(), StrCat("unexpected trailing input '",
                                    Peek().text, "'"));
    }
    return OkStatus();
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Next() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status ErrorAt(const Token& token, std::string message) {
    return InvalidArgumentError(StrCat("parse error at ", token.line, ":",
                                       token.column, ": ", message));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

StatusOr<std::vector<Token>> TokenizeAll(std::string_view text) {
  Lexer lexer(text);
  return lexer.Tokenize();
}

}  // namespace

StatusOr<Program> ParseProgram(std::string_view text) {
  return ParseProgram(text, ParseOptions());
}

StatusOr<Program> ParseProgram(std::string_view text,
                               const ParseOptions& options) {
  StatusOr<std::vector<Token>> tokens = TokenizeAll(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseProgram(options.lint);
}

StatusOr<Atom> ParseAtom(std::string_view text) {
  StatusOr<std::vector<Token>> tokens = TokenizeAll(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  StatusOr<Atom> atom = parser.ParseOneAtom();
  if (!atom.ok()) return atom;
  Status end = parser.ExpectEnd();
  if (!end.ok()) return end;
  return atom;
}

StatusOr<Rule> ParseRule(std::string_view text) {
  StatusOr<std::vector<Token>> tokens = TokenizeAll(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  StatusOr<Rule> rule = parser.ParseOneRule();
  if (!rule.ok()) return rule;
  Status end = parser.ExpectEnd();
  if (!end.ok()) return end;
  return rule;
}

}  // namespace datalog
