// Structural analysis of Datalog programs (paper §2.1, §5.1):
// dependence graph, recursion / linearity classification, and the
// varnum(Π) / var(Π) machinery underlying proof trees.
#ifndef DATALOG_EQ_SRC_AST_ANALYSIS_H_
#define DATALOG_EQ_SRC_AST_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "src/ast/rule.h"
#include "src/util/scc.h"

namespace datalog {

/// The dependence graph of a program: nodes are predicates; there is an
/// edge from Q to P when P depends on Q, i.e. Q occurs in the body of a
/// rule whose head predicate is P (paper §2.1).
struct DependenceGraph {
  std::vector<std::string> predicates;        // node id -> name
  std::map<std::string, int> predicate_ids;   // name -> node id
  std::vector<std::vector<int>> adjacency;    // edges Q -> P
  SccResult sccs;

  int NodeId(const std::string& predicate) const;
  /// True if `p` and `q` are mutually recursive (same nontrivial SCC, or
  /// p == q with a self-loop).
  bool MutuallyRecursive(const std::string& p, const std::string& q) const;
  /// True if `p` depends recursively on itself.
  bool IsRecursivePredicate(const std::string& p) const;
};

DependenceGraph BuildDependenceGraph(const Program& program);

/// True if the dependence graph has a cycle (paper: a program is
/// nonrecursive iff its dependence graph is acyclic).
bool IsRecursive(const Program& program);
inline bool IsNonrecursive(const Program& program) {
  return !IsRecursive(program);
}

/// True if every rule has at most one body atom that is mutually recursive
/// with the rule's head (the paper's "linear program": at most one
/// recursive subgoal per rule, §1).
bool IsLinear(const Program& program);

/// True if every rule has at most one IDB body atom of any kind. For
/// nonrecursive programs this is the "linear nonrecursive" class of
/// Theorem 6.7 (unfolds to exponentially many but individually small CQs).
bool IsLinearInIdb(const Program& program);

/// varnum(r) as defined in the paper §5.1: the number of distinct
/// variables occurring in IDB atoms of rule `r` (head or body), where
/// IDB-ness is relative to `program`.
std::size_t VarNumOfRule(const Program& program, const Rule& rule);

/// The number of distinct variables occurring anywhere in `rule`.
std::size_t TotalVarsOfRule(const Rule& rule);

/// varnum(Π): twice the maximum, over the rules, of the number of rule
/// variables. NOTE: the paper (§5.1) counts only variables of IDB atoms
/// here, but its own proof of Proposition 5.6 renames ALL body variables
/// of a rule instance distinctly, which requires var(Π) to accommodate
/// every variable of a rule; we therefore use the total count (always
/// >= the paper's figure, so all results go through unchanged).
std::size_t VarNum(const Program& program);

/// var(Π): the canonical proof-tree variable set {$0, ..., $k-1} with
/// k = max(VarNum(program), minimum). The '$' prefix cannot be produced by
/// the parser, so proof variables never collide with program variables.
std::vector<std::string> ProofVariables(const Program& program,
                                        std::size_t minimum = 0);

/// The canonical i-th proof variable name, "$i".
std::string ProofVariableName(std::size_t i);

/// True if `name` is a canonical proof variable.
bool IsProofVariableName(const std::string& name);

/// The index i of the canonical proof variable "$i"; CHECK-fails unless
/// IsProofVariableName(name). The single home of the "$k" parsing
/// convention — the interned layers (decider, theta automaton) encode
/// proof variables by this index.
std::size_t ProofVariableIndex(const std::string& name);

/// Predicates of a nonrecursive program in a topological order of the
/// dependence graph (every predicate appears after the predicates it
/// depends on). CHECK-fails on recursive programs.
std::vector<std::string> TopologicalPredicateOrder(const Program& program);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_AST_ANALYSIS_H_
