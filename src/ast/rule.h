// Horn rules and Datalog programs (paper §2.1).
//
// A rule is `head :- body.` where the head is a single atom and the body a
// (possibly empty) conjunction of atoms; an empty body means `true` (the
// convention used in the paper's Example 6.2). A program is a finite set of
// rules. Predicates occurring in some head are intentional (IDB); all
// others are extensional (EDB).
#ifndef DATALOG_EQ_SRC_AST_RULE_H_
#define DATALOG_EQ_SRC_AST_RULE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/ast/term.h"
#include "src/util/build_once.h"
#include "src/util/status.h"

namespace datalog {

class Program;

namespace ir {
class ProgramIr;
/// Returns the interned IR carried by `program`, building and attaching
/// it on first use (declared here so Program can grant access to the
/// cache slot; defined in src/ir/ir.cc, documented in src/ir/ir.h).
std::shared_ptr<ProgramIr> CarriedIr(const Program& program);
}  // namespace ir

class Rule {
 public:
  Rule() = default;
  Rule(Atom head, std::vector<Atom> body)
      : head_(std::move(head)), body_(std::move(body)) {}

  const Atom& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }

  bool operator==(const Rule& other) const {
    return head_ == other.head_ && body_ == other.body_;
  }
  bool operator!=(const Rule& other) const { return !(*this == other); }

  /// Renders e.g. `p(X, Y) :- e(X, Z), p(Z, Y).`; a fact renders `p(X).`.
  std::string ToString() const;

  /// The distinct variable names occurring anywhere in the rule, in
  /// first-occurrence order (head first).
  std::vector<std::string> VariableNames() const;

 private:
  Atom head_;
  std::vector<Atom> body_;
};

std::ostream& operator<<(std::ostream& os, const Rule& rule);

/// Applies `subst` to the head and every body atom.
Rule ApplySubstitution(const Substitution& subst, const Rule& rule);

class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Rule> rules) : rules_(std::move(rules)) {}

  const std::vector<Rule>& rules() const { return rules_; }
  void AddRule(Rule rule) {
    carried_ir_.Reset();  // mutation invalidates the carried IR
    rules_.push_back(std::move(rule));
  }

  /// True if a carried IR is currently attached: ir::CarriedIr built one
  /// and no mutation has dropped it since.
  bool has_carried_ir() const { return carried_ir_.built(); }

  bool operator==(const Program& other) const { return rules_ == other.rules_; }

  /// Predicates occurring in some rule head, sorted.
  std::set<std::string> IdbPredicates() const;

  /// Predicates occurring only in rule bodies, sorted.
  std::set<std::string> EdbPredicates() const;

  /// All predicates, sorted.
  std::set<std::string> AllPredicates() const;

  /// True if `predicate` occurs in some rule head.
  bool IsIdb(const std::string& predicate) const;

  /// Arity of `predicate` as first used; CHECK-fails if absent. Call
  /// Validate() first to ensure arities are consistent.
  std::size_t PredicateArity(const std::string& predicate) const;

  /// The rules whose head predicate is `predicate`, by rule index.
  std::vector<std::size_t> RulesFor(const std::string& predicate) const;

  /// Checks structural sanity: consistent arities per predicate, and at
  /// least one rule. (Range restriction is NOT required: the paper allows
  /// unsafe facts such as `dist0(x, x) :- .`)
  Status Validate() const;

  std::string ToString() const;

 private:
  friend std::shared_ptr<ir::ProgramIr> ir::CarriedIr(const Program&);

  std::vector<Rule> rules_;
  // The lazily-built interned IR (see ir::CarriedIr in src/ir/ir.h).
  // mutable: building the cache does not change the program's value.
  // The slot is build-once (std::once_flag), so concurrent first
  // accesses on a shared const Program are safe. Copies share the slot
  // state (the rules are equal at copy time and the shared IR is
  // immutable); AddRule resets it.
  mutable BuildOnceSlot<ir::ProgramIr> carried_ir_;
};

std::ostream& operator<<(std::ostream& os, const Program& program);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_AST_RULE_H_
