#include "src/ast/term.h"

#include <unordered_set>

#include "src/util/strings.h"

namespace datalog {

std::string Term::ToString() const { return name_; }

std::ostream& operator<<(std::ostream& os, const Term& term) {
  return os << term.ToString();
}

Term ApplySubstitution(const Substitution& subst, const Term& term) {
  if (!term.is_variable()) return term;
  auto it = subst.find(term.name());
  if (it == subst.end()) return term;
  return it->second;
}

std::string Atom::ToString() const {
  if (args_.empty()) return predicate_;
  return StrCat(predicate_, "(",
                StrJoin(args_, ", ",
                        [](std::ostream& os, const Term& t) { os << t; }),
                ")");
}

std::ostream& operator<<(std::ostream& os, const Atom& atom) {
  return os << atom.ToString();
}

void Atom::AppendVariables(std::vector<std::string>* out) const {
  for (const Term& t : args_) {
    if (t.is_variable()) out->push_back(t.name());
  }
}

std::vector<std::string> Atom::VariableNames() const {
  std::vector<std::string> occurrences;
  AppendVariables(&occurrences);
  std::vector<std::string> distinct;
  std::unordered_set<std::string> seen;
  for (std::string& name : occurrences) {
    if (seen.insert(name).second) distinct.push_back(std::move(name));
  }
  return distinct;
}

Atom ApplySubstitution(const Substitution& subst, const Atom& atom) {
  std::vector<Term> args;
  args.reserve(atom.args().size());
  for (const Term& t : atom.args()) {
    args.push_back(ApplySubstitution(subst, t));
  }
  return Atom(atom.predicate(), std::move(args));
}

std::vector<std::string> CollectVariables(const std::vector<Atom>& atoms) {
  std::vector<std::string> distinct;
  std::unordered_set<std::string> seen;
  for (const Atom& atom : atoms) {
    for (const Term& t : atom.args()) {
      if (t.is_variable() && seen.insert(t.name()).second) {
        distinct.push_back(t.name());
      }
    }
  }
  return distinct;
}

}  // namespace datalog
