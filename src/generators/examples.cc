#include "src/generators/examples.h"

#include "src/analysis/diagnostics.h"
#include "src/ast/parser.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace {

Program MustParse(const std::string& text) {
  // ParseProgram lints by default, so parsed generators are covered.
  StatusOr<Program> program = ParseProgram(text);
  DATALOG_CHECK(program.ok()) << program.status() << "\n" << text;
  return *program;
}

// Hand-built generators bypass the parser, so they run the structural
// lint here; error-severity findings are generator bugs. (Warnings are
// expected — DistLeProgram's `dist0(X, X) :- .` base case is a
// deliberately unsafe rule.)
Program Checked(Program program) {
  std::vector<Diagnostic> diagnostics = LintProgram(program);
  DATALOG_CHECK(!HasLintErrors(diagnostics))
      << "generated program failed lint:\n"
      << FormatDiagnostics(diagnostics) << program.ToString();
  return program;
}

Term Var(const std::string& name) { return Term::Variable(name); }

}  // namespace

Program Buys1Program() {
  return MustParse(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
  )");
}

Program Buys2Program() {
  return MustParse(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- knows(X, Z), buys(Z, Y).
  )");
}

Program Buys1NonrecursiveProgram() {
  return MustParse(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), likes(Z, Y).
  )");
}

Program Buys2NonrecursiveProgram() {
  return MustParse(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- knows(X, Z), likes(Z, Y).
  )");
}

Program TransitiveClosureProgram(const std::string& step_edb,
                                 const std::string& base_edb) {
  Program program;
  program.AddRule(Rule(Atom("p", {Var("X"), Var("Y")}),
                       {Atom(step_edb, {Var("X"), Var("Z")}),
                        Atom("p", {Var("Z"), Var("Y")})}));
  program.AddRule(Rule(Atom("p", {Var("X"), Var("Y")}),
                       {Atom(base_edb, {Var("X"), Var("Y")})}));
  return Checked(std::move(program));
}

Program NonlinearTransitiveClosureProgram() {
  return MustParse(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- p(X, Z), p(Z, Y).
  )");
}

std::string DistPredicate(int i) { return StrCat("dist", i); }
std::string DistLePredicate(int i) { return StrCat("distle", i); }
std::string EqualPredicate(int i) { return StrCat("equal", i); }
std::string WordPredicate(int i) { return StrCat("word", i); }

Program DistProgram(int n) {
  DATALOG_CHECK_GE(n, 0);
  Program program;
  for (int i = n; i > 0; --i) {
    program.AddRule(Rule(Atom(DistPredicate(i), {Var("X"), Var("Y")}),
                         {Atom(DistPredicate(i - 1), {Var("X"), Var("Z")}),
                          Atom(DistPredicate(i - 1), {Var("Z"), Var("Y")})}));
  }
  program.AddRule(Rule(Atom(DistPredicate(0), {Var("X"), Var("Y")}),
                       {Atom("e", {Var("X"), Var("Y")})}));
  return Checked(std::move(program));
}

Program DistLeProgram(int n) {
  DATALOG_CHECK_GE(n, 0);
  Program program;
  for (int i = n; i > 0; --i) {
    program.AddRule(Rule(Atom(DistPredicate(i), {Var("X"), Var("Y")}),
                         {Atom(DistPredicate(i - 1), {Var("X"), Var("Z")}),
                          Atom(DistPredicate(i - 1), {Var("Z"), Var("Y")})}));
    program.AddRule(
        Rule(Atom(DistLePredicate(i), {Var("X"), Var("Y")}),
             {Atom(DistLePredicate(i - 1), {Var("X"), Var("Z")}),
              Atom(DistPredicate(i - 1), {Var("Z"), Var("Y")})}));
  }
  program.AddRule(Rule(Atom(DistPredicate(0), {Var("X"), Var("Y")}),
                       {Atom("e", {Var("X"), Var("Y")})}));
  program.AddRule(Rule(Atom(DistPredicate(0), {Var("X"), Var("X")}), {}));
  program.AddRule(Rule(Atom(DistLePredicate(0), {Var("X"), Var("X")}), {}));
  return Checked(std::move(program));
}

Program EqualProgram(int n) {
  DATALOG_CHECK_GE(n, 0);
  Program program;
  for (int i = n; i > 0; --i) {
    program.AddRule(Rule(
        Atom(EqualPredicate(i), {Var("X"), Var("Y"), Var("U"), Var("V")}),
        {Atom(EqualPredicate(i - 1),
              {Var("X"), Var("X1"), Var("U"), Var("U1")}),
         Atom(EqualPredicate(i - 1),
              {Var("X1"), Var("Y"), Var("U1"), Var("V")})}));
  }
  program.AddRule(Rule(
      Atom(EqualPredicate(0), {Var("X"), Var("Y"), Var("U"), Var("V")}),
      {Atom("e", {Var("X"), Var("Y")}), Atom("e", {Var("U"), Var("V")}),
       Atom("zero", {Var("X")}), Atom("zero", {Var("U")})}));
  program.AddRule(Rule(
      Atom(EqualPredicate(0), {Var("X"), Var("Y"), Var("U"), Var("V")}),
      {Atom("e", {Var("X"), Var("Y")}), Atom("e", {Var("U"), Var("V")}),
       Atom("one", {Var("X")}), Atom("one", {Var("U")})}));
  return Checked(std::move(program));
}

Program WordProgram(int n) {
  DATALOG_CHECK_GE(n, 1);
  Program program;
  for (int i = n; i > 1; --i) {
    for (const char* label : {"zero", "one"}) {
      program.AddRule(Rule(Atom(WordPredicate(i), {Var("X"), Var("Y")}),
                           {Atom(WordPredicate(i - 1), {Var("X"), Var("X1")}),
                            Atom("e", {Var("X1"), Var("Y")}),
                            Atom(label, {Var("Y")})}));
    }
  }
  for (const char* label : {"zero", "one"}) {
    program.AddRule(Rule(Atom(WordPredicate(1), {Var("X"), Var("Y")}),
                         {Atom("e", {Var("X"), Var("Y")}),
                          Atom(label, {Var("X")})}));
  }
  return Checked(std::move(program));
}

UnionOfCqs PathQueries(int max_length) {
  UnionOfCqs union_of_paths;
  for (int length = 1; length <= max_length; ++length) {
    union_of_paths.Add(ChainQuery(length));
  }
  return union_of_paths;
}

ConjunctiveQuery ChainQuery(int length) {
  DATALOG_CHECK_GE(length, 1);
  std::vector<Atom> body;
  auto node = [length](int i) {
    if (i == 0) return Var("X");
    if (i == length) return Var("Y");
    return Var(StrCat("Z", i));
  };
  for (int i = 0; i < length; ++i) {
    body.push_back(Atom("e", {node(i), node(i + 1)}));
  }
  return ConjunctiveQuery({Var("X"), Var("Y")}, std::move(body));
}

Program ChainProgram(int step) {
  DATALOG_CHECK_GE(step, 1);
  Program program;
  std::vector<Atom> body;
  auto node = [step](int i) {
    if (i == 0) return Var("X");
    return Var(StrCat("Z", i));
  };
  for (int i = 0; i < step; ++i) {
    body.push_back(Atom("e", {node(i), node(i + 1)}));
  }
  body.push_back(Atom("p", {node(step), Var("Y")}));
  program.AddRule(Rule(Atom("p", {Var("X"), Var("Y")}), std::move(body)));
  program.AddRule(Rule(Atom("p", {Var("X"), Var("Y")}),
                       {Atom("e", {Var("X"), Var("Y")})}));
  return Checked(std::move(program));
}

}  // namespace datalog
