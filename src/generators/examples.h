// Generators for every program family used in the paper:
//   Example 1.1 — the buys/likes/trendy/knows programs;
//   Example 2.5 — transitive closure;
//   Example 6.1 — dist_i (paths of length exactly 2^i);
//   Example 6.2 — dist_i / dist<_i with empty-body base rules;
//   Example 6.3 — equal_i (label-equal path pairs of length 2^i);
//   Example 6.6 — word_i (labeled paths; linear nonrecursive).
// Plus parametric helpers used by tests and benchmarks.
#ifndef DATALOG_EQ_SRC_GENERATORS_EXAMPLES_H_
#define DATALOG_EQ_SRC_GENERATORS_EXAMPLES_H_

#include <string>

#include "src/ast/rule.h"
#include "src/cq/cq.h"

namespace datalog {

/// Example 1.1, Π1: buys via likes with a trendy shortcut. Equivalent to
/// a nonrecursive program (bounded).
Program Buys1Program();
/// Example 1.1, Π2: buys via knows chains. Inherently recursive.
Program Buys2Program();
/// The nonrecursive program the paper pairs with Π1 (equivalent to it).
Program Buys1NonrecursiveProgram();
/// The nonrecursive program the paper pairs with Π2 (NOT equivalent).
Program Buys2NonrecursiveProgram();

/// Example 2.5: linear transitive closure with base predicate `base_edb`
/// and step predicate `step_edb`, goal predicate "p".
Program TransitiveClosureProgram(const std::string& step_edb = "e",
                                 const std::string& base_edb = "e0");
/// Nonlinear (divide-and-conquer) transitive closure over one EDB "e".
Program NonlinearTransitiveClosureProgram();

/// Example 6.1: dist_i(x, y) iff there is a path of length exactly 2^i.
/// Nonrecursive; unfolds to one CQ with 2^n atoms.
Program DistProgram(int n);
std::string DistPredicate(int i);

/// Example 6.2: dist_i (length <= 2^i) and dist<_i (length <= 2^i - 1),
/// with empty-body base rules. Goal: DistLePredicate(n) or
/// DistPredicate(n).
Program DistLeProgram(int n);
std::string DistLePredicate(int i);

/// Example 6.3: equal_i(x, y, u, v) iff there are Zero/One-labeled paths
/// of length 2^i from x to y and u to v with equal labels (except
/// possibly at the endpoints).
Program EqualProgram(int n);
std::string EqualPredicate(int i);

/// Example 6.6: word_i(x, y) iff there is a Zero/One-labeled path of
/// length i from x to y. Linear nonrecursive: 2^n disjuncts of size O(n).
Program WordProgram(int n);
std::string WordPredicate(int i);

/// The union of e-path queries p(X, Y) :- e(X, Z1), ..., e(Zk-1, Y) for
/// k = 1..max_length (used to probe transitive closure).
UnionOfCqs PathQueries(int max_length);

/// A single e-chain CQ of the given length: q(X0, Xn) with n edge atoms.
ConjunctiveQuery ChainQuery(int length);

/// A linear "chain" program whose recursive rule advances `step` EDB
/// predicates at a time (used for scaling benchmarks): p(X, Y) :- e(X,Z1),
/// ..., e(Z_step-1, Z_step), p(Z_step, Y) plus base p(X, Y) :- e(X, Y).
Program ChainProgram(int step);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_GENERATORS_EXAMPLES_H_
