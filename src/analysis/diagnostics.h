// Static diagnostics for Datalog programs: structural lints that run
// before a program reaches the engine or the containment stack.
//
// The paper's constructions (§5) assume well-formed programs — consistent
// predicate arities, an IDB goal — and pay for every rule in varnum(Π),
// the automata alphabets, and every fixpoint round. The lint pass checks
// what must hold (errors) and flags what is probably a mistake but is
// legal under the repo's semantics (warnings):
//
//   errors   empty-program, arity-mismatch, goal-not-idb
//   warnings unsafe-head-variable (legal: active-domain semantics covers
//            unsafe rules such as the paper's `dist0(X, X) :- .`),
//            singleton-variable, duplicate-rule, cross-product-join (a
//            body atom shares no variables with the rest, so every join
//            order contains a cartesian step no planner can avoid),
//            unused-rule, goal-unreachable-rule
//
// Diagnostics are structured records (severity, kind, rule index,
// predicate, message) so callers can filter or render them; the
// tools/datalog_lint CLI prints one FormatDiagnostic line each.
#ifndef DATALOG_EQ_SRC_ANALYSIS_DIAGNOSTICS_H_
#define DATALOG_EQ_SRC_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "src/ast/rule.h"

namespace datalog {

enum class DiagnosticSeverity { kWarning, kError };

enum class DiagnosticKind {
  // Errors.
  kEmptyProgram,
  kArityMismatch,
  kGoalNotIdb,
  // Warnings.
  kUnsafeHeadVariable,
  kSingletonVariable,
  kDuplicateRule,
  kCrossProductJoin,
  kUnusedRule,
  kGoalUnreachableRule,
};

/// Stable lowercase slug for a kind, e.g. "arity-mismatch". Pinned by the
/// datalog_lint golden files.
const char* DiagnosticKindSlug(DiagnosticKind kind);

struct Diagnostic {
  DiagnosticSeverity severity = DiagnosticSeverity::kWarning;
  DiagnosticKind kind = DiagnosticKind::kEmptyProgram;
  /// Index of the offending rule in program.rules(), or -1 when the
  /// diagnostic is program-level (empty-program, goal-not-idb).
  int rule_index = -1;
  /// The predicate the diagnostic is about (may be empty).
  std::string predicate;
  /// Human-readable explanation (no severity/kind prefix; FormatDiagnostic
  /// adds those).
  std::string message;

  bool operator==(const Diagnostic& other) const {
    return severity == other.severity && kind == other.kind &&
           rule_index == other.rule_index && predicate == other.predicate &&
           message == other.message;
  }
};

/// Runs every lint over `program`. Goal-dependent checks (goal-not-idb,
/// unused-rule, goal-unreachable-rule) run only when `goal` is non-empty.
/// Deterministic: diagnostics are emitted in check order, then rule order.
std::vector<Diagnostic> LintProgram(const Program& program,
                                    const std::string& goal = "");

/// True if any diagnostic in `diagnostics` is an error.
bool HasLintErrors(const std::vector<Diagnostic>& diagnostics);

/// Renders one diagnostic as
///   `error[arity-mismatch] rule 1 (p): ...` or
///   `warning[duplicate-rule] rule 2 (q): ...`
/// (the `rule N (pred)` span is omitted for program-level diagnostics).
std::string FormatDiagnostic(const Diagnostic& diagnostic);

/// Renders all diagnostics, one per line (each line newline-terminated).
std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ANALYSIS_DIAGNOSTICS_H_
