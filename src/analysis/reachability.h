// Goal-directed reachability over a program's rules, and the rule-pruning
// transforms built on it.
//
// A rule can contribute to deriving the goal only if its head predicate is
// backward-reachable from the goal in the dependence graph (goal first;
// a rule with head in the reachable set adds all its body predicates).
// Dropping the rest shrinks varnum(Π), the ptrees/linear automata
// alphabets, and every decider round — without changing any verdict,
// witness, or derived goal relation:
//
//  * Proof-tree semantics (the decider, ptrees/theta/linear automata):
//    a proof tree for a goal-predicate fact mentions only rules whose
//    head predicate is backward-reachable from the goal, so pruning
//    removes no proof tree and admits no new one. Unconditionally sound —
//    see PruneUnreachableRules.
//  * Engine evaluation of the goal relation: sound for the same reason,
//    EXCEPT that the engine's active domain includes every constant of
//    the program, so pruning a rule that carries a constant can shrink
//    the domain an unsafe retained rule enumerates over. PruneForEvaluation
//    adds that guard and declines to prune in the affected corner.
#ifndef DATALOG_EQ_SRC_ANALYSIS_REACHABILITY_H_
#define DATALOG_EQ_SRC_ANALYSIS_REACHABILITY_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/ast/rule.h"

namespace datalog {

/// The predicates backward-reachable from `goal`: the least set R with
/// goal ∈ R and, for every rule whose head predicate is in R, all body
/// predicates in R. (EDB predicates reachable through some rule body are
/// included.) If the goal heads no rule, the result is just {goal}.
std::unordered_set<std::string> GoalReachablePredicates(
    const Program& program, const std::string& goal);

/// Per rule of `program` (by index): 1 if the rule's head predicate is
/// backward-reachable from `goal`, else 0.
std::vector<char> GoalReachableRules(const Program& program,
                                     const std::string& goal);

/// The program restricted to its goal-reachable rules, preserving their
/// relative order. Returns nullopt when there is nothing to do: every
/// rule is reachable, or none is (a goal that heads no rule — pruning to
/// an empty program would turn a structural error into a silent one).
///
/// Sound for proof-tree semantics: verdicts and witnesses of the
/// containment deciders, and the ptrees/theta/linear automata languages
/// restricted to goal-rooted trees, are unchanged.
std::optional<Program> PruneUnreachableRules(const Program& program,
                                             const std::string& goal);

/// PruneUnreachableRules, guarded for engine evaluation under
/// active-domain semantics: additionally returns nullopt when some
/// retained rule is unsafe (a head variable unbound by its body) and the
/// pruned rules mention a constant that no retained rule mentions —
/// exactly the case where pruning would shrink the active domain the
/// unsafe rule enumerates over and so could change the goal relation.
/// (EDB constants are unaffected by pruning; only program constants are
/// at stake.)
std::optional<Program> PruneForEvaluation(const Program& program,
                                          const std::string& goal);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ANALYSIS_REACHABILITY_H_
