// SCC stratification of a Datalog program for strata-ordered evaluation.
//
// Condensing the dependence graph (src/ast/analysis.h, src/util/scc.h)
// groups the rules by the strongly-connected component of their head
// predicate; evaluating the components in topological order (dependencies
// first) computes each lower stratum to fixpoint once, so only the rules
// of the current component iterate. For monotone Datalog this is the
// classic semi-naive refinement: the least fixpoint is unchanged, but a
// rule whose component is already saturated never re-joins in later
// strata's rounds (EvalStats::rounds_saved counts those avoided
// rule-round evaluations).
#ifndef DATALOG_EQ_SRC_ANALYSIS_STRATIFY_H_
#define DATALOG_EQ_SRC_ANALYSIS_STRATIFY_H_

#include <cstddef>
#include <vector>

#include "src/ast/rule.h"

namespace datalog {

struct Stratification {
  /// Rule indexes into program.rules(), grouped by the SCC of the rule's
  /// head predicate and listed in evaluation order: strata[0] must be
  /// evaluated first, and every rule's body predicates are defined in its
  /// own stratum or an earlier one. Indexes ascend within a stratum, so a
  /// single-stratum program yields {0, 1, ..., n-1} and strata-ordered
  /// evaluation degenerates to the plain fixpoint. Empty strata (SCCs of
  /// EDB predicates, which head no rules) are omitted.
  std::vector<std::vector<std::size_t>> strata;
};

/// Groups the program's rules into evaluation-ordered strata. Mutually
/// recursive predicates share a component and hence a stratum.
Stratification StratifyProgram(const Program& program);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_ANALYSIS_STRATIFY_H_
