#include "src/analysis/diagnostics.h"

#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/analysis/reachability.h"

namespace datalog {
namespace {

Diagnostic Make(DiagnosticSeverity severity, DiagnosticKind kind,
                int rule_index, std::string predicate, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.kind = kind;
  d.rule_index = rule_index;
  d.predicate = std::move(predicate);
  d.message = std::move(message);
  return d;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

// Errors: a predicate used with two different arities anywhere in the
// program (or by the goal lookup downstream) breaks interning, indexing,
// and the automata alphabets. First use wins; every later conflicting use
// is reported against the rule it occurs in.
void CheckArities(const Program& program, std::vector<Diagnostic>* out) {
  struct FirstUse {
    std::size_t arity;
    std::size_t rule;
  };
  std::map<std::string, FirstUse> first_use;
  const std::vector<Rule>& rules = program.rules();
  for (std::size_t r = 0; r < rules.size(); ++r) {
    std::vector<const Atom*> atoms;
    atoms.push_back(&rules[r].head());
    for (const Atom& body_atom : rules[r].body()) atoms.push_back(&body_atom);
    for (const Atom* atom : atoms) {
      auto [it, inserted] =
          first_use.emplace(atom->predicate(), FirstUse{atom->arity(), r});
      if (inserted || it->second.arity == atom->arity()) continue;
      std::ostringstream msg;
      msg << "predicate '" << atom->predicate() << "' used with arity "
          << atom->arity() << " but first used with arity "
          << it->second.arity << " in rule " << it->second.rule;
      out->push_back(Make(DiagnosticSeverity::kError,
                          DiagnosticKind::kArityMismatch, static_cast<int>(r),
                          atom->predicate(), msg.str()));
    }
  }
}

// Warnings local to a single rule, emitted rule-major so CLI output reads
// top-to-bottom through the program.
void CheckRuleLocal(const Program& program, std::vector<Diagnostic>* out) {
  const std::vector<Rule>& rules = program.rules();
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const std::string& head_pred = rule.head().predicate();

    // Head variables with no body occurrence. Legal — the engine applies
    // active-domain semantics and the paper's Example 6.2 uses
    // `dist0(X, X) :- .` — but worth flagging: the rule's meaning depends
    // on the database's active domain, which surprises most authors.
    std::unordered_set<std::string> body_vars;
    for (const Atom& atom : rule.body()) {
      for (const Term& t : atom.args()) {
        if (t.is_variable()) body_vars.insert(t.name());
      }
    }
    std::vector<std::string> unsafe;
    std::unordered_set<std::string> seen_unsafe;
    for (const Term& t : rule.head().args()) {
      if (!t.is_variable() || body_vars.count(t.name()) != 0) continue;
      if (seen_unsafe.insert(t.name()).second) unsafe.push_back(t.name());
    }
    if (!unsafe.empty()) {
      std::ostringstream msg;
      msg << "head variable(s) " << JoinNames(unsafe)
          << " not bound by any body atom (rule is unsafe; "
             "active-domain semantics applies)";
      out->push_back(Make(DiagnosticSeverity::kWarning,
                          DiagnosticKind::kUnsafeHeadVariable,
                          static_cast<int>(r), head_pred, msg.str()));
    }

    // Variables occurring exactly once in the whole rule, in the body.
    // (A head-only single occurrence is the unsafe case above; reporting
    // it twice would be noise.) Usually a typo for a join variable.
    std::unordered_map<std::string, int> counts;
    std::vector<std::string> order;
    auto count_atom = [&](const Atom& atom) {
      for (const Term& t : atom.args()) {
        if (!t.is_variable()) continue;
        if (++counts[t.name()] == 1) order.push_back(t.name());
      }
    };
    count_atom(rule.head());
    std::unordered_set<std::string> head_vars;
    for (const Term& t : rule.head().args()) {
      if (t.is_variable()) head_vars.insert(t.name());
    }
    for (const Atom& atom : rule.body()) count_atom(atom);
    std::vector<std::string> singletons;
    for (const std::string& name : order) {
      if (counts[name] == 1 && head_vars.count(name) == 0) {
        singletons.push_back(name);
      }
    }
    if (!singletons.empty()) {
      std::ostringstream msg;
      msg << "variable(s) " << JoinNames(singletons)
          << " occur only once (possible typo for a join variable)";
      out->push_back(Make(DiagnosticSeverity::kWarning,
                          DiagnosticKind::kSingletonVariable,
                          static_cast<int>(r), head_pred, msg.str()));
    }

    // A group of body atoms sharing no variables with the rest forces a
    // cartesian product under *every* join order — the one shape the
    // cost-based planner cannot do anything about, and almost always a
    // missing join variable. Ground (variable-free) atoms are existence
    // filters, not product factors, so they do not participate.
    const std::vector<Atom>& body = rule.body();
    std::vector<std::size_t> var_atoms;
    for (std::size_t i = 0; i < body.size(); ++i) {
      for (const Term& t : body[i].args()) {
        if (t.is_variable()) {
          var_atoms.push_back(i);
          break;
        }
      }
    }
    if (var_atoms.size() >= 2) {
      // Union-find over the variable-bearing atoms, merged through
      // shared variables.
      std::vector<std::size_t> parent(var_atoms.size());
      for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
      auto find = [&parent](std::size_t x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
      };
      std::unordered_map<std::string, std::size_t> owner;
      for (std::size_t i = 0; i < var_atoms.size(); ++i) {
        for (const Term& t : body[var_atoms[i]].args()) {
          if (!t.is_variable()) continue;
          auto [it, inserted] = owner.emplace(t.name(), i);
          if (!inserted) parent[find(i)] = find(it->second);
        }
      }
      std::size_t first_component = find(0);
      std::vector<std::string> detached;
      std::unordered_set<std::string> seen_detached;
      for (std::size_t i = 1; i < var_atoms.size(); ++i) {
        if (find(i) == first_component) continue;
        const std::string& pred = body[var_atoms[i]].predicate();
        if (seen_detached.insert(pred).second) detached.push_back(pred);
      }
      if (!detached.empty()) {
        std::ostringstream msg;
        msg << "body atom(s) " << JoinNames(detached)
            << " share no variables with the rest of the body; every join "
               "order contains a cross-product step";
        out->push_back(Make(DiagnosticSeverity::kWarning,
                            DiagnosticKind::kCrossProductJoin,
                            static_cast<int>(r), head_pred, msg.str()));
      }
    }

    // Duplicate of an earlier rule (syntactic equality). Harmless to the
    // semantics, pure cost to varnum(Π), the alphabets, and every round.
    for (std::size_t earlier = 0; earlier < r; ++earlier) {
      if (rules[earlier] != rule) continue;
      std::ostringstream msg;
      msg << "rule is identical to rule " << earlier;
      out->push_back(Make(DiagnosticSeverity::kWarning,
                          DiagnosticKind::kDuplicateRule, static_cast<int>(r),
                          head_pred, msg.str()));
      break;
    }
  }
}

// Goal-dependent warnings: rules that cannot contribute to the goal.
// `unused-rule` (head predicate feeds nothing: not the goal, occurs in no
// body) is preferred over the weaker `goal-unreachable-rule` so each rule
// gets at most one of the two.
void CheckGoalReachability(const Program& program, const std::string& goal,
                           std::vector<Diagnostic>* out) {
  std::set<std::string> body_preds;
  for (const Rule& rule : program.rules()) {
    for (const Atom& atom : rule.body()) body_preds.insert(atom.predicate());
  }
  std::vector<char> reachable = GoalReachableRules(program, goal);
  const std::vector<Rule>& rules = program.rules();
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const std::string& head_pred = rules[r].head().predicate();
    if (head_pred != goal && body_preds.count(head_pred) == 0) {
      std::ostringstream msg;
      msg << "head predicate '" << head_pred
          << "' is not the goal and occurs in no rule body";
      out->push_back(Make(DiagnosticSeverity::kWarning,
                          DiagnosticKind::kUnusedRule, static_cast<int>(r),
                          head_pred, msg.str()));
      continue;
    }
    if (!reachable[r]) {
      std::ostringstream msg;
      msg << "rule is not backward-reachable from goal '" << goal << "'";
      out->push_back(Make(DiagnosticSeverity::kWarning,
                          DiagnosticKind::kGoalUnreachableRule,
                          static_cast<int>(r), head_pred, msg.str()));
    }
  }
}

}  // namespace

const char* DiagnosticKindSlug(DiagnosticKind kind) {
  switch (kind) {
    case DiagnosticKind::kEmptyProgram:
      return "empty-program";
    case DiagnosticKind::kArityMismatch:
      return "arity-mismatch";
    case DiagnosticKind::kGoalNotIdb:
      return "goal-not-idb";
    case DiagnosticKind::kUnsafeHeadVariable:
      return "unsafe-head-variable";
    case DiagnosticKind::kSingletonVariable:
      return "singleton-variable";
    case DiagnosticKind::kDuplicateRule:
      return "duplicate-rule";
    case DiagnosticKind::kCrossProductJoin:
      return "cross-product-join";
    case DiagnosticKind::kUnusedRule:
      return "unused-rule";
    case DiagnosticKind::kGoalUnreachableRule:
      return "goal-unreachable-rule";
  }
  return "unknown";
}

std::vector<Diagnostic> LintProgram(const Program& program,
                                    const std::string& goal) {
  std::vector<Diagnostic> diagnostics;
  if (program.rules().empty()) {
    diagnostics.push_back(Make(DiagnosticSeverity::kError,
                               DiagnosticKind::kEmptyProgram, -1, "",
                               "program has no rules"));
    return diagnostics;
  }
  CheckArities(program, &diagnostics);
  bool goal_is_idb = true;
  if (!goal.empty() && !program.IsIdb(goal)) {
    goal_is_idb = false;
    std::ostringstream msg;
    msg << "goal predicate '" << goal
        << "' heads no rule (it is extensional, not IDB)";
    diagnostics.push_back(Make(DiagnosticSeverity::kError,
                               DiagnosticKind::kGoalNotIdb, -1, goal,
                               msg.str()));
  }
  CheckRuleLocal(program, &diagnostics);
  // Reachability over an EDB goal would flag every rule; skip the
  // goal-dependent warnings once goal-not-idb already fired.
  if (!goal.empty() && goal_is_idb) {
    CheckGoalReachability(program, goal, &diagnostics);
  }
  return diagnostics;
}

bool HasLintErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagnosticSeverity::kError) return true;
  }
  return false;
}

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  std::ostringstream out;
  out << (diagnostic.severity == DiagnosticSeverity::kError ? "error"
                                                            : "warning")
      << '[' << DiagnosticKindSlug(diagnostic.kind) << ']';
  if (diagnostic.rule_index >= 0) {
    out << " rule " << diagnostic.rule_index;
    if (!diagnostic.predicate.empty()) {
      out << " (" << diagnostic.predicate << ')';
    }
  } else if (!diagnostic.predicate.empty()) {
    out << " (" << diagnostic.predicate << ')';
  }
  out << ": " << diagnostic.message;
  return out.str();
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += FormatDiagnostic(d);
    out += '\n';
  }
  return out;
}

}  // namespace datalog
