#include "src/analysis/reachability.h"

#include <cstddef>
#include <deque>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace datalog {
namespace {

// True if some head variable of `rule` has no body occurrence.
bool IsUnsafeRule(const Rule& rule) {
  std::unordered_set<std::string> body_vars;
  for (const Atom& atom : rule.body()) {
    for (const Term& t : atom.args()) {
      if (t.is_variable()) body_vars.insert(t.name());
    }
  }
  for (const Term& t : rule.head().args()) {
    if (t.is_variable() && body_vars.count(t.name()) == 0) return true;
  }
  return false;
}

void CollectConstants(const Rule& rule,
                      std::unordered_set<std::string>* out) {
  for (const Term& t : rule.head().args()) {
    if (t.is_constant()) out->insert(t.name());
  }
  for (const Atom& atom : rule.body()) {
    for (const Term& t : atom.args()) {
      if (t.is_constant()) out->insert(t.name());
    }
  }
}

}  // namespace

std::unordered_set<std::string> GoalReachablePredicates(
    const Program& program, const std::string& goal) {
  std::unordered_set<std::string> reachable;
  reachable.insert(goal);
  std::deque<std::string> frontier;
  frontier.push_back(goal);
  while (!frontier.empty()) {
    std::string pred = std::move(frontier.front());
    frontier.pop_front();
    for (const Rule& rule : program.rules()) {
      if (rule.head().predicate() != pred) continue;
      for (const Atom& atom : rule.body()) {
        if (reachable.insert(atom.predicate()).second) {
          frontier.push_back(atom.predicate());
        }
      }
    }
  }
  return reachable;
}

std::vector<char> GoalReachableRules(const Program& program,
                                     const std::string& goal) {
  std::unordered_set<std::string> reachable =
      GoalReachablePredicates(program, goal);
  std::vector<char> result(program.rules().size(), 0);
  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    if (reachable.count(program.rules()[r].head().predicate()) != 0) {
      result[r] = 1;
    }
  }
  return result;
}

std::optional<Program> PruneUnreachableRules(const Program& program,
                                             const std::string& goal) {
  std::vector<char> keep = GoalReachableRules(program, goal);
  std::size_t kept = 0;
  for (char k : keep) kept += static_cast<std::size_t>(k);
  if (kept == keep.size() || kept == 0) return std::nullopt;
  std::vector<Rule> rules;
  rules.reserve(kept);
  for (std::size_t r = 0; r < keep.size(); ++r) {
    if (keep[r]) rules.push_back(program.rules()[r]);
  }
  return Program(std::move(rules));
}

std::optional<Program> PruneForEvaluation(const Program& program,
                                          const std::string& goal) {
  std::vector<char> keep = GoalReachableRules(program, goal);
  std::size_t kept = 0;
  for (char k : keep) kept += static_cast<std::size_t>(k);
  if (kept == keep.size() || kept == 0) return std::nullopt;

  bool retained_unsafe = false;
  std::unordered_set<std::string> retained_constants;
  std::unordered_set<std::string> pruned_constants;
  for (std::size_t r = 0; r < keep.size(); ++r) {
    const Rule& rule = program.rules()[r];
    if (keep[r]) {
      retained_unsafe = retained_unsafe || IsUnsafeRule(rule);
      CollectConstants(rule, &retained_constants);
    } else {
      CollectConstants(rule, &pruned_constants);
    }
  }
  if (retained_unsafe) {
    for (const std::string& constant : pruned_constants) {
      // Pruning would remove this constant from the engine's active
      // domain, which the unsafe retained rule enumerates over: the goal
      // relation could change. Decline to prune.
      if (retained_constants.count(constant) == 0) return std::nullopt;
    }
  }

  std::vector<Rule> rules;
  rules.reserve(kept);
  for (std::size_t r = 0; r < keep.size(); ++r) {
    if (keep[r]) rules.push_back(program.rules()[r]);
  }
  return Program(std::move(rules));
}

}  // namespace datalog
