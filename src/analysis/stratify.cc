#include "src/analysis/stratify.h"

#include "src/ast/analysis.h"

namespace datalog {

Stratification StratifyProgram(const Program& program) {
  DependenceGraph graph = BuildDependenceGraph(program);
  Stratification result;
  if (program.rules().empty()) return result;
  // Components are numbered in reverse topological order of the edges
  // Q -> P ("P depends on Q"), so a rule's body predicates have component
  // ids >= its head's: iterating components DESCENDING visits
  // dependencies first.
  std::vector<std::vector<std::size_t>> by_component(
      static_cast<std::size_t>(graph.sccs.num_components));
  for (std::size_t r = 0; r < program.rules().size(); ++r) {
    int node = graph.NodeId(program.rules()[r].head().predicate());
    int component = graph.sccs.component[static_cast<std::size_t>(node)];
    by_component[static_cast<std::size_t>(component)].push_back(r);
  }
  for (std::size_t c = by_component.size(); c-- > 0;) {
    if (by_component[c].empty()) continue;  // EDB-only component
    result.strata.push_back(std::move(by_component[c]));
  }
  return result;
}

}  // namespace datalog
