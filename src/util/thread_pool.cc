#include "src/util/thread_pool.h"

namespace datalog {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread is one of the batch's executors.
  for (std::size_t i = next_.fetch_add(1); i < n; i = next_.fetch_add(1)) {
    fn(i);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job;
    std::size_t size;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      size = job_size_;
    }
    for (std::size_t i = next_.fetch_add(1); i < size;
         i = next_.fetch_add(1)) {
      (*job)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      // ParallelFor holds the batch open until every worker has checked
      // in exactly once for this generation, so `job_` cannot be
      // republished while any worker still runs the old one.
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace datalog
