// Lightweight assertion macros in the spirit of glog's CHECK family.
//
// These are used for programmer errors (violated preconditions / internal
// invariants), not for recoverable conditions; recoverable errors flow
// through util::Status instead.
#ifndef DATALOG_EQ_SRC_UTIL_LOGGING_H_
#define DATALOG_EQ_SRC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace datalog::internal {

// Accumulates a failure message and aborts the process when destroyed.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << file << ":" << line << " " << kind << " failed: " << condition
            << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace datalog::internal

#define DATALOG_CHECK(cond)                                              \
  if (!(cond))                                                           \
  ::datalog::internal::CheckFailureStream("CHECK", __FILE__, __LINE__, #cond)

#define DATALOG_CHECK_EQ(a, b) DATALOG_CHECK((a) == (b))
#define DATALOG_CHECK_NE(a, b) DATALOG_CHECK((a) != (b))
#define DATALOG_CHECK_LT(a, b) DATALOG_CHECK((a) < (b))
#define DATALOG_CHECK_LE(a, b) DATALOG_CHECK((a) <= (b))
#define DATALOG_CHECK_GT(a, b) DATALOG_CHECK((a) > (b))
#define DATALOG_CHECK_GE(a, b) DATALOG_CHECK((a) >= (b))

#endif  // DATALOG_EQ_SRC_UTIL_LOGGING_H_
