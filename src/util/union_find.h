// Disjoint-set forest with path compression and union by rank.
// Used for variable-occurrence connectedness (paper Definition 5.2).
#ifndef DATALOG_EQ_SRC_UTIL_UNION_FIND_H_
#define DATALOG_EQ_SRC_UTIL_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace datalog {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Adds a fresh singleton element and returns its index.
  std::size_t Add() {
    parent_.push_back(parent_.size());
    rank_.push_back(0);
    return parent_.size() - 1;
  }

  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the classes of `a` and `b`; returns the new representative.
  std::size_t Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return a;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return a;
  }

  bool Connected(std::size_t a, std::size_t b) { return Find(a) == Find(b); }

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_UNION_FIND_H_
