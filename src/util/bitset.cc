#include "src/util/bitset.h"

#include <algorithm>
#include <cstring>

namespace datalog {

Bitset::Bitset(std::size_t num_bits) : num_bits_(num_bits) {
  num_words_ = WordsFor(num_bits);
  if (num_words_ <= 1) {
    inline_word_ = 0;
  } else {
    heap_ = new std::uint64_t[num_words_]();
  }
}

Bitset::Bitset(const Bitset& other)
    : num_bits_(other.num_bits_), num_words_(other.num_words_) {
  if (num_words_ <= 1) {
    inline_word_ = other.inline_word_;
  } else {
    heap_ = new std::uint64_t[num_words_];
    std::memcpy(heap_, other.heap_, num_words_ * sizeof(std::uint64_t));
  }
}

Bitset::Bitset(Bitset&& other) noexcept
    : num_bits_(other.num_bits_), num_words_(other.num_words_) {
  if (num_words_ <= 1) {
    inline_word_ = other.inline_word_;
  } else {
    heap_ = other.heap_;
    other.num_bits_ = 0;
    other.num_words_ = 1;
    other.inline_word_ = 0;
  }
}

Bitset& Bitset::operator=(const Bitset& other) {
  if (this == &other) return *this;
  if (num_words_ > 1) delete[] heap_;
  num_bits_ = other.num_bits_;
  num_words_ = other.num_words_;
  if (num_words_ <= 1) {
    inline_word_ = other.inline_word_;
  } else {
    heap_ = new std::uint64_t[num_words_];
    std::memcpy(heap_, other.heap_, num_words_ * sizeof(std::uint64_t));
  }
  return *this;
}

Bitset& Bitset::operator=(Bitset&& other) noexcept {
  if (this == &other) return *this;
  if (num_words_ > 1) delete[] heap_;
  num_bits_ = other.num_bits_;
  num_words_ = other.num_words_;
  if (num_words_ <= 1) {
    inline_word_ = other.inline_word_;
  } else {
    heap_ = other.heap_;
    other.num_bits_ = 0;
    other.num_words_ = 1;
    other.inline_word_ = 0;
  }
  return *this;
}

Bitset::~Bitset() {
  if (num_words_ > 1) delete[] heap_;
}

void Bitset::Reserve(std::size_t num_bits) {
  if (num_bits <= num_bits_) {
    // Capacity in words may already cover the request (e.g. 65 -> 70
    // bits); only the logical capacity needs updating.
    return;
  }
  std::size_t words = WordsFor(num_bits);
  if (words <= num_words_) {
    num_bits_ = num_bits;
    return;
  }
  std::uint64_t* grown = new std::uint64_t[words]();
  std::memcpy(grown, data(), num_words_ * sizeof(std::uint64_t));
  if (num_words_ > 1) delete[] heap_;
  heap_ = grown;
  num_words_ = words;
  num_bits_ = num_bits;
}

void Bitset::Set(std::size_t i) {
  if (i >= num_bits_) Reserve(i + 1);
  data()[i / kBitsPerWord] |= std::uint64_t{1} << (i % kBitsPerWord);
}

void Bitset::Reset(std::size_t i) {
  if (i >= num_bits_) return;
  data()[i / kBitsPerWord] &= ~(std::uint64_t{1} << (i % kBitsPerWord));
}

void Bitset::Clear() {
  std::uint64_t* words = data();
  for (std::size_t w = 0; w < num_words_; ++w) words[w] = 0;
}

bool Bitset::Any() const {
  const std::uint64_t* words = data();
  for (std::size_t w = 0; w < num_words_; ++w) {
    if (words[w] != 0) return true;
  }
  return false;
}

std::size_t Bitset::Count() const {
  const std::uint64_t* words = data();
  std::size_t total = 0;
  for (std::size_t w = 0; w < num_words_; ++w) {
    total += static_cast<std::size_t>(__builtin_popcountll(words[w]));
  }
  return total;
}

void Bitset::UnionWith(const Bitset& other) {
  if (other.num_bits_ > num_bits_) Reserve(other.num_bits_);
  std::uint64_t* words = data();
  const std::uint64_t* other_words = other.data();
  std::size_t common = std::min(num_words_, other.num_words_);
  for (std::size_t w = 0; w < common; ++w) words[w] |= other_words[w];
}

void Bitset::IntersectWith(const Bitset& other) {
  std::uint64_t* words = data();
  const std::uint64_t* other_words = other.data();
  for (std::size_t w = 0; w < num_words_; ++w) {
    words[w] &= w < other.num_words_ ? other_words[w] : 0;
  }
}

bool Bitset::Intersects(const Bitset& other) const {
  const std::uint64_t* words = data();
  const std::uint64_t* other_words = other.data();
  std::size_t common = std::min(num_words_, other.num_words_);
  for (std::size_t w = 0; w < common; ++w) {
    if ((words[w] & other_words[w]) != 0) return true;
  }
  return false;
}

bool Bitset::IsSubsetOf(const Bitset& other, std::size_t* word_ops) const {
  const std::uint64_t* words = data();
  for (std::size_t w = 0; w < num_words_; ++w) {
    if (word_ops != nullptr) ++*word_ops;
    if ((words[w] & ~other.WordOrZero(w)) != 0) return false;
  }
  return true;
}

std::uint64_t Bitset::Fold() const {
  const std::uint64_t* words = data();
  std::uint64_t fold = 0;
  for (std::size_t w = 0; w < num_words_; ++w) fold |= words[w];
  return fold;
}

std::size_t Bitset::Hash() const {
  // FNV-1a over words up to the last nonzero one, finished with a strong
  // mix (the flat tables' recipe) — capacity-independent by construction.
  const std::uint64_t* words = data();
  std::size_t last = num_words_;
  while (last > 0 && words[last - 1] == 0) --last;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t w = 0; w < last; ++w) {
    h = (h ^ words[w]) * 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<std::size_t>(h);
}

bool Bitset::operator==(const Bitset& other) const {
  std::size_t common = std::max(num_words_, other.num_words_);
  for (std::size_t w = 0; w < common; ++w) {
    if (WordOrZero(w) != other.WordOrZero(w)) return false;
  }
  return true;
}

std::vector<std::size_t> Bitset::ToVector() const {
  std::vector<std::size_t> out;
  ForEachSetBit([&out](std::size_t i) { out.push_back(i); });
  return out;
}

namespace {

// a ⊆ b is only possible when fold(a) has no bit outside fold(b).
inline bool FoldMaySubset(std::uint64_t fold_a, std::uint64_t fold_b) {
  return (fold_a & ~fold_b) == 0;
}

}  // namespace

bool AntichainStore::Dominated(const Bitset& set) const {
  const std::uint64_t fold = set.Fold();
  const std::size_t count = set.Count();
  if (mode_ == Mode::kExact) {
    if (count >= buckets_.size()) return false;
    for (const Entry& entry : buckets_[count]) {
      ++stats_.subset_checks;
      if (entry.fold != fold) {
        ++stats_.fold_rejects;
        continue;
      }
      std::size_t before = stats_.word_ops;
      stats_.word_ops = before + std::max(entry.set.num_words(),
                                          set.num_words());
      if (entry.set == set) return true;
    }
    return false;
  }
  if (mode_ == Mode::kKeepMinimal) {
    // Dominating entries are subsets: popcount <= count, fold ⊆ fold.
    std::size_t top = std::min(count + 1, buckets_.size());
    for (std::size_t c = 0; c < top; ++c) {
      for (const Entry& entry : buckets_[c]) {
        ++stats_.subset_checks;
        if (!FoldMaySubset(entry.fold, fold)) {
          ++stats_.fold_rejects;
          continue;
        }
        if (entry.set.IsSubsetOf(set, &stats_.word_ops)) return true;
      }
    }
    return false;
  }
  // kKeepMaximal: dominating entries are supersets.
  for (std::size_t c = count; c < buckets_.size(); ++c) {
    for (const Entry& entry : buckets_[c]) {
      ++stats_.subset_checks;
      if (!FoldMaySubset(fold, entry.fold)) {
        ++stats_.fold_rejects;
        continue;
      }
      if (set.IsSubsetOf(entry.set, &stats_.word_ops)) return true;
    }
  }
  return false;
}

bool AntichainStore::Insert(Bitset set, std::uint64_t payload,
                            std::vector<std::uint64_t>* pruned) {
  if (Dominated(set)) return false;
  const std::uint64_t fold = set.Fold();
  const std::size_t count = set.Count();
  if (mode_ != Mode::kExact) {
    // Remove every stored set the candidate dominates. kKeepMinimal
    // prunes supersets (popcount >= count); kKeepMaximal prunes subsets.
    // Equal sets cannot appear here — they would have dominated the
    // candidate above.
    std::size_t from = mode_ == Mode::kKeepMinimal ? count : 0;
    std::size_t to = mode_ == Mode::kKeepMinimal
                         ? buckets_.size()
                         : std::min(count + 1, buckets_.size());
    for (std::size_t c = from; c < to; ++c) {
      std::vector<Entry>& bucket = buckets_[c];
      for (std::size_t i = 0; i < bucket.size();) {
        Entry& entry = bucket[i];
        ++stats_.subset_checks;
        bool dominates;
        if (mode_ == Mode::kKeepMinimal) {
          dominates = FoldMaySubset(fold, entry.fold)
                          ? set.IsSubsetOf(entry.set, &stats_.word_ops)
                          : (++stats_.fold_rejects, false);
        } else {
          dominates = FoldMaySubset(entry.fold, fold)
                          ? entry.set.IsSubsetOf(set, &stats_.word_ops)
                          : (++stats_.fold_rejects, false);
        }
        if (!dominates) {
          ++i;
          continue;
        }
        if (pruned != nullptr) pruned->push_back(entry.payload);
        ++stats_.prunes;
        entry = std::move(bucket.back());
        bucket.pop_back();
        --size_;
      }
    }
  }
  if (count >= buckets_.size()) buckets_.resize(count + 1);
  buckets_[count].push_back(Entry{std::move(set), payload, fold});
  ++size_;
  return true;
}

}  // namespace datalog
