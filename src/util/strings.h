// Small string helpers (join/split/printf-free concatenation).
#ifndef DATALOG_EQ_SRC_UTIL_STRINGS_H_
#define DATALOG_EQ_SRC_UTIL_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace datalog {

/// Joins the elements of `parts` with `sep`. Elements must be streamable.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << sep;
    first = false;
    out << part;
  }
  return out.str();
}

/// Joins with a per-element formatter: `format(out, element)`.
template <typename Container, typename Formatter>
std::string StrJoin(const Container& parts, std::string_view sep,
                    Formatter&& format) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << sep;
    first = false;
    format(out, part);
  }
  return out.str();
}

/// Splits `text` on `delimiter`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

/// Concatenates streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_STRINGS_H_
