// A copyable, thread-safe build-once cache slot.
//
// BuildOnceSlot<T> is the substrate of the carried program IR
// (ir::CarriedIr): Program and UnionOfCqs each embed one, and the first
// accessor builds the shared value under a std::once_flag — so parallel
// drivers (the engine's worker pool, the canonical-database disjunct
// fan-out) can race on the first access of a shared carrier without
// double-building or tearing the pointer.
//
// Concurrency contract: any number of threads may call GetOrBuild and
// built() on the same slot concurrently. Reset (and copy/move *of the
// slot itself*) are mutations and need external synchronization, exactly
// like mutating the carrier object they live in.
#ifndef DATALOG_EQ_SRC_UTIL_BUILD_ONCE_H_
#define DATALOG_EQ_SRC_UTIL_BUILD_ONCE_H_

#include <memory>
#include <mutex>
#include <utility>

namespace datalog {

template <typename T>
class BuildOnceSlot {
 public:
  BuildOnceSlot() : state_(std::make_shared<State>()) {}

  // Copies share the built value and the once flag (the carriers'
  // semantics: a copied Program shares its source's cache until either
  // side mutates). A moved-from slot re-initializes to an empty state so
  // the source object stays usable.
  BuildOnceSlot(const BuildOnceSlot& other) = default;
  BuildOnceSlot& operator=(const BuildOnceSlot& other) = default;
  BuildOnceSlot(BuildOnceSlot&& other) noexcept
      : state_(std::move(other.state_)) {
    other.state_ = std::make_shared<State>();
  }
  BuildOnceSlot& operator=(BuildOnceSlot&& other) noexcept {
    state_ = std::move(other.state_);
    other.state_ = std::make_shared<State>();
    return *this;
  }

  /// The cached value, building it with `build` (a callable returning
  /// std::shared_ptr<T>) on the first call. Concurrent callers block
  /// until the one builder finishes; all receive the same pointer
  /// (std::call_once publishes the write).
  template <typename Builder>
  std::shared_ptr<T> GetOrBuild(Builder&& build) const {
    // Pin the state locally: a concurrent Reset on *another copy* of
    // the carrier can drop its own reference without invalidating ours.
    std::shared_ptr<State> state = state_;
    std::call_once(state->once, [&] {
      std::atomic_store(&state->value, build());
    });
    return state->value;
  }

  /// True once a value has been built and not Reset since. Safe to call
  /// concurrently with GetOrBuild (the peek is atomic), but a true/false
  /// answer racing an in-flight build is naturally stale.
  bool built() const { return std::atomic_load(&state_->value) != nullptr; }

  /// Drops the cached value by giving this slot a fresh state; other
  /// copies of the slot keep the old value. Mutation — requires the same
  /// external synchronization as mutating the owning carrier.
  void Reset() { state_ = std::make_shared<State>(); }

 private:
  struct State {
    std::once_flag once;
    std::shared_ptr<T> value;
  };
  std::shared_ptr<State> state_;
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_BUILD_ONCE_H_
