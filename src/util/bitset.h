// Word-parallel dynamic bitsets and the antichain store built on them.
//
// The containment machinery is dominated by set operations over dense-id
// universes: automata state sets (subset construction frontiers, the
// product sets of Nfa/Nfta::Contains) and the decider's achieved sets
// (interned achieved-pair ids). Bitset is the shared representation: a
// small-size-optimized dynamic bitset — one inline 64-bit word for
// universes up to 64 ids, a heap word array beyond — whose kernels
// (Union/Intersect/IsSubsetOf/Any/Count/Hash) each touch whole words, so
// a subset test over a 256-id universe is four AND-NOT words instead of a
// sorted-vector merge.
//
// AntichainStore keeps only the ⊆-minimal (or ⊆-maximal) sets of a
// family, the invariant all three containment fixpoints maintain per
// state slot. Entries are bucketed by popcount and carry a 64-bit OR-fold
// signature (the OR of all words), giving two necessary conditions per
// probe before any word scan runs: a stored set can only be a subset of
// the candidate if its popcount is no larger and if its fold has no bit
// outside the candidate's fold. Insert-and-prune therefore scans only
// the plausible buckets, not the whole family.
#ifndef DATALOG_EQ_SRC_UTIL_BITSET_H_
#define DATALOG_EQ_SRC_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace datalog {

class Bitset {
 public:
  Bitset() = default;
  /// All-zero bitset with capacity for bits [0, num_bits).
  explicit Bitset(std::size_t num_bits);
  Bitset(const Bitset& other);
  Bitset(Bitset&& other) noexcept;
  Bitset& operator=(const Bitset& other);
  Bitset& operator=(Bitset&& other) noexcept;
  ~Bitset();

  /// Capacity in bits. Two bitsets of different capacity are comparable:
  /// every kernel treats bits past a set's capacity as zero, so equality,
  /// subset, and hashing depend only on which bits are set.
  std::size_t num_bits() const { return num_bits_; }
  std::size_t num_words() const { return num_words_; }

  /// Grows capacity to at least `num_bits`, keeping set bits. Never
  /// shrinks.
  void Reserve(std::size_t num_bits);

  /// Sets bit `i`, growing capacity as needed (the decider's pair ids are
  /// allocated monotonically, so sets near the frontier grow in place).
  void Set(std::size_t i);
  /// Clears bit `i` (no-op past capacity).
  void Reset(std::size_t i);
  bool Test(std::size_t i) const {
    return i < num_bits_ &&
           (data()[i / kBitsPerWord] >> (i % kBitsPerWord) & 1u) != 0;
  }
  /// Clears every bit, keeping capacity.
  void Clear();

  bool Any() const;
  bool None() const { return !Any(); }
  /// Number of set bits (one popcount per word).
  std::size_t Count() const;

  /// this |= other (grows to other's capacity).
  void UnionWith(const Bitset& other);
  /// this &= other (words past other's capacity become zero).
  void IntersectWith(const Bitset& other);
  /// True when this ∩ other ≠ ∅.
  bool Intersects(const Bitset& other) const;
  /// True when every set bit of this is set in other: per word,
  /// a & ~b == 0. Each word examined increments *word_ops when non-null
  /// (surfaced as ContainmentStats::subset_word_ops).
  bool IsSubsetOf(const Bitset& other, std::size_t* word_ops = nullptr) const;

  /// OR of all words: a 64-bit signature with a ⊆ b ⟹
  /// (Fold(a) & ~Fold(b)) == 0, the AntichainStore's probe filter.
  std::uint64_t Fold() const;
  /// Capacity-independent hash (trailing zero words are ignored), so
  /// equal sets hash equal even when grown differently.
  std::size_t Hash() const;

  bool operator==(const Bitset& other) const;
  bool operator!=(const Bitset& other) const { return !(*this == other); }

  /// Calls fn(i) for every set bit i, in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn fn) const {
    const std::uint64_t* words = data();
    for (std::size_t w = 0; w < num_words_; ++w) {
      std::uint64_t word = words[w];
      while (word != 0) {
        std::size_t bit = static_cast<std::size_t>(__builtin_ctzll(word));
        fn(w * kBitsPerWord + bit);
        word &= word - 1;
      }
    }
  }

  /// The set bits as a sorted vector (decoding/debugging).
  std::vector<std::size_t> ToVector() const;

  const std::uint64_t* data() const {
    return num_words_ <= 1 ? &inline_word_ : heap_;
  }

 private:
  static constexpr std::size_t kBitsPerWord = 64;
  static std::size_t WordsFor(std::size_t num_bits) {
    return num_bits <= kBitsPerWord
               ? 1
               : (num_bits + kBitsPerWord - 1) / kBitsPerWord;
  }
  std::uint64_t* data() { return num_words_ <= 1 ? &inline_word_ : heap_; }
  std::uint64_t WordOrZero(std::size_t w) const {
    return w < num_words_ ? data()[w] : 0;
  }

  std::size_t num_bits_ = 0;
  // Storage: one inline word while capacity fits 64 bits, a heap array
  // beyond (the small-size optimization — automata frontiers and most
  // achieved sets stay inline).
  std::size_t num_words_ = 1;
  union {
    std::uint64_t inline_word_ = 0;
    std::uint64_t* heap_;
  };
};

struct BitsetHash {
  std::size_t operator()(const Bitset& set) const { return set.Hash(); }
};

/// Maintains a family of Bitsets closed under dominance pruning: in
/// kKeepMinimal mode only ⊆-minimal sets survive (a candidate with some
/// stored subset is rejected; stored supersets of an accepted candidate
/// are pruned), kKeepMaximal is the mirror image, and kExact keeps every
/// distinct set (dominance = equality — the ablation arms' dedup).
/// Each entry carries a caller payload (e.g. a state serial) so the
/// caller can mirror prunes into its own parallel structures.
///
/// The index is a popcount-bucket directory with per-entry OR-fold
/// signatures: a subset probe visits only buckets whose popcount does not
/// exceed the candidate's and runs the word scan only when the fold
/// filter passes, so insert-and-prune is sub-quadratic on the families
/// the fixpoints produce.
class AntichainStore {
 public:
  enum class Mode { kKeepMinimal, kKeepMaximal, kExact };

  /// Cumulative probe counters, for surfacing into ContainmentStats.
  struct Stats {
    /// Candidate-vs-stored pairs considered (popcount-plausible ones).
    std::size_t subset_checks = 0;
    /// Pairs rejected by the fold signature alone (no word scan).
    std::size_t fold_rejects = 0;
    /// Words examined by full subset/equality scans.
    std::size_t word_ops = 0;
    /// Stored entries removed because an inserted candidate dominated
    /// them.
    std::size_t prunes = 0;
  };

  AntichainStore() = default;
  explicit AntichainStore(Mode mode) : mode_(mode) {}

  Mode mode() const { return mode_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Stats& stats() const { return stats_; }

  /// True when a stored set dominates `set` (kKeepMinimal: some stored
  /// subset exists; kKeepMaximal: some stored superset; kExact: the set
  /// itself is stored). Read-only probe for callers that must not insert
  /// yet (e.g. successor filtering before enqueue).
  bool Dominated(const Bitset& set) const;

  /// Inserts `set` unless dominated. Returns false (store unchanged)
  /// when a stored set dominates it; otherwise removes every stored set
  /// the candidate dominates — appending their payloads to `pruned` when
  /// non-null — stores (set, payload), and returns true.
  bool Insert(Bitset set, std::uint64_t payload,
              std::vector<std::uint64_t>* pruned = nullptr);

  /// Calls fn(set, payload) for every stored entry (bucket order).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const std::vector<Entry>& bucket : buckets_) {
      for (const Entry& entry : bucket) fn(entry.set, entry.payload);
    }
  }

 private:
  struct Entry {
    Bitset set;
    std::uint64_t payload = 0;
    std::uint64_t fold = 0;
  };

  Mode mode_ = Mode::kKeepMinimal;
  std::vector<std::vector<Entry>> buckets_;  // indexed by popcount
  std::size_t size_ = 0;
  mutable Stats stats_;
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_BITSET_H_
