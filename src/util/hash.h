// Hash-combination helpers for composite keys used throughout the library
// (atoms, tuples, automaton states).
#ifndef DATALOG_EQ_SRC_UTIL_HASH_H_
#define DATALOG_EQ_SRC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace datalog {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe).
template <typename T>
void HashCombine(std::size_t* seed, const T& value) {
  std::hash<T> hasher;
  *seed ^= hasher(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hashes a span of ints (FNV-1a finished with a strong mix). Shared by
/// the engine's flat open-addressing tables (Relation, FlatKeyTable) so
/// the probing scheme lives in one place.
inline std::size_t HashIntSpan(const int* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ static_cast<std::uint32_t>(data[i])) * 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<std::size_t>(h);
}

/// Hash functor for std::vector<T> with hashable T.
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    std::size_t seed = v.size();
    for (const T& x : v) HashCombine(&seed, x);
    return seed;
  }
};

/// Hash functor for std::pair.
template <typename A, typename B>
struct PairHash {
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = 0;
    HashCombine(&seed, p.first);
    HashCombine(&seed, p.second);
    return seed;
  }
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_HASH_H_
