// Flat open-addressing interning tables shared by the evaluation engine
// and the containment decider (robin-hood probing, power-of-two capacity,
// load factor <= 1/2, one contiguous int arena).
//
// FlatKeyTable interns fixed-width int keys into dense indexes
// 0..size()-1: Relation uses it as its row store (the key arena IS the
// row arena), the column indexes (src/engine/index.h) use it for bucket
// keys and projection dedup, and the decider interns canonical goal
// atoms and rule instances through it.
//
// VarKeyTable is the variable-width mode: it interns int spans of
// differing lengths (keyed rows such as the decider's combination memo
// rows `(instance_id, child_serial...)`) into the same dense-id scheme,
// storing every key back to back in one arena with an offsets directory.
//
// Probing is robin-hood displacement over the slot array: each slot
// remembers the stored key's hash, so an insert that meets a "richer"
// resident (smaller displacement-from-home) swaps with it and carries the
// displaced entry forward. Deletions do not exist (tables only grow), so
// insertion never needs the backward-shift repair. The payoff is on the
// probe side: displacement along any probe sequence is non-decreasing, so
// both a resident with a smaller displacement than the probe's and a
// probe distance past the table-wide maximum prove a miss — lookups bail
// out early instead of scanning to the next empty slot. Dense ids are
// assigned in arena-append (Intern-call) order, untouched by any of
// this: the probing scheme only decides which slot points at a key,
// never which id the key gets.
#ifndef DATALOG_EQ_SRC_UTIL_FLAT_TABLE_H_
#define DATALOG_EQ_SRC_UTIL_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace datalog {

class FlatKeyTable {
 public:
  explicit FlatKeyTable(std::size_t width) : width_(width) {}

  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  std::size_t width() const { return width_; }
  std::size_t size() const { return size_; }
  /// The interned key at `index` (width() ints, contiguous). The
  /// pointer is invalidated by the next Intern; the index never is.
  const int* KeyData(std::size_t index) const {
    return arena_.data() + index * width_;
  }

  /// Interns `key` (width() ints); returns its dense index and whether
  /// it was new.
  std::pair<std::uint32_t, bool> Intern(const int* key);
  /// Returns the dense index of `key`, or kNotFound.
  std::uint32_t Find(const int* key) const;

  /// Largest displacement-from-home of any occupied slot — the probe
  /// length no lookup ever exceeds (exposed for tests/diagnostics).
  std::uint32_t max_probe() const { return max_probe_; }

 private:
  // One slot = the key's dense index + 1 (0 means empty) interleaved
  // with the key's mixed 32-bit hash, so a probe touches one cache line
  // for the emptiness check, the displacement computation, and the
  // pre-compare hash filter. Deliberately trivial (no default member
  // initializers): Grow zero-fills whole slot arrays, and a non-trivial
  // default constructor would turn that memset into an element loop.
  struct Slot {
    std::uint32_t value;  // key index + 1; 0 means empty
    std::uint32_t hash;
  };

  std::uint32_t Hash(const int* key) const;
  bool KeyEquals(std::size_t index, const int* key) const;
  // Robin-hood displacement insert of `value` (key index + 1, hash `h`)
  // starting at `slot` with displacement `dist`; assumes the key is not
  // in the table past that point.
  void Place(std::size_t slot, std::uint32_t dist, std::uint32_t value,
             std::uint32_t h);
  void Grow();

  // Displacement of the resident of `slot` from its home slot.
  std::uint32_t DistanceOf(std::size_t slot, std::size_t mask) const {
    return static_cast<std::uint32_t>(
        (slot + slots_.size() - (slots_[slot].hash & mask)) & mask);
  }

  std::size_t width_;
  std::size_t size_ = 0;
  std::vector<int> arena_;  // size_ * width_ ints, keys back to back
  std::vector<Slot> slots_;
  std::uint32_t max_probe_ = 0;
};

/// Variable-width companion of FlatKeyTable: interns int spans of any
/// length into dense indexes. Keys live back to back in one arena;
/// offsets_[i] .. offsets_[i+1] delimits key i. Same probing scheme
/// (robin-hood displacement, power-of-two capacity, load <= 1/2); the
/// span length participates in hashing and equality, so spans of
/// different lengths never collide as equal.
class VarKeyTable {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  std::size_t size() const { return offsets_.size() - 1; }
  std::size_t KeyLength(std::size_t index) const {
    return offsets_[index + 1] - offsets_[index];
  }
  /// The interned key at `index` (KeyLength(index) ints, contiguous).
  /// The pointer is invalidated by the next Intern; the index never is.
  const int* KeyData(std::size_t index) const {
    return arena_.data() + offsets_[index];
  }

  /// Interns the span `[key, key + length)`; returns its dense index and
  /// whether it was new.
  std::pair<std::uint32_t, bool> Intern(const int* key, std::size_t length);
  /// Returns the dense index of the span, or kNotFound.
  std::uint32_t Find(const int* key, std::size_t length) const;

  /// Largest displacement-from-home of any occupied slot (see
  /// FlatKeyTable::max_probe).
  std::uint32_t max_probe() const { return max_probe_; }

 private:
  struct Slot {
    std::uint32_t value;  // key index + 1; 0 means empty
    std::uint32_t hash;
  };

  std::uint32_t Hash(const int* key, std::size_t length) const;
  bool KeyEquals(std::size_t index, const int* key, std::size_t length) const;
  void Place(std::size_t slot, std::uint32_t dist, std::uint32_t value,
             std::uint32_t h);
  void Grow();

  std::uint32_t DistanceOf(std::size_t slot, std::size_t mask) const {
    return static_cast<std::uint32_t>(
        (slot + slots_.size() - (slots_[slot].hash & mask)) & mask);
  }

  std::vector<int> arena_;               // all keys back to back
  std::vector<std::size_t> offsets_{0};  // size()+1 entries; key i spans
                                         // [offsets_[i], offsets_[i+1])
  std::vector<Slot> slots_;
  std::uint32_t max_probe_ = 0;
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_FLAT_TABLE_H_
