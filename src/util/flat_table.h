// Flat open-addressing interning tables shared by the evaluation engine
// and the containment decider (linear probing, power-of-two capacity,
// load factor <= 1/2, one contiguous int arena).
//
// FlatKeyTable interns fixed-width int keys into dense indexes
// 0..size()-1: Relation uses it as its row store (the key arena IS the
// row arena), the column indexes (src/engine/index.h) use it for bucket
// keys and projection dedup, and the decider interns canonical goal
// atoms and rule instances through it.
//
// VarKeyTable is the variable-width mode: it interns int spans of
// differing lengths (keyed rows such as the decider's combination memo
// rows `(instance_id, child_serial...)`) into the same dense-id scheme,
// storing every key back to back in one arena with an offsets directory.
#ifndef DATALOG_EQ_SRC_UTIL_FLAT_TABLE_H_
#define DATALOG_EQ_SRC_UTIL_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace datalog {

class FlatKeyTable {
 public:
  explicit FlatKeyTable(std::size_t width) : width_(width) {}

  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  std::size_t width() const { return width_; }
  std::size_t size() const { return size_; }
  /// The interned key at `index` (width() ints, contiguous). The
  /// pointer is invalidated by the next Intern; the index never is.
  const int* KeyData(std::size_t index) const {
    return arena_.data() + index * width_;
  }

  /// Interns `key` (width() ints); returns its dense index and whether
  /// it was new.
  std::pair<std::uint32_t, bool> Intern(const int* key);
  /// Returns the dense index of `key`, or kNotFound.
  std::uint32_t Find(const int* key) const;

 private:
  std::size_t Hash(const int* key) const;
  bool KeyEquals(std::size_t index, const int* key) const;
  void Grow();

  std::size_t width_;
  std::size_t size_ = 0;
  std::vector<int> arena_;  // size_ * width_ ints, keys back to back
  std::vector<std::uint32_t> slots_;  // key index + 1; 0 means empty
};

/// Variable-width companion of FlatKeyTable: interns int spans of any
/// length into dense indexes. Keys live back to back in one arena;
/// offsets_[i] .. offsets_[i+1] delimits key i. Same probing scheme
/// (linear probing, power-of-two capacity, load <= 1/2); the span length
/// participates in hashing and equality, so spans of different lengths
/// never collide as equal.
class VarKeyTable {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  std::size_t size() const { return offsets_.size() - 1; }
  std::size_t KeyLength(std::size_t index) const {
    return offsets_[index + 1] - offsets_[index];
  }
  /// The interned key at `index` (KeyLength(index) ints, contiguous).
  /// The pointer is invalidated by the next Intern; the index never is.
  const int* KeyData(std::size_t index) const {
    return arena_.data() + offsets_[index];
  }

  /// Interns the span `[key, key + length)`; returns its dense index and
  /// whether it was new.
  std::pair<std::uint32_t, bool> Intern(const int* key, std::size_t length);
  /// Returns the dense index of the span, or kNotFound.
  std::uint32_t Find(const int* key, std::size_t length) const;

 private:
  std::size_t Hash(const int* key, std::size_t length) const;
  bool KeyEquals(std::size_t index, const int* key, std::size_t length) const;
  void Grow();

  std::vector<int> arena_;               // all keys back to back
  std::vector<std::size_t> offsets_{0};  // size()+1 entries; key i spans
                                         // [offsets_[i], offsets_[i+1])
  std::vector<std::uint32_t> slots_;     // key index + 1; 0 means empty
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_FLAT_TABLE_H_
