// Minimal Status / StatusOr error-handling vocabulary, modeled on
// absl::Status. Used for recoverable failures (parse errors, resource
// limits); internal invariant violations use DATALOG_CHECK instead.
#ifndef DATALOG_EQ_SRC_UTIL_STATUS_H_
#define DATALOG_EQ_SRC_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace datalog {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kResourceExhausted = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  // Cooperative interruption (src/util/governor.h): a caller asked the
  // procedure to stop via a CancelToken...
  kCancelled = 7,
  // ...or its wall-clock deadline expired. Distinct from
  // kResourceExhausted (a size/step budget ran out) so callers can tell
  // "too big" from "took too long" from "caller gave up".
  kDeadlineExceeded = 8,
};

/// Human-readable name of a status code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

/// A success-or-error result carrying a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a one-line rendering such as "INVALID_ARGUMENT: bad token".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status CancelledError(std::string message);
Status DeadlineExceededError(std::string message);

/// Either a value of type T or an error Status. Dereferencing a non-ok
/// StatusOr is a fatal error.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DATALOG_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DATALOG_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    DATALOG_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DATALOG_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace datalog

// Propagates a non-OK Status out of the enclosing function. `expr` is
// evaluated exactly once.
//
//   DATALOG_RETURN_IF_ERROR(writer.Append(instance));
#define DATALOG_RETURN_IF_ERROR(expr)                        \
  do {                                                       \
    ::datalog::Status datalog_status_internal_ = (expr);     \
    if (!datalog_status_internal_.ok()) {                    \
      return datalog_status_internal_;                       \
    }                                                        \
  } while (false)

// Unwraps a StatusOr<T> into `lhs` (which may declare a new variable) or
// propagates its error Status out of the enclosing function.
//
//   DATALOG_ASSIGN_OR_RETURN(ProgramAlphabet alphabet,
//                            BuildProgramAlphabet(program, limits));
#define DATALOG_ASSIGN_OR_RETURN(lhs, rexpr) \
  DATALOG_ASSIGN_OR_RETURN_IMPL_(            \
      DATALOG_STATUS_CONCAT_(datalog_statusor_, __LINE__), lhs, rexpr)

#define DATALOG_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                   \
  if (!statusor.ok()) {                                      \
    return statusor.status();                                \
  }                                                          \
  lhs = std::move(statusor).value()

#define DATALOG_STATUS_CONCAT_(a, b) DATALOG_STATUS_CONCAT_IMPL_(a, b)
#define DATALOG_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // DATALOG_EQ_SRC_UTIL_STATUS_H_
