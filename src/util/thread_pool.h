// A reusable fixed-size worker pool for data-parallel loops.
//
// The pool is the execution substrate for the engine's parallel fixpoint
// rounds (src/engine/eval.cc) and the canonical-database drivers that
// loop independent evaluations (src/containment/ucq_in_datalog.cc): the
// owner creates one pool, then issues any number of ParallelFor batches
// against it — workers park on a condition variable between batches, so
// a fixpoint with hundreds of rounds pays the thread-spawn cost once.
//
// Scheduling is dynamic (workers pull indexes from a shared atomic
// counter), so callers must not depend on which thread runs which index.
// Determinism is the caller's job and is achieved by indexing all
// outputs by task id, never by thread: see "Parallel evaluation" in
// docs/engine.md for the argument the engine builds on top of this.
#ifndef DATALOG_EQ_SRC_UTIL_THREAD_POOL_H_
#define DATALOG_EQ_SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace datalog {

class ThreadPool {
 public:
  /// A pool with `num_threads`-way parallelism. The calling thread
  /// participates in every batch, so `num_threads - 1` workers are
  /// spawned; a pool of 1 spawns nothing and ParallelFor degenerates to
  /// an inline loop. Values below 1 are clamped to 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (spawned workers plus the calling thread).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs `fn(i)` for every i in [0, n), distributing indexes across the
  /// workers and the calling thread; returns when all n calls have
  /// completed. `fn` must not throw and must not call ParallelFor on
  /// this pool (batches do not nest). Distinct indexes run concurrently,
  /// so fn must only write state owned by its index.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with the "unknown" value 0
  /// clamped to 1 — the resolution of EvalOptions::num_threads == 0.
  static std::size_t HardwareConcurrency();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here between batches
  std::condition_variable done_cv_;  // ParallelFor waits for the batch
  // The current batch, published under mu_ and identified by a
  // generation counter so late-waking workers never rerun an old batch.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;  // workers still inside the current batch
  bool shutdown_ = false;
  // Next unclaimed index of the current batch (dynamic scheduling).
  std::atomic<std::size_t> next_{0};
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_THREAD_POOL_H_
