#include "src/util/flat_table.h"

#include "src/util/hash.h"

namespace datalog {
namespace {

// Folds a size_t hash to the 32 bits the slot-hash arrays store. The
// high bits still participate, so the home slot (hash & mask) keeps the
// full mixing of HashIntSpan.
inline std::uint32_t Fold32(std::size_t h) {
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace

std::uint32_t FlatKeyTable::Hash(const int* key) const {
  return Fold32(HashIntSpan(key, width_));
}

bool FlatKeyTable::KeyEquals(std::size_t index, const int* key) const {
  const int* stored = KeyData(index);
  for (std::size_t i = 0; i < width_; ++i) {
    if (stored[i] != key[i]) return false;
  }
  return true;
}

void FlatKeyTable::Place(std::size_t slot, std::uint32_t dist,
                         std::uint32_t value, std::uint32_t h) {
  const std::size_t mask = slots_.size() - 1;
  // Find the insertion point: the first empty slot, or the first
  // resident displaced less than we are (robin hood — it and the run
  // after it shift one step right, which grows each displacement by
  // exactly one and so preserves the probe-order invariant).
  while (slots_[slot].value != 0 && DistanceOf(slot, mask) >= dist) {
    slot = (slot + 1) & mask;
    ++dist;
  }
  if (dist > max_probe_) max_probe_ = dist;
  if (slots_[slot].value != 0) {
    std::size_t empty = slot;
    do {
      empty = (empty + 1) & mask;
    } while (slots_[empty].value != 0);
    for (std::size_t dst = empty; dst != slot;) {
      std::size_t src = (dst + mask) & mask;
      slots_[dst] = slots_[src];
      std::uint32_t moved = DistanceOf(dst, mask);
      if (moved > max_probe_) max_probe_ = moved;
      dst = src;
    }
  }
  slots_[slot].value = value;
  slots_[slot].hash = h;
}

void FlatKeyTable::Grow() {
  // Quadrupling (instead of doubling) re-places each key log4 n times
  // over the table's lifetime instead of log2 n — rehash work sums to
  // ~1.33n placements instead of 2n — and keeps the load in (1/8, 1/2],
  // which shortens probe runs. The cost is transient slot-array slack.
  std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 4;
  // The stored per-slot hashes make rehashing a slot-array walk: no key
  // needs to be re-hashed from the arena. Slot layout after a grow may
  // differ from insertion-order layout, but lookups and the dense ids
  // never depend on it.
  std::vector<Slot> old_slots = std::move(slots_);
  slots_.assign(capacity, Slot{});
  max_probe_ = 0;
  const std::size_t mask = capacity - 1;
  for (const Slot& s : old_slots) {
    if (s.value == 0) continue;
    Place(s.hash & mask, 0, s.value, s.hash);
  }
}

std::pair<std::uint32_t, bool> FlatKeyTable::Intern(const int* key) {
  if (slots_.size() < (size_ + 1) * 2) Grow();  // load factor <= 1/2
  const std::size_t mask = slots_.size() - 1;
  const std::uint32_t h = Hash(key);
  std::size_t slot = h & mask;
  std::uint32_t dist = 0;
  while (slots_[slot].value != 0) {
    if (slots_[slot].hash == h && KeyEquals(slots_[slot].value - 1, key)) {
      return {slots_[slot].value - 1, false};
    }
    // A resident closer to home than our probe distance proves the key
    // is absent (displacements never decrease along a probe sequence).
    // Checked after the hash filter: hits never reach their run's end,
    // so the displacement test only ever pays off on the miss path.
    if (DistanceOf(slot, mask) < dist) break;
    slot = (slot + 1) & mask;
    ++dist;
  }
  arena_.insert(arena_.end(), key, key + width_);
  const std::uint32_t value = static_cast<std::uint32_t>(++size_);
  if (slots_[slot].value == 0) {
    // Fast path: the probe ended on an empty slot, no displacement.
    slots_[slot].value = value;
    slots_[slot].hash = h;
    if (dist > max_probe_) max_probe_ = dist;
  } else {
    Place(slot, dist, value, h);
  }
  return {static_cast<std::uint32_t>(size_ - 1), true};
}

std::uint32_t FlatKeyTable::Find(const int* key) const {
  if (slots_.empty()) return kNotFound;
  const std::size_t mask = slots_.size() - 1;
  const std::uint32_t h = Hash(key);
  std::size_t slot = h & mask;
  std::uint32_t dist = 0;
  while (slots_[slot].value != 0) {
    if (slots_[slot].hash == h && KeyEquals(slots_[slot].value - 1, key)) {
      return slots_[slot].value - 1;
    }
    if (dist > max_probe_) return kNotFound;
    if (DistanceOf(slot, mask) < dist) return kNotFound;
    slot = (slot + 1) & mask;
    ++dist;
  }
  return kNotFound;
}

std::uint32_t VarKeyTable::Hash(const int* key, std::size_t length) const {
  // Seed with the length so equal prefixes of different lengths spread.
  std::size_t h = HashIntSpan(key, length);
  return Fold32(h ^ (length * 0x9e3779b97f4a7c15ULL));
}

bool VarKeyTable::KeyEquals(std::size_t index, const int* key,
                            std::size_t length) const {
  if (KeyLength(index) != length) return false;
  const int* stored = KeyData(index);
  for (std::size_t i = 0; i < length; ++i) {
    if (stored[i] != key[i]) return false;
  }
  return true;
}

void VarKeyTable::Place(std::size_t slot, std::uint32_t dist,
                        std::uint32_t value, std::uint32_t h) {
  const std::size_t mask = slots_.size() - 1;
  // See FlatKeyTable::Place: find the robin-hood insertion point, then
  // shift the displaced run one step right.
  while (slots_[slot].value != 0 && DistanceOf(slot, mask) >= dist) {
    slot = (slot + 1) & mask;
    ++dist;
  }
  if (dist > max_probe_) max_probe_ = dist;
  if (slots_[slot].value != 0) {
    std::size_t empty = slot;
    do {
      empty = (empty + 1) & mask;
    } while (slots_[empty].value != 0);
    for (std::size_t dst = empty; dst != slot;) {
      std::size_t src = (dst + mask) & mask;
      slots_[dst] = slots_[src];
      std::uint32_t moved = DistanceOf(dst, mask);
      if (moved > max_probe_) max_probe_ = moved;
      dst = src;
    }
  }
  slots_[slot].value = value;
  slots_[slot].hash = h;
}

void VarKeyTable::Grow() {
  // As in FlatKeyTable::Grow: quadruple, and reuse the stored hashes —
  // never re-walk the key arena.
  std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 4;
  std::vector<Slot> old_slots = std::move(slots_);
  slots_.assign(capacity, Slot{});
  max_probe_ = 0;
  const std::size_t mask = capacity - 1;
  for (const Slot& s : old_slots) {
    if (s.value == 0) continue;
    Place(s.hash & mask, 0, s.value, s.hash);
  }
}

std::pair<std::uint32_t, bool> VarKeyTable::Intern(const int* key,
                                                   std::size_t length) {
  if (slots_.size() < (size() + 1) * 2) Grow();  // load factor <= 1/2
  const std::size_t mask = slots_.size() - 1;
  const std::uint32_t h = Hash(key, length);
  std::size_t slot = h & mask;
  std::uint32_t dist = 0;
  while (slots_[slot].value != 0) {
    if (slots_[slot].hash == h &&
        KeyEquals(slots_[slot].value - 1, key, length)) {
      return {slots_[slot].value - 1, false};
    }
    // Hash filter first, displacement early-exit second (see
    // FlatKeyTable::Intern).
    if (DistanceOf(slot, mask) < dist) break;
    slot = (slot + 1) & mask;
    ++dist;
  }
  arena_.insert(arena_.end(), key, key + length);
  offsets_.push_back(arena_.size());
  const std::uint32_t value = static_cast<std::uint32_t>(size());
  if (slots_[slot].value == 0) {
    // Fast path: the probe ended on an empty slot, no displacement.
    slots_[slot].value = value;
    slots_[slot].hash = h;
    if (dist > max_probe_) max_probe_ = dist;
  } else {
    Place(slot, dist, value, h);
  }
  return {static_cast<std::uint32_t>(size() - 1), true};
}

std::uint32_t VarKeyTable::Find(const int* key, std::size_t length) const {
  if (slots_.empty()) return kNotFound;
  const std::size_t mask = slots_.size() - 1;
  const std::uint32_t h = Hash(key, length);
  std::size_t slot = h & mask;
  std::uint32_t dist = 0;
  while (slots_[slot].value != 0) {
    if (slots_[slot].hash == h &&
        KeyEquals(slots_[slot].value - 1, key, length)) {
      return slots_[slot].value - 1;
    }
    if (dist > max_probe_) return kNotFound;
    if (DistanceOf(slot, mask) < dist) return kNotFound;
    slot = (slot + 1) & mask;
    ++dist;
  }
  return kNotFound;
}

}  // namespace datalog
