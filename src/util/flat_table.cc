#include "src/util/flat_table.h"

#include "src/util/hash.h"

namespace datalog {

std::size_t FlatKeyTable::Hash(const int* key) const {
  return HashIntSpan(key, width_);
}

bool FlatKeyTable::KeyEquals(std::size_t index, const int* key) const {
  const int* stored = KeyData(index);
  for (std::size_t i = 0; i < width_; ++i) {
    if (stored[i] != key[i]) return false;
  }
  return true;
}

void FlatKeyTable::Grow() {
  std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
  slots_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::size_t index = 0; index < size_; ++index) {
    std::size_t slot = Hash(KeyData(index)) & mask;
    while (slots_[slot] != 0) slot = (slot + 1) & mask;
    slots_[slot] = static_cast<std::uint32_t>(index + 1);
  }
}

std::pair<std::uint32_t, bool> FlatKeyTable::Intern(const int* key) {
  if (slots_.size() < (size_ + 1) * 2) Grow();  // load factor <= 1/2
  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = Hash(key) & mask;
  while (slots_[slot] != 0) {
    if (KeyEquals(slots_[slot] - 1, key)) return {slots_[slot] - 1, false};
    slot = (slot + 1) & mask;
  }
  arena_.insert(arena_.end(), key, key + width_);
  slots_[slot] = static_cast<std::uint32_t>(++size_);
  return {static_cast<std::uint32_t>(size_ - 1), true};
}

std::uint32_t FlatKeyTable::Find(const int* key) const {
  if (slots_.empty()) return kNotFound;
  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = Hash(key) & mask;
  while (slots_[slot] != 0) {
    if (KeyEquals(slots_[slot] - 1, key)) return slots_[slot] - 1;
    slot = (slot + 1) & mask;
  }
  return kNotFound;
}

std::size_t VarKeyTable::Hash(const int* key, std::size_t length) const {
  // Seed with the length so equal prefixes of different lengths spread.
  std::size_t h = HashIntSpan(key, length);
  return h ^ (length * 0x9e3779b97f4a7c15ULL);
}

bool VarKeyTable::KeyEquals(std::size_t index, const int* key,
                            std::size_t length) const {
  if (KeyLength(index) != length) return false;
  const int* stored = KeyData(index);
  for (std::size_t i = 0; i < length; ++i) {
    if (stored[i] != key[i]) return false;
  }
  return true;
}

void VarKeyTable::Grow() {
  std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
  slots_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::size_t index = 0; index < size(); ++index) {
    std::size_t slot = Hash(KeyData(index), KeyLength(index)) & mask;
    while (slots_[slot] != 0) slot = (slot + 1) & mask;
    slots_[slot] = static_cast<std::uint32_t>(index + 1);
  }
}

std::pair<std::uint32_t, bool> VarKeyTable::Intern(const int* key,
                                                   std::size_t length) {
  if (slots_.size() < (size() + 1) * 2) Grow();  // load factor <= 1/2
  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = Hash(key, length) & mask;
  while (slots_[slot] != 0) {
    if (KeyEquals(slots_[slot] - 1, key, length)) {
      return {slots_[slot] - 1, false};
    }
    slot = (slot + 1) & mask;
  }
  arena_.insert(arena_.end(), key, key + length);
  offsets_.push_back(arena_.size());
  slots_[slot] = static_cast<std::uint32_t>(size());
  return {static_cast<std::uint32_t>(size() - 1), true};
}

std::uint32_t VarKeyTable::Find(const int* key, std::size_t length) const {
  if (slots_.empty()) return kNotFound;
  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = Hash(key, length) & mask;
  while (slots_[slot] != 0) {
    if (KeyEquals(slots_[slot] - 1, key, length)) return slots_[slot] - 1;
    slot = (slot + 1) & mask;
  }
  return kNotFound;
}

}  // namespace datalog
