#include "src/util/scc.h"

#include <algorithm>

#include "src/util/logging.h"

namespace datalog {

SccResult StronglyConnectedComponents(
    std::size_t num_nodes, const std::vector<std::vector<int>>& adjacency) {
  DATALOG_CHECK_EQ(adjacency.size(), num_nodes);
  SccResult result;
  result.component.assign(num_nodes, -1);

  std::vector<int> index(num_nodes, -1);
  std::vector<int> lowlink(num_nodes, 0);
  std::vector<bool> on_stack(num_nodes, false);
  std::vector<int> stack;
  int next_index = 0;

  // Explicit DFS stack of (node, next-edge-position) frames.
  struct Frame {
    int node;
    std::size_t edge_pos;
  };
  std::vector<Frame> dfs;

  for (std::size_t root = 0; root < num_nodes; ++root) {
    if (index[root] != -1) continue;
    dfs.push_back({static_cast<int>(root), 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      int u = frame.node;
      if (frame.edge_pos < adjacency[u].size()) {
        int v = adjacency[u][frame.edge_pos++];
        if (index[v] == -1) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        dfs.pop_back();
        if (!dfs.empty()) {
          int parent = dfs.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
        if (lowlink[u] == index[u]) {
          // u is the root of a component; pop it off the stack.
          std::vector<int> members;
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.num_components;
            members.push_back(w);
            if (w == u) break;
          }
          result.component_members.push_back(std::move(members));
          ++result.num_components;
        }
      }
    }
  }
  return result;
}

}  // namespace datalog
