// The unified resource governor: one vocabulary for bounding, cancelling,
// and fault-injecting every long-running procedure in the stack.
//
// Chaudhuri–Vardi containment is 2EXPTIME-hard (the src/tm reduction
// realizes exactly that blowup), so every fixpoint, automaton
// construction, and containment check here must be able to stop early and
// say why. Three cooperating pieces:
//
//   - `ExecutionLimits`: a value type naming every bound a caller can set
//     (wall-clock deadline, derivation-step budget, per-procedure size
//     caps) plus non-owning pointers to a shared `CancelToken` and an
//     optional `FaultInjector`. Options structs across the stack embed one
//     of these instead of growing ad-hoc cap fields.
//   - `CancelToken`: a shared atomic flag. One token can govern an engine
//     fixpoint, a decider run, and a corpus pipeline at once; flipping it
//     makes every poll site below return kCancelled.
//   - `Governor`: the per-procedure poll object. Long-running loops call
//     `Poll()` at deterministic task boundaries (round starts, queue pops,
//     every-Nth emission) and propagate any non-OK Status outward as a
//     clean partial-result error.
//
// The poll-point contract (see docs/robustness.md): a procedure that takes
// an `ExecutionLimits` must call `Poll()` often enough that cancellation
// and deadline are observed within one bounded unit of work, must poll at
// *deterministic* points (so the seeded `FaultInjector` can fire at the
// Nth poll reproducibly), and must surface the governor's Status without
// rewriting its code. Stats accumulated before the interruption are still
// reported — interruption degrades to a partial result, never to torn
// state.
#ifndef DATALOG_EQ_SRC_UTIL_GOVERNOR_H_
#define DATALOG_EQ_SRC_UTIL_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "src/util/status.h"

namespace datalog {

/// A shared cancellation flag. Cancel() may be called from any thread
/// (including a signal-adjacent watchdog); cancelled() is an acquire load
/// cheap enough for inner loops.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// Re-arms the token for a fresh run (tests re-use one token across
  /// sweep iterations).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Deterministic fault injection for the poll-point sweep harness. A
/// configured fault fires exactly once, at the Nth `Poll()` across all
/// threads sharing the injector (the counter is a single atomic
/// fetch-add, so under serial execution the firing site is fully
/// deterministic; under parallel execution exactly one task observes it).
class FaultInjector {
 public:
  enum class Fault {
    kNone = 0,
    /// Poll() returns kCancelled (and trips the shared CancelToken, if
    /// any, so sibling workers stop too).
    kCancel,
    /// Poll() returns kResourceExhausted, as if a budget ran out.
    kExhaust,
    /// Poll() returns kDeadlineExceeded, as if the deadline passed.
    kDeadline,
  };

  FaultInjector() = default;
  FaultInjector(Fault fault, std::uint64_t fire_at_poll)
      : fault_(fault), fire_at_poll_(fire_at_poll) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Called by Governor::Poll. Returns the configured fault on the
  /// `fire_at_poll`-th call (1-based), kNone otherwise.
  Fault OnPoll() {
    std::uint64_t n = polls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (fault_ != Fault::kNone && n == fire_at_poll_) return fault_;
    return Fault::kNone;
  }

  /// Total polls observed so far — the sweep harness runs once with
  /// Fault::kNone to learn the poll count, then iterates fire_at_poll
  /// over [1, polls()].
  std::uint64_t polls() const {
    return polls_.load(std::memory_order_relaxed);
  }

  void Reset(Fault fault, std::uint64_t fire_at_poll) {
    fault_ = fault;
    fire_at_poll_ = fire_at_poll;
    polls_.store(0, std::memory_order_relaxed);
  }

  // Reader faults for the binary corpus format, applied by
  // CorpusReader::FromBytes before any validation. Plain configuration
  // (set before the run, like Reset), not poll-triggered — they model
  // I/O-level damage rather than mid-computation interruption.

  /// Short read: FromBytes sees only the first `n` bytes of the image.
  void TruncateReadsTo(std::uint64_t n) { truncate_to_ = n; }
  /// Corruption: the byte at `offset` arrives with all bits flipped.
  void FlipByteAt(std::uint64_t offset) { flip_byte_ = offset; }

  /// Applies the configured reader faults to a file image. Faults past
  /// the end of the image are no-ops.
  void ApplyReaderFaults(std::string* bytes) const {
    if (truncate_to_.has_value() && *truncate_to_ < bytes->size()) {
      bytes->resize(static_cast<std::size_t>(*truncate_to_));
    }
    if (flip_byte_.has_value() && *flip_byte_ < bytes->size()) {
      const auto at = static_cast<std::size_t>(*flip_byte_);
      (*bytes)[at] = static_cast<char>(~(*bytes)[at]);
    }
  }

 private:
  Fault fault_ = Fault::kNone;
  std::uint64_t fire_at_poll_ = 0;
  std::atomic<std::uint64_t> polls_{0};
  std::optional<std::uint64_t> truncate_to_;
  std::optional<std::uint64_t> flip_byte_;
};

/// Every bound a caller can place on a governed procedure. Value
/// semantics: copy freely, pass by const reference. The pointers are
/// non-owning and may be null; a default-constructed ExecutionLimits
/// imposes no deadline and no cancellation, only whatever size caps the
/// embedding options struct defaulted.
///
/// Size-cap convention: 0 means "use the procedure's default"; the
/// procedure-facing accessors below resolve 0 against the default the
/// caller passes in. This keeps one struct serving components whose
/// natural defaults differ by orders of magnitude (engine facts vs
/// automaton states).
struct ExecutionLimits {
  /// Absolute wall-clock deadline; unset = unlimited.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Derivation-step budget: an abstract unit of work charged by the
  /// procedure (engine: emitted facts; decider: processed instances;
  /// automata: explored states/pairs). 0 = unlimited.
  std::uint64_t max_steps = 0;

  // Per-procedure size caps, 0 = procedure default. These subsume the
  // pre-governor ad-hoc fields (EvalOptions::max_derived_facts,
  // ContainmentOptions::max_states, BuildProgramAlphabet's max_labels,
  // NFA/NFTA max_explored, ThetaAutomatonLimits).
  std::uint64_t max_facts = 0;
  std::uint64_t max_states = 0;
  std::uint64_t max_labels = 0;
  std::uint64_t max_transitions = 0;
  std::uint64_t max_explored = 0;

  /// Shared cancellation flag; non-owning, may be null.
  CancelToken* cancel = nullptr;
  /// Deterministic fault injection; non-owning, may be null.
  FaultInjector* fault = nullptr;

  /// Resolves a 0-defaulted cap against the procedure's own default.
  std::uint64_t FactsOr(std::uint64_t dflt) const {
    return max_facts == 0 ? dflt : max_facts;
  }
  std::uint64_t StatesOr(std::uint64_t dflt) const {
    return max_states == 0 ? dflt : max_states;
  }
  std::uint64_t LabelsOr(std::uint64_t dflt) const {
    return max_labels == 0 ? dflt : max_labels;
  }
  std::uint64_t TransitionsOr(std::uint64_t dflt) const {
    return max_transitions == 0 ? dflt : max_transitions;
  }
  std::uint64_t ExploredOr(std::uint64_t dflt) const {
    return max_explored == 0 ? dflt : max_explored;
  }

  // Fluent setters (C++17 — no designated initializers), so call sites
  // read as one expression:
  //   opts.limits = ExecutionLimits().WithDeadlineIn(250).WithCancel(&tok);
  ExecutionLimits WithDeadline(
      std::chrono::steady_clock::time_point when) const {
    ExecutionLimits out = *this;
    out.deadline = when;
    return out;
  }
  ExecutionLimits WithDeadlineIn(std::int64_t millis) const {
    return WithDeadline(std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(millis));
  }
  ExecutionLimits WithMaxSteps(std::uint64_t n) const {
    ExecutionLimits out = *this;
    out.max_steps = n;
    return out;
  }
  ExecutionLimits WithMaxFacts(std::uint64_t n) const {
    ExecutionLimits out = *this;
    out.max_facts = n;
    return out;
  }
  ExecutionLimits WithMaxStates(std::uint64_t n) const {
    ExecutionLimits out = *this;
    out.max_states = n;
    return out;
  }
  ExecutionLimits WithMaxLabels(std::uint64_t n) const {
    ExecutionLimits out = *this;
    out.max_labels = n;
    return out;
  }
  ExecutionLimits WithMaxTransitions(std::uint64_t n) const {
    ExecutionLimits out = *this;
    out.max_transitions = n;
    return out;
  }
  ExecutionLimits WithMaxExplored(std::uint64_t n) const {
    ExecutionLimits out = *this;
    out.max_explored = n;
    return out;
  }
  ExecutionLimits WithCancel(CancelToken* token) const {
    ExecutionLimits out = *this;
    out.cancel = token;
    return out;
  }
  ExecutionLimits WithFault(FaultInjector* injector) const {
    ExecutionLimits out = *this;
    out.fault = injector;
    return out;
  }
};

/// The per-procedure poll object. Cheap to construct (copies nothing,
/// holds a reference); construct one per governed call, name the
/// procedure for error messages, and call Poll()/ChargeSteps() at the
/// loop's deterministic boundaries.
///
/// Thread use: one Governor may be polled from many workers (the parallel
/// engine's tasks all poll the round's governor) — Poll() and
/// ChargeSteps() are thread-safe. The step counter is a relaxed atomic;
/// the budget check is best-effort exact at poll granularity.
class Governor {
 public:
  Governor(const ExecutionLimits& limits, const char* procedure)
      : limits_(limits), procedure_(procedure) {}
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  /// The poll point: fault injector first (so injected faults shadow
  /// real ones deterministically), then cancellation, then deadline.
  /// Returns OK to continue.
  Status Poll();

  /// Charges `n` units against the step budget and polls. Returns
  /// kResourceExhausted once the budget is exceeded.
  Status ChargeSteps(std::uint64_t n);

  std::uint64_t steps() const {
    return steps_.load(std::memory_order_relaxed);
  }

  const ExecutionLimits& limits() const { return limits_; }

 private:
  const ExecutionLimits& limits_;
  const char* procedure_;
  std::atomic<std::uint64_t> steps_{0};
};

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_GOVERNOR_H_
