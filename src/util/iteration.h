// Combinatorial enumeration helpers: cartesian products over index ranges
// and subset iteration. Callback-based to avoid materializing the space.
#ifndef DATALOG_EQ_SRC_UTIL_ITERATION_H_
#define DATALOG_EQ_SRC_UTIL_ITERATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace datalog {

/// Calls `visit(choice)` for every vector `choice` with
/// `0 <= choice[i] < sizes[i]`. If `visit` returns false, enumeration stops
/// early and this function returns false. An empty `sizes` yields one empty
/// choice. If any size is zero there are no choices.
template <typename Visitor>
bool ForEachProduct(const std::vector<std::size_t>& sizes, Visitor&& visit) {
  for (std::size_t s : sizes) {
    if (s == 0) return true;
  }
  std::vector<std::size_t> choice(sizes.size(), 0);
  while (true) {
    if (!visit(static_cast<const std::vector<std::size_t>&>(choice))) {
      return false;
    }
    std::size_t i = 0;
    for (; i < sizes.size(); ++i) {
      if (++choice[i] < sizes[i]) break;
      choice[i] = 0;
    }
    if (i == sizes.size()) return true;
  }
}

/// Calls `visit(mask)` for every subset mask of {0, ..., n-1}; n must be
/// at most 62. Stops early when `visit` returns false.
template <typename Visitor>
bool ForEachSubsetMask(std::size_t n, Visitor&& visit) {
  std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    if (!visit(mask)) return false;
  }
  return true;
}

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_ITERATION_H_
