// Tarjan's strongly-connected-components algorithm on an adjacency-list
// digraph. Used for Datalog dependence-graph analysis (recursion detection).
#ifndef DATALOG_EQ_SRC_UTIL_SCC_H_
#define DATALOG_EQ_SRC_UTIL_SCC_H_

#include <cstddef>
#include <vector>

namespace datalog {

struct SccResult {
  /// Component id per node; components are numbered in reverse topological
  /// order (an edge u->v with different components has
  /// component[u] >= component[v]).
  std::vector<int> component;
  /// Total number of components.
  int num_components = 0;
  /// component_members[c] lists the nodes of component c.
  std::vector<std::vector<int>> component_members;
};

/// Computes SCCs of the digraph with `num_nodes` nodes and edges
/// `adjacency[u] = {v : u -> v}`. Iterative Tarjan (no recursion).
SccResult StronglyConnectedComponents(
    std::size_t num_nodes, const std::vector<std::vector<int>>& adjacency);

}  // namespace datalog

#endif  // DATALOG_EQ_SRC_UTIL_SCC_H_
