#include "src/util/governor.h"

#include "src/util/strings.h"

namespace datalog {

Status Governor::Poll() {
  if (limits_.fault != nullptr) {
    switch (limits_.fault->OnPoll()) {
      case FaultInjector::Fault::kNone:
        break;
      case FaultInjector::Fault::kCancel:
        // Trip the shared token too, so sibling workers of a parallel
        // round observe the injected cancellation at their own polls.
        if (limits_.cancel != nullptr) limits_.cancel->Cancel();
        return CancelledError(
            StrCat(procedure_, " cancelled (injected fault)"));
      case FaultInjector::Fault::kExhaust:
        return ResourceExhaustedError(
            StrCat(procedure_, " budget exhausted (injected fault)"));
      case FaultInjector::Fault::kDeadline:
        return DeadlineExceededError(
            StrCat(procedure_, " deadline exceeded (injected fault)"));
    }
  }
  if (limits_.cancel != nullptr && limits_.cancel->cancelled()) {
    return CancelledError(StrCat(procedure_, " cancelled"));
  }
  if (limits_.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *limits_.deadline) {
    return DeadlineExceededError(
        StrCat(procedure_, " exceeded its deadline"));
  }
  return OkStatus();
}

Status Governor::ChargeSteps(std::uint64_t n) {
  std::uint64_t total =
      steps_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_steps != 0 && total > limits_.max_steps) {
    return ResourceExhaustedError(StrCat(
        procedure_, " exceeded its step budget of ", limits_.max_steps));
  }
  return Poll();
}

}  // namespace datalog
