// Independent certificate verification (the corpus_verify tool's core).
//
// The verifier replays every certificate kind against the instance using
// only the naive AST kernel (src/corpus/naive.h), the expansion-tree
// validators (src/trees), canonical-instance enumeration
// (src/containment/instances.h), and the string-arm absorb kernel
// (CombineAtNode / RootAccepts). It shares NO code with the staged
// pipeline's deciders: no engine, no interning, no IR, no automata, no
// parallelism. The trust argument (docs/corpus.md, "Verifier trust
// base") is that a certificate accepted here witnesses the claimed
// verdict even if every optimized component above this layer is wrong.
//
// Soundness notes per kind:
//  * forward-contained — CheckDerivation replays a ground forward
//    chaining script per disjunct; acceptance implies the frozen goal is
//    derivable, i.e. the disjunct is contained [CK86].
//  * forward-not-contained — the verifier re-freezes the named disjunct
//    itself (same "@v" spelling as the engine), requires the exported
//    facts to be exactly that canonical database, runs the naive
//    fixpoint, and requires the goal atom to be absent. Requires a
//    range-restricted program (the generated-instance contract), where
//    naive and active-domain semantics coincide.
//  * backward-not-contained — any valid expansion tree of the goal
//    predicate whose CQ no disjunct maps into refutes Q_Π ⊆ Θ: freezing
//    the tree's body yields a database D and tuple t with t ∈ Q_Π(D)
//    (the tree itself) and t ∉ Θ(D) (no homomorphism). A specialized
//    root (repeated variables) names a tuple with repeats and is a
//    legitimate counterexample. Requires range restriction so every
//    head term occurs in D. Validity and the homomorphism searches are
//    re-checked here, so the certificate is sound whatever produced it.
//  * backward-contained — the absorption trace is checked as an
//    inductive invariant: for every canonical instance of every
//    goal-reachable rule whose child goals all have listed sets, each
//    combination's achieved set must dominate (contain) some listed set
//    of the instance head, and every listed set of a goal-predicate
//    entry must be root-accepting. By induction on proof-tree height and
//    monotonicity of CombineAtNode, every achievable root state then
//    contains an accepting listed set, and acceptance is upward closed —
//    so Q_Π ⊆ Θ. Extra (unachievable) listed sets only add obligations.
//  * backward-contained-unfold — re-enumerates the complete expansion
//    set of a nonrecursive program deterministically (shared budget
//    constants) and re-checks the claimed covering disjunct per tree.
//  * timeout — not a verdict: it attests only that a named pipeline
//    stage gave up under its deadline. The verifier checks the stage
//    name and reason slug are well-formed and exempts the instance from
//    the full-coverage requirement (directions resolved before the
//    timeout may still carry their certificates, which are verified as
//    usual).
#ifndef DATALOG_EQ_SRC_CORPUS_VERIFY_H_
#define DATALOG_EQ_SRC_CORPUS_VERIFY_H_

#include <cstddef>
#include <vector>

#include "src/corpus/certificate.h"
#include "src/corpus/format.h"
#include "src/util/status.h"

namespace datalog {
namespace corpus {

struct VerifyOptions {
  /// Fact budget for naive fixpoints and derivation replays.
  std::size_t naive_max_facts = 200000;
};

/// Replays one certificate against its instance; OkStatus means the
/// certificate proves its claim. The instance must be the one the
/// certificate names (ids are checked by the caller, which holds the
/// corpus).
Status VerifyCertificate(const CorpusInstance& instance,
                         const Certificate& cert,
                         const VerifyOptions& options = VerifyOptions());

/// Coverage summary for a whole corpus against a set of certificates.
struct VerifyReport {
  std::size_t certificates_checked = 0;
  std::size_t invalid_instances = 0;
  std::size_t timed_out_instances = 0;
  std::size_t forward_covered = 0;   // instances with a forward cert
  std::size_t backward_covered = 0;  // instances with a backward cert
};

/// Verifies every certificate against its instance and checks coverage:
/// each instance must either carry an `invalid` certificate, carry a
/// `timeout` certificate (plus any direction certificates it earned
/// before timing out), or carry both one forward-direction and one
/// backward-direction certificate. Duplicate coverage (two certs for
/// the same instance and direction) is rejected. Errors name the
/// offending instance id.
StatusOr<VerifyReport> VerifyCorpus(
    const std::vector<CorpusInstance>& instances,
    const std::vector<Certificate>& certificates,
    const VerifyOptions& options = VerifyOptions());

}  // namespace corpus
}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CORPUS_VERIFY_H_
