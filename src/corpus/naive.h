// The naive AST-level kernel shared by the pipeline's cross-checks and
// the independent certificate verifier (verify.h).
//
// Everything here works on Terms, Atoms, and std::set — no interning,
// no IR, no indexes, no parallelism — and is deliberately the dumbest
// correct implementation of each judgment: backtracking homomorphism
// search, a textbook bottom-up fixpoint, and a depth-bounded expansion
// enumerator. The verifier's trust argument (docs/corpus.md) rests on
// this file plus src/ast, src/trees, and the string-arm absorb kernel,
// so keep it free of dependencies on the optimized stack.
//
// Several functions assume the generated-instance contract
// (src/corpus/generate.h): range-restricted, constant-free-head,
// distinct-variable-head rules. They check what they assume and fail
// loudly instead of computing garbage on programs outside the contract.
#ifndef DATALOG_EQ_SRC_CORPUS_NAIVE_H_
#define DATALOG_EQ_SRC_CORPUS_NAIVE_H_

#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/ast/rule.h"
#include "src/cq/cq.h"
#include "src/trees/expansion_tree.h"
#include "src/util/status.h"

namespace datalog {
namespace corpus {

/// Node budget for one expansion enumeration. Shared by the pipeline's
/// unfold stage and the verifier's re-enumeration: a
/// backward-contained-unfold certificate is only meaningful if both
/// sides enumerate under identical limits.
inline constexpr std::size_t kExpansionNodeBudget = 50000;

/// Tree-height bound for refutation-only enumeration on recursive
/// programs (the unfold stage's cheap counterexample probe).
inline constexpr int kRecursiveRefutationDepth = 3;

/// True when every head variable of every rule also occurs in the
/// rule's body (the naive fixpoint's applicability condition).
bool IsRangeRestricted(const Program& program);

/// True when every rule head's arguments are pairwise-distinct
/// variables (the expansion enumerator's applicability condition:
/// unifying such a head with a goal atom never binds goal variables).
bool HasDistinctVariableHeads(const Program& program);

/// Naive recursion test: DFS for a cycle in the IDB dependence
/// relation (head predicate -> body IDB predicates).
bool IsRecursiveNaive(const Program& program);

/// Homomorphism test: is there h with h(disjunct head) = target head
/// (componentwise) and h(disjunct body) ⊆ target body (set semantics)?
/// Backtracking over body atoms; constants only map to themselves.
bool DisjunctMapsInto(const ConjunctiveQuery& disjunct,
                      const ConjunctiveQuery& target);

/// True when some disjunct of `theta` maps into `target`.
bool UcqCoversCq(const UnionOfCqs& theta, const ConjunctiveQuery& target);

/// Naive freeze of a disjunct (paper §3, canonical database): variable
/// v becomes constant "@v" — the same spelling src/cq/canonical_db.h
/// uses, so engine-exported witnesses are comparable fact-for-fact.
struct NaiveFrozenCq {
  std::vector<Atom> facts;  // frozen body atoms, in body order
  Atom goal_atom;           // goal predicate over the frozen head args
};
NaiveFrozenCq NaiveFreezeCq(const std::string& goal,
                            const ConjunctiveQuery& disjunct);

/// Naive bottom-up fixpoint of `program` over `facts` (all ground).
/// Requires a range-restricted program (else InvalidArgument);
/// ResourceExhausted past `max_facts` derived atoms.
StatusOr<std::set<Atom>> NaiveFixpoint(const Program& program,
                                       const std::vector<Atom>& facts,
                                       std::size_t max_facts);

/// One replayable forward-chaining step: ground rule
/// `rule_index` under the recorded variable bindings (every rule
/// variable bound, sorted by variable name).
struct DerivationStep {
  std::size_t rule_index = 0;
  std::vector<std::pair<std::string, Term>> bindings;
};

/// Searches for a derivation of `goal_atom` from `facts` by naive
/// forward chaining, recording every new fact's step in discovery
/// order. Returns nullopt at fixpoint without the goal; the recorded
/// prefix up to the goal is a valid CheckDerivation script.
StatusOr<std::optional<std::vector<DerivationStep>>> FindDerivation(
    const Program& program, const std::vector<Atom>& facts,
    const Atom& goal_atom, std::size_t max_facts);

/// Replays a derivation: each step must name a program rule, ground it
/// completely, and find every body atom among `facts` or earlier
/// heads; the final fact set must contain `goal_atom`.
Status CheckDerivation(const Program& program, const std::vector<Atom>& facts,
                       const std::vector<DerivationStep>& steps,
                       const Atom& goal_atom);

/// Depth-bounded expansion enumeration from the goal atom
/// goal(~0, ..., ~k-1) with fresh "~n" variables. Deterministic: rules
/// in program order, child combinations in odometer order, fresh names
/// in allocation order — the verifier re-enumerates and must reproduce
/// the pipeline's trees exactly. `complete` is true iff no tree was
/// cut off by `max_depth` (height bound; a leaf has height 1) or by
/// the node budget; for a nonrecursive program and max_depth >
/// #IDB predicates, complete enumeration is guaranteed. Requires
/// distinct-variable heads (else InvalidArgument).
struct ExpansionEnumeration {
  std::vector<ExpansionTree> trees;
  bool complete = true;
};
StatusOr<ExpansionEnumeration> EnumerateExpansionsNaive(
    const Program& program, const std::string& goal, int max_depth,
    std::size_t node_budget);

}  // namespace corpus
}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CORPUS_NAIVE_H_
