// Per-instance certificates emitted by the staged pipeline and
// replayed by the independent verifier.
//
// Certificates are TEXT, with a strict line grammar (documented in
// docs/corpus.md, "Certificate grammar"), so the golden files under
// tools/testdata/corpus/ can be written and mutated by hand. One file
// holds any number of certificates:
//
//   corpus-cert-v1
//   cert <instance-id> <kind-slug>
//   <payload lines>
//   end
//   ...
//
// Kinds and payloads:
//   invalid                    error <lint-slug>        (>= 1 lines)
//   forward-contained          disjunct <d> / step <rule> <v>=<term>...
//   forward-not-contained      disjunct <d> / fact <atom>... / goal <atom>
//   backward-not-contained     node <nchildren> <idb-positions> <goal-atom>
//                                :- <body>
//                              (preorder; idb-positions comma-joined body
//                              indices or `-` when childless; body
//                              comma-joined atoms, empty allowed)
//   backward-contained         goal <atom> / set <npairs> /
//                              pair <query> <mask> <var-id>=<term>...
//   backward-contained-unfold  expansions <n> / cover <i> <disjunct>
//   timeout                    stage <name> / reason <slug>
//
// Terms serialize as `v:NAME` (variable) or `c:NAME` (constant); atoms
// as `pred(term,...)` with no spaces, `pred()` when 0-ary.
#ifndef DATALOG_EQ_SRC_CORPUS_CERTIFICATE_H_
#define DATALOG_EQ_SRC_CORPUS_CERTIFICATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/ast/rule.h"
#include "src/containment/absorb.h"
#include "src/corpus/naive.h"
#include "src/trees/expansion_tree.h"
#include "src/util/status.h"

namespace datalog {
namespace corpus {

enum class CertificateKind {
  /// The lint stage rejected the instance; `errors` lists the slugs.
  kInvalid,
  /// Θ ⊆ Q_Π: one naive derivation of the frozen goal per disjunct.
  kForwardContained,
  /// Θ ⊄ Q_Π: the failing disjunct's frozen database, from which the
  /// fixpoint does not derive the frozen goal tuple.
  kForwardNotContained,
  /// Q_Π ⊄ Θ: a counterexample expansion tree no disjunct maps into.
  kBackwardNotContained,
  /// Q_Π ⊆ Θ: the decider's absorption trace (fixpoint table).
  kBackwardContained,
  /// Q_Π ⊆ Θ for a nonrecursive program: a covering disjunct per
  /// exhaustively enumerated expansion.
  kBackwardContainedUnfold,
  /// The instance's per-stage deadline expired before a verdict. The
  /// payload pins WHICH stage gave up and why — never a timing number,
  /// so a re-run under the same budget serializes byte-identically.
  kTimeout,
};

const char* CertificateKindSlug(CertificateKind kind);
StatusOr<CertificateKind> CertificateKindFromSlug(const std::string& slug);

struct Certificate {
  std::uint64_t instance_id = 0;
  CertificateKind kind = CertificateKind::kInvalid;

  /// kInvalid: lint error slugs (diagnostics.h), at least one.
  std::vector<std::string> errors;

  /// kForwardContained: derivations[d] replays disjunct d's frozen
  /// database to the frozen goal (CheckDerivation).
  std::vector<std::vector<DerivationStep>> derivations;

  /// kForwardNotContained: the engine-exported frozen database of
  /// disjunct `failing_disjunct` and the underived goal atom.
  std::size_t failing_disjunct = 0;
  std::vector<Atom> frozen_facts;
  Atom frozen_goal;

  /// kBackwardNotContained: the counterexample tree.
  std::optional<ExpansionTree> counterexample;

  /// kBackwardContained: the decider's fixpoint table.
  AbsorptionTrace trace;

  /// kBackwardContainedUnfold: `cover[i]` is the disjunct index that
  /// maps into expansion i of the deterministic enumeration
  /// (EnumerateExpansionsNaive with the shared budget constants).
  std::size_t expansion_count = 0;
  std::vector<std::size_t> cover;

  /// kTimeout: the pipeline stage that gave up ("lint", "forward",
  /// "linear", "unfold", "ptrees") and the reason slug ("deadline").
  std::string timeout_stage;
  std::string timeout_reason;
};

/// Serializes certificates into one text file image (deterministic).
std::string SerializeCertificates(const std::vector<Certificate>& certs);

/// Parses a certificate file; strict — any unknown line, malformed
/// atom, or truncated block is an InvalidArgument naming the line.
StatusOr<std::vector<Certificate>> ParseCertificates(const std::string& text);

/// Serializations of the atoms/terms used by the grammar, exposed for
/// tests and tooling.
std::string SerializeTermToken(const Term& term);
std::string SerializeAtomToken(const Atom& atom);
StatusOr<Term> ParseTermToken(const std::string& token);
StatusOr<Atom> ParseAtomToken(const std::string& token);

}  // namespace corpus
}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CORPUS_CERTIFICATE_H_
