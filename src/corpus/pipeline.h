// The staged corpus decider pipeline (the corpus_run tool's core).
//
// Stages run cheapest-first, each consuming the previous stage's holdout
// and emitting certificates (src/corpus/certificate.h) for the verdicts
// it resolves:
//
//   lint    — static validity (LintProgram errors plus the Θ-side
//             checks the linter does not know about). Invalid instances
//             get an `invalid` certificate and leave the pipeline.
//   forward — Θ ⊆ Q_Π per disjunct by the canonical-database method,
//             cross-checked against the naive kernel's derivation
//             search (a disagreement is an InternalError naming the
//             instance — the differential harness, not a verdict).
//             Emits forward-contained / forward-not-contained.
//   linear  — the word-automaton arm for linear-in-IDB programs. A
//             refutation resolves the backward direction with the
//             counterexample tree; a contained verdict only sets the
//             kFlagLinearContainedHint bit (the arm exports no
//             absorption trace), which the later stages must agree
//             with.
//   unfold  — nonrecursive programs: complete expansion enumeration,
//             every expansion covered → backward-contained-unfold,
//             an uncovered expansion → backward-not-contained.
//             Recursive programs: a shallow refutation probe that can
//             only resolve not-contained.
//   ptrees  — the full proof-tree decider (Theorem 5.12) with
//             export_trace, resolving everything left: contained →
//             backward-contained (absorption trace), not contained →
//             backward-not-contained (counterexample tree).
//
// After the last stage every instance is resolved (invalid, or both
// directions decided); the holdout sequence is non-increasing and each
// instance carries exactly the certificates VerifyCorpus requires.
#ifndef DATALOG_EQ_SRC_CORPUS_PIPELINE_H_
#define DATALOG_EQ_SRC_CORPUS_PIPELINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/corpus/certificate.h"
#include "src/corpus/format.h"
#include "src/util/governor.h"
#include "src/util/status.h"

namespace datalog {
namespace corpus {

struct PipelineOptions {
  /// Worker threads for the per-stage instance fan-out; 0 means
  /// hardware concurrency. Each instance is decided by a serial engine
  /// (the two parallelism levels do not nest), and results are merged
  /// in instance order, so the outcome is thread-count independent.
  std::size_t threads = 0;
  /// Fact budget for the naive cross-checks.
  std::size_t naive_max_facts = 200000;
  /// State budget for the ptrees decider.
  std::size_t decider_max_states = 1'000'000;
  /// Budgets for the linear word-automaton stage, deliberately far
  /// tighter than the arm's own defaults: its alphabet can grow
  /// superexponentially on multi-EDB-atom linear rules, and blowing
  /// the budget just hands the instance to the later stages.
  std::size_t linear_max_states = 20000;
  std::size_t linear_max_labels = 50000;
  /// Run-wide governor limits: deadline, step budget, cancellation, and
  /// fault injection shared by every stage. A tripped cancel token or an
  /// expired run deadline aborts the whole pipeline (kCancelled /
  /// kDeadlineExceeded); per-instance work inherits these limits.
  ExecutionLimits limits;
  /// Per-instance wall-clock budget in milliseconds (0 = none). An
  /// instance whose stage exceeds it — while the run-wide deadline has
  /// NOT passed — leaves the pipeline as resolved-by-timeout: it gets a
  /// `timeout` certificate pinning the stage, the kFlagTimedOut bit,
  /// and no verdict. The certificate carries no timing numbers, so a
  /// re-run under the same budgets serializes byte-identically.
  std::uint64_t instance_deadline_ms = 0;
};

/// Per-stage accounting: how many instances entered (were still
/// unresolved), how many became fully resolved during the stage, how
/// many remain unresolved after it, and the certificates it emitted
/// (in instance order).
struct StageReport {
  std::string name;
  std::size_t entered = 0;
  std::size_t decided = 0;
  std::size_t holdout = 0;
  std::vector<Certificate> certificates;
};

struct PipelineResult {
  std::vector<StageReport> stages;
  /// Final kFlag* bits per instance, parallel to the input vector.
  std::vector<std::uint32_t> flags;
  // Verdict-class tallies over the whole corpus.
  std::size_t equivalent = 0;     // Θ ⊆ Q_Π and Q_Π ⊆ Θ
  std::size_t forward_only = 0;   // Θ ⊆ Q_Π only
  std::size_t backward_only = 0;  // Q_Π ⊆ Θ only
  std::size_t incomparable = 0;   // neither
  std::size_t invalid = 0;
  /// Instances that ran out of per-instance deadline mid-stage (they
  /// carry a `timeout` certificate instead of a verdict).
  std::size_t timed_out = 0;
};

/// Runs every stage over the corpus. Errors (engine failures, stage
/// disagreements) name the offending instance id.
StatusOr<PipelineResult> RunCorpusPipeline(
    const std::vector<CorpusInstance>& instances,
    const PipelineOptions& options = PipelineOptions());

}  // namespace corpus
}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CORPUS_PIPELINE_H_
