#include "src/corpus/generate.h"

#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/generators/examples.h"
#include "src/tm/tm.h"
#include "src/tm/tm_encoding.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace datalog {
namespace corpus {
namespace {

Term Var(const std::string& name) { return Term::Variable(name); }

// p(X, Y) :- e(X, Y).  p(X, Y) :- p(Y, X).
// Q_Π is e plus its flip — contained in {e(X,Y)} ∪ {e(Y,X)}, recursive
// and linear, so the ptrees arm confirms the linear arm's hint with an
// absorption trace.
Program SymmetricClosureProgram() {
  Program program;
  program.AddRule(Rule(Atom("p", {Var("X"), Var("Y")}),
                       {Atom("e", {Var("X"), Var("Y")})}));
  program.AddRule(Rule(Atom("p", {Var("X"), Var("Y")}),
                       {Atom("p", {Var("Y"), Var("X")})}));
  return program;
}

// p(X, Y) :- e(X, Y).  p(X, Y) :- p(X, Y), p(X, Y).
// The recursive rule absorbs into itself: every proof tree's expansion
// is {e(X, Y)}, so the program is equivalent to that single CQ while
// being recursive and nonlinear — a pure ptrees backward-contained case.
Program SelfAbsorbingProgram() {
  Program program;
  program.AddRule(Rule(Atom("p", {Var("X"), Var("Y")}),
                       {Atom("e", {Var("X"), Var("Y")})}));
  program.AddRule(Rule(Atom("p", {Var("X"), Var("Y")}),
                       {Atom("p", {Var("X"), Var("Y")}),
                        Atom("p", {Var("X"), Var("Y")})}));
  return program;
}

// p(X, Y) :- e(X, Y).  p(X, Y) :- p(Y, X), p(Y, X).
// Nonlinear flip: expansions are nonempty subsets of
// {e(X,Y), e(Y,X)}, all covered by {e(X,Y)} ∪ {e(Y,X)}.
Program FlipAbsorbingProgram() {
  Program program;
  program.AddRule(Rule(Atom("p", {Var("X"), Var("Y")}),
                       {Atom("e", {Var("X"), Var("Y")})}));
  program.AddRule(Rule(Atom("p", {Var("X"), Var("Y")}),
                       {Atom("p", {Var("Y"), Var("X")}),
                        Atom("p", {Var("Y"), Var("X")})}));
  return program;
}

UnionOfCqs SymmetricTheta() {
  UnionOfCqs theta;
  theta.Add(ConjunctiveQuery({Var("X"), Var("Y")},
                             {Atom("e", {Var("X"), Var("Y")})}));
  theta.Add(ConjunctiveQuery({Var("X"), Var("Y")},
                             {Atom("e", {Var("Y"), Var("X")})}));
  return theta;
}

// The full expansion of WordProgram(n) for one label vector: a chain
// e(X, Z1), ..., e(Z_{n-1}, Y) with labels[0] on the start node and
// labels[i] on the node each later step ends at.
ConjunctiveQuery WordDisjunct(const std::vector<int>& labels) {
  auto node = [&](std::size_t i) {
    if (i == 0) return Var("X");
    if (i == labels.size()) return Var("Y");
    return Var(StrCat("Z", i));
  };
  auto label = [](int bit) { return std::string(bit != 0 ? "one" : "zero"); };
  std::vector<Atom> body;
  body.push_back(Atom("e", {node(0), node(1)}));
  body.push_back(Atom(label(labels[0]), {node(0)}));
  for (std::size_t i = 1; i < labels.size(); ++i) {
    body.push_back(Atom("e", {node(i), node(i + 1)}));
    body.push_back(Atom(label(labels[i]), {node(i + 1)}));
  }
  return ConjunctiveQuery({Var("X"), Var("Y")}, std::move(body));
}

// Every label vector of length n, in binary counting order.
std::vector<std::vector<int>> AllLabelVectors(int n) {
  std::vector<std::vector<int>> vectors;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<int> labels(n);
    for (int i = 0; i < n; ++i) labels[i] = (mask >> i) & 1;
    vectors.push_back(std::move(labels));
  }
  return vectors;
}

// Nonrecursive two-layer chain composition: p1 is an e-chain of length
// c1, p2 composes c2 copies of p1; goal p2 derives exactly the e-paths
// of length c1 * c2.
Program LayeredChainProgram(int c1, int c2) {
  Program program;
  if (c1 == 1) {
    program.AddRule(Rule(Atom("p1", {Var("X"), Var("Y")}),
                         {Atom("e", {Var("X"), Var("Y")})}));
  } else {
    program.AddRule(Rule(Atom("p1", {Var("X"), Var("Y")}),
                         {Atom("e", {Var("X"), Var("Z")}),
                          Atom("e", {Var("Z"), Var("Y")})}));
  }
  if (c2 == 1) {
    program.AddRule(Rule(Atom("p2", {Var("X"), Var("Y")}),
                         {Atom("p1", {Var("X"), Var("Y")})}));
  } else {
    program.AddRule(Rule(Atom("p2", {Var("X"), Var("Y")}),
                         {Atom("p1", {Var("X"), Var("Z")}),
                          Atom("p1", {Var("Z"), Var("Y")})}));
  }
  return program;
}

class Generator {
 public:
  explicit Generator(const CorpusGenOptions& options)
      : options_(options), rng_(options.seed) {}

  std::vector<CorpusInstance> Run() {
    std::vector<CorpusInstance> instances;
    instances.reserve(options_.count);
    const int total_weight = options_.weight_tc + options_.weight_deep +
                             options_.weight_wide + options_.weight_nonrec +
                             options_.weight_malformed + options_.weight_tm;
    DATALOG_CHECK_GT(total_weight, 0);
    for (std::size_t i = 0; i < options_.count; ++i) {
      CorpusInstance instance;
      instance.id = i;
      int draw = static_cast<int>(Next(static_cast<std::uint64_t>(total_weight)));
      if ((draw -= options_.weight_tc) < 0) {
        FillTc(&instance);
      } else if ((draw -= options_.weight_deep) < 0) {
        FillDeep(&instance);
      } else if ((draw -= options_.weight_wide) < 0) {
        FillWide(&instance);
      } else if ((draw -= options_.weight_nonrec) < 0) {
        FillNonrec(&instance);
      } else if ((draw -= options_.weight_malformed) < 0) {
        FillMalformed(&instance);
      } else {
        FillTm(&instance);
      }
      instances.push_back(std::move(instance));
    }
    return instances;
  }

 private:
  std::uint64_t Next(std::uint64_t bound) { return rng_() % bound; }

  void FillTc(CorpusInstance* instance) {
    switch (Next(3)) {
      case 0:
        instance->program = TransitiveClosureProgram("e", "e");
        break;
      case 1:
        instance->program = NonlinearTransitiveClosureProgram();
        break;
      default:
        // Paths of length ≡ 1 (mod step) — a stepper whose refutations
        // need counterexample paths that skip lengths.
        instance->program = ChainProgram(static_cast<int>(2 + Next(2)));
        break;
    }
    instance->goal = "p";
    instance->theta = PathQueries(static_cast<int>(1 + Next(4)));
  }

  void FillDeep(CorpusInstance* instance) {
    switch (Next(3)) {
      case 0: {
        // dist_n = e-paths of exactly 2^n: equivalent to the exact
        // chain, incomparable to an offset chain, backward-only when
        // the union holds both.
        int n = static_cast<int>(1 + Next(2));
        instance->program = DistProgram(n);
        instance->goal = StrCat("dist", n);
        int exact = 1 << n;
        switch (Next(3)) {
          case 0:
            instance->theta.Add(ChainQuery(exact));
            break;
          case 1:
            instance->theta.Add(ChainQuery(exact + 1));
            break;
          default:
            instance->theta.Add(ChainQuery(exact));
            instance->theta.Add(ChainQuery(exact + 1));
            break;
        }
        break;
      }
      case 1:
        instance->program = SelfAbsorbingProgram();
        instance->goal = "p";
        instance->theta.Add(ConjunctiveQuery(
            {Var("X"), Var("Y")}, {Atom("e", {Var("X"), Var("Y")})}));
        break;
      default:
        instance->program = FlipAbsorbingProgram();
        instance->goal = "p";
        instance->theta = SymmetricTheta();
        break;
    }
  }

  void FillWide(CorpusInstance* instance) {
    // Word automata over {zero, one}: the full label union is
    // equivalent; dropping combinations leaves the program
    // forward-contained only.
    int n = static_cast<int>(1 + Next(2));
    if (Next(8) == 0) n = 3;
    instance->program = WordProgram(n);
    instance->goal = StrCat("word", n);
    std::vector<std::vector<int>> vectors = AllLabelVectors(n);
    bool drop_one = Next(2) == 1;
    std::size_t dropped = drop_one ? Next(vectors.size()) : vectors.size();
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      if (i == dropped) continue;
      instance->theta.Add(WordDisjunct(vectors[i]));
    }
  }

  void FillNonrec(CorpusInstance* instance) {
    int c1 = static_cast<int>(1 + Next(2));
    int c2 = static_cast<int>(1 + Next(2));
    instance->program = LayeredChainProgram(c1, c2);
    instance->goal = "p2";
    int exact = c1 * c2;
    switch (Next(3)) {
      case 0:
        instance->theta.Add(ChainQuery(exact));
        break;
      case 1:
        instance->theta.Add(ChainQuery(exact + 1));
        break;
      default:
        instance->theta.Add(ChainQuery(exact));
        instance->theta.Add(ChainQuery(exact + 1));
        break;
    }
  }

  void FillMalformed(CorpusInstance* instance) {
    switch (Next(3)) {
      case 0:
        // Arity clash on p: the extra unary rule contradicts the
        // binary uses.
        instance->program = TransitiveClosureProgram("e", "e");
        instance->program.AddRule(Rule(Atom("p", {Var("X")}),
                                       {Atom("e", {Var("X"), Var("X")})}));
        instance->goal = "p";
        break;
      case 1:
        // Goal names an EDB predicate.
        instance->program = TransitiveClosureProgram("e", "e");
        instance->goal = "e";
        break;
      default:
        // No rules at all.
        instance->goal = "p";
        break;
    }
    instance->theta = PathQueries(1);
  }

  void FillTm(CorpusInstance* instance) {
    // The §5.3 reduction instance for a small machine. Address width 1
    // keeps the encoding within what the staged pipeline can chew on
    // bounded hardware; the instances are still the most adversarial in
    // the corpus (linear recursion through every bit predicate, wide
    // Boolean error unions) and are the intended prey of the
    // per-instance deadline.
    TuringMachine tm;
    switch (Next(4)) {
      case 0:
        tm = ImmediatelyAcceptingMachine();
        break;
      case 1:
        tm = AcceptAfterOneStepMachine();
        break;
      case 2:
        tm = LoopsInPlaceMachine();
        break;
      default:
        tm = RunsOffTheTapeMachine();
        break;
    }
    StatusOr<TmEncoding> encoding = EncodeLinearTmContainment(tm, 1);
    DATALOG_CHECK(encoding.ok()) << encoding.status().ToString();
    instance->program = std::move(encoding->program);
    instance->goal = encoding->goal;
    instance->theta = std::move(encoding->queries);
  }

  const CorpusGenOptions& options_;
  std::mt19937_64 rng_;
};

}  // namespace

std::vector<CorpusInstance> GenerateCorpus(const CorpusGenOptions& options) {
  return Generator(options).Run();
}

std::vector<CorpusInstance> GoldenCorpus() {
  std::vector<CorpusInstance> instances;

  CorpusInstance tc;
  tc.id = 0;
  tc.program = TransitiveClosureProgram("e", "e");
  tc.goal = "p";
  tc.theta = PathQueries(2);
  instances.push_back(std::move(tc));

  CorpusInstance sym;
  sym.id = 1;
  sym.program = SymmetricClosureProgram();
  sym.goal = "p";
  sym.theta = SymmetricTheta();
  instances.push_back(std::move(sym));

  CorpusInstance bad;
  bad.id = 2;
  bad.program = TransitiveClosureProgram("e", "e");
  bad.goal = "e";
  bad.theta = PathQueries(1);
  instances.push_back(std::move(bad));

  return instances;
}

}  // namespace corpus
}  // namespace datalog
