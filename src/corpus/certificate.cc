#include "src/corpus/certificate.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/util/strings.h"

namespace datalog {
namespace corpus {
namespace {

constexpr char kFileHeader[] = "corpus-cert-v1";

Status LineError(std::size_t line_number, const std::string& message) {
  return InvalidArgumentError(
      StrCat("cert line ", line_number, ": ", message));
}

// Strict unsigned decimal: nonempty, digits only, no overflow.
bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseSize(const std::string& token, std::size_t* out) {
  std::uint64_t value = 0;
  if (!ParseU64(token, &value)) return false;
  if (value > std::numeric_limits<std::size_t>::max()) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

// Splits on single spaces; rejects leading/trailing/doubled spaces so
// every serialized file parses back under the exact same tokenization.
bool TokenizeLine(const std::string& line, std::vector<std::string>* out) {
  out->clear();
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t space = line.find(' ', start);
    if (space == std::string::npos) space = line.size();
    if (space == start) return false;  // empty token
    out->push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return !out->empty();
}

// Splits `text` at commas that sit outside parentheses (atom argument
// lists contain commas, so a body list needs depth-aware splitting).
StatusOr<std::vector<std::string>> SplitTopLevelCommas(
    const std::string& text) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '(') ++depth;
    if (c == ')') {
      if (depth == 0) return InvalidArgumentError("unbalanced ')'");
      --depth;
    }
    if (c == ',' && depth == 0) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (depth != 0) return InvalidArgumentError("unbalanced '('");
  parts.push_back(text.substr(start));
  return parts;
}

void AppendPinned(const PinnedMap& pinned, std::string* out) {
  for (const auto& [var, image] : pinned) {
    out->append(StrCat(" ", var, "=", SerializeTermToken(image)));
  }
}

void SerializeNodePreorder(const ExpansionNode& node, std::string* out) {
  out->append(StrCat("node ", node.children.size(), " "));
  if (node.idb_positions.empty()) {
    out->push_back('-');
  } else {
    for (std::size_t i = 0; i < node.idb_positions.size(); ++i) {
      if (i > 0) out->push_back(',');
      out->append(StrCat(node.idb_positions[i]));
    }
  }
  out->append(StrCat(" ", SerializeAtomToken(node.goal), " :-"));
  const std::vector<Atom>& body = node.rule.body();
  for (std::size_t i = 0; i < body.size(); ++i) {
    out->append(i == 0 ? " " : ",");
    out->append(SerializeAtomToken(body[i]));
  }
  out->push_back('\n');
  for (const ExpansionNode& child : node.children) {
    SerializeNodePreorder(child, out);
  }
}

void SerializeOne(const Certificate& cert, std::string* out) {
  out->append(StrCat("cert ", cert.instance_id, " ",
                     CertificateKindSlug(cert.kind), "\n"));
  switch (cert.kind) {
    case CertificateKind::kInvalid:
      for (const std::string& error : cert.errors) {
        out->append(StrCat("error ", error, "\n"));
      }
      break;
    case CertificateKind::kForwardContained:
      for (std::size_t d = 0; d < cert.derivations.size(); ++d) {
        out->append(StrCat("disjunct ", d, "\n"));
        for (const DerivationStep& step : cert.derivations[d]) {
          out->append(StrCat("step ", step.rule_index));
          for (const auto& [var, term] : step.bindings) {
            out->append(StrCat(" ", var, "=", SerializeTermToken(term)));
          }
          out->push_back('\n');
        }
      }
      break;
    case CertificateKind::kForwardNotContained:
      out->append(StrCat("disjunct ", cert.failing_disjunct, "\n"));
      for (const Atom& fact : cert.frozen_facts) {
        out->append(StrCat("fact ", SerializeAtomToken(fact), "\n"));
      }
      out->append(StrCat("goal ", SerializeAtomToken(cert.frozen_goal), "\n"));
      break;
    case CertificateKind::kBackwardNotContained:
      if (cert.counterexample.has_value()) {
        SerializeNodePreorder(cert.counterexample->root(), out);
      }
      break;
    case CertificateKind::kBackwardContained:
      for (const AbsorptionTraceEntry& entry : cert.trace) {
        out->append(StrCat("goal ", SerializeAtomToken(entry.goal), "\n"));
        for (const AchievedSet& set : entry.sets) {
          out->append(StrCat("set ", set.size(), "\n"));
          for (const AchievedPair& pair : set) {
            out->append(StrCat("pair ", pair.query, " ", pair.mask));
            AppendPinned(pair.pinned, out);
            out->push_back('\n');
          }
        }
      }
      break;
    case CertificateKind::kBackwardContainedUnfold:
      out->append(StrCat("expansions ", cert.expansion_count, "\n"));
      for (std::size_t i = 0; i < cert.cover.size(); ++i) {
        out->append(StrCat("cover ", i, " ", cert.cover[i], "\n"));
      }
      break;
    case CertificateKind::kTimeout:
      out->append(StrCat("stage ", cert.timeout_stage, "\n"));
      out->append(StrCat("reason ", cert.timeout_reason, "\n"));
      break;
  }
  out->append("end\n");
}

// --- parser -----------------------------------------------------------

// One certificate block's payload lines with their file line numbers.
struct PayloadLine {
  std::size_t number = 0;
  std::vector<std::string> tokens;
};

StatusOr<std::pair<std::string, Term>> ParseBindingToken(
    const std::string& token) {
  std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return InvalidArgumentError(StrCat("bad binding '", token, "'"));
  }
  std::string name = token.substr(0, eq);
  StatusOr<Term> term = ParseTermToken(token.substr(eq + 1));
  if (!term.ok()) return term.status();
  return std::make_pair(std::move(name), *std::move(term));
}

Status ParseInvalid(const std::vector<PayloadLine>& lines, Certificate* cert) {
  for (const PayloadLine& line : lines) {
    if (line.tokens[0] != "error" || line.tokens.size() != 2) {
      return LineError(line.number, "expected `error <slug>`");
    }
    cert->errors.push_back(line.tokens[1]);
  }
  if (cert->errors.empty()) {
    return LineError(lines.empty() ? 0 : lines.back().number,
                     "invalid certificate needs at least one error");
  }
  return OkStatus();
}

Status ParseForwardContained(const std::vector<PayloadLine>& lines,
                             Certificate* cert) {
  for (const PayloadLine& line : lines) {
    if (line.tokens[0] == "disjunct") {
      std::size_t index = 0;
      if (line.tokens.size() != 2 || !ParseSize(line.tokens[1], &index) ||
          index != cert->derivations.size()) {
        return LineError(line.number, "expected `disjunct <next-index>`");
      }
      cert->derivations.emplace_back();
    } else if (line.tokens[0] == "step") {
      if (cert->derivations.empty() || line.tokens.size() < 2) {
        return LineError(line.number, "step outside a disjunct block");
      }
      DerivationStep step;
      if (!ParseSize(line.tokens[1], &step.rule_index)) {
        return LineError(line.number, "bad rule index");
      }
      for (std::size_t i = 2; i < line.tokens.size(); ++i) {
        StatusOr<std::pair<std::string, Term>> binding =
            ParseBindingToken(line.tokens[i]);
        if (!binding.ok()) {
          return LineError(line.number, binding.status().message());
        }
        step.bindings.push_back(*std::move(binding));
      }
      cert->derivations.back().push_back(std::move(step));
    } else {
      return LineError(line.number, "expected `disjunct` or `step`");
    }
  }
  return OkStatus();
}

Status ParseForwardNotContained(const std::vector<PayloadLine>& lines,
                                Certificate* cert) {
  bool saw_disjunct = false;
  bool saw_goal = false;
  for (const PayloadLine& line : lines) {
    if (saw_goal) return LineError(line.number, "content after `goal`");
    if (line.tokens[0] == "disjunct") {
      if (saw_disjunct || line.tokens.size() != 2 ||
          !ParseSize(line.tokens[1], &cert->failing_disjunct)) {
        return LineError(line.number, "expected one `disjunct <index>` first");
      }
      saw_disjunct = true;
    } else if (line.tokens[0] == "fact") {
      if (!saw_disjunct || line.tokens.size() != 2) {
        return LineError(line.number, "expected `fact <atom>` after disjunct");
      }
      StatusOr<Atom> atom = ParseAtomToken(line.tokens[1]);
      if (!atom.ok()) return LineError(line.number, atom.status().message());
      cert->frozen_facts.push_back(*std::move(atom));
    } else if (line.tokens[0] == "goal") {
      if (!saw_disjunct || line.tokens.size() != 2) {
        return LineError(line.number, "expected `goal <atom>` last");
      }
      StatusOr<Atom> atom = ParseAtomToken(line.tokens[1]);
      if (!atom.ok()) return LineError(line.number, atom.status().message());
      cert->frozen_goal = *std::move(atom);
      saw_goal = true;
    } else {
      return LineError(line.number, "expected `disjunct`, `fact`, or `goal`");
    }
  }
  if (!saw_goal) {
    return LineError(lines.empty() ? 0 : lines.back().number,
                     "missing `goal <atom>`");
  }
  return OkStatus();
}

// One parsed `node` line, before tree reconstruction.
struct FlatNode {
  std::size_t line_number = 0;
  std::size_t num_children = 0;
  std::vector<std::size_t> idb_positions;
  Atom goal;
  std::vector<Atom> body;
};

StatusOr<FlatNode> ParseNodeLine(const PayloadLine& line) {
  FlatNode node;
  node.line_number = line.number;
  if (line.tokens.size() < 5 || line.tokens.size() > 6 ||
      line.tokens[4] != ":-") {
    return LineError(line.number,
                     "expected `node <n> <positions> <goal> :- [<body>]`");
  }
  if (!ParseSize(line.tokens[1], &node.num_children)) {
    return LineError(line.number, "bad child count");
  }
  if (line.tokens[2] != "-") {
    StatusOr<std::vector<std::string>> parts =
        SplitTopLevelCommas(line.tokens[2]);
    if (!parts.ok()) return LineError(line.number, parts.status().message());
    for (const std::string& part : *parts) {
      std::size_t position = 0;
      if (!ParseSize(part, &position)) {
        return LineError(line.number, "bad idb position");
      }
      node.idb_positions.push_back(position);
    }
  }
  if (node.idb_positions.size() != node.num_children) {
    return LineError(line.number, "idb positions do not match child count");
  }
  StatusOr<Atom> goal = ParseAtomToken(line.tokens[3]);
  if (!goal.ok()) return LineError(line.number, goal.status().message());
  node.goal = *std::move(goal);
  if (line.tokens.size() == 6) {
    StatusOr<std::vector<std::string>> parts =
        SplitTopLevelCommas(line.tokens[5]);
    if (!parts.ok()) return LineError(line.number, parts.status().message());
    for (const std::string& part : *parts) {
      StatusOr<Atom> atom = ParseAtomToken(part);
      if (!atom.ok()) return LineError(line.number, atom.status().message());
      node.body.push_back(*std::move(atom));
    }
  }
  return node;
}

// Preorder reconstruction; `*next` indexes into `flat`.
StatusOr<ExpansionNode> BuildNode(const std::vector<FlatNode>& flat,
                                  std::size_t* next) {
  if (*next >= flat.size()) {
    return LineError(flat.back().line_number,
                     "tree truncated: child node missing");
  }
  const FlatNode& source = flat[(*next)++];
  ExpansionNode node;
  node.goal = source.goal;
  node.rule = Rule(source.goal, source.body);
  node.idb_positions = source.idb_positions;
  for (std::size_t position : source.idb_positions) {
    if (position >= source.body.size()) {
      return LineError(source.line_number, "idb position out of body range");
    }
  }
  for (std::size_t i = 0; i < source.num_children; ++i) {
    StatusOr<ExpansionNode> child = BuildNode(flat, next);
    if (!child.ok()) return child.status();
    node.children.push_back(*std::move(child));
  }
  return node;
}

Status ParseBackwardNotContained(const std::vector<PayloadLine>& lines,
                                 Certificate* cert) {
  std::vector<FlatNode> flat;
  for (const PayloadLine& line : lines) {
    if (line.tokens[0] != "node") {
      return LineError(line.number, "expected `node` line");
    }
    StatusOr<FlatNode> node = ParseNodeLine(line);
    if (!node.ok()) return node.status();
    flat.push_back(*std::move(node));
  }
  if (flat.empty()) {
    return InvalidArgumentError("cert: counterexample tree has no nodes");
  }
  std::size_t next = 0;
  StatusOr<ExpansionNode> root = BuildNode(flat, &next);
  if (!root.ok()) return root.status();
  if (next != flat.size()) {
    return LineError(flat[next].line_number, "dangling node after tree");
  }
  cert->counterexample = ExpansionTree(*std::move(root));
  return OkStatus();
}

Status ParseBackwardContained(const std::vector<PayloadLine>& lines,
                              Certificate* cert) {
  std::size_t pending_pairs = 0;
  for (const PayloadLine& line : lines) {
    if (line.tokens[0] == "goal") {
      if (pending_pairs != 0) {
        return LineError(line.number, "set is missing pairs");
      }
      if (line.tokens.size() != 2) {
        return LineError(line.number, "expected `goal <atom>`");
      }
      StatusOr<Atom> atom = ParseAtomToken(line.tokens[1]);
      if (!atom.ok()) return LineError(line.number, atom.status().message());
      AbsorptionTraceEntry entry;
      entry.goal = *std::move(atom);
      cert->trace.push_back(std::move(entry));
    } else if (line.tokens[0] == "set") {
      if (cert->trace.empty() || pending_pairs != 0 ||
          line.tokens.size() != 2 ||
          !ParseSize(line.tokens[1], &pending_pairs)) {
        return LineError(line.number, "expected `set <npairs>` under a goal");
      }
      cert->trace.back().sets.emplace_back();
    } else if (line.tokens[0] == "pair") {
      if (pending_pairs == 0 || line.tokens.size() < 3) {
        return LineError(line.number, "unexpected `pair` line");
      }
      AchievedPair pair;
      std::size_t query = 0;
      if (!ParseSize(line.tokens[1], &query) ||
          query > static_cast<std::size_t>(std::numeric_limits<int>::max())) {
        return LineError(line.number, "bad query index");
      }
      pair.query = static_cast<int>(query);
      std::uint64_t mask = 0;
      if (!ParseU64(line.tokens[2], &mask)) {
        return LineError(line.number, "bad mask");
      }
      pair.mask = mask;
      for (std::size_t i = 3; i < line.tokens.size(); ++i) {
        StatusOr<std::pair<std::string, Term>> binding =
            ParseBindingToken(line.tokens[i]);
        if (!binding.ok()) {
          return LineError(line.number, binding.status().message());
        }
        std::size_t var = 0;
        if (!ParseSize(binding->first, &var) ||
            var > static_cast<std::size_t>(std::numeric_limits<int>::max())) {
          return LineError(line.number, "bad pinned variable id");
        }
        pair.pinned.emplace_back(static_cast<int>(var),
                                 std::move(binding->second));
      }
      cert->trace.back().sets.back().push_back(std::move(pair));
      --pending_pairs;
    } else {
      return LineError(line.number, "expected `goal`, `set`, or `pair`");
    }
  }
  if (pending_pairs != 0) {
    return LineError(lines.empty() ? 0 : lines.back().number,
                     "set is missing pairs");
  }
  // Restore the AchievedSet sorted invariant (hand-written or mutated
  // goldens may list pairs out of order; subset tests assume sorting).
  for (AbsorptionTraceEntry& entry : cert->trace) {
    for (AchievedSet& set : entry.sets) {
      for (AchievedPair& pair : set) {
        std::sort(pair.pinned.begin(), pair.pinned.end());
      }
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
    }
  }
  return OkStatus();
}

Status ParseBackwardContainedUnfold(const std::vector<PayloadLine>& lines,
                                    Certificate* cert) {
  bool saw_expansions = false;
  for (const PayloadLine& line : lines) {
    if (line.tokens[0] == "expansions") {
      if (saw_expansions || line.tokens.size() != 2 ||
          !ParseSize(line.tokens[1], &cert->expansion_count)) {
        return LineError(line.number, "expected one `expansions <n>` first");
      }
      saw_expansions = true;
    } else if (line.tokens[0] == "cover") {
      std::size_t index = 0;
      std::size_t disjunct = 0;
      if (!saw_expansions || line.tokens.size() != 3 ||
          !ParseSize(line.tokens[1], &index) ||
          !ParseSize(line.tokens[2], &disjunct) ||
          index != cert->cover.size()) {
        return LineError(line.number, "expected `cover <next-index> <d>`");
      }
      cert->cover.push_back(disjunct);
    } else {
      return LineError(line.number, "expected `expansions` or `cover`");
    }
  }
  if (!saw_expansions) {
    return LineError(lines.empty() ? 0 : lines.back().number,
                     "missing `expansions <n>`");
  }
  if (cert->cover.size() != cert->expansion_count) {
    return LineError(lines.back().number,
                     "cover lines do not match expansion count");
  }
  return OkStatus();
}

Status ParseTimeout(const std::vector<PayloadLine>& lines,
                    Certificate* cert) {
  for (const PayloadLine& line : lines) {
    if (line.tokens[0] == "stage") {
      if (!cert->timeout_stage.empty() || line.tokens.size() != 2) {
        return LineError(line.number, "expected one `stage <name>`");
      }
      cert->timeout_stage = line.tokens[1];
    } else if (line.tokens[0] == "reason") {
      if (!cert->timeout_reason.empty() || line.tokens.size() != 2) {
        return LineError(line.number, "expected one `reason <slug>`");
      }
      cert->timeout_reason = line.tokens[1];
    } else {
      return LineError(line.number, "expected `stage` or `reason`");
    }
  }
  if (cert->timeout_stage.empty() || cert->timeout_reason.empty()) {
    return LineError(lines.empty() ? 0 : lines.back().number,
                     "timeout certificate needs `stage` and `reason`");
  }
  return OkStatus();
}

}  // namespace

const char* CertificateKindSlug(CertificateKind kind) {
  switch (kind) {
    case CertificateKind::kInvalid:
      return "invalid";
    case CertificateKind::kForwardContained:
      return "forward-contained";
    case CertificateKind::kForwardNotContained:
      return "forward-not-contained";
    case CertificateKind::kBackwardNotContained:
      return "backward-not-contained";
    case CertificateKind::kBackwardContained:
      return "backward-contained";
    case CertificateKind::kBackwardContainedUnfold:
      return "backward-contained-unfold";
    case CertificateKind::kTimeout:
      return "timeout";
  }
  return "unknown";
}

StatusOr<CertificateKind> CertificateKindFromSlug(const std::string& slug) {
  for (CertificateKind kind :
       {CertificateKind::kInvalid, CertificateKind::kForwardContained,
        CertificateKind::kForwardNotContained,
        CertificateKind::kBackwardNotContained,
        CertificateKind::kBackwardContained,
        CertificateKind::kBackwardContainedUnfold,
        CertificateKind::kTimeout}) {
    if (slug == CertificateKindSlug(kind)) return kind;
  }
  return InvalidArgumentError(StrCat("unknown certificate kind '", slug, "'"));
}

std::string SerializeTermToken(const Term& term) {
  return StrCat(term.is_variable() ? "v:" : "c:", term.name());
}

std::string SerializeAtomToken(const Atom& atom) {
  std::string out = atom.predicate();
  out.push_back('(');
  for (std::size_t i = 0; i < atom.args().size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(SerializeTermToken(atom.args()[i]));
  }
  out.push_back(')');
  return out;
}

StatusOr<Term> ParseTermToken(const std::string& token) {
  if (token.size() < 2 || token[1] != ':' ||
      (token[0] != 'v' && token[0] != 'c')) {
    return InvalidArgumentError(StrCat("bad term '", token, "'"));
  }
  std::string name = token.substr(2);
  if (name.empty()) {
    return InvalidArgumentError(StrCat("empty term name in '", token, "'"));
  }
  return token[0] == 'v' ? Term::Variable(std::move(name))
                         : Term::Constant(std::move(name));
}

StatusOr<Atom> ParseAtomToken(const std::string& token) {
  std::size_t lparen = token.find('(');
  if (lparen == std::string::npos || lparen == 0 || token.back() != ')') {
    return InvalidArgumentError(StrCat("bad atom '", token, "'"));
  }
  std::string predicate = token.substr(0, lparen);
  std::string inner = token.substr(lparen + 1, token.size() - lparen - 2);
  std::vector<Term> args;
  if (!inner.empty()) {
    StatusOr<std::vector<std::string>> parts = SplitTopLevelCommas(inner);
    if (!parts.ok()) return parts.status();
    for (const std::string& part : *parts) {
      StatusOr<Term> term = ParseTermToken(part);
      if (!term.ok()) return term.status();
      args.push_back(*std::move(term));
    }
  }
  return Atom(std::move(predicate), std::move(args));
}

std::string SerializeCertificates(const std::vector<Certificate>& certs) {
  std::string out = StrCat(kFileHeader, "\n");
  for (const Certificate& cert : certs) SerializeOne(cert, &out);
  return out;
}

StatusOr<std::vector<Certificate>> ParseCertificates(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t newline = text.find('\n', start);
    if (newline == std::string::npos) newline = text.size();
    lines.push_back(text.substr(start, newline - start));
    start = newline + 1;
  }
  std::size_t i = 0;
  while (i < lines.size() && lines[i].empty()) ++i;
  if (i >= lines.size() || lines[i] != kFileHeader) {
    return InvalidArgumentError(
        StrCat("cert: missing `", kFileHeader, "` header"));
  }
  ++i;

  std::vector<Certificate> certs;
  std::vector<std::string> tokens;
  while (i < lines.size()) {
    if (lines[i].empty()) {  // blank lines between blocks are fine
      ++i;
      continue;
    }
    std::size_t cert_line = i + 1;
    if (!TokenizeLine(lines[i], &tokens) || tokens[0] != "cert" ||
        tokens.size() != 3) {
      return LineError(cert_line, "expected `cert <id> <kind>`");
    }
    Certificate cert;
    if (!ParseU64(tokens[1], &cert.instance_id)) {
      return LineError(cert_line, "bad instance id");
    }
    StatusOr<CertificateKind> kind = CertificateKindFromSlug(tokens[2]);
    if (!kind.ok()) return LineError(cert_line, kind.status().message());
    cert.kind = *kind;
    ++i;

    std::vector<PayloadLine> payload;
    bool closed = false;
    while (i < lines.size()) {
      if (lines[i].empty()) {
        return LineError(i + 1, "blank line inside certificate block");
      }
      if (lines[i] == "end") {
        closed = true;
        ++i;
        break;
      }
      PayloadLine line;
      line.number = i + 1;
      if (!TokenizeLine(lines[i], &line.tokens)) {
        return LineError(i + 1, "malformed line");
      }
      payload.push_back(std::move(line));
      ++i;
    }
    if (!closed) {
      return LineError(lines.size(), "certificate block missing `end`");
    }

    Status status = OkStatus();
    switch (cert.kind) {
      case CertificateKind::kInvalid:
        status = ParseInvalid(payload, &cert);
        break;
      case CertificateKind::kForwardContained:
        status = ParseForwardContained(payload, &cert);
        break;
      case CertificateKind::kForwardNotContained:
        status = ParseForwardNotContained(payload, &cert);
        break;
      case CertificateKind::kBackwardNotContained:
        status = ParseBackwardNotContained(payload, &cert);
        break;
      case CertificateKind::kBackwardContained:
        status = ParseBackwardContained(payload, &cert);
        break;
      case CertificateKind::kBackwardContainedUnfold:
        status = ParseBackwardContainedUnfold(payload, &cert);
        break;
      case CertificateKind::kTimeout:
        status = ParseTimeout(payload, &cert);
        break;
    }
    if (!status.ok()) return status;
    certs.push_back(std::move(cert));
  }
  return certs;
}

}  // namespace corpus
}  // namespace datalog
