#include "src/corpus/verify.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/ast/analysis.h"
#include "src/containment/absorb.h"
#include "src/containment/instances.h"
#include "src/containment/query_analysis.h"
#include "src/corpus/naive.h"
#include "src/trees/expansion_tree.h"
#include "src/util/strings.h"

namespace datalog {
namespace corpus {
namespace {

Status Reject(const Certificate& cert, const std::string& reason) {
  return InvalidArgumentError(StrCat("cert for instance ", cert.instance_id,
                                     " (", CertificateKindSlug(cert.kind),
                                     "): ", reason));
}

// --- invalid ----------------------------------------------------------

// Naive re-derivation of the lint error slugs a pipeline may claim. Each
// check is independent of src/analysis — the verifier trusts only what
// it recomputes here.
bool ErrorSlugHolds(const CorpusInstance& instance, const std::string& slug) {
  const Program& program = instance.program;
  if (slug == "empty-program") return program.rules().empty();
  if (slug == "arity-mismatch") {
    std::unordered_map<std::string, std::size_t> arities;
    for (const Rule& rule : program.rules()) {
      std::vector<const Atom*> atoms = {&rule.head()};
      for (const Atom& atom : rule.body()) atoms.push_back(&atom);
      for (const Atom* atom : atoms) {
        auto [it, inserted] =
            arities.emplace(atom->predicate(), atom->arity());
        if (!inserted && it->second != atom->arity()) return true;
      }
    }
    return false;
  }
  if (slug == "goal-not-idb") {
    for (const Rule& rule : program.rules()) {
      if (rule.head().predicate() == instance.goal) return false;
    }
    return true;
  }
  if (slug == "empty-theta") return instance.theta.size() == 0;
  if (slug == "theta-arity-mismatch") {
    for (const Rule& rule : program.rules()) {
      if (rule.head().predicate() != instance.goal) continue;
      std::size_t goal_arity = rule.head().arity();
      for (const ConjunctiveQuery& disjunct : instance.theta.disjuncts()) {
        if (disjunct.arity() != goal_arity) return true;
      }
      return false;
    }
    return false;  // no goal rule: the mismatch claim has no baseline
  }
  return false;  // unknown slug: never accepted
}

Status VerifyInvalid(const CorpusInstance& instance, const Certificate& cert) {
  if (cert.errors.empty()) return Reject(cert, "no errors listed");
  for (const std::string& slug : cert.errors) {
    if (!ErrorSlugHolds(instance, slug)) {
      return Reject(cert, StrCat("error '", slug, "' does not hold"));
    }
  }
  return OkStatus();
}

// --- forward direction ------------------------------------------------

Status VerifyForwardContained(const CorpusInstance& instance,
                              const Certificate& cert,
                              const VerifyOptions& options) {
  const std::vector<ConjunctiveQuery>& disjuncts =
      instance.theta.disjuncts();
  if (cert.derivations.size() != disjuncts.size()) {
    return Reject(cert, StrCat("expected ", disjuncts.size(),
                               " derivations, got ",
                               cert.derivations.size()));
  }
  for (std::size_t d = 0; d < disjuncts.size(); ++d) {
    NaiveFrozenCq frozen = NaiveFreezeCq(instance.goal, disjuncts[d]);
    Status replay = CheckDerivation(instance.program, frozen.facts,
                                    cert.derivations[d], frozen.goal_atom);
    if (!replay.ok()) {
      return Reject(cert,
                    StrCat("disjunct ", d, ": ", replay.message()));
    }
  }
  (void)options;
  return OkStatus();
}

Status VerifyForwardNotContained(const CorpusInstance& instance,
                                 const Certificate& cert,
                                 const VerifyOptions& options) {
  if (cert.failing_disjunct >= instance.theta.size()) {
    return Reject(cert, "failing disjunct out of range");
  }
  if (!IsRangeRestricted(instance.program)) {
    // Outside range restriction naive and active-domain semantics can
    // disagree; the generated-instance contract rules this out.
    return Reject(cert, "program is not range-restricted");
  }
  NaiveFrozenCq frozen = NaiveFreezeCq(
      instance.goal, instance.theta.disjuncts()[cert.failing_disjunct]);
  // The exported facts must be exactly the canonical database of the
  // named disjunct (as sets: the engine dedups, a body may repeat atoms).
  std::set<Atom> expected(frozen.facts.begin(), frozen.facts.end());
  std::set<Atom> exported(cert.frozen_facts.begin(),
                          cert.frozen_facts.end());
  if (expected != exported) {
    return Reject(cert, "exported facts are not the frozen disjunct");
  }
  if (!(cert.frozen_goal == frozen.goal_atom)) {
    return Reject(cert, "exported goal is not the frozen head tuple");
  }
  StatusOr<std::set<Atom>> fixpoint = NaiveFixpoint(
      instance.program, frozen.facts, options.naive_max_facts);
  if (!fixpoint.ok()) {
    return Reject(cert, fixpoint.status().message());
  }
  if (fixpoint->count(frozen.goal_atom) > 0) {
    return Reject(cert, "naive fixpoint derives the frozen goal");
  }
  return OkStatus();
}

// --- backward direction -----------------------------------------------

Status VerifyBackwardNotContained(const CorpusInstance& instance,
                                  const Certificate& cert) {
  if (!cert.counterexample.has_value()) {
    return Reject(cert, "no counterexample tree");
  }
  const ExpansionTree& tree = *cert.counterexample;
  const Atom& root = tree.root().goal;
  if (root.predicate() != instance.goal) {
    return Reject(cert, "root is not the goal predicate");
  }
  // The refutation is the canonical-database argument applied to the
  // tree's CQ: freeze its body into a database D and its head into a
  // tuple t; the tree derives t ∈ Q_Π(D), and no disjunct mapping into
  // the CQ means t ∉ Θ(D). A specialized root (repeated variables) is a
  // legitimate counterexample — it names a tuple with repeats. Range
  // restriction guarantees every head term actually occurs in D, so the
  // naive reading of Q_Π(D) agrees with the engine's.
  if (!IsRangeRestricted(instance.program)) {
    return Reject(cert, "program is not range-restricted");
  }
  Status valid = ValidateExpansionTree(instance.program, tree);
  if (!valid.ok()) return Reject(cert, valid.message());
  ConjunctiveQuery expansion = TreeToCq(instance.program, tree);
  for (std::size_t d = 0; d < instance.theta.size(); ++d) {
    if (DisjunctMapsInto(instance.theta.disjuncts()[d], expansion)) {
      return Reject(cert,
                    StrCat("disjunct ", d, " maps into the expansion"));
    }
  }
  return OkStatus();
}

// Backward-reachable predicates, naively: the rule sweep of the trace
// check only needs rules that can head a subtree of a goal-rooted proof
// tree.
std::unordered_set<std::string> NaiveReachable(const Program& program,
                                               const std::string& goal) {
  std::unordered_set<std::string> idb;
  for (const Rule& rule : program.rules()) {
    idb.insert(rule.head().predicate());
  }
  std::unordered_set<std::string> reachable = {goal};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules()) {
      if (reachable.count(rule.head().predicate()) == 0) continue;
      for (const Atom& atom : rule.body()) {
        if (idb.count(atom.predicate()) > 0 &&
            reachable.insert(atom.predicate()).second) {
          changed = true;
        }
      }
    }
  }
  return reachable;
}

// Renames a listed set from the child's canonical frame ($k) into the
// instance frame (original_vars[k]) and restores the sort invariant.
AchievedSet RenameListedSet(const AchievedSet& set,
                            const std::vector<std::string>& original_vars) {
  AchievedSet renamed;
  renamed.reserve(set.size());
  for (const AchievedPair& pair : set) {
    AchievedPair copy = pair;
    for (auto& [var, term] : copy.pinned) {
      if (term.is_variable()) {
        std::size_t k = ProofVariableIndex(term.name());
        if (k >= original_vars.size()) {
          // A pinned image outside the child's frame cannot come from a
          // real trace; drop the pair's claim by pinning an impossible
          // image is wrong — signal by keeping the term, the subset
          // tests will simply never match it.
          continue;
        }
        term = Term::Variable(original_vars[k]);
      }
    }
    std::sort(copy.pinned.begin(), copy.pinned.end());
    renamed.push_back(std::move(copy));
  }
  std::sort(renamed.begin(), renamed.end());
  renamed.erase(std::unique(renamed.begin(), renamed.end()), renamed.end());
  return renamed;
}

Status VerifyBackwardContained(const CorpusInstance& instance,
                               const Certificate& cert) {
  const Program& program = instance.program;
  StatusOr<std::vector<QueryAnalysis>> analyses =
      AnalyzeUnion(instance.theta);
  if (!analyses.ok()) return Reject(cert, analyses.status().message());
  const std::vector<QueryAnalysis>& queries = *analyses;

  // Index the trace by goal atom. Duplicate goals would make "the listed
  // sets of g" ambiguous; reject them.
  std::map<Atom, const std::vector<AchievedSet>*> table;
  for (const AbsorptionTraceEntry& entry : cert.trace) {
    if (!table.emplace(entry.goal, &entry.sets).second) {
      return Reject(cert, StrCat("duplicate trace goal ",
                                 entry.goal.ToString()));
    }
    if (entry.sets.empty()) {
      return Reject(cert, StrCat("trace goal ", entry.goal.ToString(),
                                 " lists no sets"));
    }
  }

  const std::vector<std::string> proof_vars = ProofVariables(program);
  const std::unordered_set<std::string> reachable =
      NaiveReachable(program, instance.goal);
  std::unordered_set<std::string> idb;
  for (const Rule& rule : program.rules()) {
    idb.insert(rule.head().predicate());
  }

  // Closure sweep: every canonical instance of every reachable rule whose
  // children all have listed sets must produce only dominated sets.
  Status failure = OkStatus();
  for (const Rule& rule : program.rules()) {
    if (reachable.count(rule.head().predicate()) == 0) continue;
    bool completed = ForEachCanonicalInstance(
        rule, proof_vars.size(), [&](const Rule& inst) {
          std::vector<const Atom*> edb_atoms;
          std::vector<Atom> child_goals;
          for (const Atom& atom : inst.body()) {
            if (idb.count(atom.predicate()) > 0) {
              child_goals.push_back(atom);
            } else {
              edb_atoms.push_back(&atom);
            }
          }
          // Listed sets per child, renamed into the instance frame.
          std::vector<std::vector<AchievedSet>> child_options;
          for (const Atom& child : child_goals) {
            CanonicalAtomInfo info = CanonicalizeAtom(child);
            auto it = table.find(info.atom);
            if (it == table.end()) return true;  // conditional closure
            std::vector<AchievedSet> renamed;
            renamed.reserve(it->second->size());
            for (const AchievedSet& set : *it->second) {
              renamed.push_back(RenameListedSet(set, info.original_vars));
            }
            child_options.push_back(std::move(renamed));
          }
          auto parent_it = table.find(inst.head());
          // Odometer over one listed set per child (empty product = the
          // single leaf combination).
          std::vector<std::size_t> choice(child_options.size(), 0);
          while (true) {
            std::vector<const AchievedSet*> chosen;
            chosen.reserve(choice.size());
            for (std::size_t j = 0; j < choice.size(); ++j) {
              chosen.push_back(&child_options[j][choice[j]]);
            }
            AchievedSet combined;
            CombineAtNode(queries, inst, edb_atoms, child_goals, chosen,
                          &combined);
            if (parent_it == table.end()) {
              failure = Reject(
                  cert, StrCat("closure: achievable goal ",
                               inst.head().ToString(), " is not listed"));
              return false;
            }
            bool dominated = false;
            for (const AchievedSet& listed : *parent_it->second) {
              if (IsAchievedSubset(listed, combined)) {
                dominated = true;
                break;
              }
            }
            if (!dominated) {
              failure = Reject(
                  cert,
                  StrCat("closure violated at instance ", inst.ToString()));
              return false;
            }
            // Advance the odometer (rightmost fastest).
            std::size_t j = choice.size();
            while (j > 0) {
              --j;
              if (++choice[j] < child_options[j].size()) break;
              choice[j] = 0;
              if (j == 0) return true;
            }
            if (choice.empty()) return true;
          }
        });
    if (!completed) return failure;
  }

  // Acceptance: every listed set of every goal-predicate entry must be
  // root-accepting (acceptance is upward closed, so every achievable
  // root state — which dominates some listed set — then accepts).
  bool goal_listed = false;
  for (const AbsorptionTraceEntry& entry : cert.trace) {
    if (entry.goal.predicate() != instance.goal) continue;
    goal_listed = true;
    for (const AchievedSet& set : entry.sets) {
      if (!RootAccepts(queries, entry.goal, set)) {
        return Reject(cert, StrCat("root state for ",
                                   entry.goal.ToString(),
                                   " does not accept"));
      }
    }
  }
  // An empty goal row is only sound when no proof tree exists at all —
  // i.e. the closure sweep never produced a goal-predicate state. The
  // sweep above would have flagged an unlisted achievable goal, so a
  // trace with no goal entries is accepted only if the goal predicate is
  // underivable; containment then holds vacuously.
  (void)goal_listed;
  return OkStatus();
}

Status VerifyBackwardContainedUnfold(const CorpusInstance& instance,
                                     const Certificate& cert,
                                     const VerifyOptions& options) {
  (void)options;
  if (IsRecursiveNaive(instance.program)) {
    return Reject(cert, "program is recursive; unfold does not terminate");
  }
  const int depth =
      static_cast<int>(instance.program.IdbPredicates().size()) + 1;
  StatusOr<ExpansionEnumeration> enumeration = EnumerateExpansionsNaive(
      instance.program, instance.goal, depth, kExpansionNodeBudget);
  if (!enumeration.ok()) {
    return Reject(cert, enumeration.status().message());
  }
  if (!enumeration->complete) {
    return Reject(cert, "enumeration hit the shared budget");
  }
  if (enumeration->trees.size() != cert.expansion_count ||
      cert.cover.size() != cert.expansion_count) {
    return Reject(cert, StrCat("expected ", enumeration->trees.size(),
                               " expansions, certificate lists ",
                               cert.expansion_count));
  }
  for (std::size_t i = 0; i < enumeration->trees.size(); ++i) {
    if (cert.cover[i] >= instance.theta.size()) {
      return Reject(cert, StrCat("cover ", i, " out of range"));
    }
    ConjunctiveQuery expansion =
        TreeToCq(instance.program, enumeration->trees[i]);
    if (!DisjunctMapsInto(instance.theta.disjuncts()[cert.cover[i]],
                          expansion)) {
      return Reject(cert, StrCat("disjunct ", cert.cover[i],
                                 " does not map into expansion ", i));
    }
  }
  return OkStatus();
}

// --- timeout ----------------------------------------------------------

Status VerifyTimeout(const Certificate& cert) {
  static const char* const kStages[] = {"lint", "forward", "linear",
                                        "unfold", "ptrees"};
  bool known = false;
  for (const char* stage : kStages) {
    if (cert.timeout_stage == stage) {
      known = true;
      break;
    }
  }
  if (!known) {
    return Reject(cert, StrCat("unknown stage '", cert.timeout_stage, "'"));
  }
  if (cert.timeout_reason != "deadline") {
    return Reject(cert, StrCat("unknown reason '", cert.timeout_reason, "'"));
  }
  return OkStatus();
}

bool IsForwardKind(CertificateKind kind) {
  return kind == CertificateKind::kForwardContained ||
         kind == CertificateKind::kForwardNotContained;
}

bool IsBackwardKind(CertificateKind kind) {
  return kind == CertificateKind::kBackwardNotContained ||
         kind == CertificateKind::kBackwardContained ||
         kind == CertificateKind::kBackwardContainedUnfold;
}

}  // namespace

Status VerifyCertificate(const CorpusInstance& instance,
                         const Certificate& cert,
                         const VerifyOptions& options) {
  switch (cert.kind) {
    case CertificateKind::kInvalid:
      return VerifyInvalid(instance, cert);
    case CertificateKind::kForwardContained:
      return VerifyForwardContained(instance, cert, options);
    case CertificateKind::kForwardNotContained:
      return VerifyForwardNotContained(instance, cert, options);
    case CertificateKind::kBackwardNotContained:
      return VerifyBackwardNotContained(instance, cert);
    case CertificateKind::kBackwardContained:
      return VerifyBackwardContained(instance, cert);
    case CertificateKind::kBackwardContainedUnfold:
      return VerifyBackwardContainedUnfold(instance, cert, options);
    case CertificateKind::kTimeout:
      return VerifyTimeout(cert);
  }
  return InternalError("unhandled certificate kind");
}

StatusOr<VerifyReport> VerifyCorpus(
    const std::vector<CorpusInstance>& instances,
    const std::vector<Certificate>& certificates,
    const VerifyOptions& options) {
  std::unordered_map<std::uint64_t, const CorpusInstance*> by_id;
  for (const CorpusInstance& instance : instances) {
    if (!by_id.emplace(instance.id, &instance).second) {
      return Status(InvalidArgumentError(
          StrCat("corpus: duplicate instance id ", instance.id)));
    }
  }
  struct Coverage {
    bool invalid = false;
    bool timed_out = false;
    bool forward = false;
    bool backward = false;
  };
  std::unordered_map<std::uint64_t, Coverage> coverage;
  VerifyReport report;
  for (const Certificate& cert : certificates) {
    auto it = by_id.find(cert.instance_id);
    if (it == by_id.end()) {
      return Status(InvalidArgumentError(StrCat(
          "certificate for unknown instance ", cert.instance_id)));
    }
    Status verified = VerifyCertificate(*it->second, cert, options);
    if (!verified.ok()) return verified;
    ++report.certificates_checked;
    Coverage& cov = coverage[cert.instance_id];
    if (cert.kind == CertificateKind::kInvalid) {
      if (cov.invalid) {
        return Status(InvalidArgumentError(StrCat(
            "duplicate invalid certificate for instance ",
            cert.instance_id)));
      }
      cov.invalid = true;
    } else if (cert.kind == CertificateKind::kTimeout) {
      if (cov.timed_out) {
        return Status(InvalidArgumentError(StrCat(
            "duplicate timeout certificate for instance ",
            cert.instance_id)));
      }
      cov.timed_out = true;
    } else if (IsForwardKind(cert.kind)) {
      if (cov.forward) {
        return Status(InvalidArgumentError(StrCat(
            "duplicate forward certificate for instance ",
            cert.instance_id)));
      }
      cov.forward = true;
    } else if (IsBackwardKind(cert.kind)) {
      if (cov.backward) {
        return Status(InvalidArgumentError(StrCat(
            "duplicate backward certificate for instance ",
            cert.instance_id)));
      }
      cov.backward = true;
    }
  }
  for (const CorpusInstance& instance : instances) {
    const Coverage& cov = coverage[instance.id];
    if (cov.invalid) {
      if (cov.forward || cov.backward || cov.timed_out) {
        return Status(InvalidArgumentError(StrCat(
            "instance ", instance.id,
            " has both invalid and other certificates")));
      }
      ++report.invalid_instances;
      continue;
    }
    if (cov.timed_out) {
      // A timed-out instance left the pipeline without a verdict; the
      // direction certificates it earned before the timeout (if any)
      // were verified above, but full coverage is not required. Both
      // directions resolved plus a timeout is contradictory — a fully
      // resolved instance never enters another stage.
      if (cov.forward && cov.backward) {
        return Status(InvalidArgumentError(StrCat(
            "instance ", instance.id,
            " has a timeout certificate despite full coverage")));
      }
      ++report.timed_out_instances;
      if (cov.forward) ++report.forward_covered;
      if (cov.backward) ++report.backward_covered;
      continue;
    }
    if (!cov.forward || !cov.backward) {
      return Status(InvalidArgumentError(StrCat(
          "instance ", instance.id, " is not fully covered (forward: ",
          cov.forward ? "yes" : "no",
          ", backward: ", cov.backward ? "yes" : "no", ")")));
    }
    ++report.forward_covered;
    ++report.backward_covered;
  }
  return report;
}

}  // namespace corpus
}  // namespace datalog
