#include "src/corpus/format.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/util/strings.h"

namespace datalog {
namespace corpus {
namespace {

// Structural sanity bounds enforced by the validating walk. Generous
// for anything the generators emit; small enough that a corrupted
// length field fails fast instead of driving a multi-gigabyte resize.
constexpr std::uint32_t kMaxNames = 1u << 24;
constexpr std::uint32_t kMaxNameBytes = 1u << 20;
constexpr std::uint32_t kMaxRules = 1u << 20;
constexpr std::uint32_t kMaxDisjuncts = 1u << 20;
constexpr std::uint32_t kMaxBodyAtoms = 1u << 16;
constexpr std::uint32_t kMaxArity = 1u << 12;

void PutU32(std::string* out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void PutU64(std::string* out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

std::uint64_t Fnv1a64Range(const char* data, std::size_t length) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < length; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// Bounds-checked little-endian cursor over a byte range of the file
// image. Every reader-side walk goes through this, so a truncated file
// surfaces as a diagnostic Status naming the offset, never as an
// out-of-range read.
class Cursor {
 public:
  Cursor(const std::string& bytes, std::size_t offset, std::size_t end)
      : bytes_(bytes), offset_(offset), end_(end) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return end_ - offset_; }

  Status ReadU32(std::uint32_t* value) {
    if (remaining() < 4) return Truncated("u32");
    std::uint32_t out = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[offset_++]))
             << shift;
    }
    *value = out;
    return OkStatus();
  }

  Status ReadU64(std::uint64_t* value) {
    if (remaining() < 8) return Truncated("u64");
    std::uint64_t out = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[offset_++]))
             << shift;
    }
    *value = out;
    return OkStatus();
  }

  Status ReadBytes(std::size_t length, std::string* out) {
    if (remaining() < length) return Truncated("name bytes");
    out->assign(bytes_, offset_, length);
    offset_ += length;
    return OkStatus();
  }

 private:
  Status Truncated(const char* what) const {
    return InvalidArgumentError(StrCat("corpus: truncated file (need ", what,
                                       " at offset ", offset_, ", ",
                                       remaining(), " bytes remain)"));
  }

  const std::string& bytes_;
  std::size_t offset_;
  std::size_t end_;
};

Status CheckBound(const char* what, std::uint64_t value, std::uint64_t bound,
                  std::size_t offset) {
  if (value > bound) {
    return InvalidArgumentError(StrCat("corpus: implausible ", what, " ",
                                       value, " (limit ", bound,
                                       ") at offset ", offset));
  }
  return OkStatus();
}

Status NameIdOutOfRange(const char* what, std::uint32_t id,
                        std::uint32_t name_count, std::size_t offset) {
  return InvalidArgumentError(StrCat("corpus: ", what, " name id ", id,
                                     " out of range (", name_count,
                                     " names) at offset ", offset));
}

// Walks one term span; decodes into `*decode` when non-null.
Status WalkTerm(Cursor* cursor, std::uint32_t name_count,
                const std::vector<std::string>* names, Term* decode) {
  std::uint32_t encoded = 0;
  Status status = cursor->ReadU32(&encoded);
  if (!status.ok()) return status;
  std::uint32_t name_id = encoded >> 1;
  if (name_id >= name_count) {
    return NameIdOutOfRange("term", name_id, name_count, cursor->offset());
  }
  if (decode != nullptr) {
    const std::string& name = (*names)[name_id];
    *decode = (encoded & 1u) != 0 ? Term::Variable(name)
                                  : Term::Constant(name);
  }
  return OkStatus();
}

// Walks one atom span, checking name ids against `name_count`. Used by
// both the validation pass (decode == nullptr) and Decode.
Status WalkAtom(Cursor* cursor, std::uint32_t name_count,
                const std::vector<std::string>* names, Atom* decode) {
  std::uint32_t predicate = 0;
  std::uint32_t arity = 0;
  Status status = cursor->ReadU32(&predicate);
  if (!status.ok()) return status;
  if (predicate >= name_count) {
    return NameIdOutOfRange("predicate", predicate, name_count,
                            cursor->offset());
  }
  status = cursor->ReadU32(&arity);
  if (!status.ok()) return status;
  status = CheckBound("arity", arity, kMaxArity, cursor->offset());
  if (!status.ok()) return status;
  std::vector<Term> args;
  if (decode != nullptr) args.reserve(arity);
  for (std::uint32_t i = 0; i < arity; ++i) {
    Term term = Term::Constant("");
    status = WalkTerm(cursor, name_count, names,
                      decode != nullptr ? &term : nullptr);
    if (!status.ok()) return status;
    if (decode != nullptr) args.push_back(std::move(term));
  }
  if (decode != nullptr) {
    *decode = Atom((*names)[predicate], std::move(args));
  }
  return OkStatus();
}

// Walks one instance record. With `decode` null this is the structural
// validation pass; with `decode` set it rebuilds the instance.
Status WalkInstance(Cursor* cursor, std::uint32_t name_count,
                    const std::vector<std::string>* names,
                    CorpusInstance* decode) {
  std::uint64_t id = 0;
  std::uint32_t flags = 0;
  std::uint32_t goal = 0;
  Status status = cursor->ReadU64(&id);
  if (!status.ok()) return status;
  status = cursor->ReadU32(&flags);
  if (!status.ok()) return status;
  status = cursor->ReadU32(&goal);
  if (!status.ok()) return status;
  if (goal >= name_count) {
    return NameIdOutOfRange("goal", goal, name_count, cursor->offset());
  }
  if (decode != nullptr) {
    decode->id = id;
    decode->flags = flags;
    decode->goal = (*names)[goal];
  }

  std::uint32_t num_rules = 0;
  status = cursor->ReadU32(&num_rules);
  if (!status.ok()) return status;
  status = CheckBound("rule count", num_rules, kMaxRules, cursor->offset());
  if (!status.ok()) return status;
  for (std::uint32_t r = 0; r < num_rules; ++r) {
    std::uint32_t body_count = 0;
    status = cursor->ReadU32(&body_count);
    if (!status.ok()) return status;
    status = CheckBound("body atom count", body_count, kMaxBodyAtoms,
                        cursor->offset());
    if (!status.ok()) return status;
    Atom head("", {});
    status = WalkAtom(cursor, name_count, names,
                      decode != nullptr ? &head : nullptr);
    if (!status.ok()) return status;
    std::vector<Atom> body;
    if (decode != nullptr) body.reserve(body_count);
    for (std::uint32_t b = 0; b < body_count; ++b) {
      Atom atom("", {});
      status = WalkAtom(cursor, name_count, names,
                        decode != nullptr ? &atom : nullptr);
      if (!status.ok()) return status;
      if (decode != nullptr) body.push_back(std::move(atom));
    }
    if (decode != nullptr) {
      decode->program.AddRule(Rule(std::move(head), std::move(body)));
    }
  }

  std::uint32_t num_disjuncts = 0;
  status = cursor->ReadU32(&num_disjuncts);
  if (!status.ok()) return status;
  status = CheckBound("disjunct count", num_disjuncts, kMaxDisjuncts,
                      cursor->offset());
  if (!status.ok()) return status;
  for (std::uint32_t d = 0; d < num_disjuncts; ++d) {
    std::uint32_t head_arity = 0;
    status = cursor->ReadU32(&head_arity);
    if (!status.ok()) return status;
    status = CheckBound("disjunct head arity", head_arity, kMaxArity,
                        cursor->offset());
    if (!status.ok()) return status;
    std::vector<Term> head_args;
    if (decode != nullptr) head_args.reserve(head_arity);
    for (std::uint32_t i = 0; i < head_arity; ++i) {
      Term term = Term::Constant("");
      status = WalkTerm(cursor, name_count, names,
                        decode != nullptr ? &term : nullptr);
      if (!status.ok()) return status;
      if (decode != nullptr) head_args.push_back(std::move(term));
    }
    std::uint32_t body_count = 0;
    status = cursor->ReadU32(&body_count);
    if (!status.ok()) return status;
    status = CheckBound("body atom count", body_count, kMaxBodyAtoms,
                        cursor->offset());
    if (!status.ok()) return status;
    std::vector<Atom> body;
    if (decode != nullptr) body.reserve(body_count);
    for (std::uint32_t b = 0; b < body_count; ++b) {
      Atom atom("", {});
      status = WalkAtom(cursor, name_count, names,
                        decode != nullptr ? &atom : nullptr);
      if (!status.ok()) return status;
      if (decode != nullptr) body.push_back(std::move(atom));
    }
    if (decode != nullptr) {
      decode->theta.Add(
          ConjunctiveQuery(std::move(head_args), std::move(body)));
    }
  }
  return OkStatus();
}

}  // namespace

std::uint64_t Fnv1a64(const std::string& data) {
  return Fnv1a64Range(data.data(), data.size());
}

std::uint32_t CorpusWriter::NameId(const std::string& name) {
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  name_ids_.emplace(name, id);
  return id;
}

void CorpusWriter::PutTerm(const Term& term) {
  std::uint32_t encoded = NameId(term.name()) << 1;
  if (term.is_variable()) encoded |= 1u;
  PutU32(&records_, encoded);
}

void CorpusWriter::PutAtom(const Atom& atom) {
  PutU32(&records_, NameId(atom.predicate()));
  PutU32(&records_, static_cast<std::uint32_t>(atom.arity()));
  for (const Term& term : atom.args()) PutTerm(term);
}

void CorpusWriter::Add(const CorpusInstance& instance) {
  PutU64(&records_, instance.id);
  PutU32(&records_, instance.flags);
  PutU32(&records_, NameId(instance.goal));
  PutU32(&records_,
         static_cast<std::uint32_t>(instance.program.rules().size()));
  for (const Rule& rule : instance.program.rules()) {
    PutU32(&records_, static_cast<std::uint32_t>(rule.body().size()));
    PutAtom(rule.head());
    for (const Atom& atom : rule.body()) PutAtom(atom);
  }
  PutU32(&records_, static_cast<std::uint32_t>(instance.theta.size()));
  for (const ConjunctiveQuery& disjunct : instance.theta.disjuncts()) {
    PutU32(&records_, static_cast<std::uint32_t>(disjunct.arity()));
    for (const Term& term : disjunct.head_args()) PutTerm(term);
    PutU32(&records_, static_cast<std::uint32_t>(disjunct.body().size()));
    for (const Atom& atom : disjunct.body()) PutAtom(atom);
  }
  ++count_;
}

std::string CorpusWriter::Serialize() const {
  std::string out;
  PutU32(&out, kCorpusMagic);
  PutU32(&out, kCorpusVersion);
  PutU64(&out, count_);
  PutU32(&out, static_cast<std::uint32_t>(names_.size()));
  PutU32(&out, 0);  // reserved
  for (const std::string& name : names_) {
    PutU32(&out, static_cast<std::uint32_t>(name.size()));
    out.append(name);
  }
  out.append(records_);
  PutU64(&out, Fnv1a64(out));
  return out;
}

Status CorpusWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return InvalidArgumentError(StrCat("corpus: cannot open ", path,
                                       " for writing"));
  }
  std::string bytes = Serialize();
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) {
    return InternalError(StrCat("corpus: short write to ", path));
  }
  return OkStatus();
}

StatusOr<CorpusReader> CorpusReader::FromBytes(std::string bytes,
                                               FaultInjector* fault) {
  CorpusReader reader;
  reader.bytes_ = std::move(bytes);
  if (fault != nullptr) fault->ApplyReaderFaults(&reader.bytes_);

  // The checksum trailer covers everything before it, so verify it
  // first: any later diagnostic then describes genuine structure, not
  // bit rot.
  if (reader.bytes_.size() < 8) {
    return InvalidArgumentError(
        StrCat("corpus: file too small (", reader.bytes_.size(), " bytes)"));
  }
  std::size_t body_end = reader.bytes_.size() - 8;
  Cursor trailer(reader.bytes_, body_end, reader.bytes_.size());
  std::uint64_t stored_checksum = 0;
  Status status = trailer.ReadU64(&stored_checksum);
  if (!status.ok()) return status;
  std::uint64_t computed = Fnv1a64Range(reader.bytes_.data(), body_end);
  if (stored_checksum != computed) {
    std::ostringstream message;
    message << "corpus: checksum mismatch (stored 0x" << std::hex
            << stored_checksum << ", computed 0x" << computed << ")";
    return InvalidArgumentError(message.str());
  }

  Cursor cursor(reader.bytes_, 0, body_end);
  std::uint32_t magic = 0;
  status = cursor.ReadU32(&magic);
  if (!status.ok()) return status;
  if (magic != kCorpusMagic) {
    std::ostringstream message;
    message << "corpus: bad magic 0x" << std::hex << magic << " (want 0x"
            << kCorpusMagic << ")";
    return InvalidArgumentError(message.str());
  }
  std::uint32_t version = 0;
  status = cursor.ReadU32(&version);
  if (!status.ok()) return status;
  if (version != kCorpusVersion) {
    return InvalidArgumentError(StrCat("corpus: unsupported version ", version,
                                       " (reader supports ", kCorpusVersion,
                                       ")"));
  }
  std::uint64_t instance_count = 0;
  status = cursor.ReadU64(&instance_count);
  if (!status.ok()) return status;
  std::uint32_t name_count = 0;
  status = cursor.ReadU32(&name_count);
  if (!status.ok()) return status;
  status = CheckBound("name count", name_count, kMaxNames, cursor.offset());
  if (!status.ok()) return status;
  std::uint32_t reserved = 0;
  status = cursor.ReadU32(&reserved);
  if (!status.ok()) return status;
  if (reserved != 0) {
    return InvalidArgumentError(
        StrCat("corpus: nonzero reserved header field ", reserved));
  }

  reader.names_.reserve(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    std::uint32_t length = 0;
    status = cursor.ReadU32(&length);
    if (!status.ok()) return status;
    status = CheckBound("name length", length, kMaxNameBytes, cursor.offset());
    if (!status.ok()) return status;
    std::string name;
    status = cursor.ReadBytes(length, &name);
    if (!status.ok()) return status;
    reader.names_.push_back(std::move(name));
  }

  reader.offsets_.reserve(instance_count);
  for (std::uint64_t i = 0; i < instance_count; ++i) {
    reader.offsets_.push_back(cursor.offset());
    status = WalkInstance(&cursor, name_count, nullptr, nullptr);
    if (!status.ok()) {
      return InvalidArgumentError(StrCat("corpus: instance record ", i, ": ",
                                         status.message()));
    }
  }
  if (cursor.remaining() != 0) {
    return InvalidArgumentError(
        StrCat("corpus: ", cursor.remaining(),
               " trailing bytes after the last instance record"));
  }
  return reader;
}

StatusOr<CorpusReader> CorpusReader::Open(const std::string& path,
                                          FaultInjector* fault) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return InvalidArgumentError(StrCat("corpus: cannot open ", path));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return FromBytes(buffer.str(), fault);
}

StatusOr<CorpusInstance> CorpusReader::Decode(std::size_t index) const {
  if (index >= offsets_.size()) {
    return InvalidArgumentError(StrCat("corpus: instance index ", index,
                                       " out of range (", offsets_.size(),
                                       " instances)"));
  }
  Cursor cursor(bytes_, offsets_[index], bytes_.size() - 8);
  CorpusInstance instance;
  Status status = WalkInstance(
      &cursor, static_cast<std::uint32_t>(names_.size()), &names_, &instance);
  if (!status.ok()) return status;
  return instance;
}

StatusOr<std::vector<CorpusInstance>> CorpusReader::DecodeAll() const {
  std::vector<CorpusInstance> instances;
  instances.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    StatusOr<CorpusInstance> instance = Decode(i);
    if (!instance.ok()) return instance.status();
    instances.push_back(*std::move(instance));
  }
  return instances;
}

}  // namespace corpus
}  // namespace datalog
