#include "src/corpus/naive.h"

#include <algorithm>
#include <functional>
#include <map>

#include "src/util/strings.h"

namespace datalog {
namespace corpus {
namespace {

// Tries to bind `var` to `image`, failing on a conflicting existing
// binding. Appends newly bound names to `bound` so callers can undo.
bool Bind(Substitution* h, std::vector<std::string>* bound,
          const std::string& var, const Term& image) {
  auto it = h->find(var);
  if (it != h->end()) return it->second == image;
  h->emplace(var, image);
  bound->push_back(var);
  return true;
}

void Unbind(Substitution* h, std::vector<std::string>* bound,
            std::size_t mark) {
  while (bound->size() > mark) {
    h->erase(bound->back());
    bound->pop_back();
  }
}

// Unifies pattern term `pattern` with target term `image` under `h`:
// variables bind (consistently), constants only match themselves.
bool UnifyTerm(Substitution* h, std::vector<std::string>* bound,
               const Term& pattern, const Term& image) {
  if (pattern.is_constant()) return pattern == image;
  return Bind(h, bound, pattern.name(), image);
}

bool UnifyAtom(Substitution* h, std::vector<std::string>* bound,
               const Atom& pattern, const Atom& image) {
  if (pattern.predicate() != image.predicate() ||
      pattern.arity() != image.arity()) {
    return false;
  }
  for (std::size_t i = 0; i < pattern.arity(); ++i) {
    if (!UnifyTerm(h, bound, pattern.args()[i], image.args()[i])) return false;
  }
  return true;
}

// Backtracking match of body atoms `index..` into `candidates`.
bool MatchBodyInto(const std::vector<Atom>& body, std::size_t index,
                   const std::vector<Atom>& candidates, Substitution* h,
                   std::vector<std::string>* bound) {
  if (index == body.size()) return true;
  for (const Atom& candidate : candidates) {
    std::size_t mark = bound->size();
    if (UnifyAtom(h, bound, body[index], candidate) &&
        MatchBodyInto(body, index + 1, candidates, h, bound)) {
      return true;
    }
    Unbind(h, bound, mark);
  }
  return false;
}

bool AtomGround(const Atom& atom) {
  for (const Term& term : atom.args()) {
    if (term.is_variable()) return false;
  }
  return true;
}

// Enumerates every match of `body[index..]` against the ground fact
// set `known`, yielding the completed substitution. Deterministic:
// facts are visited in std::set order.
void ForEachMatch(const std::vector<Atom>& body, std::size_t index,
                  const std::set<Atom>& known, Substitution* h,
                  std::vector<std::string>* bound,
                  const std::function<void(const Substitution&)>& yield) {
  if (index == body.size()) {
    yield(*h);
    return;
  }
  for (const Atom& fact : known) {
    std::size_t mark = bound->size();
    if (UnifyAtom(h, bound, body[index], fact)) {
      ForEachMatch(body, index + 1, known, h, bound, yield);
    }
    Unbind(h, bound, mark);
  }
}

std::vector<std::pair<std::string, Term>> SortedBindings(
    const Rule& rule, const Substitution& subst) {
  std::vector<std::string> vars = rule.VariableNames();
  std::sort(vars.begin(), vars.end());
  std::vector<std::pair<std::string, Term>> bindings;
  bindings.reserve(vars.size());
  for (const std::string& var : vars) {
    bindings.emplace_back(var, subst.at(var));
  }
  return bindings;
}

}  // namespace

bool IsRangeRestricted(const Program& program) {
  for (const Rule& rule : program.rules()) {
    std::vector<std::string> body_vars = CollectVariables(rule.body());
    for (const Term& term : rule.head().args()) {
      if (!term.is_variable()) continue;
      if (std::find(body_vars.begin(), body_vars.end(), term.name()) ==
          body_vars.end()) {
        return false;
      }
    }
  }
  return true;
}

bool HasDistinctVariableHeads(const Program& program) {
  for (const Rule& rule : program.rules()) {
    std::vector<std::string> seen;
    for (const Term& term : rule.head().args()) {
      if (!term.is_variable()) return false;
      if (std::find(seen.begin(), seen.end(), term.name()) != seen.end()) {
        return false;
      }
      seen.push_back(term.name());
    }
  }
  return true;
}

bool IsRecursiveNaive(const Program& program) {
  std::map<std::string, std::vector<std::string>> edges;
  for (const Rule& rule : program.rules()) {
    std::vector<std::string>& out = edges[rule.head().predicate()];
    for (const Atom& atom : rule.body()) {
      if (program.IsIdb(atom.predicate())) out.push_back(atom.predicate());
    }
  }
  // Colors: 0 unvisited, 1 on stack, 2 done.
  std::map<std::string, int> color;
  std::function<bool(const std::string&)> dfs =
      [&](const std::string& pred) -> bool {
    int& c = color[pred];
    if (c == 1) return true;
    if (c == 2) return false;
    c = 1;
    for (const std::string& next : edges[pred]) {
      if (dfs(next)) return true;
    }
    c = 2;
    return false;
  };
  for (const auto& entry : edges) {
    if (dfs(entry.first)) return true;
  }
  return false;
}

bool DisjunctMapsInto(const ConjunctiveQuery& disjunct,
                      const ConjunctiveQuery& target) {
  if (disjunct.arity() != target.arity()) return false;
  Substitution h;
  std::vector<std::string> bound;
  for (std::size_t i = 0; i < disjunct.arity(); ++i) {
    if (!UnifyTerm(&h, &bound, disjunct.head_args()[i],
                   target.head_args()[i])) {
      return false;
    }
  }
  return MatchBodyInto(disjunct.body(), 0, target.body(), &h, &bound);
}

bool UcqCoversCq(const UnionOfCqs& theta, const ConjunctiveQuery& target) {
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    if (DisjunctMapsInto(disjunct, target)) return true;
  }
  return false;
}

NaiveFrozenCq NaiveFreezeCq(const std::string& goal,
                            const ConjunctiveQuery& disjunct) {
  auto freeze = [](const Term& term) {
    if (term.is_constant()) return term;
    return Term::Constant(StrCat("@", term.name()));
  };
  NaiveFrozenCq frozen;
  frozen.facts.reserve(disjunct.body().size());
  for (const Atom& atom : disjunct.body()) {
    std::vector<Term> args;
    args.reserve(atom.arity());
    for (const Term& term : atom.args()) args.push_back(freeze(term));
    frozen.facts.push_back(Atom(atom.predicate(), std::move(args)));
  }
  std::vector<Term> goal_args;
  goal_args.reserve(disjunct.arity());
  for (const Term& term : disjunct.head_args()) {
    goal_args.push_back(freeze(term));
  }
  frozen.goal_atom = Atom(goal, std::move(goal_args));
  return frozen;
}

StatusOr<std::set<Atom>> NaiveFixpoint(const Program& program,
                                       const std::vector<Atom>& facts,
                                       std::size_t max_facts) {
  if (!IsRangeRestricted(program)) {
    return InvalidArgumentError(
        "naive fixpoint requires a range-restricted program");
  }
  std::set<Atom> known(facts.begin(), facts.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules()) {
      std::vector<Atom> derived;
      Substitution h;
      std::vector<std::string> bound;
      ForEachMatch(rule.body(), 0, known, &h, &bound,
                   [&](const Substitution& subst) {
                     derived.push_back(ApplySubstitution(subst, rule.head()));
                   });
      for (const Atom& fact : derived) {
        if (known.insert(fact).second) changed = true;
      }
      if (known.size() > max_facts) {
        return ResourceExhaustedError(
            StrCat("naive fixpoint exceeded ", max_facts, " facts"));
      }
    }
  }
  return known;
}

StatusOr<std::optional<std::vector<DerivationStep>>> FindDerivation(
    const Program& program, const std::vector<Atom>& facts,
    const Atom& goal_atom, std::size_t max_facts) {
  if (!IsRangeRestricted(program)) {
    return InvalidArgumentError(
        "derivation search requires a range-restricted program");
  }
  std::set<Atom> known(facts.begin(), facts.end());
  std::vector<DerivationStep> steps;
  if (known.count(goal_atom) != 0) return std::optional(steps);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t rule_index = 0; rule_index < program.rules().size();
         ++rule_index) {
      const Rule& rule = program.rules()[rule_index];
      std::vector<std::pair<Atom, DerivationStep>> derived;
      Substitution h;
      std::vector<std::string> bound;
      ForEachMatch(rule.body(), 0, known, &h, &bound,
                   [&](const Substitution& subst) {
                     DerivationStep step;
                     step.rule_index = rule_index;
                     step.bindings = SortedBindings(rule, subst);
                     derived.emplace_back(ApplySubstitution(subst, rule.head()),
                                          std::move(step));
                   });
      for (auto& entry : derived) {
        if (!known.insert(entry.first).second) continue;
        changed = true;
        steps.push_back(std::move(entry.second));
        if (entry.first == goal_atom) return std::optional(std::move(steps));
        if (known.size() > max_facts) {
          return ResourceExhaustedError(
              StrCat("derivation search exceeded ", max_facts, " facts"));
        }
      }
    }
  }
  return std::optional<std::vector<DerivationStep>>();
}

Status CheckDerivation(const Program& program, const std::vector<Atom>& facts,
                       const std::vector<DerivationStep>& steps,
                       const Atom& goal_atom) {
  std::set<Atom> known(facts.begin(), facts.end());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const DerivationStep& step = steps[i];
    if (step.rule_index >= program.rules().size()) {
      return InvalidArgumentError(StrCat("derivation step ", i,
                                         ": rule index ", step.rule_index,
                                         " out of range"));
    }
    const Rule& rule = program.rules()[step.rule_index];
    Substitution subst;
    for (const auto& binding : step.bindings) {
      if (binding.second.is_variable()) {
        return InvalidArgumentError(StrCat("derivation step ", i,
                                           ": binding for ", binding.first,
                                           " is not ground"));
      }
      if (!subst.emplace(binding.first, binding.second).second) {
        return InvalidArgumentError(StrCat("derivation step ", i,
                                           ": duplicate binding for ",
                                           binding.first));
      }
    }
    for (const Atom& atom : rule.body()) {
      Atom instance = ApplySubstitution(subst, atom);
      if (!AtomGround(instance)) {
        return InvalidArgumentError(
            StrCat("derivation step ", i, ": body atom ", instance.ToString(),
                   " not ground under the recorded bindings"));
      }
      if (known.count(instance) == 0) {
        return InvalidArgumentError(StrCat("derivation step ", i,
                                           ": body atom ", instance.ToString(),
                                           " is not a known fact"));
      }
    }
    Atom head = ApplySubstitution(subst, rule.head());
    if (!AtomGround(head)) {
      return InvalidArgumentError(StrCat("derivation step ", i, ": head ",
                                         head.ToString(), " not ground"));
    }
    known.insert(head);
  }
  if (known.count(goal_atom) == 0) {
    return InvalidArgumentError(StrCat("derivation does not derive the goal ",
                                       goal_atom.ToString()));
  }
  return OkStatus();
}

namespace {

class Enumerator {
 public:
  Enumerator(const Program& program, std::size_t budget)
      : program_(program), budget_(budget) {}

  std::vector<ExpansionNode> Expand(const Atom& goal, int depth) {
    std::vector<ExpansionNode> out;
    if (nodes_ > budget_) return out;
    if (depth <= 0) {
      complete_ = false;
      return out;
    }
    for (const Rule& rule : program_.rules()) {
      if (rule.head().predicate() != goal.predicate() ||
          rule.head().arity() != goal.arity()) {
        continue;
      }
      // Distinct-variable heads: unifying head with `goal` is a pure
      // downward rename, goal variables are never bound.
      Substitution subst;
      for (std::size_t i = 0; i < goal.arity(); ++i) {
        subst.emplace(rule.head().args()[i].name(), goal.args()[i]);
      }
      std::vector<Atom> body;
      body.reserve(rule.body().size());
      std::vector<std::size_t> idb_positions;
      for (std::size_t pos = 0; pos < rule.body().size(); ++pos) {
        const Atom& atom = rule.body()[pos];
        for (const Term& term : atom.args()) {
          if (term.is_variable() && subst.find(term.name()) == subst.end()) {
            subst.emplace(term.name(), FreshVariable());
          }
        }
        body.push_back(ApplySubstitution(subst, atom));
        if (program_.IsIdb(atom.predicate())) idb_positions.push_back(pos);
      }
      Rule instance(goal, std::move(body));

      if (idb_positions.empty()) {
        if (!ChargeBudget(1)) return out;
        ExpansionNode node;
        node.goal = goal;
        node.rule = instance;
        out.push_back(std::move(node));
        continue;
      }

      std::vector<std::vector<ExpansionNode>> options;
      options.reserve(idb_positions.size());
      bool dead = false;
      for (std::size_t pos : idb_positions) {
        options.push_back(Expand(instance.body()[pos], depth - 1));
        if (options.back().empty()) {
          dead = true;
          break;
        }
      }
      if (dead) continue;

      // Odometer over child choices, rightmost child fastest.
      std::vector<std::size_t> pick(options.size(), 0);
      while (true) {
        ExpansionNode node;
        node.goal = goal;
        node.rule = instance;
        node.idb_positions = idb_positions;
        std::size_t subtotal = 1;
        for (std::size_t i = 0; i < options.size(); ++i) {
          node.children.push_back(options[i][pick[i]]);
          subtotal += node.children.back().Size();
        }
        if (!ChargeBudget(subtotal)) return out;
        out.push_back(std::move(node));
        std::size_t i = options.size();
        while (i > 0) {
          if (++pick[i - 1] < options[i - 1].size()) break;
          pick[i - 1] = 0;
          --i;
        }
        if (i == 0) break;
      }
    }
    return out;
  }

  Term FreshVariable() { return Term::Variable(StrCat("~", fresh_++)); }

  bool complete() const { return complete_; }

 private:
  bool ChargeBudget(std::size_t add) {
    nodes_ += add;
    if (nodes_ > budget_) {
      complete_ = false;
      return false;
    }
    return true;
  }

  const Program& program_;
  std::size_t budget_;
  std::size_t nodes_ = 0;
  std::size_t fresh_ = 0;
  bool complete_ = true;
};

}  // namespace

StatusOr<ExpansionEnumeration> EnumerateExpansionsNaive(
    const Program& program, const std::string& goal, int max_depth,
    std::size_t node_budget) {
  if (!HasDistinctVariableHeads(program)) {
    return InvalidArgumentError(
        "expansion enumeration requires distinct-variable rule heads");
  }
  if (!program.IsIdb(goal)) {
    return InvalidArgumentError(
        StrCat("expansion enumeration: goal ", goal, " is not IDB"));
  }
  Enumerator enumerator(program, node_budget);
  std::size_t arity = program.PredicateArity(goal);
  std::vector<Term> root_args;
  root_args.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    root_args.push_back(enumerator.FreshVariable());
  }
  std::vector<ExpansionNode> roots =
      enumerator.Expand(Atom(goal, std::move(root_args)), max_depth);
  ExpansionEnumeration result;
  result.complete = enumerator.complete();
  result.trees.reserve(roots.size());
  for (ExpansionNode& root : roots) {
    result.trees.push_back(ExpansionTree(std::move(root)));
  }
  return result;
}

}  // namespace corpus
}  // namespace datalog
