#include "src/corpus/pipeline.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "src/analysis/diagnostics.h"
#include "src/containment/decider.h"
#include "src/containment/linear.h"
#include "src/containment/ucq_in_datalog.h"
#include "src/corpus/naive.h"
#include "src/trees/expansion_tree.h"
#include "src/util/logging.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace datalog {
namespace corpus {
namespace {

Status Annotate(std::uint64_t id, const Status& status) {
  return Status(status.code(),
                StrCat("instance ", id, ": ", status.message()));
}

/// One instance's result within a stage, merged in instance order.
struct Outcome {
  Status status = OkStatus();
  std::vector<Certificate> certs;
  std::uint32_t add_flags = 0;
};

Certificate MakeCert(std::uint64_t id, CertificateKind kind) {
  Certificate cert;
  cert.instance_id = id;
  cert.kind = kind;
  return cert;
}

std::size_t CountUnresolved(const std::vector<std::uint32_t>& flags) {
  std::size_t n = 0;
  for (std::uint32_t f : flags) {
    if (!InstanceResolved(f)) ++n;
  }
  return n;
}

/// The limits one instance's work runs under: the run-wide limits
/// (cancel token, fault injector, step budget) narrowed by the
/// per-instance deadline, whichever expires first.
ExecutionLimits InstanceLimits(const PipelineOptions& options) {
  ExecutionLimits limits = options.limits;
  if (options.instance_deadline_ms > 0) {
    const auto mine =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options.instance_deadline_ms);
    if (!limits.deadline.has_value() || mine < *limits.deadline) {
      limits.deadline = mine;
    }
  }
  return limits;
}

/// True when the run as a whole must stop: the shared token was
/// cancelled or the run-wide deadline has passed. Distinguishes an
/// instance-local deadline (→ timeout holdout) from a pipeline abort.
bool RunInterrupted(const ExecutionLimits& run_limits) {
  if (run_limits.cancel != nullptr && run_limits.cancel->cancelled()) {
    return true;
  }
  return run_limits.deadline.has_value() &&
         std::chrono::steady_clock::now() >= *run_limits.deadline;
}

/// Fans the stage function out over the still-unresolved instances,
/// then merges flags and certificates in instance order (so the result
/// is independent of scheduling). A slot that exceeded its per-instance
/// deadline — while the run is otherwise healthy — is converted here,
/// centrally, into a `timeout` certificate naming this stage; every
/// other failure (including kCancelled and a run-deadline expiry)
/// aborts the pipeline with the first failing slot's status in
/// instance order.
template <typename Fn>
Status RunStage(const std::string& name,
                const std::vector<CorpusInstance>& instances,
                const ExecutionLimits& run_limits,
                std::vector<std::uint32_t>* flags, ThreadPool* pool,
                const Fn& fn, std::vector<StageReport>* stages) {
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (!InstanceResolved((*flags)[i])) active.push_back(i);
  }
  StageReport report;
  report.name = name;
  report.entered = active.size();
  std::vector<Outcome> slots(active.size());
  pool->ParallelFor(active.size(), [&](std::size_t k) {
    slots[k] = fn(instances[active[k]], (*flags)[active[k]]);
  });
  for (std::size_t k = 0; k < active.size(); ++k) {
    const std::size_t i = active[k];
    Outcome& slot = slots[k];
    if (!slot.status.ok()) {
      if (slot.status.code() != StatusCode::kDeadlineExceeded ||
          RunInterrupted(run_limits)) {
        return slot.status;
      }
      Certificate cert = MakeCert(instances[i].id, CertificateKind::kTimeout);
      cert.timeout_stage = name;
      cert.timeout_reason = "deadline";
      slot.certs.clear();
      slot.certs.push_back(std::move(cert));
      slot.add_flags = kFlagTimedOut;
    }
    (*flags)[i] |= slot.add_flags;
    if (InstanceResolved((*flags)[i])) ++report.decided;
    for (Certificate& cert : slot.certs) {
      report.certificates.push_back(std::move(cert));
    }
  }
  report.holdout = CountUnresolved(*flags);
  stages->push_back(std::move(report));
  return OkStatus();
}

Term ApplySubst(const std::map<std::string, Term>& subst, const Term& term) {
  if (!term.is_variable()) return term;
  auto it = subst.find(term.name());
  DATALOG_CHECK(it != subst.end()) << "unbound variable " << term.name();
  return it->second;
}

Atom ApplySubst(const std::map<std::string, Term>& subst, const Atom& atom) {
  std::vector<Term> args;
  args.reserve(atom.arity());
  for (const Term& t : atom.args()) args.push_back(ApplySubst(subst, t));
  return Atom(atom.predicate(), std::move(args));
}

/// Renames each node's local variables (rule-instance variables not
/// bound by the node's goal) to globally fresh "~f<k>" names. The
/// decider and the linear arm emit proof trees, which deliberately
/// reuse var(Π) across nodes (paper §5.1); the reuse conflates
/// logically distinct variables, so the raw tree's CQ can be covered
/// even when the expansion it stands for is not. Freshening recovers
/// the true expansion (an unfolding), which is what the certificate's
/// homomorphism re-check needs.
ExpansionNode FreshenNode(const ExpansionNode& node,
                          const std::map<std::string, Term>& goal_subst,
                          std::size_t* counter) {
  std::map<std::string, Term> subst = goal_subst;
  auto bind = [&subst, counter](const Term& term) {
    if (!term.is_variable()) return;
    if (subst.emplace(term.name(),
                      Term::Variable(StrCat("~f", *counter)))
            .second) {
      ++(*counter);
    }
  };
  for (const Term& t : node.rule.head().args()) bind(t);
  for (const Atom& atom : node.rule.body()) {
    for (const Term& t : atom.args()) bind(t);
  }
  ExpansionNode fresh;
  fresh.goal = ApplySubst(subst, node.goal);
  std::vector<Atom> body;
  body.reserve(node.rule.body().size());
  for (const Atom& atom : node.rule.body()) {
    body.push_back(ApplySubst(subst, atom));
  }
  fresh.rule = Rule(ApplySubst(subst, node.rule.head()), std::move(body));
  fresh.idb_positions = node.idb_positions;
  fresh.children.reserve(node.children.size());
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    // The child inherits bindings only for its goal's variables; a
    // variable name reappearing below without flowing through the goal
    // is a distinct variable and gets its own fresh name there.
    const Atom& child_goal = node.children[i].goal;
    std::map<std::string, Term> child_subst;
    for (const Term& t : child_goal.args()) {
      if (t.is_variable()) child_subst.emplace(t.name(), ApplySubst(subst, t));
    }
    fresh.children.push_back(
        FreshenNode(node.children[i], child_subst, counter));
  }
  return fresh;
}

ExpansionTree FreshenTree(const ExpansionTree& tree) {
  std::map<std::string, Term> identity;
  for (const Term& t : tree.root().goal.args()) {
    if (t.is_variable()) identity.emplace(t.name(), t);
  }
  std::size_t counter = 0;
  return ExpansionTree(FreshenNode(tree.root(), identity, &counter));
}

Outcome LintInstance(const CorpusInstance& inst) {
  Outcome out;
  std::vector<std::string> slugs;
  auto add = [&slugs](const std::string& slug) {
    if (std::find(slugs.begin(), slugs.end(), slug) == slugs.end()) {
      slugs.push_back(slug);
    }
  };
  for (const Diagnostic& d : LintProgram(inst.program, inst.goal)) {
    if (d.severity == DiagnosticSeverity::kError) {
      add(DiagnosticKindSlug(d.kind));
    }
  }
  if (slugs.empty()) {
    // Θ-side validity the program linter does not know about. Guarded
    // by the lint pass above: no errors means the goal is a known IDB
    // predicate, so its arity is defined.
    if (inst.theta.disjuncts().empty()) {
      add("empty-theta");
    } else {
      const std::size_t goal_arity = inst.program.PredicateArity(inst.goal);
      for (const ConjunctiveQuery& disjunct : inst.theta.disjuncts()) {
        if (disjunct.arity() != goal_arity) {
          add("theta-arity-mismatch");
          break;
        }
      }
    }
  }
  if (!slugs.empty()) {
    Certificate cert = MakeCert(inst.id, CertificateKind::kInvalid);
    cert.errors = std::move(slugs);
    out.certs.push_back(std::move(cert));
    out.add_flags = kFlagInvalid;
  }
  return out;
}

Outcome ForwardInstance(const CorpusInstance& inst,
                        const PipelineOptions& options) {
  Outcome out;
  CanonicalDbOptions db_opts;
  db_opts.eval.num_threads = 1;
  db_opts.eval.limits = InstanceLimits(options);
  const std::vector<ConjunctiveQuery>& disjuncts = inst.theta.disjuncts();
  std::size_t failing = disjuncts.size();
  for (std::size_t d = 0; d < disjuncts.size(); ++d) {
    StatusOr<bool> contained = IsUcqDisjunctContainedInDatalog(
        inst.theta, d, inst.program, inst.goal, nullptr, db_opts);
    if (!contained.ok()) {
      out.status = Annotate(inst.id, contained.status());
      return out;
    }
    if (!*contained) {
      failing = d;
      break;
    }
  }
  if (failing == disjuncts.size()) {
    // Cross-check doubles as certificate construction: the naive
    // kernel must find a derivation for every disjunct the engine
    // called contained.
    Certificate cert = MakeCert(inst.id, CertificateKind::kForwardContained);
    for (std::size_t d = 0; d < disjuncts.size(); ++d) {
      NaiveFrozenCq frozen = NaiveFreezeCq(inst.goal, disjuncts[d]);
      StatusOr<std::optional<std::vector<DerivationStep>>> steps =
          FindDerivation(inst.program, frozen.facts, frozen.goal_atom,
                         options.naive_max_facts);
      if (!steps.ok()) {
        out.status = Annotate(inst.id, steps.status());
        return out;
      }
      if (!steps->has_value()) {
        out.status = InternalError(StrCat(
            "instance ", inst.id, ": forward stage disagreement: engine "
            "contained disjunct ", d, " but the naive search found no "
            "derivation"));
        return out;
      }
      cert.derivations.push_back(std::move(**steps));
    }
    out.add_flags = kFlagForwardResolved | kFlagForwardContained;
    out.certs.push_back(std::move(cert));
    return out;
  }
  // Re-run the failing disjunct through the single-disjunct entry to
  // capture its canonical database for the certificate.
  CanonicalDbWitness witness;
  CanonicalDbOptions witness_opts = db_opts;
  witness_opts.witness = &witness;
  StatusOr<bool> again = IsUcqDisjunctContainedInDatalog(
      inst.theta, failing, inst.program, inst.goal, nullptr, witness_opts);
  if (!again.ok()) {
    out.status = Annotate(inst.id, again.status());
    return out;
  }
  if (*again) {
    out.status = InternalError(StrCat(
        "instance ", inst.id, ": forward stage nondeterminism: disjunct ",
        failing, " flipped verdicts between runs"));
    return out;
  }
  NaiveFrozenCq frozen = NaiveFreezeCq(inst.goal, disjuncts[failing]);
  StatusOr<std::optional<std::vector<DerivationStep>>> steps =
      FindDerivation(inst.program, frozen.facts, frozen.goal_atom,
                     options.naive_max_facts);
  if (!steps.ok()) {
    out.status = Annotate(inst.id, steps.status());
    return out;
  }
  if (steps->has_value()) {
    out.status = InternalError(StrCat(
        "instance ", inst.id, ": forward stage disagreement: engine "
        "refuted disjunct ", failing, " but the naive search derived the "
        "frozen goal"));
    return out;
  }
  Certificate cert = MakeCert(inst.id, CertificateKind::kForwardNotContained);
  cert.failing_disjunct = failing;
  cert.frozen_facts = std::move(witness.facts);
  cert.frozen_goal = witness.goal_atom;
  out.add_flags = kFlagForwardResolved;
  out.certs.push_back(std::move(cert));
  return out;
}

Outcome LinearInstance(const CorpusInstance& inst,
                       const PipelineOptions& options) {
  Outcome out;
  // The word-automaton arm earns its keep on recursive linear programs
  // (infinite expansion sets). A nonrecursive program is always fully
  // decided by the next stage's complete enumeration, and the arm's
  // automata can be far more expensive than that enumeration — skip.
  if (!IsRecursiveNaive(inst.program)) return out;
  LinearContainmentOptions lopts;
  lopts.limits = InstanceLimits(options)
                     .WithMaxStates(options.linear_max_states)
                     .WithMaxLabels(options.linear_max_labels);
  StatusOr<LinearContainmentResult> result =
      DecideLinearDatalogInUcq(inst.program, inst.goal, inst.theta, lopts);
  if (!result.ok()) {
    // Not linear-in-IDB (InvalidArgument) or over budget: later stages
    // own the instance.
    if (result.status().code() == StatusCode::kInvalidArgument ||
        result.status().code() == StatusCode::kResourceExhausted) {
      return out;
    }
    out.status = Annotate(inst.id, result.status());
    return out;
  }
  if (result->contained) {
    // The word-automaton arm exports no absorption trace, so a
    // contained verdict is a hint the certificate-producing stages
    // must agree with, not a resolution.
    out.add_flags = kFlagLinearContainedHint;
    return out;
  }
  if (!result->counterexample.has_value()) {
    out.status = InternalError(StrCat(
        "instance ", inst.id, ": linear stage refuted without a "
        "counterexample tree"));
    return out;
  }
  Certificate cert = MakeCert(inst.id, CertificateKind::kBackwardNotContained);
  cert.counterexample = FreshenTree(*result->counterexample);
  out.add_flags = kFlagBackwardResolved;
  out.certs.push_back(std::move(cert));
  return out;
}

Outcome UnfoldInstance(const CorpusInstance& inst, std::uint32_t flags) {
  Outcome out;
  if (!IsRecursiveNaive(inst.program)) {
    // Nonrecursive: every expansion has height at most #IDB + 1, so
    // the enumeration below is complete and coverage decides Q_Π ⊆ Θ.
    const int depth =
        static_cast<int>(inst.program.IdbPredicates().size()) + 1;
    StatusOr<ExpansionEnumeration> enumeration = EnumerateExpansionsNaive(
        inst.program, inst.goal, depth, kExpansionNodeBudget);
    if (!enumeration.ok() || !enumeration->complete) return out;
    Certificate cert =
        MakeCert(inst.id, CertificateKind::kBackwardContainedUnfold);
    for (const ExpansionTree& tree : enumeration->trees) {
      ConjunctiveQuery cq = TreeToCq(inst.program, tree);
      std::size_t covering = inst.theta.disjuncts().size();
      for (std::size_t d = 0; d < inst.theta.disjuncts().size(); ++d) {
        if (DisjunctMapsInto(inst.theta.disjuncts()[d], cq)) {
          covering = d;
          break;
        }
      }
      if (covering == inst.theta.disjuncts().size()) {
        if ((flags & kFlagLinearContainedHint) != 0) {
          out.status = InternalError(StrCat(
              "instance ", inst.id, ": unfold stage disagreement: linear "
              "arm said contained but an expansion is uncovered"));
          return out;
        }
        Certificate refutation =
            MakeCert(inst.id, CertificateKind::kBackwardNotContained);
        refutation.counterexample = tree;
        out.certs.push_back(std::move(refutation));
        out.add_flags = kFlagBackwardResolved;
        return out;
      }
      cert.cover.push_back(covering);
    }
    cert.expansion_count = enumeration->trees.size();
    out.certs.push_back(std::move(cert));
    out.add_flags = kFlagBackwardResolved | kFlagBackwardContained;
    return out;
  }
  // Recursive: a shallow probe can only refute — an uncovered
  // enumerated tree is already a complete counterexample expansion.
  StatusOr<ExpansionEnumeration> enumeration = EnumerateExpansionsNaive(
      inst.program, inst.goal, kRecursiveRefutationDepth,
      kExpansionNodeBudget);
  if (!enumeration.ok()) return out;
  for (const ExpansionTree& tree : enumeration->trees) {
    if (UcqCoversCq(inst.theta, TreeToCq(inst.program, tree))) continue;
    if ((flags & kFlagLinearContainedHint) != 0) {
      out.status = InternalError(StrCat(
          "instance ", inst.id, ": unfold stage disagreement: linear arm "
          "said contained but a depth-", kRecursiveRefutationDepth,
          " expansion is uncovered"));
      return out;
    }
    Certificate cert =
        MakeCert(inst.id, CertificateKind::kBackwardNotContained);
    cert.counterexample = tree;
    out.certs.push_back(std::move(cert));
    out.add_flags = kFlagBackwardResolved;
    return out;
  }
  return out;
}

Outcome PtreesInstance(const CorpusInstance& inst, std::uint32_t flags,
                       const PipelineOptions& options) {
  Outcome out;
  ContainmentOptions copts;
  copts.track_witness = true;
  copts.export_trace = true;
  copts.limits =
      InstanceLimits(options).WithMaxStates(options.decider_max_states);
  StatusOr<ContainmentDecision> decision =
      DecideDatalogInUcq(inst.program, inst.goal, inst.theta, copts);
  if (!decision.ok()) {
    out.status = Annotate(inst.id, decision.status());
    return out;
  }
  if (decision->contained) {
    Certificate cert = MakeCert(inst.id, CertificateKind::kBackwardContained);
    cert.trace = std::move(decision->trace);
    out.certs.push_back(std::move(cert));
    out.add_flags = kFlagBackwardResolved | kFlagBackwardContained;
    return out;
  }
  if ((flags & kFlagLinearContainedHint) != 0) {
    out.status = InternalError(StrCat(
        "instance ", inst.id, ": ptrees stage disagreement: linear arm "
        "said contained but the decider refuted"));
    return out;
  }
  if (!decision->counterexample.has_value()) {
    out.status = InternalError(StrCat(
        "instance ", inst.id, ": ptrees stage refuted without a "
        "counterexample tree"));
    return out;
  }
  Certificate cert = MakeCert(inst.id, CertificateKind::kBackwardNotContained);
  cert.counterexample = FreshenTree(*decision->counterexample);
  out.certs.push_back(std::move(cert));
  out.add_flags = kFlagBackwardResolved;
  return out;
}

}  // namespace

StatusOr<PipelineResult> RunCorpusPipeline(
    const std::vector<CorpusInstance>& instances,
    const PipelineOptions& options) {
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  ThreadPool pool(threads);
  PipelineResult result;
  result.flags.assign(instances.size(), 0);

  // The run-wide governor is polled between stages; per-instance work
  // inherits the same limits (narrowed by instance_deadline_ms), so
  // cancellation and the run deadline are also observed inside stages.
  Governor governor(options.limits, "corpus pipeline");

  DATALOG_RETURN_IF_ERROR(governor.Poll());
  Status s = RunStage(
      "lint", instances, options.limits, &result.flags, &pool,
      [](const CorpusInstance& inst, std::uint32_t) {
        return LintInstance(inst);
      },
      &result.stages);
  if (!s.ok()) return s;

  DATALOG_RETURN_IF_ERROR(governor.Poll());
  s = RunStage(
      "forward", instances, options.limits, &result.flags, &pool,
      [&options](const CorpusInstance& inst, std::uint32_t) {
        return ForwardInstance(inst, options);
      },
      &result.stages);
  if (!s.ok()) return s;

  DATALOG_RETURN_IF_ERROR(governor.Poll());
  s = RunStage(
      "linear", instances, options.limits, &result.flags, &pool,
      [&options](const CorpusInstance& inst, std::uint32_t) {
        return LinearInstance(inst, options);
      },
      &result.stages);
  if (!s.ok()) return s;

  DATALOG_RETURN_IF_ERROR(governor.Poll());
  s = RunStage(
      "unfold", instances, options.limits, &result.flags, &pool,
      [](const CorpusInstance& inst, std::uint32_t flags) {
        return UnfoldInstance(inst, flags);
      },
      &result.stages);
  if (!s.ok()) return s;

  DATALOG_RETURN_IF_ERROR(governor.Poll());
  s = RunStage(
      "ptrees", instances, options.limits, &result.flags, &pool,
      [&options](const CorpusInstance& inst, std::uint32_t flags) {
        return PtreesInstance(inst, flags, options);
      },
      &result.stages);
  if (!s.ok()) return s;

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::uint32_t f = result.flags[i];
    if (!InstanceResolved(f)) {
      return Status(StatusCode::kInternal,
                    StrCat("instance ", instances[i].id,
                           ": unresolved after the last stage"));
    }
    if ((f & kFlagInvalid) != 0) {
      ++result.invalid;
    } else if ((f & kFlagTimedOut) != 0) {
      ++result.timed_out;
    } else if ((f & kFlagForwardContained) != 0 &&
               (f & kFlagBackwardContained) != 0) {
      ++result.equivalent;
    } else if ((f & kFlagForwardContained) != 0) {
      ++result.forward_only;
    } else if ((f & kFlagBackwardContained) != 0) {
      ++result.backward_only;
    } else {
      ++result.incomparable;
    }
  }
  return result;
}

}  // namespace corpus
}  // namespace datalog
