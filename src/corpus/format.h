// Compact binary corpus format for batches of containment instances.
//
// A corpus file holds many (program, goal, Θ) instances — the unit the
// staged decider pipeline (pipeline.h) consumes and re-emits as stage
// holdouts. The encoding follows the repo's IR conventions rather than
// the text syntax: one shared name dictionary up front, then flat atom
// spans of fixed-width little-endian integers, so a reader can validate
// the whole file structurally (every name id bounds-checked, every
// record length walked) before decoding a single instance, and a seeded
// writer produces byte-identical files across runs.
//
// Layout (all integers little-endian):
//
//   u32 magic            'DLCQ' (0x51434c44)
//   u32 version          1
//   u64 instance_count
//   u32 name_count
//   u32 reserved         0
//   name_count x (u32 byte_length + bytes)      shared name dictionary
//   instance_count x instance record
//   u64 checksum         FNV-1a 64 over every preceding byte
//
// Instance record:
//
//   u64 id
//   u32 flags            kFlag* bits below
//   u32 goal             name id of the goal predicate
//   u32 num_rules
//   per rule:     u32 body_count, head atom, body_count x atom
//   u32 num_disjuncts
//   per disjunct: u32 head_arity, head_arity x term,
//                 u32 body_count, body_count x atom
//
// Atom span: u32 predicate name id, u32 arity, arity x term.
// Term: u32 with bit 0 the variable tag — (name_id << 1) | is_variable.
//
// The dictionary is written in first-use order, which is itself a
// function of instance order, so round-tripping a file through
// CorpusReader + CorpusWriter reproduces it bit-identically
// (tests/corpus_format_test.cc pins this).
#ifndef DATALOG_EQ_SRC_CORPUS_FORMAT_H_
#define DATALOG_EQ_SRC_CORPUS_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/rule.h"
#include "src/cq/cq.h"
#include "src/util/governor.h"
#include "src/util/status.h"

namespace datalog {
namespace corpus {

inline constexpr std::uint32_t kCorpusMagic = 0x51434c44u;  // 'DLCQ'
inline constexpr std::uint32_t kCorpusVersion = 1;

/// Pipeline progress bits carried per instance (see docs/corpus.md,
/// "Stage contract"). A stage may set bits, never clear them.
inline constexpr std::uint32_t kFlagForwardResolved = 1u << 0;
inline constexpr std::uint32_t kFlagForwardContained = 1u << 1;
inline constexpr std::uint32_t kFlagBackwardResolved = 1u << 2;
inline constexpr std::uint32_t kFlagBackwardContained = 1u << 3;
/// The linear arm decided "contained" — recorded as a hint only (the
/// ptrees arm must re-derive it; a disagreement is a pipeline error).
inline constexpr std::uint32_t kFlagLinearContainedHint = 1u << 4;
/// The lint stage found error-severity diagnostics; no decider runs.
inline constexpr std::uint32_t kFlagInvalid = 1u << 5;
/// A stage's per-instance deadline expired before a verdict; the
/// instance leaves the pipeline with a `timeout` certificate pinning
/// the stage that gave up (no decider verdict is recorded).
inline constexpr std::uint32_t kFlagTimedOut = 1u << 6;

/// One corpus entry: decide Q_Π(goal) vs Θ in both directions.
struct CorpusInstance {
  std::uint64_t id = 0;
  std::uint32_t flags = 0;
  Program program;
  std::string goal;
  UnionOfCqs theta;
};

/// True when the pipeline owes no further work on `flags` (both
/// directions resolved, or the instance is invalid or timed out).
inline bool InstanceResolved(std::uint32_t flags) {
  if ((flags & (kFlagInvalid | kFlagTimedOut)) != 0) return true;
  return (flags & kFlagForwardResolved) != 0 &&
         (flags & kFlagBackwardResolved) != 0;
}

/// FNV-1a 64-bit over `data` — the corpus trailer checksum.
std::uint64_t Fnv1a64(const std::string& data);

/// Buffers instances and serializes them into the corpus layout.
/// Deterministic: the dictionary is populated in first-use order, so
/// equal Add sequences produce equal bytes.
class CorpusWriter {
 public:
  void Add(const CorpusInstance& instance);

  std::size_t size() const { return count_; }

  /// The complete file image (header + dictionary + records + checksum).
  std::string Serialize() const;

  Status WriteFile(const std::string& path) const;

 private:
  std::uint32_t NameId(const std::string& name);
  void PutAtom(const Atom& atom);
  void PutTerm(const Term& term);

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  std::string records_;
  std::uint64_t count_ = 0;
};

/// Validating reader. Open/FromBytes walk the entire file once —
/// header, dictionary, every record span, checksum — and reject
/// truncated or corrupted input with a diagnostic Status before any
/// instance is decodable; Decode then re-walks one pre-validated record.
///
/// A non-null `fault` injects I/O-level damage (short read, byte flip —
/// FaultInjector::ApplyReaderFaults) into the image before validation;
/// the fault-injection tests use it to pin that every corruption
/// surfaces as a diagnostic Status, never as a crash or a bad decode.
class CorpusReader {
 public:
  static StatusOr<CorpusReader> FromBytes(std::string bytes,
                                          FaultInjector* fault = nullptr);
  static StatusOr<CorpusReader> Open(const std::string& path,
                                     FaultInjector* fault = nullptr);

  std::size_t size() const { return offsets_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  StatusOr<CorpusInstance> Decode(std::size_t index) const;

  /// Decodes every instance in file order.
  StatusOr<std::vector<CorpusInstance>> DecodeAll() const;

 private:
  CorpusReader() = default;

  std::string bytes_;
  std::vector<std::string> names_;
  std::vector<std::size_t> offsets_;  // record start offsets, file order
};

}  // namespace corpus
}  // namespace datalog

#endif  // DATALOG_EQ_SRC_CORPUS_FORMAT_H_
