// datalog_lint: run the structural lint (src/analysis/diagnostics.h) on a
// Datalog program and print one line per finding.
//
// Usage: datalog_lint [--goal=PRED] [--werror] FILE
//        datalog_lint [--goal=PRED] [--werror] -       (read stdin)
//
// Output: one FormatDiagnostic line per finding, e.g.
//   error[arity-mismatch] rule 1 (p): predicate 'p' used with arity 1 ...
//   warning[duplicate-rule] rule 2 (q): rule is identical to rule 0
// followed by a `N error(s), M warning(s)` summary line.
//
// Exit status: 0 when clean or warnings only, 1 when any error-severity
// diagnostic fired (or any warning, under --werror), 2 on usage or parse
// failure. The golden-file tests (tools/check_lint_golden.py) pin both
// the output and the exit status.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/ast/parser.h"
#include "src/util/status.h"

namespace {

int Usage() {
  std::cerr << "usage: datalog_lint [--goal=PRED] [--werror] FILE|-\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string goal;
  bool werror = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--goal=", 0) == 0) {
      goal = arg.substr(7);
    } else if (arg == "--werror") {
      werror = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "datalog_lint: cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  // Parse raw (lint off): the whole point is to diagnose programs the
  // linted parse would reject, e.g. arity-inconsistent ones.
  datalog::ParseOptions parse_options;
  parse_options.lint = false;
  datalog::StatusOr<datalog::Program> program =
      datalog::ParseProgram(text, parse_options);
  if (!program.ok()) {
    // An unparseable empty input still gets the lint's empty-program
    // shape; true syntax errors surface as parse failures.
    if (program.status().message() == "empty program") {
      datalog::Diagnostic d;
      d.severity = datalog::DiagnosticSeverity::kError;
      d.kind = datalog::DiagnosticKind::kEmptyProgram;
      d.message = "program has no rules";
      std::cout << datalog::FormatDiagnostic(d) << "\n"
                << "1 error(s), 0 warning(s)\n";
      return 1;
    }
    std::cerr << "datalog_lint: parse error: " << program.status().message()
              << "\n";
    return 2;
  }

  std::vector<datalog::Diagnostic> diagnostics =
      datalog::LintProgram(*program, goal);
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const datalog::Diagnostic& d : diagnostics) {
    std::cout << datalog::FormatDiagnostic(d) << "\n";
    if (d.severity == datalog::DiagnosticSeverity::kError) {
      ++errors;
    } else {
      ++warnings;
    }
  }
  std::cout << errors << " error(s), " << warnings << " warning(s)\n";
  if (errors > 0) return 1;
  if (werror && warnings > 0) return 1;
  return 0;
}
