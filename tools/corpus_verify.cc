// corpus_verify: independently replay pipeline certificates against a
// corpus using only the naive AST kernel (src/corpus/verify.h) — no
// engine, no interning, no IR, no parallelism.
//
// Usage: corpus_verify --corpus=FILE CERTFILE...
//
// All certificate files are parsed and concatenated, then checked for
// validity and coverage: every instance must carry an `invalid`
// certificate or both a forward- and a backward-direction one.
//
// Exit status: 0 when every certificate verifies and coverage is
// complete, 1 on any verification or coverage failure, 2 on usage,
// parse, or I/O failure.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/corpus/certificate.h"
#include "src/corpus/format.h"
#include "src/corpus/verify.h"
#include "src/util/status.h"

namespace {

int Usage() {
  std::cerr << "usage: corpus_verify --corpus=FILE CERTFILE...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_path;
  std::vector<std::string> cert_paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--corpus=", 0) == 0) {
      corpus_path = arg.substr(9);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      cert_paths.push_back(arg);
    }
  }
  if (corpus_path.empty() || cert_paths.empty()) return Usage();

  datalog::StatusOr<datalog::corpus::CorpusReader> reader =
      datalog::corpus::CorpusReader::Open(corpus_path);
  if (!reader.ok()) {
    std::cerr << "corpus_verify: " << reader.status().ToString() << "\n";
    return 2;
  }
  datalog::StatusOr<std::vector<datalog::corpus::CorpusInstance>> instances =
      reader->DecodeAll();
  if (!instances.ok()) {
    std::cerr << "corpus_verify: " << instances.status().ToString() << "\n";
    return 2;
  }

  std::vector<datalog::corpus::Certificate> certificates;
  for (const std::string& path : cert_paths) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << "corpus_verify: cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    datalog::StatusOr<std::vector<datalog::corpus::Certificate>> parsed =
        datalog::corpus::ParseCertificates(buffer.str());
    if (!parsed.ok()) {
      std::cerr << "corpus_verify: " << path << ": "
                << parsed.status().ToString() << "\n";
      return 2;
    }
    for (datalog::corpus::Certificate& cert : *parsed) {
      certificates.push_back(std::move(cert));
    }
  }

  datalog::StatusOr<datalog::corpus::VerifyReport> report =
      datalog::corpus::VerifyCorpus(*instances, certificates);
  if (!report.ok()) {
    std::cerr << "corpus_verify: " << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << "corpus_verify: " << report->certificates_checked
            << " certificates verified over " << instances->size()
            << " instances (invalid=" << report->invalid_instances
            << " timed-out=" << report->timed_out_instances
            << " forward-covered=" << report->forward_covered
            << " backward-covered=" << report->backward_covered << ")\n";
  return 0;
}
