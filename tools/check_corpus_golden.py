#!/usr/bin/env python3
"""Golden-file tests for the corpus_verify CLI.

Usage: check_corpus_golden.py <corpus_gen> <corpus_verify> <testdata-dir>

Regenerates the fixed golden corpus (`corpus_gen --golden`) into a
temporary directory, then checks every certificate golden under the
testdata directory against it:

  accept_*.certs   must verify (exit 0) — hand-assembled certificates
                   covering all three golden instances.
  reject_*.certs   must be rejected with exit 1 (a verification or
                   coverage failure, not a parse error), and stderr must
                   contain the line stored in the matching `.expect`
                   sidecar — pinning that each mutation (wrong witness
                   row, dangling tree node, flipped verdict, duplicate
                   coverage) fails for its own reason.

Registered as the `corpus_golden` ctest by CMakeLists.txt.
"""
import os
import subprocess
import sys
import tempfile


def main() -> None:
    if len(sys.argv) != 4:
        print("usage: check_corpus_golden.py <corpus_gen> <corpus_verify> "
              "<testdata-dir>")
        sys.exit(2)
    corpus_gen, corpus_verify, testdata = sys.argv[1:4]
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        corpus = os.path.join(tmp, "golden.corpus")
        gen = subprocess.run([corpus_gen, "--out=" + corpus, "--golden"],
                             capture_output=True, text=True)
        if gen.returncode != 0:
            print(f"FAIL corpus_gen --golden: exit {gen.returncode}\n"
                  f"{gen.stderr}")
            sys.exit(1)

        cases = sorted(name for name in os.listdir(testdata)
                       if name.endswith(".certs"))
        if not any(name.startswith("accept_") for name in cases) or \
           not any(name.startswith("reject_") for name in cases):
            print(f"FAIL: no accept_/reject_ goldens under {testdata}")
            sys.exit(1)
        for name in cases:
            path = os.path.join(testdata, name)
            run = subprocess.run([corpus_verify, "--corpus=" + corpus, path],
                                 capture_output=True, text=True)
            if name.startswith("accept_"):
                if run.returncode != 0:
                    failures.append(f"{name}: expected acceptance, got exit "
                                    f"{run.returncode}\n{run.stderr}")
            elif name.startswith("reject_"):
                if run.returncode != 1:
                    failures.append(f"{name}: expected rejection (exit 1), "
                                    f"got exit {run.returncode}\n{run.stderr}")
                    continue
                expect_path = path[:-len(".certs")] + ".expect"
                with open(expect_path, encoding="utf-8") as f:
                    expect = f.read().strip()
                if expect not in run.stderr:
                    failures.append(f"{name}: stderr missing {expect!r}\n"
                                    f"{run.stderr}")
            else:
                failures.append(f"{name}: not accept_*/reject_*")
    for failure in failures:
        print(f"FAIL {failure}")
    print(f"check_corpus_golden: {len(cases) - len(failures)}/{len(cases)} "
          f"golden cases passed")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
