#!/usr/bin/env python3
"""Checks the repository's markdown documentation.

Two invariants, enforced by the CI docs job:

1. Every intra-repo markdown link resolves: `[text](relative/path)` in
   any tracked .md file must point at an existing file or directory
   (fragments are stripped; absolute URLs and mailto: are skipped).
2. docs/architecture.md — the one-page layer map — mentions every
   subdirectory of src/, so a new subsystem cannot land without a place
   in the map.

Usage: check_docs.py [repo_root]
"""
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files(root: str):
    for directory in (root, os.path.join(root, "docs"),
                      os.path.join(root, "examples"),
                      os.path.join(root, "bench")):
        if not os.path.isdir(directory):
            continue
        for name in sorted(os.listdir(directory)):
            if name.endswith(".md"):
                yield os.path.join(directory, name)


def main() -> None:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    errors = []

    for path in markdown_files(root):
        with open(path) as handle:
            text = handle.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                errors.append(f"{os.path.relpath(path, root)}: broken link "
                              f"to {target!r}")

    architecture = os.path.join(root, "docs", "architecture.md")
    if not os.path.exists(architecture):
        errors.append("docs/architecture.md is missing")
    else:
        with open(architecture) as handle:
            text = handle.read()
        src = os.path.join(root, "src")
        for name in sorted(os.listdir(src)):
            if not os.path.isdir(os.path.join(src, name)):
                continue
            if f"src/{name}" not in text:
                errors.append(f"docs/architecture.md does not mention "
                              f"src/{name}")

    if errors:
        for error in errors:
            print(f"check_docs: {error}", file=sys.stderr)
        sys.exit(1)
    print("check_docs: OK")


if __name__ == "__main__":
    main()
