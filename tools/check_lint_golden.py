#!/usr/bin/env python3
"""Golden-file tests for the datalog_lint CLI.

Usage: check_lint_golden.py <datalog_lint-binary> <testdata-dir>

For every `<case>.dl` in the testdata directory, runs the lint binary on
it and compares stdout byte-for-byte against `<case>.golden`. Per-case
flags come from an optional first-line marker in the .dl file:

    % lint-args: --goal=p --werror

The expected exit status is derived from the golden file: 1 when it
contains an error-severity line (or, under --werror, any warning line),
else 0. Registered as the `lint_golden` ctest by CMakeLists.txt.
"""
import os
import subprocess
import sys


def expected_exit(args, golden: str) -> int:
    if "error[" in golden:
        return 1
    if "--werror" in args and "warning[" in golden:
        return 1
    return 0


def main() -> None:
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <lint-binary> <testdata-dir>")
    binary, testdata = sys.argv[1], sys.argv[2]
    cases = sorted(
        name[:-3] for name in os.listdir(testdata) if name.endswith(".dl"))
    if not cases:
        sys.exit(f"check_lint_golden: no .dl cases in {testdata}")

    failures = []
    for case in cases:
        dl_path = os.path.join(testdata, case + ".dl")
        golden_path = os.path.join(testdata, case + ".golden")
        if not os.path.exists(golden_path):
            failures.append(f"{case}: missing {case}.golden")
            continue
        with open(dl_path) as handle:
            first_line = handle.readline()
        args = []
        marker = "% lint-args:"
        if first_line.startswith(marker):
            args = first_line[len(marker):].split()
        result = subprocess.run([binary, *args, dl_path],
                                capture_output=True, text=True)
        with open(golden_path) as handle:
            golden = handle.read()
        want_exit = expected_exit(args, golden)
        if result.stdout != golden:
            failures.append(
                f"{case}: output mismatch\n--- want ---\n{golden}"
                f"--- got ----\n{result.stdout}------------")
        elif result.returncode != want_exit:
            failures.append(f"{case}: exit {result.returncode}, "
                            f"want {want_exit}")

    if failures:
        for failure in failures:
            print(f"check_lint_golden: {failure}", file=sys.stderr)
        sys.exit(1)
    print(f"check_lint_golden: OK ({len(cases)} cases)")


if __name__ == "__main__":
    main()
