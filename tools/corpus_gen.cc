// corpus_gen: generate a seeded, reproducible containment corpus and
// write it in the binary corpus format (src/corpus/format.h).
//
// Usage: corpus_gen --out=FILE [--seed=N] [--count=N] [--weight-tm=N]
//                   [--golden]
//
// The same flags always produce a byte-identical file (the CI
// corpus-smoke job pins this with cmp). --weight-tm enables the
// adversarial §5.3 Turing-machine reduction family (weight 0 by
// default, so corpora generated without the flag are unchanged).
// --golden ignores the other generation flags and writes the small
// fixed GoldenCorpus instead.
//
// Exit status: 0 on success, 2 on usage or I/O failure.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/corpus/format.h"
#include "src/corpus/generate.h"
#include "src/util/status.h"

namespace {

int Usage() {
  std::cerr << "usage: corpus_gen --out=FILE [--seed=N] [--count=N] "
               "[--weight-tm=N] [--golden]\n";
  return 2;
}

bool ParseU64(const std::string& text, std::uint64_t* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *value = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  datalog::corpus::CorpusGenOptions options;
  bool golden = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!ParseU64(arg.substr(7), &value)) return Usage();
      options.seed = value;
    } else if (arg.rfind("--count=", 0) == 0) {
      if (!ParseU64(arg.substr(8), &value)) return Usage();
      options.count = static_cast<std::size_t>(value);
    } else if (arg.rfind("--weight-tm=", 0) == 0) {
      if (!ParseU64(arg.substr(12), &value)) return Usage();
      options.weight_tm = static_cast<int>(value);
    } else if (arg == "--golden") {
      golden = true;
    } else {
      return Usage();
    }
  }
  if (out.empty()) return Usage();

  std::vector<datalog::corpus::CorpusInstance> instances =
      golden ? datalog::corpus::GoldenCorpus()
             : datalog::corpus::GenerateCorpus(options);
  datalog::corpus::CorpusWriter writer;
  for (const datalog::corpus::CorpusInstance& instance : instances) {
    writer.Add(instance);
  }
  datalog::Status written = writer.WriteFile(out);
  if (!written.ok()) {
    std::cerr << "corpus_gen: " << written.ToString() << "\n";
    return 2;
  }
  std::cout << "corpus_gen: wrote " << instances.size() << " instances to "
            << out << "\n";
  return 0;
}
