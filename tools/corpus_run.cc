// corpus_run: run the staged decider pipeline (src/corpus/pipeline.h)
// over a binary corpus and write one certificate file per stage.
//
// Usage: corpus_run --corpus=FILE --out-dir=DIR [--threads=N]
//
// Writes DIR/stage-<name>.certs (lint, forward, linear, unfold,
// ptrees; a stage that emitted nothing still writes its header-only
// file) and prints per-stage entered/decided/holdout counts plus the
// corpus-wide verdict-class tallies. The outputs are deterministic for
// a fixed corpus regardless of --threads.
//
// Exit status: 0 on success, 1 when the pipeline reports an error
// (engine failure or a stage disagreement — the differential signal),
// 2 on usage or I/O failure.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "src/corpus/certificate.h"
#include "src/corpus/format.h"
#include "src/corpus/pipeline.h"
#include "src/util/status.h"

namespace {

int Usage() {
  std::cerr
      << "usage: corpus_run --corpus=FILE --out-dir=DIR [--threads=N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_path;
  std::string out_dir;
  datalog::corpus::PipelineOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--corpus=", 0) == 0) {
      corpus_path = arg.substr(9);
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      errno = 0;
      unsigned long long threads = std::strtoull(arg.c_str() + 10, &end, 10);
      if (errno != 0 || *end != '\0') return Usage();
      options.threads = static_cast<std::size_t>(threads);
    } else {
      return Usage();
    }
  }
  if (corpus_path.empty() || out_dir.empty()) return Usage();

  datalog::StatusOr<datalog::corpus::CorpusReader> reader =
      datalog::corpus::CorpusReader::Open(corpus_path);
  if (!reader.ok()) {
    std::cerr << "corpus_run: " << reader.status().ToString() << "\n";
    return 2;
  }
  datalog::StatusOr<std::vector<datalog::corpus::CorpusInstance>> instances =
      reader->DecodeAll();
  if (!instances.ok()) {
    std::cerr << "corpus_run: " << instances.status().ToString() << "\n";
    return 2;
  }

  datalog::StatusOr<datalog::corpus::PipelineResult> result =
      datalog::corpus::RunCorpusPipeline(*instances, options);
  if (!result.ok()) {
    std::cerr << "corpus_run: " << result.status().ToString() << "\n";
    return 1;
  }

  for (const datalog::corpus::StageReport& stage : result->stages) {
    const std::string path = out_dir + "/stage-" + stage.name + ".certs";
    std::ofstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << "corpus_run: cannot write " << path << "\n";
      return 2;
    }
    file << datalog::corpus::SerializeCertificates(stage.certificates);
    if (!file.flush()) {
      std::cerr << "corpus_run: write failed for " << path << "\n";
      return 2;
    }
    std::cout << "stage " << stage.name << ": entered=" << stage.entered
              << " decided=" << stage.decided
              << " holdout=" << stage.holdout
              << " certificates=" << stage.certificates.size() << "\n";
  }
  std::cout << "verdicts: equivalent=" << result->equivalent
            << " forward-only=" << result->forward_only
            << " backward-only=" << result->backward_only
            << " incomparable=" << result->incomparable
            << " invalid=" << result->invalid << "\n";
  return 0;
}
