// corpus_run: run the staged decider pipeline (src/corpus/pipeline.h)
// over a binary corpus and write one certificate file per stage.
//
// Usage: corpus_run --corpus=FILE --out-dir=DIR [--threads=N]
//                   [--deadline-ms=MS] [--max-steps=N]
//                   [--instance-deadline-ms=MS]
//
// Writes DIR/stage-<name>.certs (lint, forward, linear, unfold,
// ptrees; a stage that emitted nothing still writes its header-only
// file) and prints per-stage entered/decided/holdout counts plus the
// corpus-wide verdict-class tallies. The outputs are deterministic for
// a fixed corpus regardless of --threads.
//
// --deadline-ms bounds the whole run on the wall clock. --max-steps is
// inherited by every governed procedure the pipeline spawns (each
// instance's engine/decider run charges its own counter against it), so
// it caps the largest single unit of work, not the run's total.
// --instance-deadline-ms bounds each instance, and an instance that
// exceeds it leaves the pipeline with a `timeout` certificate instead
// of aborting the run.
//
// Exit status:
//   0  success, no instance timed out
//   1  pipeline error (engine failure or stage disagreement)
//   2  usage or I/O failure
//   3  success, but at least one instance timed out
//   4  run cancelled (kCancelled)
//   5  run-wide deadline or step budget exhausted (kDeadlineExceeded /
//      kResourceExhausted from the run-wide governor)
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "src/corpus/certificate.h"
#include "src/corpus/format.h"
#include "src/corpus/pipeline.h"
#include "src/util/status.h"

namespace {

int Usage() {
  std::cerr << "usage: corpus_run --corpus=FILE --out-dir=DIR [--threads=N]\n"
            << "                  [--deadline-ms=MS] [--max-steps=N]\n"
            << "                  [--instance-deadline-ms=MS]\n";
  return 2;
}

bool ParseU64(const std::string& arg, std::size_t prefix,
              std::uint64_t* value) {
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(arg.c_str() + prefix, &end, 10);
  if (errno != 0 || *end != '\0') return false;
  *value = static_cast<std::uint64_t>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_path;
  std::string out_dir;
  datalog::corpus::PipelineOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg.rfind("--corpus=", 0) == 0) {
      corpus_path = arg.substr(9);
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!ParseU64(arg, 10, &value)) return Usage();
      options.threads = static_cast<std::size_t>(value);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!ParseU64(arg, 14, &value)) return Usage();
      options.limits =
          options.limits.WithDeadlineIn(static_cast<std::int64_t>(value));
    } else if (arg.rfind("--max-steps=", 0) == 0) {
      if (!ParseU64(arg, 12, &value)) return Usage();
      options.limits = options.limits.WithMaxSteps(value);
    } else if (arg.rfind("--instance-deadline-ms=", 0) == 0) {
      if (!ParseU64(arg, 23, &value)) return Usage();
      options.instance_deadline_ms = value;
    } else {
      return Usage();
    }
  }
  if (corpus_path.empty() || out_dir.empty()) return Usage();

  datalog::StatusOr<datalog::corpus::CorpusReader> reader =
      datalog::corpus::CorpusReader::Open(corpus_path);
  if (!reader.ok()) {
    std::cerr << "corpus_run: " << reader.status().ToString() << "\n";
    return 2;
  }
  datalog::StatusOr<std::vector<datalog::corpus::CorpusInstance>> instances =
      reader->DecodeAll();
  if (!instances.ok()) {
    std::cerr << "corpus_run: " << instances.status().ToString() << "\n";
    return 2;
  }

  datalog::StatusOr<datalog::corpus::PipelineResult> result =
      datalog::corpus::RunCorpusPipeline(*instances, options);
  if (!result.ok()) {
    std::cerr << "corpus_run: " << result.status().ToString() << "\n";
    switch (result.status().code()) {
      case datalog::StatusCode::kCancelled:
        return 4;
      case datalog::StatusCode::kDeadlineExceeded:
      case datalog::StatusCode::kResourceExhausted:
        return 5;
      default:
        return 1;
    }
  }

  for (const datalog::corpus::StageReport& stage : result->stages) {
    const std::string path = out_dir + "/stage-" + stage.name + ".certs";
    std::ofstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << "corpus_run: cannot write " << path << "\n";
      return 2;
    }
    file << datalog::corpus::SerializeCertificates(stage.certificates);
    if (!file.flush()) {
      std::cerr << "corpus_run: write failed for " << path << "\n";
      return 2;
    }
    std::cout << "stage " << stage.name << ": entered=" << stage.entered
              << " decided=" << stage.decided
              << " holdout=" << stage.holdout
              << " certificates=" << stage.certificates.size() << "\n";
  }
  std::cout << "verdicts: equivalent=" << result->equivalent
            << " forward-only=" << result->forward_only
            << " backward-only=" << result->backward_only
            << " incomparable=" << result->incomparable
            << " invalid=" << result->invalid
            << " timed-out=" << result->timed_out << "\n";
  return result->timed_out > 0 ? 3 : 0;
}
